//! Flow-sensitive abstract interpretation of fuzzlang programs over the
//! static interface models of [`crate::model`].
//!
//! The interpreter tracks an abstract driver state per open file (or per
//! device, for device-global models), constant-folds known argument words
//! against transition guards, and classifies every modeled driver call as
//! *definitely fires*, *possibly fires*, or *provably fails*. Three
//! outputs feed the fuzzing loop:
//!
//! * **Diagnostics** — `absint-dead-call` / `absint-guard-violation`
//!   warnings for provably-failing calls, `absint-consume-before-produce`
//!   for ordering violations of `produces`/`consumes` tags, and an
//!   `absint-dead-prog` error when *every* modeled driver call in the
//!   program provably fails (such a program cannot advance any driver
//!   state machine and is worthless to execute).
//! * **`fired` claims** — per-call "this call definitely succeeds" bits.
//!   These are sound against the concrete broker under the fresh-boot
//!   assumption (the program runs as the first process of a freshly
//!   booted device; campaigns re-use devices, so the engine treats the
//!   gate as a heuristic for device-global models there).
//! * **Static depth** — the number of definite *state-changing*
//!   transitions, a lower bound on the dynamic depth the program reaches;
//!   the corpus uses it as seed energy.
//!
//! Soundness discipline: a claim is made only when every possibly-matching
//! transition definitely matches (all guarded words known and admitted),
//! all of them are [`Reliability::Guaranteed`], none is a hazard, and all
//! agree on the target state. Anything else joins the abstract state
//! (to ⊤ when outcomes diverge). HAL calls and possible hazards *taint*
//! the interpretation: the kernel may be wedged from that point on, so no
//! further claims or provable-failure verdicts are issued.

use crate::counters::LintCounters;
use crate::diag::{Report, Severity};
use crate::model::{ModelEntry, ModelSet};
use fuzzlang::desc::{CallKind, DescId, DescTable, SyscallTemplate};
use fuzzlang::prog::{ArgValue, Call, Prog};
use fuzzlang::types::TypeDesc;
use simkernel::driver::{Reliability, StateModel, TransOp, Transition, WordGuard};
use std::collections::BTreeSet;

/// Maximum prerequisite calls [`repair_prereqs`] will insert per program.
const MAX_PREREQ_INSERTIONS: usize = 12;

/// Outcome of abstractly interpreting one program.
#[derive(Debug, Clone, PartialEq)]
pub struct AbsintResult {
    /// Diagnostics, in call order.
    pub report: Report,
    /// Definite state-changing transitions: a lower bound on the dynamic
    /// depth the program reaches on a fresh device.
    pub depth: u32,
    /// Per-call claims: `fired[i]` means call `i` definitely succeeds.
    pub fired: Vec<bool>,
}

/// Abstractly interprets `prog` against `models`.
pub fn absint_prog(prog: &Prog, table: &DescTable, models: &ModelSet) -> AbsintResult {
    Interp::new(table, models).run(prog)
}

/// The static depth score of `prog` (see [`AbsintResult::depth`]).
pub fn static_depth(prog: &Prog, table: &DescTable, models: &ModelSet) -> u32 {
    absint_prog(prog, table, models).depth
}

/// Abstract state of one cell.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Abs {
    /// Exactly this state (index into the model's state list).
    Known(usize),
    /// Unknown.
    Top,
}

/// One tracked open file (or device-global interface).
#[derive(Debug)]
struct Cell {
    entry: usize,
    state: Abs,
    /// Call indices whose result is a live fd for this cell.
    aliases: BTreeSet<usize>,
    /// Parent freed (accept child of a closed listener): any further use
    /// may be a use-after-free.
    orphan: bool,
    parent: Option<usize>,
}

/// Tri-state transition match.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum MatchKind {
    No,
    Possible,
    Definite,
}

/// Verdict for one modeled op from one known state.
#[derive(Debug, Clone)]
enum Verdict {
    /// Provably fails. `op_from_state` records whether a transition for
    /// this op exists from the state (guards refuted) — it selects the
    /// diagnostic code.
    Fail { op_from_state: bool },
    /// Definitely succeeds and lands in `target`.
    Fire {
        target: usize,
        produces: Vec<String>,
        consumes: Vec<String>,
        spawns: Option<usize>,
    },
    /// May or may not fire.
    Ambiguous { outcomes: BTreeSet<usize>, hazard: bool },
}

/// Lowered view of one call's arguments, mirroring the broker's arg
/// partition: first `Ref` is the fd, remaining scalars in order, first
/// byte blob is the payload.
struct CallCtx<'a> {
    template: &'a SyscallTemplate,
    /// Scalar args after the fd slot; `None` = statically unknown (a
    /// reference resolved at runtime).
    ints: Vec<Option<u64>>,
    payload: &'a [u8],
}

impl<'a> CallCtx<'a> {
    fn new(template: &'a SyscallTemplate, call: &'a Call) -> Self {
        let ints = call
            .args
            .iter()
            .skip(1)
            .filter_map(|a| match a {
                ArgValue::Int(v) => Some(Some(*v)),
                ArgValue::Ref(_) => Some(None),
                _ => None,
            })
            .collect();
        let payload = call
            .args
            .iter()
            .find_map(|a| match a {
                ArgValue::Bytes(b) => Some(b.as_slice()),
                _ => None,
            })
            .unwrap_or(&[]);
        Self { template, ints, payload }
    }

    fn int(&self, i: usize) -> Option<u64> {
        self.ints.get(i).copied().unwrap_or(Some(0))
    }

    /// The ioctl request code, when statically known.
    fn request(&self) -> Option<u32> {
        match self.template {
            SyscallTemplate::Ioctl { request } => Some(*request),
            SyscallTemplate::IoctlAny => self.int(0).map(|v| v as u32),
            _ => None,
        }
    }

    /// The scalar words preceding the payload in the driver's view of the
    /// argument buffer.
    fn scalar_words(&self) -> &[Option<u64>] {
        match self.template {
            SyscallTemplate::Ioctl { .. } => &self.ints,
            SyscallTemplate::IoctlAny => self.ints.get(1..).unwrap_or(&[]),
            _ => &[],
        }
    }

    /// Argument word `i` as the driver observes it, `None` when unknown.
    /// Mirrors the broker's lowering (length clamps, u32 truncation,
    /// zero-padding past the buffer).
    fn word_at(&self, i: usize) -> Option<u32> {
        match self.template {
            SyscallTemplate::Ioctl { .. } | SyscallTemplate::IoctlAny => {
                let scalars = self.scalar_words();
                if i < scalars.len() {
                    scalars[i].map(|v| v as u32)
                } else {
                    Some(payload_word(self.payload, i - scalars.len()))
                }
            }
            SyscallTemplate::Read => match i {
                0 => self.int(0).map(|v| v.min(1 << 16) as u32),
                _ => Some(0),
            },
            SyscallTemplate::Write => Some(payload_word(self.payload, i)),
            SyscallTemplate::Mmap => match i {
                0 => self.int(0).map(|v| v.min(1 << 24) as u32),
                1 => self.int(1).map(|v| v as u32),
                _ => Some(0),
            },
            // The address stays 64-bit in the kernel ABI; a value above
            // u32 range cannot be compared against a word guard.
            SyscallTemplate::Bind | SyscallTemplate::Connect => match i {
                0 => self.int(0).filter(|v| *v <= u64::from(u32::MAX)).map(|v| v as u32),
                _ => Some(0),
            },
            SyscallTemplate::Listen => match i {
                0 => self.int(0).map(|v| v as u32),
                _ => Some(0),
            },
            _ => Some(0),
        }
    }

    /// Whether the transition's required payload prefix matches:
    /// `Definite` / `No` when decidable, `Possible` when an unknown word
    /// overlaps the prefix.
    fn prefix_match(&self, prefix: &[u8]) -> MatchKind {
        match self.template {
            SyscallTemplate::Write => {
                if self.payload.starts_with(prefix) {
                    MatchKind::Definite
                } else {
                    MatchKind::No
                }
            }
            SyscallTemplate::Ioctl { .. } | SyscallTemplate::IoctlAny => {
                let scalars = self.scalar_words();
                let mut verdict = MatchKind::Definite;
                for (off, want) in prefix.iter().enumerate() {
                    let got = if off / 4 < scalars.len() {
                        scalars[off / 4].map(|v| (v as u32).to_le_bytes()[off % 4])
                    } else {
                        let p = off - scalars.len() * 4;
                        Some(self.payload.get(p).copied().unwrap_or(0))
                    };
                    match got {
                        Some(b) if b == *want => {}
                        Some(_) => return MatchKind::No,
                        None => verdict = MatchKind::Possible,
                    }
                }
                verdict
            }
            _ => MatchKind::Possible,
        }
    }
}

fn payload_word(payload: &[u8], i: usize) -> u32 {
    let off = i * 4;
    let mut buf = [0u8; 4];
    for (j, slot) in buf.iter_mut().enumerate() {
        *slot = payload.get(off + j).copied().unwrap_or(0);
    }
    u32::from_le_bytes(buf)
}

/// Tri-state match of transition `t` against the call, from state
/// `state_name`.
fn match_transition(t: &Transition, state_name: &str, ctx: &CallCtx<'_>) -> MatchKind {
    let op = match (&t.op, ctx.template) {
        (TransOp::Ioctl(req), SyscallTemplate::Ioctl { .. })
        | (TransOp::Ioctl(req), SyscallTemplate::IoctlAny) => match ctx.request() {
            Some(r) if r == *req => MatchKind::Definite,
            Some(_) => MatchKind::No,
            None => MatchKind::Possible,
        },
        (TransOp::Read, SyscallTemplate::Read)
        | (TransOp::Write, SyscallTemplate::Write)
        | (TransOp::Mmap, SyscallTemplate::Mmap)
        | (TransOp::Bind, SyscallTemplate::Bind)
        | (TransOp::Connect, SyscallTemplate::Connect)
        | (TransOp::Listen, SyscallTemplate::Listen)
        | (TransOp::Accept, SyscallTemplate::Accept) => MatchKind::Definite,
        _ => MatchKind::No,
    };
    if op == MatchKind::No {
        return MatchKind::No;
    }
    if !t.from.is_empty() && !t.from.iter().any(|s| s == state_name) {
        return MatchKind::No;
    }
    let mut verdict = op;
    for (i, g) in t.guards.iter().enumerate() {
        if matches!(g, WordGuard::Any) {
            continue;
        }
        match ctx.word_at(i) {
            Some(w) if g.admits(w) => {}
            Some(_) => return MatchKind::No,
            None => verdict = MatchKind::Possible,
        }
    }
    if let Some(prefix) = &t.payload_prefix {
        match ctx.prefix_match(prefix) {
            MatchKind::No => return MatchKind::No,
            MatchKind::Possible => verdict = MatchKind::Possible,
            MatchKind::Definite => {}
        }
    }
    verdict
}

/// Evaluates a modeled op from one known state.
fn evaluate(model: &StateModel, s: usize, ctx: &CallCtx<'_>) -> Verdict {
    let state_name = &model.states[s];
    let state_idx = |name: &str| model.states.iter().position(|x| x == name).unwrap_or(s);
    let matched: Vec<(&Transition, MatchKind)> = model
        .transitions
        .iter()
        .filter_map(|t| {
            let m = match_transition(t, state_name, ctx);
            (m != MatchKind::No).then_some((t, m))
        })
        .collect();
    if matched.is_empty() {
        let op_from_state = model.transitions.iter().any(|t| {
            let op_only = match (&t.op, ctx.template) {
                (TransOp::Ioctl(req), _) => ctx.request() == Some(*req),
                (TransOp::Read, SyscallTemplate::Read)
                | (TransOp::Write, SyscallTemplate::Write)
                | (TransOp::Mmap, SyscallTemplate::Mmap)
                | (TransOp::Bind, SyscallTemplate::Bind)
                | (TransOp::Connect, SyscallTemplate::Connect)
                | (TransOp::Listen, SyscallTemplate::Listen)
                | (TransOp::Accept, SyscallTemplate::Accept) => true,
                _ => false,
            };
            op_only && (t.from.is_empty() || t.from.iter().any(|x| x == state_name))
        });
        return Verdict::Fail { op_from_state };
    }
    let all_definite_guaranteed = matched.iter().all(|(t, m)| {
        *m == MatchKind::Definite && t.reliability == Reliability::Guaranteed && !t.hazard
    });
    let targets: BTreeSet<usize> = matched
        .iter()
        .map(|(t, _)| t.to.as_deref().map_or(s, &state_idx))
        .collect();
    if all_definite_guaranteed && targets.len() == 1 {
        let target = *targets.iter().next().expect("one target");
        return Verdict::Fire {
            target,
            produces: matched.iter().filter_map(|(t, _)| t.produces.clone()).collect(),
            consumes: matched.iter().filter_map(|(t, _)| t.consumes.clone()).collect(),
            spawns: matched
                .iter()
                .find_map(|(t, _)| t.spawns.as_deref())
                .map(&state_idx),
        };
    }
    let mut outcomes = targets;
    outcomes.insert(s); // any non-definite transition may simply not fire
    Verdict::Ambiguous { outcomes, hazard: matched.iter().any(|(t, _)| t.hazard) }
}

/// Evaluation context of one provably-failing call, for prerequisite
/// repair.
struct FailureCtx {
    call: usize,
    entry: usize,
    /// Known source state, when the failure is state/guard-based (stale
    /// fd failures carry `None` and are not repairable here).
    state: Option<usize>,
    /// Live aliases of the cell before this call, for fd synthesis.
    aliases: BTreeSet<usize>,
}

struct Interp<'a> {
    table: &'a DescTable,
    models: &'a ModelSet,
    cells: Vec<Cell>,
    /// Producing call index → cell.
    call_cell: Vec<Option<usize>>,
    /// Shared cell per device-global entry.
    device_cells: Vec<Option<usize>>,
    /// Calls statically known to have produced no usable fd.
    dead_refs: Vec<bool>,
    produced_tags: BTreeSet<String>,
    tainted: bool,
    report: Report,
    depth: u32,
    fired: Vec<bool>,
    modeled_attempts: usize,
    modeled_failures: usize,
    failures: Vec<FailureCtx>,
}

impl<'a> Interp<'a> {
    fn new(table: &'a DescTable, models: &'a ModelSet) -> Self {
        Self {
            table,
            models,
            cells: Vec::new(),
            call_cell: Vec::new(),
            device_cells: vec![None; models.entries().len()],
            dead_refs: Vec::new(),
            produced_tags: BTreeSet::new(),
            tainted: false,
            report: Report::new(),
            depth: 0,
            fired: Vec::new(),
            modeled_attempts: 0,
            modeled_failures: 0,
            failures: Vec::new(),
        }
    }

    fn run(mut self, prog: &Prog) -> AbsintResult {
        self.call_cell = vec![None; prog.calls.len()];
        self.dead_refs = vec![false; prog.calls.len()];
        self.fired = vec![false; prog.calls.len()];
        for (i, call) in prog.calls.iter().enumerate() {
            if call.desc.0 >= self.table.len() {
                continue; // foreign program; lint reports unknown-desc
            }
            let desc = self.table.get(call.desc);
            match &desc.kind {
                CallKind::Hal { .. } => {
                    self.taint_all();
                }
                CallKind::Syscall(template) => self.step_syscall(i, call, template),
            }
        }
        if self.modeled_attempts > 0 && self.modeled_failures == self.modeled_attempts {
            self.report.push(
                Severity::Error,
                "absint-dead-prog",
                None,
                format!(
                    "all {} modeled driver calls provably fail; the program cannot \
                     advance any driver state machine",
                    self.modeled_attempts
                ),
            );
        }
        AbsintResult { report: self.report, depth: self.depth, fired: self.fired }
    }

    fn taint_all(&mut self) {
        self.tainted = true;
        for cell in &mut self.cells {
            cell.state = Abs::Top;
        }
    }

    fn entry(&self, cell: usize) -> &ModelEntry {
        &self.models.entries()[self.cells[cell].entry]
    }

    /// Resolves the first argument to a live tracked cell.
    /// `Err(true)` = the call provably fails with `EBADF` (stale alias or
    /// dead producer); `Err(false)` = not tracked (unmodeled interface).
    fn resolve_cell(&self, call: &Call) -> Result<usize, bool> {
        match call.args.first() {
            Some(ArgValue::Ref(t)) => {
                if let Some(&cell) = self.call_cell.get(*t).and_then(|c| c.as_ref()) {
                    if self.cells[cell].aliases.contains(t) {
                        Ok(cell)
                    } else {
                        Err(true) // fd closed: EBADF
                    }
                } else if self.dead_refs.get(*t).copied().unwrap_or(false) {
                    Err(true)
                } else {
                    Err(false)
                }
            }
            _ => Err(false),
        }
    }

    fn open_cell(&mut self, call_idx: usize, entry: usize) {
        let model = &self.models.entries()[entry].model;
        let initial = model
            .states
            .iter()
            .position(|s| *s == model.initial)
            .unwrap_or(0);
        let cell = if model.per_open {
            self.cells.push(Cell {
                entry,
                state: Abs::Known(initial),
                aliases: BTreeSet::new(),
                orphan: false,
                parent: None,
            });
            self.cells.len() - 1
        } else {
            match self.device_cells[entry] {
                Some(cell) => cell,
                None => {
                    self.cells.push(Cell {
                        entry,
                        state: Abs::Known(initial),
                        aliases: BTreeSet::new(),
                        orphan: false,
                        parent: None,
                    });
                    let cell = self.cells.len() - 1;
                    self.device_cells[entry] = Some(cell);
                    cell
                }
            }
        };
        self.cells[cell].aliases.insert(call_idx);
        self.call_cell[call_idx] = Some(cell);
        // Hidden shared state (the HCI adapter): a second live cell of
        // the same interface makes every one of them unknown.
        if model.global_backing {
            let live: Vec<usize> = self
                .cells
                .iter()
                .enumerate()
                .filter(|(_, c)| c.entry == entry && !c.aliases.is_empty())
                .map(|(i, _)| i)
                .collect();
            if live.len() > 1 {
                for i in live {
                    self.cells[i].state = Abs::Top;
                }
            }
        }
    }

    fn step_syscall(&mut self, i: usize, call: &Call, template: &SyscallTemplate) {
        match template {
            SyscallTemplate::Openat { path } => {
                if let Some(entry) = self.models.entry_for_node(path) {
                    self.open_cell(i, entry);
                }
            }
            SyscallTemplate::Socket { .. } => {
                let produced = self.table.get(call.desc).produces.clone();
                if let Some(entry) =
                    produced.and_then(|k| self.models.entry_for_produced(&k.0))
                {
                    self.open_cell(i, entry);
                }
            }
            SyscallTemplate::Dup => match self.resolve_cell(call) {
                Ok(cell) => {
                    if self.cells[cell].orphan {
                        self.taint_all();
                        return;
                    }
                    self.cells[cell].aliases.insert(i);
                    self.call_cell[i] = Some(cell);
                }
                Err(stale) => {
                    if stale {
                        self.dead_refs[i] = true;
                    }
                }
            },
            SyscallTemplate::Close => {
                if let Ok(cell) = self.resolve_cell(call) {
                    if self.cells[cell].orphan {
                        self.taint_all();
                    }
                    let target = match call.args.first() {
                        Some(ArgValue::Ref(t)) => *t,
                        _ => return,
                    };
                    self.cells[cell].aliases.remove(&target);
                    let model = &self.entry(cell).model;
                    let (clobbers, orphans) = (model.close_clobbers, model.close_orphans);
                    if clobbers {
                        self.cells[cell].state = Abs::Top;
                    }
                    if orphans {
                        for c in 0..self.cells.len() {
                            if self.cells[c].parent == Some(cell) {
                                self.cells[c].orphan = true;
                            }
                        }
                    }
                }
            }
            SyscallTemplate::Poll => {}
            SyscallTemplate::Read
            | SyscallTemplate::Write
            | SyscallTemplate::Mmap
            | SyscallTemplate::Bind
            | SyscallTemplate::Connect
            | SyscallTemplate::Listen
            | SyscallTemplate::Accept
            | SyscallTemplate::Ioctl { .. }
            | SyscallTemplate::IoctlAny => self.step_modeled_op(i, call, template),
        }
    }

    fn step_modeled_op(&mut self, i: usize, call: &Call, template: &SyscallTemplate) {
        let cell = match self.resolve_cell(call) {
            Ok(cell) => cell,
            Err(true) => {
                // Stale or dead fd: provable EBADF. Lint already warns
                // about the use-after-close; just count the dead call.
                if !self.tainted {
                    self.modeled_attempts += 1;
                    self.modeled_failures += 1;
                    self.failures.push(FailureCtx {
                        call: i,
                        entry: 0,
                        state: None,
                        aliases: BTreeSet::new(),
                    });
                }
                return;
            }
            Err(false) => return,
        };
        if self.cells[cell].orphan {
            // Bug-class: touching an accept child after its listener was
            // freed may be a use-after-free; nothing after is provable.
            self.taint_all();
            return;
        }
        if self.tainted {
            return;
        }
        let ctx = CallCtx::new(template, call);
        let entry_idx = self.cells[cell].entry;
        let model = &self.models.entries()[entry_idx].model;
        let label = self.models.entries()[entry_idx].label.clone();
        self.modeled_attempts += 1;
        let aliases = self.cells[cell].aliases.clone();
        match self.cells[cell].state {
            Abs::Known(s) => match evaluate(model, s, &ctx) {
                Verdict::Fail { op_from_state } => {
                    self.modeled_failures += 1;
                    self.failures.push(FailureCtx {
                        call: i,
                        entry: entry_idx,
                        state: Some(s),
                        aliases,
                    });
                    let state_name = &model.states[s];
                    if op_from_state {
                        self.report.push(
                            Severity::Warning,
                            "absint-guard-violation",
                            Some(i),
                            format!(
                                "{label}: {} provably fails from state {state_name:?}: \
                                 argument words violate every matching guard",
                                op_label(&ctx)
                            ),
                        );
                    } else {
                        self.report.push(
                            Severity::Warning,
                            "absint-dead-call",
                            Some(i),
                            format!(
                                "{label}: no transition for {} from state {state_name:?}; \
                                 the call provably fails",
                                op_label(&ctx)
                            ),
                        );
                    }
                }
                Verdict::Fire { target, produces, consumes, spawns } => {
                    self.claim_fire(i, cell, Some(s), target, produces, consumes, spawns, &label);
                }
                Verdict::Ambiguous { outcomes, hazard } => {
                    self.join(cell, outcomes, hazard);
                }
            },
            Abs::Top => {
                // Simulate every state; claims need unanimity.
                let verdicts: Vec<Verdict> =
                    (0..model.states.len()).map(|s| evaluate(model, s, &ctx)).collect();
                let all_fail = verdicts.iter().all(|v| matches!(v, Verdict::Fail { .. }));
                if all_fail {
                    self.modeled_failures += 1;
                    self.failures.push(FailureCtx {
                        call: i,
                        entry: entry_idx,
                        state: None,
                        aliases,
                    });
                    let op_anywhere = verdicts
                        .iter()
                        .any(|v| matches!(v, Verdict::Fail { op_from_state: true }));
                    let (code, detail) = if op_anywhere {
                        ("absint-guard-violation", "argument words violate every guard")
                    } else {
                        ("absint-dead-call", "no transition matches the call")
                    };
                    self.report.push(
                        Severity::Warning,
                        code,
                        Some(i),
                        format!("{label}: {} provably fails from every state: {detail}",
                                op_label(&ctx)),
                    );
                    return;
                }
                let fires: Vec<&Verdict> = verdicts
                    .iter()
                    .filter(|v| matches!(v, Verdict::Fire { .. }))
                    .collect();
                let targets: BTreeSet<usize> = fires
                    .iter()
                    .filter_map(|v| match v {
                        Verdict::Fire { target, .. } => Some(*target),
                        _ => None,
                    })
                    .collect();
                if fires.len() == verdicts.len() && targets.len() == 1 {
                    let target = *targets.iter().next().expect("one target");
                    let (mut produces, mut consumes, mut spawns) = (Vec::new(), Vec::new(), None);
                    for v in fires {
                        if let Verdict::Fire { produces: p, consumes: c, spawns: sp, .. } = v {
                            produces.extend(p.iter().cloned());
                            consumes.extend(c.iter().cloned());
                            spawns = spawns.or(*sp);
                        }
                    }
                    self.claim_fire(i, cell, None, target, produces, consumes, spawns, &label);
                } else {
                    let hazard = verdicts.iter().any(|v| match v {
                        Verdict::Ambiguous { hazard, .. } => *hazard,
                        _ => false,
                    });
                    if hazard {
                        self.tainted = true;
                    }
                    // Stays Top.
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn claim_fire(
        &mut self,
        i: usize,
        cell: usize,
        from: Option<usize>,
        target: usize,
        produces: Vec<String>,
        consumes: Vec<String>,
        spawns: Option<usize>,
        label: &str,
    ) {
        self.fired[i] = true;
        for tag in &consumes {
            if !self.produced_tags.contains(tag) {
                self.report.push(
                    Severity::Warning,
                    "absint-consume-before-produce",
                    Some(i),
                    format!(
                        "{label}: call consumes {tag:?} before any call produces it; \
                         it succeeds but exercises a degenerate path"
                    ),
                );
            }
        }
        for tag in produces {
            self.produced_tags.insert(tag);
        }
        // Self-loops and fires out of ⊤ add no depth: depth lower-bounds
        // the number of *state-changing* transitions.
        if from.is_some_and(|f| f != target) {
            self.depth += 1;
        }
        self.cells[cell].state = Abs::Known(target);
        if let Some(spawn_state) = spawns {
            self.cells.push(Cell {
                entry: self.cells[cell].entry,
                state: Abs::Known(spawn_state),
                aliases: BTreeSet::from([i]),
                orphan: false,
                parent: Some(cell),
            });
            self.call_cell[i] = Some(self.cells.len() - 1);
        }
    }

    fn join(&mut self, cell: usize, outcomes: BTreeSet<usize>, hazard: bool) {
        if hazard {
            self.tainted = true;
        }
        self.cells[cell].state = if outcomes.len() == 1 {
            Abs::Known(*outcomes.iter().next().expect("one outcome"))
        } else {
            Abs::Top
        };
    }
}

fn op_label(ctx: &CallCtx<'_>) -> String {
    match ctx.template {
        SyscallTemplate::Ioctl { request } => format!("ioctl {request:#010x}"),
        SyscallTemplate::IoctlAny => match ctx.request() {
            Some(r) => format!("ioctl {r:#010x}"),
            None => "ioctl (unknown request)".into(),
        },
        SyscallTemplate::Read => "read".into(),
        SyscallTemplate::Write => "write".into(),
        SyscallTemplate::Mmap => "mmap".into(),
        SyscallTemplate::Bind => "bind".into(),
        SyscallTemplate::Connect => "connect".into(),
        SyscallTemplate::Listen => "listen".into(),
        SyscallTemplate::Accept => "accept".into(),
        _ => "call".into(),
    }
}

// ---------------------------------------------------------------------------
// Prerequisite repair
// ---------------------------------------------------------------------------

/// Inserts prerequisite transitions before provably-failing calls so the
/// program reaches a state its calls fire from: for the first repairable
/// failure, a shortest chain of guaranteed, hazard-free, synthesizable
/// transitions is constructed from the cell's known state to any state
/// the failing call definitely fires from. Deterministic (no randomness;
/// ties break in model and table order). Returns the number of inserted
/// calls.
pub fn repair_prereqs(prog: &mut Prog, table: &DescTable, models: &ModelSet) -> usize {
    let mut inserted_total = 0usize;
    while inserted_total < MAX_PREREQ_INSERTIONS {
        let mut interp = Interp::new(table, models);
        interp.call_cell = vec![None; prog.calls.len()];
        interp.dead_refs = vec![false; prog.calls.len()];
        interp.fired = vec![false; prog.calls.len()];
        for (i, call) in prog.calls.iter().enumerate() {
            if call.desc.0 >= table.len() {
                continue;
            }
            match &table.get(call.desc).kind {
                CallKind::Hal { .. } => interp.taint_all(),
                CallKind::Syscall(template) => interp.step_syscall(i, call, template),
            }
        }
        let mut progressed = false;
        for failure in &interp.failures {
            let Some(source) = failure.state else { continue };
            let call = &prog.calls[failure.call];
            let CallKind::Syscall(template) = &table.get(call.desc).kind else { continue };
            let ctx = CallCtx::new(template, call);
            let entry = &models.entries()[failure.entry];
            let model = &entry.model;
            let goals: BTreeSet<usize> = (0..model.states.len())
                .filter(|s| matches!(evaluate(model, *s, &ctx), Verdict::Fire { .. }))
                .collect();
            if goals.is_empty() {
                continue; // fails from every state: not fixable by prereqs
            }
            let Some(fd_alias) =
                failure.aliases.iter().copied().find(|a| *a < failure.call)
            else {
                continue;
            };
            let Some(path) = prereq_path(entry, model, source, &goals, table) else {
                continue;
            };
            if inserted_total + path.len() > MAX_PREREQ_INSERTIONS {
                break;
            }
            let new_calls: Vec<Call> = path
                .iter()
                .map(|(t, desc_id)| synthesize_call(*desc_id, t, table, fd_alias))
                .collect();
            insert_calls(prog, failure.call, new_calls);
            inserted_total += path.len();
            progressed = true;
            break; // re-interpret from scratch
        }
        if !progressed {
            break;
        }
    }
    inserted_total
}

/// Shortest chain of synthesizable transitions from `source` to any goal
/// state, as `(transition, desc)` pairs.
fn prereq_path<'m>(
    entry: &ModelEntry,
    model: &'m StateModel,
    source: usize,
    goals: &BTreeSet<usize>,
    table: &DescTable,
) -> Option<Vec<(&'m Transition, DescId)>> {
    let n = model.states.len();
    let mut prev: Vec<Option<(usize, &Transition, DescId)>> = vec![None; n];
    let mut visited = vec![false; n];
    visited[source] = true;
    let mut frontier = vec![source];
    while !frontier.is_empty() {
        if let Some(&goal) = goals.iter().find(|g| visited[**g]) {
            let mut chain = Vec::new();
            let mut at = goal;
            while at != source {
                let (from, t, desc) = prev[at]?;
                chain.push((t, desc));
                at = from;
            }
            chain.reverse();
            return Some(chain);
        }
        let mut next = Vec::new();
        for &a in &frontier {
            let a_name = &model.states[a];
            for t in &model.transitions {
                if t.reliability != Reliability::Guaranteed || t.hazard || t.spawns.is_some() {
                    continue;
                }
                if !t.from.is_empty() && !t.from.iter().any(|s| s == a_name) {
                    continue;
                }
                let Some(to) = &t.to else { continue };
                let Some(b) = model.states.iter().position(|s| s == to) else { continue };
                if visited[b] {
                    continue;
                }
                if t.guards.iter().any(|g| g.example().is_none()) {
                    continue;
                }
                let Some(desc) = synth_desc(entry, t, table) else { continue };
                visited[b] = true;
                prev[b] = Some((a, t, desc));
                next.push(b);
            }
        }
        frontier = next;
    }
    None
}

/// A typed description that lowers to transition `t` on `entry`'s
/// interface and whose arguments we can synthesize (first table match;
/// raw `IoctlAny` descriptions are excluded — their word mapping shifts).
fn synth_desc(entry: &ModelEntry, t: &Transition, table: &DescTable) -> Option<DescId> {
    let produced = entry.produced_kind();
    table
        .iter()
        .find(|(_, desc)| {
            let CallKind::Syscall(template) = &desc.kind else { return false };
            let op_matches = match (&t.op, template) {
                (TransOp::Ioctl(req), SyscallTemplate::Ioctl { request }) => req == request,
                (TransOp::Read, SyscallTemplate::Read)
                | (TransOp::Write, SyscallTemplate::Write)
                | (TransOp::Mmap, SyscallTemplate::Mmap)
                | (TransOp::Bind, SyscallTemplate::Bind)
                | (TransOp::Connect, SyscallTemplate::Connect)
                | (TransOp::Listen, SyscallTemplate::Listen) => true,
                _ => false,
            };
            op_matches
                && desc
                    .args
                    .iter()
                    .find_map(|a| a.ty.resource_kind())
                    .is_some_and(|k| k.accepts(&produced))
        })
        .map(|(id, _)| id)
}

/// Builds one prerequisite call: the fd slot references `fd_alias`,
/// scalar words take the transition's guard examples (shape defaults
/// otherwise), and byte buffers carry the required payload prefix.
fn synthesize_call(desc_id: DescId, t: &Transition, table: &DescTable, fd_alias: usize) -> Call {
    let desc = table.get(desc_id);
    let mut word = 0usize;
    let args = desc
        .args
        .iter()
        .map(|a| match &a.ty {
            TypeDesc::Resource { .. } => ArgValue::Ref(fd_alias),
            TypeDesc::Buffer { min_len, .. } => {
                let mut data = t.payload_prefix.clone().unwrap_or_default();
                if data.len() < *min_len {
                    data.resize(*min_len, 0);
                }
                ArgValue::Bytes(data)
            }
            TypeDesc::Str { choices } => {
                ArgValue::Str(choices.first().cloned().unwrap_or_default())
            }
            scalar => {
                let guard_example =
                    t.guards.get(word).and_then(WordGuard::example).map(u64::from);
                word += 1;
                let value = guard_example.unwrap_or(match scalar {
                    TypeDesc::Int { min, .. } => *min,
                    TypeDesc::Choice { values } | TypeDesc::Flags { values } => {
                        values.first().copied().unwrap_or(0)
                    }
                    _ => 0,
                });
                ArgValue::Int(value)
            }
        })
        .collect();
    Call { desc: desc_id, args }
}

/// Splices `new_calls` (whose `Ref`s are absolute indices `< at`) in
/// front of call `at`, shifting later references.
fn insert_calls(prog: &mut Prog, at: usize, new_calls: Vec<Call>) {
    let shift = new_calls.len();
    for call in &mut prog.calls[at..] {
        for arg in &mut call.args {
            if let ArgValue::Ref(t) = arg {
                if *t >= at {
                    *t += shift;
                }
            }
        }
    }
    prog.calls.splice(at..at, new_calls);
}

/// Reachability gate: passes programs whose abstract interpretation is
/// error-free; programs where every modeled driver call provably fails
/// are first repaired ([`repair_prereqs`]) and re-checked, then rejected.
/// Deterministic, so seeded campaigns stay reproducible.
pub fn gate_prog_static(
    prog: &mut Prog,
    table: &DescTable,
    models: &ModelSet,
    counters: &mut LintCounters,
) -> bool {
    if !absint_prog(prog, table, models).report.has_errors() {
        return true;
    }
    let inserted = repair_prereqs(prog, table, models);
    if inserted > 0 && !absint_prog(prog, table, models).report.has_errors() {
        counters.absint_repaired += 1;
        return true;
    }
    counters.absint_rejected += 1;
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use fuzzlang::desc::{ArgDesc, CallDesc};
    use simkernel::driver::Transition as T;

    const T_ON: u32 = 0x10;
    const T_USE: u32 = 0x11;
    const T_OFF: u32 = 0x12;
    const T_RISKY: u32 = 0x13;

    /// Off →(T_ON =1)→ On; T_USE self-loops on On and produces a tag;
    /// T_OFF returns to Off; T_RISKY is a hazard reachable from On.
    fn toy_model() -> StateModel {
        StateModel::new("Off", &["Off", "On"]).per_open().with(vec![
            T::ioctl(T_ON).guard(WordGuard::Eq(1)).from(&["Off"]).to("On"),
            T::ioctl(T_USE).from(&["On"]).produces("toy:token"),
            T::ioctl(T_OFF).from(&["On"]).to("Off"),
            T::ioctl(T_RISKY).from(&["On"]).may_fail().hazard(),
        ])
    }

    fn toy_models() -> ModelSet {
        ModelSet::from_entries(vec![ModelEntry {
            label: "toy".into(),
            node: Some("/dev/toy".into()),
            sock_kind: None,
            model: toy_model(),
        }])
    }

    fn toy_table() -> DescTable {
        let mut t = DescTable::new();
        t.add(CallDesc::syscall_open("/dev/toy")); // 0
        t.add(CallDesc::syscall_close()); // 1
        t.add(CallDesc::syscall_dup()); // 2
        for (name, req) in
            [("ioctl$T_ON", T_ON), ("ioctl$T_USE", T_USE), ("ioctl$T_OFF", T_OFF), ("ioctl$T_RISKY", T_RISKY)]
        {
            t.add(CallDesc::new(
                name,
                CallKind::Syscall(SyscallTemplate::Ioctl { request: req }),
                vec![
                    ArgDesc::new("fd", TypeDesc::Resource { kind: "fd:/dev/toy".into() }),
                    ArgDesc::new("v", TypeDesc::Int { min: 0, max: 10 }),
                ],
                None,
            ));
        }
        t
    }

    fn prog(table: &DescTable, lines: &[(&str, Vec<ArgValue>)]) -> Prog {
        Prog::from_named(table, lines).expect("known calls")
    }

    #[test]
    fn happy_chain_fires_and_counts_depth() {
        let (table, models) = (toy_table(), toy_models());
        let p = prog(&table, &[
            ("openat$/dev/toy", vec![]),
            ("ioctl$T_ON", vec![ArgValue::Ref(0), ArgValue::Int(1)]),
            ("ioctl$T_USE", vec![ArgValue::Ref(0), ArgValue::Int(0)]),
        ]);
        let r = absint_prog(&p, &table, &models);
        assert!(r.report.is_clean(), "{:?}", r.report);
        assert_eq!(r.fired, vec![false, true, true]);
        assert_eq!(r.depth, 1, "only the Off→On transition changes state");
    }

    #[test]
    fn use_without_prereq_is_dead_call_and_dead_prog() {
        let (table, models) = (toy_table(), toy_models());
        let p = prog(&table, &[
            ("openat$/dev/toy", vec![]),
            ("ioctl$T_USE", vec![ArgValue::Ref(0), ArgValue::Int(0)]),
        ]);
        let r = absint_prog(&p, &table, &models);
        assert!(r.report.diagnostics.iter().any(|d| d.code == "absint-dead-call"));
        assert!(r.report.diagnostics.iter().any(|d| d.code == "absint-dead-prog"));
        assert!(r.report.has_errors());
        assert_eq!(r.fired, vec![false, false]);
        assert_eq!(r.depth, 0);
    }

    #[test]
    fn guard_violation_is_distinguished_from_dead_call() {
        let (table, models) = (toy_table(), toy_models());
        let p = prog(&table, &[
            ("openat$/dev/toy", vec![]),
            ("ioctl$T_ON", vec![ArgValue::Ref(0), ArgValue::Int(5)]),
        ]);
        let r = absint_prog(&p, &table, &models);
        assert!(r.report.diagnostics.iter().any(|d| d.code == "absint-guard-violation"));
    }

    #[test]
    fn stale_fd_calls_provably_fail() {
        let (table, models) = (toy_table(), toy_models());
        let p = prog(&table, &[
            ("openat$/dev/toy", vec![]),
            ("close", vec![ArgValue::Ref(0)]),
            ("ioctl$T_ON", vec![ArgValue::Ref(0), ArgValue::Int(1)]),
        ]);
        let r = absint_prog(&p, &table, &models);
        assert_eq!(r.fired, vec![false, false, false]);
        assert!(r.report.diagnostics.iter().any(|d| d.code == "absint-dead-prog"));
    }

    #[test]
    fn dup_alias_keeps_cell_alive_after_original_close() {
        let (table, models) = (toy_table(), toy_models());
        let p = prog(&table, &[
            ("openat$/dev/toy", vec![]),
            ("dup", vec![ArgValue::Ref(0)]),
            ("close", vec![ArgValue::Ref(0)]),
            ("ioctl$T_ON", vec![ArgValue::Ref(1), ArgValue::Int(1)]),
        ]);
        let r = absint_prog(&p, &table, &models);
        assert!(r.report.is_clean(), "{:?}", r.report);
        assert!(r.fired[3]);
        assert_eq!(r.depth, 1);
    }

    #[test]
    fn hazard_taints_and_blocks_later_claims() {
        let (table, models) = (toy_table(), toy_models());
        let p = prog(&table, &[
            ("openat$/dev/toy", vec![]),
            ("ioctl$T_ON", vec![ArgValue::Ref(0), ArgValue::Int(1)]),
            ("ioctl$T_RISKY", vec![ArgValue::Ref(0), ArgValue::Int(0)]),
            ("ioctl$T_USE", vec![ArgValue::Ref(0), ArgValue::Int(0)]),
        ]);
        let r = absint_prog(&p, &table, &models);
        assert!(r.fired[1]);
        assert!(!r.fired[2], "hazardous call is never claimed");
        assert!(!r.fired[3], "claims stop after a possible kernel wedge");
        assert_eq!(r.depth, 1);
    }

    #[test]
    fn unknown_words_join_instead_of_claiming() {
        let (table, models) = (toy_table(), toy_models());
        // T_ON's word comes from a runtime value (a ref): the state joins
        // {Off, On} → ⊤, and the following T_USE neither fires nor fails.
        let p = prog(&table, &[
            ("openat$/dev/toy", vec![]),
            ("openat$/dev/toy", vec![]),
            ("ioctl$T_ON", vec![ArgValue::Ref(0), ArgValue::Ref(1)]),
            ("ioctl$T_USE", vec![ArgValue::Ref(0), ArgValue::Int(0)]),
        ]);
        let r = absint_prog(&p, &table, &models);
        assert_eq!(r.fired, vec![false, false, false, false]);
        assert!(!r.report.has_errors(), "possible success is not an error: {:?}", r.report);
        assert_eq!(r.depth, 0);
    }

    #[test]
    fn consume_before_produce_warns_but_still_fires() {
        let model = StateModel::new("S", &["S"]).per_open().with(vec![
            T::ioctl(T_USE).consumes("toy:token"),
        ]);
        let models = ModelSet::from_entries(vec![ModelEntry {
            label: "toy".into(),
            node: Some("/dev/toy".into()),
            sock_kind: None,
            model,
        }]);
        let table = toy_table();
        let p = prog(&table, &[
            ("openat$/dev/toy", vec![]),
            ("ioctl$T_USE", vec![ArgValue::Ref(0), ArgValue::Int(0)]),
        ]);
        let r = absint_prog(&p, &table, &models);
        assert!(r.fired[1], "consumption is advisory; success is still guaranteed");
        assert!(r
            .report
            .diagnostics
            .iter()
            .any(|d| d.code == "absint-consume-before-produce"));
    }

    #[test]
    fn repair_inserts_missing_prerequisite() {
        let (table, models) = (toy_table(), toy_models());
        let mut p = prog(&table, &[
            ("openat$/dev/toy", vec![]),
            ("ioctl$T_USE", vec![ArgValue::Ref(0), ArgValue::Int(0)]),
        ]);
        let inserted = repair_prereqs(&mut p, &table, &models);
        assert_eq!(inserted, 1);
        assert_eq!(p.len(), 3);
        assert_eq!(p.validate(&table), Ok(()));
        let r = absint_prog(&p, &table, &models);
        assert!(r.report.is_clean(), "{:?}", r.report);
        assert_eq!(r.fired, vec![false, true, true]);
        // The synthesized T_ON carries the guard's example value.
        assert_eq!(p.calls[1].args[1], ArgValue::Int(1));
    }

    #[test]
    fn repair_is_deterministic_and_idempotent_on_clean_programs() {
        let (table, models) = (toy_table(), toy_models());
        let base = prog(&table, &[
            ("openat$/dev/toy", vec![]),
            ("ioctl$T_USE", vec![ArgValue::Ref(0), ArgValue::Int(0)]),
        ]);
        let mut a = base.clone();
        let mut b = base.clone();
        repair_prereqs(&mut a, &table, &models);
        repair_prereqs(&mut b, &table, &models);
        assert_eq!(a, b);
        let snapshot = a.clone();
        assert_eq!(repair_prereqs(&mut a, &table, &models), 0);
        assert_eq!(a, snapshot);
    }

    #[test]
    fn gate_repairs_then_rejects_unfixable() {
        let (table, models) = (toy_table(), toy_models());
        let mut counters = LintCounters::default();
        let mut fixable = prog(&table, &[
            ("openat$/dev/toy", vec![]),
            ("ioctl$T_USE", vec![ArgValue::Ref(0), ArgValue::Int(0)]),
        ]);
        assert!(gate_prog_static(&mut fixable, &table, &models, &mut counters));
        assert_eq!(counters.absint_repaired, 1);
        // A guard violation from every state has no prerequisite fix.
        let mut hopeless = prog(&table, &[
            ("openat$/dev/toy", vec![]),
            ("ioctl$T_ON", vec![ArgValue::Ref(0), ArgValue::Int(7)]),
        ]);
        assert!(!gate_prog_static(&mut hopeless, &table, &models, &mut counters));
        assert_eq!(counters.absint_rejected, 1);
    }

    #[test]
    fn result_is_reference_equal_for_identical_programs() {
        let (table, models) = (toy_table(), toy_models());
        let p = prog(&table, &[
            ("openat$/dev/toy", vec![]),
            ("ioctl$T_ON", vec![ArgValue::Ref(0), ArgValue::Int(1)]),
        ]);
        assert_eq!(absint_prog(&p, &table, &models), absint_prog(&p, &table, &models));
    }
}
