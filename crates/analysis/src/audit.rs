//! Engine-state auditing over the persistent text formats: relation-graph
//! exports, corpus exports, and fleet snapshots.
//!
//! The auditors work on the *serialized* forms (the same text the daemon
//! writes to disk and the fleet ships between shards) so they can check
//! state without depending on the fuzzer core — and so `droidfuzz-lint`
//! can audit a snapshot file nothing else has loaded yet.
//!
//! Checked invariants:
//!
//! * **Relation graph** — Eq. 1 (§IV-C): the in-weights of every vertex
//!   sum to at most 1. Individual weights must be finite, non-negative,
//!   and at most 1. Zero-weight edges (which pin an orphan vertex without
//!   contributing sampling mass), self-edges, duplicate edges, and edges
//!   below the decay floor `1e-4` (learn's halving can push an edge there
//!   between decays; the next decay prunes it) are flagged without being
//!   errors.
//! * **Corpus** — every seed record parses and its program passes
//!   [`lint_prog`]; damaged headers and empty records are warnings, the
//!   same lines `Corpus::import` would skip.
//! * **Fleet snapshot** — the section framing itself, plus the nested
//!   relations and corpus audits.

use crate::diag::{Report, Severity};
use crate::lint::lint_prog;
use fuzzlang::desc::DescTable;
use fuzzlang::text::parse_prog;
use std::collections::{BTreeMap, BTreeSet};

/// Decay floor of the relation graph (edges below it are pruned by the
/// next decay round; see `RelationGraph::decay`).
pub const DECAY_FLOOR: f64 = 1e-4;

/// Tolerance on the Eq. 1 in-weight bound (matches the graph's own
/// normalization tolerance, so clean exports audit clean).
pub const EQ1_TOLERANCE: f64 = 1e-9;

/// Snapshot format magic + version (mirrors `fleet::SNAPSHOT_HEADER`; the
/// format is a documented wire format, not an internal detail).
const SNAPSHOT_HEADER: &str = "# droidfuzz-fleet-snapshot v1";

/// Audits a `RelationGraph::export` dump against Eq. 1 and the decay
/// bounds. `table` resolves vertex names; edges naming unknown calls are
/// warnings (an import would skip them).
pub fn audit_relations(text: &str, table: &DescTable) -> Report {
    let mut report = Report::new();
    let mut in_sums: BTreeMap<String, f64> = BTreeMap::new();
    let mut seen: BTreeSet<(String, String)> = BTreeSet::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim_end();
        let lineno = lineno + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(header) = line.strip_prefix("# relation-graph ") {
            let readable = header
                .split("learns=")
                .nth(1)
                .and_then(|v| v.trim().parse::<u64>().ok())
                .is_some();
            if !readable {
                report.push(
                    Severity::Warning,
                    "relation-bad-header",
                    None,
                    format!("line {lineno}: unreadable learns= count"),
                );
            }
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        let fields: Option<(&str, &str, f64)> = line.strip_prefix("edge ").and_then(|rest| {
            let mut parts = rest.split('\t');
            let a = parts.next()?;
            let b = parts.next()?;
            let w: f64 = parts.next()?.parse().ok()?;
            Some((a, b, w))
        });
        let Some((a, b, w)) = fields else {
            report.push(
                Severity::Warning,
                "relation-malformed-line",
                None,
                format!("line {lineno}: neither an edge nor a header (an import would skip it)"),
            );
            continue;
        };
        if !w.is_finite() || w < 0.0 {
            report.push(
                Severity::Error,
                "relation-weight-invalid",
                None,
                format!("line {lineno}: edge {a} -> {b} has weight {w}, not a probability"),
            );
            continue;
        }
        if w > 1.0 + EQ1_TOLERANCE {
            report.push(
                Severity::Error,
                "relation-weight-excess",
                None,
                format!("line {lineno}: edge {a} -> {b} has weight {w} > 1, breaking Eq. 1 alone"),
            );
            continue;
        }
        for name in [a, b] {
            if table.id_of(name).is_none() {
                report.push(
                    Severity::Warning,
                    "relation-unknown-vertex",
                    None,
                    format!("line {lineno}: `{name}` is not in the vocabulary (an import would skip the edge)"),
                );
            }
        }
        if a == b {
            report.push(
                Severity::Warning,
                "relation-self-edge",
                None,
                format!("line {lineno}: self-edge on {a} (learn never records these)"),
            );
        }
        if !seen.insert((a.to_owned(), b.to_owned())) {
            report.push(
                Severity::Warning,
                "relation-duplicate-edge",
                None,
                format!("line {lineno}: edge {a} -> {b} repeated; a re-import keeps only the last weight"),
            );
        }
        if w == 0.0 {
            report.push(
                Severity::Warning,
                "relation-orphan-edge",
                None,
                format!("line {lineno}: zero-weight edge {a} -> {b} pins an orphan vertex without sampling mass"),
            );
        } else if w < DECAY_FLOOR {
            report.push(
                Severity::Info,
                "relation-below-decay-floor",
                None,
                format!("line {lineno}: edge {a} -> {b} weight {w} is below the decay floor {DECAY_FLOOR}; the next decay prunes it"),
            );
        }
        if table.id_of(a).is_some() && table.id_of(b).is_some() {
            *in_sums.entry(b.to_owned()).or_default() += w;
        }
    }
    for (target, sum) in in_sums {
        if sum > 1.0 + EQ1_TOLERANCE {
            report.push(
                Severity::Error,
                "relation-eq1-violation",
                None,
                format!("in-weights of {target} sum to {sum} > 1 (Eq. 1 requires a distribution)"),
            );
        }
    }
    report
}

/// Audits a `Corpus::export` dump: each seed record must parse and its
/// program is linted; record framing problems mirror what the importer
/// would skip.
pub fn audit_corpus(text: &str, table: &DescTable) -> Report {
    let mut report = Report::new();
    for (i, chunk) in text.split("# seed ").enumerate() {
        if chunk.trim().is_empty() {
            continue;
        }
        let body: String = chunk
            .lines()
            .filter(|l| l.starts_with('r'))
            .map(|l| format!("{l}\n"))
            .collect();
        if body.is_empty() {
            // The split's first chunk (text before any header) is preamble
            // noise, not a seed record.
            if i > 0 {
                report.push(
                    Severity::Warning,
                    "seed-empty",
                    None,
                    format!("seed record {i} has a header but no program lines"),
                );
            }
            continue;
        }
        if i > 0 {
            let readable = chunk
                .lines()
                .next()
                .and_then(|header| header.split("signals=").nth(1))
                .and_then(|v| v.trim().parse::<usize>().ok())
                .is_some();
            if !readable {
                report.push(
                    Severity::Warning,
                    "seed-bad-header",
                    None,
                    format!("seed record {i}: unreadable signals= score (imports default it to 1)"),
                );
            }
        }
        match parse_prog(&body, table) {
            Ok(prog) => {
                for d in lint_prog(&prog, table).diagnostics {
                    report.push(d.severity, d.code, d.call, format!("seed record {i}: {}", d.message));
                }
            }
            Err(e) => report.push(
                Severity::Error,
                "seed-unparseable",
                None,
                format!("seed record {i}: {e}"),
            ),
        }
    }
    report
}

/// Audits a full fleet snapshot: header, section framing, per-section
/// line syntax, and the nested relations/corpus audits.
pub fn audit_snapshot(text: &str, table: &DescTable) -> Report {
    let mut report = Report::new();
    let mut lines = text.lines();
    let header = lines.next().unwrap_or_default();
    if !header.starts_with(SNAPSHOT_HEADER) {
        report.push(
            Severity::Error,
            "snapshot-header",
            None,
            format!("first line is not `{SNAPSHOT_HEADER} ...`"),
        );
        return report;
    }
    for field in ["round=", "clock_us="] {
        let readable = header
            .split_whitespace()
            .find_map(|f| f.strip_prefix(field))
            .is_some_and(|v| v.parse::<u64>().is_ok());
        if !readable {
            report.push(
                Severity::Error,
                "snapshot-header",
                None,
                format!("header field {field} missing or unreadable"),
            );
        }
    }
    let mut section = "";
    let mut relations_text = String::new();
    let mut corpus_text = String::new();
    let mut last_sample: Option<u64> = None;
    for (lineno, line) in lines.enumerate() {
        let lineno = lineno + 2; // 1-based, after the header line
        if let Some(name) = line.strip_prefix("# section ") {
            section = match name.trim() {
                known @ ("relations" | "coverage" | "series" | "crashes" | "faults" | "lint"
                | "store" | "net" | "corpus") => known,
                other => {
                    report.push(
                        Severity::Warning,
                        "snapshot-unknown-section",
                        None,
                        format!("line {lineno}: unknown section `{other}`"),
                    );
                    ""
                }
            };
            continue;
        }
        match section {
            "relations" => {
                relations_text.push_str(line);
                relations_text.push('\n');
            }
            "corpus" => {
                corpus_text.push_str(line);
                corpus_text.push('\n');
            }
            "coverage" => {
                if line
                    .strip_prefix("block ")
                    .and_then(|v| u64::from_str_radix(v, 16).ok())
                    .is_none()
                {
                    report.push(
                        Severity::Warning,
                        "snapshot-malformed-line",
                        None,
                        format!("line {lineno}: not a `block <hex>` coverage line"),
                    );
                }
            }
            "series" => {
                let parsed = line.strip_prefix("sample ").and_then(|rest| {
                    let (t, v) = rest.split_once(' ')?;
                    let v: f64 = v.parse().ok()?;
                    v.is_finite().then_some((t.parse::<u64>().ok()?, v))
                });
                match parsed {
                    Some((t, _)) if last_sample.is_some_and(|lt| lt > t) => {
                        report.push(
                            Severity::Warning,
                            "snapshot-series-backwards",
                            None,
                            format!("line {lineno}: sample time {t} runs backwards"),
                        );
                    }
                    Some((t, _)) => last_sample = Some(t),
                    None => report.push(
                        Severity::Warning,
                        "snapshot-malformed-line",
                        None,
                        format!("line {lineno}: not a `sample <t> <v>` series line"),
                    ),
                }
            }
            "crashes" => {
                let well_formed = line.strip_prefix("crash ").is_some_and(|rest| {
                    let fields: Vec<&str> = rest.splitn(6, '\t').collect();
                    fields.len() == 6
                        && fields[0].parse::<u64>().is_ok()
                        && fields[1].parse::<u64>().is_ok()
                });
                if !well_formed {
                    report.push(
                        Severity::Warning,
                        "snapshot-malformed-line",
                        None,
                        format!("line {lineno}: not a 6-field tab-separated crash line"),
                    );
                }
            }
            "faults" | "lint" | "store" | "net" => {
                // The line keyword is singular (`fault injected 0`,
                // `lint repaired 0`, `store recoveries 0`, `net
                // frames_sent 0`) regardless of the section name.
                let keyword = match section {
                    "faults" => "fault",
                    "lint" => "lint",
                    "net" => "net",
                    _ => "store",
                };
                let well_formed = line
                    .strip_prefix(keyword)
                    .and_then(|rest| rest.strip_prefix(' '))
                    .and_then(|rest| rest.split_once(' '))
                    .is_some_and(|(_, v)| v.trim().parse::<u64>().is_ok());
                if !well_formed {
                    report.push(
                        Severity::Warning,
                        "snapshot-malformed-line",
                        None,
                        format!("line {lineno}: not a `{keyword} <counter> <value>` line"),
                    );
                }
            }
            _ => {
                if !line.trim().is_empty() {
                    report.push(
                        Severity::Warning,
                        "snapshot-stray-line",
                        None,
                        format!("line {lineno}: text outside any section"),
                    );
                }
            }
        }
    }
    report.merge(audit_relations(&relations_text, table));
    report.merge(audit_corpus(&corpus_text, table));
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use fuzzlang::desc::{CallDesc, CallKind};

    fn table() -> DescTable {
        let mut t = DescTable::new();
        t.add(CallDesc::syscall_open("/dev/x"));
        t.add(CallDesc::syscall_close());
        for i in 0..3 {
            t.add(CallDesc::new(
                format!("c{i}"),
                CallKind::Hal { service: "s".into(), code: i },
                vec![],
                None,
            ));
        }
        t
    }

    #[test]
    fn clean_relations_audit_clean() {
        let t = table();
        let text = "# relation-graph learns=3\nedge c0\tc1\t0.5\nedge c2\tc1\t0.5\n";
        let report = audit_relations(text, &t);
        assert!(report.is_clean(), "{:?}", report.diagnostics);
    }

    #[test]
    fn eq1_violation_is_an_error() {
        let t = table();
        let text = "edge c0\tc1\t0.9\nedge c2\tc1\t0.9\n";
        let report = audit_relations(text, &t);
        assert!(report.has_errors());
        assert!(report.diagnostics.iter().any(|d| d.code == "relation-eq1-violation"));
    }

    #[test]
    fn bad_weights_are_errors_soft_defects_are_not() {
        let t = table();
        let text = "edge c0\tc1\tNaN\n\
                    edge c0\tc1\t-0.5\n\
                    edge c0\tc1\t1.5\n\
                    edge c0\tc0\t0.1\n\
                    edge c0\tc2\t0\n\
                    edge c0\tnosuch\t0.1\n\
                    edge c1\tc2\t0.00001\n\
                    edge c1\tc2\t0.2\n\
                    garbage\n";
        let report = audit_relations(text, &t);
        assert_eq!(report.error_count(), 3, "{:?}", report.diagnostics);
        let codes: Vec<&str> = report.diagnostics.iter().map(|d| d.code).collect();
        for code in [
            "relation-weight-invalid",
            "relation-weight-excess",
            "relation-self-edge",
            "relation-orphan-edge",
            "relation-unknown-vertex",
            "relation-below-decay-floor",
            "relation-duplicate-edge",
            "relation-malformed-line",
        ] {
            assert!(codes.contains(&code), "missing {code} in {codes:?}");
        }
    }

    #[test]
    fn corpus_audit_flags_broken_seed_records() {
        let t = table();
        let text = "# seed 0 signals=3\nr0 = openat$/dev/x()\n\n\
                    # seed 1 signals=x\nr0 = openat$/dev/x()\n\n\
                    # seed 2 signals=1\nr0 = nosuchcall()\n\n\
                    # seed 3 signals=1\n\n";
        let report = audit_corpus(text, &t);
        let codes: Vec<&str> = report.diagnostics.iter().map(|d| d.code).collect();
        assert!(codes.contains(&"seed-bad-header"), "{codes:?}");
        assert!(codes.contains(&"seed-unparseable"), "{codes:?}");
        assert!(codes.contains(&"seed-empty"), "{codes:?}");
        assert_eq!(report.error_count(), 1);
    }

    #[test]
    fn corpus_audit_surfaces_program_lint_findings() {
        let t = table();
        // close(r0) where r0 is the close itself: forward ref.
        let text = "# seed 0 signals=1\nr0 = close(r0)\n";
        let report = audit_corpus(text, &t);
        assert!(report.has_errors());
        assert!(report.diagnostics[0].message.contains("seed record 1"));
        assert_eq!(report.diagnostics[0].code, "forward-ref");
    }

    #[test]
    fn snapshot_audit_checks_framing_and_nested_sections() {
        let t = table();
        let text = "# droidfuzz-fleet-snapshot v1 round=1 clock_us=2\n\
                    # section relations\n\
                    edge c0\tc1\t0.9\nedge c2\tc1\t0.9\n\
                    # section coverage\nblock 1f\nblock nothex\n\
                    # section series\nsample 5 1\nsample 3 2\n\
                    # section crashes\ncrash torn\n\
                    # section faults\nfault hangs 2\nfault hangs x\n\
                    # section lint\nlint rejected 1\nlint oops\n\
                    # section store\nstore recoveries 1\nstore oops\n\
                    # section wat\nstray\n\
                    # section corpus\n# seed 0 signals=1\nr0 = openat$/dev/x()\n\n";
        let report = audit_snapshot(text, &t);
        let codes: Vec<&str> = report.diagnostics.iter().map(|d| d.code).collect();
        assert!(codes.contains(&"snapshot-malformed-line"), "{codes:?}");
        assert!(codes.contains(&"snapshot-series-backwards"), "{codes:?}");
        assert!(codes.contains(&"snapshot-unknown-section"), "{codes:?}");
        assert!(codes.contains(&"relation-eq1-violation"), "{codes:?}");
        assert_eq!(report.error_count(), 1, "{:?}", report.diagnostics);
        // Exactly `block nothex`, the torn crash line, `fault hangs x`,
        // `lint oops`, and `store oops` are malformed — well-formed
        // `fault`/`lint`/`store` counter lines must not be flagged (their
        // keyword is singular; the section name isn't).
        let malformed = codes.iter().filter(|&&c| c == "snapshot-malformed-line").count();
        assert_eq!(malformed, 5, "{:?}", report.diagnostics);
    }

    #[test]
    fn snapshot_audit_rejects_foreign_header() {
        let t = table();
        let report = audit_snapshot("not a snapshot\n", &t);
        assert!(report.has_errors());
        assert_eq!(report.diagnostics[0].code, "snapshot-header");
    }
}
