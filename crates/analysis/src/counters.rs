//! Gate outcome counters, aggregated fleet-wide and serialized through
//! snapshots the same way fault counters are.

/// Cumulative lint-gate outcomes. Clean programs pass uncounted; only
/// programs the gate had to rewrite (`repaired`) or discard (`rejected`)
/// appear here.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LintCounters {
    /// Programs discarded because repair could not clear every error.
    pub rejected: u64,
    /// Programs rewritten by auto-repair and allowed through.
    pub repaired: u64,
    /// Programs discarded because abstract interpretation proved every
    /// driver call fails and prerequisite insertion could not fix it.
    pub absint_rejected: u64,
    /// Programs rescued by inserting prerequisite transitions.
    pub absint_repaired: u64,
}

impl LintCounters {
    /// Adds `other` into `self` (fleet-level aggregation).
    pub fn absorb(&mut self, other: &LintCounters) {
        self.rejected += other.rejected;
        self.repaired += other.repaired;
        self.absint_rejected += other.absint_rejected;
        self.absint_repaired += other.absint_repaired;
    }

    /// All counters as `(key, value)` pairs in a fixed order — the
    /// snapshot wire format.
    pub fn entries(&self) -> [(&'static str, u64); 4] {
        [
            ("rejected", self.rejected),
            ("repaired", self.repaired),
            ("absint_rejected", self.absint_rejected),
            ("absint_repaired", self.absint_repaired),
        ]
    }

    /// Sets a counter by its [`entries`](Self::entries) key; `false` for
    /// an unknown key (tolerant snapshot parsing counts those as rejected
    /// lines).
    pub fn set(&mut self, key: &str, value: u64) -> bool {
        match key {
            "rejected" => self.rejected = value,
            "repaired" => self.repaired = value,
            "absint_rejected" => self.absint_rejected = value,
            "absint_repaired" => self.absint_repaired = value,
            _ => return false,
        }
        true
    }

    /// Sum of all counters (quick "did the gate ever fire?" check).
    pub fn total(&self) -> u64 {
        self.rejected + self.repaired + self.absint_rejected + self.absint_repaired
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_adds_fieldwise() {
        let mut a = LintCounters { rejected: 2, repaired: 1, absint_rejected: 1, absint_repaired: 0 };
        a.absorb(&LintCounters { rejected: 3, repaired: 4, absint_rejected: 2, absint_repaired: 5 });
        assert_eq!(
            a,
            LintCounters { rejected: 5, repaired: 5, absint_rejected: 3, absint_repaired: 5 }
        );
        assert_eq!(a.total(), 18);
    }

    #[test]
    fn entries_and_set_round_trip() {
        let a = LintCounters { rejected: 7, repaired: 9, absint_rejected: 2, absint_repaired: 4 };
        let mut b = LintCounters::default();
        for (key, value) in a.entries() {
            assert!(b.set(key, value), "{key} is settable");
        }
        assert_eq!(a, b);
        assert!(!b.set("no_such_counter", 1));
    }
}
