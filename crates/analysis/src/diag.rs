//! Structured diagnostics: severities, findings, and reports.

use std::fmt;

/// How bad a finding is.
///
/// The gate rejects (or repairs) on `Error` only: `Warning`s describe
/// programs that execute fine but exercise semantics outside their
/// descriptions (mutation produces these routinely — a duplicated `close`
/// is a double-close by construction), and `Info`s are observations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Observation; nothing wrong.
    Info,
    /// Executable but semantically off-description.
    Warning,
    /// Structurally broken; would misexecute or panic downstream.
    Error,
}

impl Severity {
    /// Lower-case tag used in text and JSON output.
    pub fn tag(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.tag())
    }
}

/// One finding.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Severity class.
    pub severity: Severity,
    /// Stable machine-readable code, e.g. `dangling-ref`.
    pub code: &'static str,
    /// Call index inside the offending program, when the finding is
    /// program-scoped (state audits leave this `None`).
    pub call: Option<usize>,
    /// Human-readable detail.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.call {
            Some(call) => write!(f, "{} [{}] call {}: {}", self.severity, self.code, call, self.message),
            None => write!(f, "{} [{}] {}", self.severity, self.code, self.message),
        }
    }
}

/// A lint/audit result: every finding, in discovery order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Report {
    /// The findings.
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// Empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a finding.
    pub fn push(&mut self, severity: Severity, code: &'static str, call: Option<usize>, message: impl Into<String>) {
        self.diagnostics.push(Diagnostic { severity, code, call, message: message.into() });
    }

    /// Appends every finding of `other`.
    pub fn merge(&mut self, other: Report) {
        self.diagnostics.extend(other.diagnostics);
    }

    /// Number of findings at `severity`.
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == severity).count()
    }

    /// Number of `Error`-severity findings.
    pub fn error_count(&self) -> usize {
        self.count(Severity::Error)
    }

    /// Whether any finding is an `Error`.
    pub fn has_errors(&self) -> bool {
        self.diagnostics.iter().any(|d| d.severity == Severity::Error)
    }

    /// Whether the report is empty.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Worst severity present, if any finding exists.
    pub fn max_severity(&self) -> Option<Severity> {
        self.diagnostics.iter().map(|d| d.severity).max()
    }

    /// Serializes the report as one machine-readable JSON object (the
    /// `droidfuzz-lint` output format). `subject` labels what was linted.
    pub fn to_json(&self, subject: &str) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"subject\":\"{}\",", json_escape(subject)));
        out.push_str(&format!(
            "\"errors\":{},\"warnings\":{},\"infos\":{},",
            self.error_count(),
            self.count(Severity::Warning),
            self.count(Severity::Info),
        ));
        out.push_str("\"diagnostics\":[");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"severity\":\"{}\",\"code\":\"{}\",",
                d.severity.tag(),
                json_escape(d.code)
            ));
            match d.call {
                Some(call) => out.push_str(&format!("\"call\":{call},")),
                None => out.push_str("\"call\":null,"),
            }
            out.push_str(&format!("\"message\":\"{}\"}}", json_escape(&d.message)));
        }
        out.push_str("]}");
        out
    }
}

/// Escapes a string for inclusion in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders_info_warning_error() {
        assert!(Severity::Info < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
    }

    #[test]
    fn report_counts_and_max_severity() {
        let mut r = Report::new();
        assert!(r.is_clean());
        assert_eq!(r.max_severity(), None);
        r.push(Severity::Info, "dead-call", Some(0), "unused");
        r.push(Severity::Warning, "int-out-of-range", Some(1), "too big");
        assert!(!r.has_errors());
        assert_eq!(r.max_severity(), Some(Severity::Warning));
        r.push(Severity::Error, "dangling-ref", Some(2), "gone");
        assert!(r.has_errors());
        assert_eq!(r.error_count(), 1);
        assert_eq!(r.count(Severity::Warning), 1);
        assert_eq!(r.max_severity(), Some(Severity::Error));
    }

    #[test]
    fn json_output_is_well_formed_and_escaped() {
        let mut r = Report::new();
        r.push(Severity::Error, "dangling-ref", Some(3), "ref \"r9\"\nout of range");
        let json = r.to_json("tab\there");
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"errors\":1"));
        assert!(json.contains("\\\"r9\\\"\\n"));
        assert!(json.contains("tab\\there"));
        assert!(!json.contains('\n'), "one line of JSON");
        let empty = Report::new().to_json("x");
        assert!(empty.contains("\"diagnostics\":[]"));
    }

    #[test]
    fn merge_appends_in_order() {
        let mut a = Report::new();
        a.push(Severity::Info, "dead-call", None, "a");
        let mut b = Report::new();
        b.push(Severity::Error, "arg-count", None, "b");
        a.merge(b);
        assert_eq!(a.diagnostics.len(), 2);
        assert_eq!(a.diagnostics[1].code, "arg-count");
    }
}
