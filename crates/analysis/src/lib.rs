//! # droidfuzz-analysis — static analysis for programs and engine state
//!
//! DroidFuzz's relational payload generator (§IV-C) only pays off when
//! every program it executes is semantically well-formed: resource `Ref`s
//! must point at earlier producers of the right kind, argument values
//! should stay inside their described ranges, and the relation graph must
//! keep the Eq. 1 invariant (in-weights of every vertex summing to ≤ 1)
//! or weighted sampling silently degrades. This crate is the pass that
//! checks all of that *before* execution:
//!
//! * [`lint`] — a typed def-use / resource-lifetime linter over
//!   [`fuzzlang::prog::Prog`]: structural defects (dangling or forward
//!   references, wrong producer kinds, argument-class mismatches) are
//!   [`Severity::Error`]s; semantic drift (out-of-range ints, unknown
//!   flag bits, use-after-close) is a [`Severity::Warning`]; stylistic
//!   observations (dead producer calls, specializable raw ioctls per the
//!   §IV-D lookup table) are [`Severity::Info`].
//! * [`repair`] — a deterministic auto-repair pass that rewrites fixable
//!   errors instead of discarding the program: dangling references are
//!   re-pointed at the nearest earlier producer and missing producers are
//!   inserted, the same machinery §IV-C uses for unresolved resource
//!   arguments. Repair consumes no randomness, so gating it into a
//!   seeded engine preserves determinism.
//! * [`audit`] — a second analyzer over *engine state* in its persistent
//!   text forms: relation-graph exports (Eq. 1 in-weight sums, decay
//!   bounds, orphan vertices), corpus exports, and fleet snapshots.
//! * [`model`] — the static interface models: every state machine a
//!   booted device self-describes ([`model::ModelSet::for_kernel`]), a
//!   structural auditor over them (`model-invalid`,
//!   `model-unreachable-state`, `model-dead-transition`,
//!   `model-nondeterministic`), and the `produces`/`consumes` cross-driver
//!   pairs used to seed the relation graph before the first execution.
//! * [`absint`] — a flow-sensitive abstract interpreter that runs
//!   programs over those models: per-call *definitely-fires* /
//!   *provably-fails* verdicts (`absint-dead-call`,
//!   `absint-guard-violation`, `absint-consume-before-produce`,
//!   `absint-dead-prog`), a static depth score the corpus uses as seed
//!   energy, and a deterministic prerequisite-insertion repair
//!   ([`absint::repair_prereqs`]) behind the reachability gate
//!   ([`absint::gate_prog_static`]).
//! * [`counters::LintCounters`] — `lint_rejected` / `lint_repaired` plus
//!   `absint_rejected` / `absint_repaired` totals, serialized through
//!   fleet snapshots the same way fault counters are.
//!
//! The crate depends only on `fuzzlang` and `simkernel` (for the driver
//! model types), so the fuzzer core, the bench harness, and the
//! `droidfuzz-lint` CLI can all gate on it without dependency cycles.

pub mod absint;
pub mod audit;
pub mod counters;
pub mod diag;
pub mod lint;
pub mod model;
pub mod repair;

pub use absint::{absint_prog, gate_prog_static, repair_prereqs, static_depth, AbsintResult};
pub use audit::{audit_corpus, audit_relations, audit_snapshot};
pub use counters::LintCounters;
pub use diag::{Diagnostic, Report, Severity};
pub use lint::lint_prog;
pub use model::{ModelEntry, ModelSet};
pub use repair::{gate_prog, repair_prog};
