//! The program linter: typed def-use / resource-lifetime analysis plus
//! semantic lints against the description table.
//!
//! Severity policy (see [`Severity`]):
//!
//! * **Error** — structural defects [`Prog::validate`] would reject, plus
//!   the ones it cannot see (unknown description ids, references or
//!   non-reference values in slots of the wrong class, references past
//!   the end of the program). These programs would misexecute or panic
//!   downstream code; the gate repairs or rejects them.
//! * **Warning** — lifetime and value drift: use-after-close,
//!   double-close, integers outside their described range/choice/flag
//!   sets, buffer lengths off-description. Mutation creates these
//!   routinely (duplicating a `close` *is* a double-close), and they are
//!   exactly the off-nominal inputs a fuzzer wants, so they never gate.
//! * **Info** — dead producer calls whose result nothing consumes, and
//!   raw `ioctl` calls whose request code matches a typed description
//!   (the §IV-D specialization table knows a better vocabulary entry).

use crate::diag::{Report, Severity};
use fuzzlang::desc::{CallKind, DescTable, SyscallTemplate};
use fuzzlang::prog::{ArgValue, Prog};
use fuzzlang::types::TypeDesc;
use std::collections::HashMap;

/// Lints one program against `table`. Never panics, whatever the program
/// holds — corrupt imports are exactly what the pass exists to catch.
pub fn lint_prog(prog: &Prog, table: &DescTable) -> Report {
    let mut report = Report::new();
    let n = prog.calls.len();
    // Producer index → index of the call that closed it first.
    let mut closed_at: HashMap<usize, usize> = HashMap::new();
    // Defensive "is referenced" map (unlike `Prog::unreferenced`, out of
    // range references must not panic here).
    let mut referenced = vec![false; n];

    for (i, call) in prog.calls.iter().enumerate() {
        for arg in &call.args {
            if let ArgValue::Ref(t) = arg {
                if let Some(slot) = referenced.get_mut(*t) {
                    *slot = true;
                }
            }
        }
        if call.desc.0 >= table.len() {
            report.push(
                Severity::Error,
                "unknown-desc",
                Some(i),
                format!("description id {} is outside the table ({} entries)", call.desc.0, table.len()),
            );
            continue;
        }
        let desc = table.get(call.desc);
        if call.args.len() != desc.args.len() {
            report.push(
                Severity::Error,
                "arg-count",
                Some(i),
                format!("{} takes {} args, got {}", desc.name, desc.args.len(), call.args.len()),
            );
            continue;
        }
        let is_close = matches!(desc.kind, CallKind::Syscall(SyscallTemplate::Close));
        for (a, (value, arg_desc)) in call.args.iter().zip(&desc.args).enumerate() {
            match (&arg_desc.ty, value) {
                (TypeDesc::Resource { kind }, ArgValue::Ref(t)) => {
                    if *t >= n {
                        report.push(
                            Severity::Error,
                            "dangling-ref",
                            Some(i),
                            format!("{} arg {a} references r{t}, past the end of the program", desc.name),
                        );
                    } else if *t >= i {
                        report.push(
                            Severity::Error,
                            "forward-ref",
                            Some(i),
                            format!("{} arg {a} references r{t}, which does not precede it", desc.name),
                        );
                    } else {
                        let target = &prog.calls[*t];
                        let produces = (target.desc.0 < table.len())
                            .then(|| table.get(target.desc).produces.as_ref())
                            .flatten();
                        if !produces.is_some_and(|p| kind.accepts(p)) {
                            report.push(
                                Severity::Error,
                                "bad-producer",
                                Some(i),
                                format!("{} arg {a} wants {kind}, but r{t} does not produce it", desc.name),
                            );
                        } else if let Some(&closer) = closed_at.get(t) {
                            let (code, what) = if is_close {
                                ("double-close", "closes")
                            } else {
                                ("use-after-close", "uses")
                            };
                            report.push(
                                Severity::Warning,
                                code,
                                Some(i),
                                format!("{} {what} r{t}, already closed by call {closer}", desc.name),
                            );
                        }
                    }
                }
                (TypeDesc::Resource { kind }, other) => {
                    report.push(
                        Severity::Error,
                        "not-a-ref",
                        Some(i),
                        format!("{} arg {a} wants a {kind} reference, got {}", desc.name, class_of(other)),
                    );
                }
                (_, ArgValue::Ref(t)) => {
                    report.push(
                        Severity::Error,
                        "value-class",
                        Some(i),
                        format!("{} arg {a} is not a resource slot but holds a reference to r{t}", desc.name),
                    );
                }
                (TypeDesc::Int { min, max }, ArgValue::Int(v)) => {
                    if v < min || v > max {
                        report.push(
                            Severity::Warning,
                            "int-out-of-range",
                            Some(i),
                            format!("{} arg {a}: {v:#x} outside [{min:#x}, {max:#x}]", desc.name),
                        );
                    }
                }
                (TypeDesc::Choice { values }, ArgValue::Int(v)) => {
                    if !values.contains(v) {
                        report.push(
                            Severity::Warning,
                            "not-in-choice",
                            Some(i),
                            format!("{} arg {a}: {v:#x} is not a described choice", desc.name),
                        );
                    }
                }
                (TypeDesc::Flags { values }, ArgValue::Int(v)) => {
                    let union: u64 = values.iter().fold(0, |acc, f| acc | f);
                    if v & !union != 0 {
                        report.push(
                            Severity::Warning,
                            "bad-flag-bits",
                            Some(i),
                            format!("{} arg {a}: {v:#x} sets bits outside the flag set {union:#x}", desc.name),
                        );
                    }
                }
                (TypeDesc::Buffer { min_len, max_len }, ArgValue::Bytes(b)) => {
                    if b.len() < *min_len || b.len() > *max_len {
                        report.push(
                            Severity::Warning,
                            "buffer-len",
                            Some(i),
                            format!("{} arg {a}: {} bytes outside [{min_len}, {max_len}]", desc.name, b.len()),
                        );
                    }
                }
                (TypeDesc::Str { choices }, ArgValue::Str(s)) => {
                    if !choices.is_empty() && !choices.contains(s) {
                        report.push(
                            Severity::Warning,
                            "str-not-in-choices",
                            Some(i),
                            format!("{} arg {a}: string is not a described choice", desc.name),
                        );
                    }
                }
                (ty, value) => {
                    report.push(
                        Severity::Error,
                        "value-class",
                        Some(i),
                        format!("{} arg {a} described as {}, got {}", desc.name, class_of_ty(ty), class_of(value)),
                    );
                }
            }
        }
        if is_close {
            if let Some(ArgValue::Ref(t)) = call.args.first() {
                if *t < i {
                    closed_at.entry(*t).or_insert(i);
                }
            }
        }
        // §IV-D: a raw (request-unknown) ioctl whose request word matches
        // a typed description should use the specialized vocabulary entry
        // instead — the feedback table resolves them to distinct ids.
        if matches!(desc.kind, CallKind::Syscall(SyscallTemplate::IoctlAny)) {
            let request = call.args.iter().find_map(|a| match a {
                ArgValue::Int(v) => Some(*v),
                _ => None,
            });
            if let Some(request) = request {
                let specialized = table.iter().find(|(_, d)| {
                    matches!(&d.kind, CallKind::Syscall(SyscallTemplate::Ioctl { request: r })
                        if u64::from(*r) == request)
                });
                if let Some((_, spec)) = specialized {
                    report.push(
                        Severity::Info,
                        "ioctl-specializable",
                        Some(i),
                        format!("{} sends request {request:#x}, which {} describes with types", desc.name, spec.name),
                    );
                }
            }
        }
    }

    // Dead calls: producers whose result nothing ever consumes.
    for (i, call) in prog.calls.iter().enumerate() {
        if referenced[i] || call.desc.0 >= table.len() {
            continue;
        }
        let desc = table.get(call.desc);
        if desc.produces.is_some() {
            report.push(
                Severity::Info,
                "dead-call",
                Some(i),
                format!("{} produces a resource no later call consumes", desc.name),
            );
        }
    }
    report
}

fn class_of(value: &ArgValue) -> &'static str {
    match value {
        ArgValue::Int(_) => "an integer",
        ArgValue::Bytes(_) => "a byte blob",
        ArgValue::Str(_) => "a string",
        ArgValue::Ref(_) => "a reference",
    }
}

fn class_of_ty(ty: &TypeDesc) -> &'static str {
    match ty {
        TypeDesc::Int { .. } | TypeDesc::Choice { .. } | TypeDesc::Flags { .. } => "an integer",
        TypeDesc::Buffer { .. } => "a byte blob",
        TypeDesc::Str { .. } => "a string",
        TypeDesc::Resource { .. } => "a resource",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fuzzlang::desc::{ArgDesc, CallDesc, DescId};
    use fuzzlang::prog::Call;

    fn table() -> DescTable {
        let mut t = DescTable::new();
        t.add(CallDesc::syscall_open("/dev/x")); // 0
        t.add(CallDesc::syscall_close()); // 1
        t.add(CallDesc::new(
            "ioctl$X", // 2
            CallKind::Syscall(SyscallTemplate::Ioctl { request: 0x7 }),
            vec![
                ArgDesc::new("fd", TypeDesc::Resource { kind: "fd:/dev/x".into() }),
                ArgDesc::new("mode", TypeDesc::Choice { values: vec![1, 2] }),
                ArgDesc::new("flags", TypeDesc::Flags { values: vec![1, 4] }),
                ArgDesc::new("len", TypeDesc::Int { min: 0, max: 16 }),
                ArgDesc::new("blob", TypeDesc::Buffer { min_len: 0, max_len: 4 }),
            ],
            None,
        ));
        t.add(CallDesc::new(
            "ioctl$raw", // 3
            CallKind::Syscall(SyscallTemplate::IoctlAny),
            vec![
                ArgDesc::new("fd", TypeDesc::Resource { kind: "fd".into() }),
                ArgDesc::new("request", TypeDesc::any_u32()),
            ],
            None,
        ));
        t
    }

    fn call(desc: usize, args: Vec<ArgValue>) -> Call {
        Call { desc: DescId(desc), args }
    }

    fn good_ioctl_args() -> Vec<ArgValue> {
        vec![
            ArgValue::Ref(0),
            ArgValue::Int(1),
            ArgValue::Int(5),
            ArgValue::Int(8),
            ArgValue::Bytes(vec![1, 2]),
        ]
    }

    #[test]
    fn clean_program_lints_clean() {
        let t = table();
        let p = Prog {
            calls: vec![
                call(0, vec![]),
                call(2, good_ioctl_args()),
                call(1, vec![ArgValue::Ref(0)]),
            ],
        };
        let report = lint_prog(&p, &t);
        assert!(report.is_clean(), "{:?}", report.diagnostics);
    }

    #[test]
    fn structural_defects_are_errors() {
        let t = table();
        let p = Prog {
            calls: vec![
                call(9, vec![]),                                 // unknown desc
                call(0, vec![ArgValue::Int(1)]),                 // arg count
                call(1, vec![ArgValue::Ref(99)]),                // dangling
                call(1, vec![ArgValue::Ref(3)]),                 // forward/self
                call(1, vec![ArgValue::Int(4)]),                 // not a ref
                call(1, vec![ArgValue::Ref(1)]),                 // bad producer (open w/ bad argc is target: still produces — use call 4 instead)
            ],
        };
        let report = lint_prog(&p, &t);
        let codes: Vec<&str> = report.diagnostics.iter().map(|d| d.code).collect();
        for code in ["unknown-desc", "arg-count", "dangling-ref", "forward-ref", "not-a-ref"] {
            assert!(codes.contains(&code), "missing {code} in {codes:?}");
        }
        assert!(report.has_errors());
    }

    #[test]
    fn bad_producer_and_ref_in_value_slot_are_errors() {
        let t = table();
        let p = Prog {
            calls: vec![
                call(0, vec![]),
                call(1, vec![ArgValue::Ref(0)]), // close produces nothing
                call(1, vec![ArgValue::Ref(1)]), // ref at the close → bad producer (and double-close never fires: not a producer)
                call(2, {
                    let mut args = good_ioctl_args();
                    args[1] = ArgValue::Ref(0); // ref in a Choice slot
                    args
                }),
            ],
        };
        let report = lint_prog(&p, &t);
        let codes: Vec<&str> = report.diagnostics.iter().map(|d| d.code).collect();
        assert!(codes.contains(&"bad-producer"), "{codes:?}");
        assert!(codes.contains(&"value-class"), "{codes:?}");
    }

    #[test]
    fn lifetime_defects_are_warnings() {
        let t = table();
        let p = Prog {
            calls: vec![
                call(0, vec![]),
                call(1, vec![ArgValue::Ref(0)]),
                call(2, good_ioctl_args()),      // use after close
                call(1, vec![ArgValue::Ref(0)]), // double close
            ],
        };
        let report = lint_prog(&p, &t);
        assert!(!report.has_errors(), "{:?}", report.diagnostics);
        let codes: Vec<&str> = report
            .diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .map(|d| d.code)
            .collect();
        assert_eq!(codes, vec!["use-after-close", "double-close"]);
    }

    #[test]
    fn semantic_drift_is_warnings() {
        let t = table();
        let p = Prog {
            calls: vec![
                call(0, vec![]),
                call(
                    2,
                    vec![
                        ArgValue::Ref(0),
                        ArgValue::Int(9),             // not in choice
                        ArgValue::Int(2),             // bad flag bit
                        ArgValue::Int(99),            // out of range
                        ArgValue::Bytes(vec![0; 10]), // too long
                    ],
                ),
                call(1, vec![ArgValue::Ref(0)]),
            ],
        };
        let report = lint_prog(&p, &t);
        assert!(!report.has_errors(), "{:?}", report.diagnostics);
        let codes: Vec<&str> = report.diagnostics.iter().map(|d| d.code).collect();
        assert_eq!(codes, vec!["not-in-choice", "bad-flag-bits", "int-out-of-range", "buffer-len"]);
    }

    #[test]
    fn dead_call_and_specializable_ioctl_are_info() {
        let t = table();
        let p = Prog {
            calls: vec![
                call(0, vec![]), // never consumed → dead
                call(0, vec![]),
                call(3, vec![ArgValue::Ref(1), ArgValue::Int(0x7)]), // request 7 has a typed desc
            ],
        };
        let report = lint_prog(&p, &t);
        assert_eq!(report.max_severity(), Some(Severity::Info));
        let codes: Vec<&str> = report.diagnostics.iter().map(|d| d.code).collect();
        assert!(codes.contains(&"ioctl-specializable"), "{codes:?}");
        assert!(codes.contains(&"dead-call"), "{codes:?}");
        // The consumed open is not dead.
        assert_eq!(codes.iter().filter(|c| **c == "dead-call").count(), 1);
    }

    #[test]
    fn wrong_value_class_in_typed_slot_is_error() {
        let t = table();
        let mut args = good_ioctl_args();
        args[4] = ArgValue::Str("x".into()); // Buffer slot holds a string
        let p = Prog { calls: vec![call(0, vec![]), call(2, args)] };
        let report = lint_prog(&p, &t);
        assert!(report.has_errors());
        assert_eq!(report.diagnostics[0].code, "value-class");
    }
}
