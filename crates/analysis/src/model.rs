//! Static interface models: the collection of per-driver state machines
//! a booted device exposes, plus a structural auditor over them.
//!
//! Drivers self-describe their state machine through
//! [`simkernel::driver::DriverApi::state_model`]; the Bluetooth stack
//! (reached through sockets, not devfs) contributes two hand-written
//! models. [`ModelSet::for_kernel`] collects everything a device knows
//! about itself into one analysis-side table that the abstract
//! interpreter ([`crate::absint`]), the relation-graph prior seeding, and
//! the `droidfuzz-lint --model` CLI all consume.

use crate::diag::{Report, Severity};
use fuzzlang::desc::{CallKind, DescId, DescTable, SyscallTemplate};
use fuzzlang::types::ResourceKind;
use simkernel::driver::{validate_api, validate_model, Reliability, StateModel, TransOp, Transition, WordGuard};
use simkernel::kernel::Kernel;
use std::collections::BTreeSet;

/// One modeled interface: a devfs driver (`node`) or a socket family
/// (`sock_kind`), exactly one of which is set.
#[derive(Debug, Clone)]
pub struct ModelEntry {
    /// Display label, e.g. `tcpc0` or `l2cap-stream`.
    pub label: String,
    /// Device node for fd-backed models (`/dev/…`).
    pub node: Option<String>,
    /// Produced resource kind for socket-backed models (`sock:…`).
    pub sock_kind: Option<String>,
    /// The state machine.
    pub model: StateModel,
}

impl ModelEntry {
    /// The resource kind a producer of this interface's handles carries
    /// (`fd:<node>` or the socket kind).
    pub fn produced_kind(&self) -> ResourceKind {
        match (&self.node, &self.sock_kind) {
            (Some(node), _) => ResourceKind::new(format!("fd:{node}")),
            (None, Some(kind)) => ResourceKind::new(kind.clone()),
            (None, None) => ResourceKind::new("fd"),
        }
    }
}

/// Every state model a booted device exposes, in deterministic order
/// (devfs nodes sorted, then the Bluetooth socket families).
#[derive(Debug, Clone, Default)]
pub struct ModelSet {
    entries: Vec<ModelEntry>,
    /// Boot-time `validate_api` findings for every devfs driver (modeled
    /// or not), surfaced by [`audit`](Self::audit) as errors.
    api_problems: Vec<String>,
}

impl ModelSet {
    /// Collects the models of every driver registered in `kernel`, plus
    /// the Bluetooth socket-family models.
    pub fn for_kernel(kernel: &Kernel) -> Self {
        let mut set = ModelSet::default();
        for node in kernel.device_nodes() {
            let Some(api) = kernel.device_api(&node) else { continue };
            let label = node.strip_prefix("/dev/").unwrap_or(&node).to_owned();
            set.api_problems.extend(validate_api(&label, &api));
            if let Some(model) = api.state_model {
                set.entries.push(ModelEntry {
                    label,
                    node: Some(node),
                    sock_kind: None,
                    model,
                });
            }
        }
        let hci = simkernel::drivers::bt::hci_socket_state_model();
        set.api_problems.extend(validate_model("hci", &hci));
        set.entries.push(ModelEntry {
            label: "hci".into(),
            node: None,
            sock_kind: Some("sock:hci".into()),
            model: hci,
        });
        for (ty, tag) in [(1u32, "stream"), (2, "dgram"), (3, "raw")] {
            let model = simkernel::drivers::bt::l2cap_socket_state_model(ty);
            let label = format!("l2cap-{tag}");
            set.api_problems.extend(validate_model(&label, &model));
            set.entries.push(ModelEntry {
                label,
                node: None,
                sock_kind: Some(format!("sock:l2cap:{tag}")),
                model,
            });
        }
        set
    }

    /// Builds a set from explicit entries (synthetic and test models).
    pub fn from_entries(entries: Vec<ModelEntry>) -> Self {
        Self { entries, api_problems: Vec::new() }
    }

    /// The collected entries.
    pub fn entries(&self) -> &[ModelEntry] {
        &self.entries
    }

    /// Whether no model was collected.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Index of the model for the devfs node `path`.
    pub fn entry_for_node(&self, path: &str) -> Option<usize> {
        self.entries.iter().position(|e| e.node.as_deref() == Some(path))
    }

    /// Index of the model whose handles carry `produced` (exact node kind
    /// or longest socket-kind prefix).
    pub fn entry_for_produced(&self, produced: &str) -> Option<usize> {
        if let Some(node) = produced.strip_prefix("fd:") {
            return self.entry_for_node(node);
        }
        self.entries
            .iter()
            .enumerate()
            .filter(|(_, e)| {
                e.sock_kind.as_deref().is_some_and(|k| {
                    produced == k || produced.starts_with(&format!("{k}:"))
                })
            })
            .max_by_key(|(_, e)| e.sock_kind.as_deref().map_or(0, str::len))
            .map(|(i, _)| i)
    }

    /// Finds an entry by label, node path, or node basename.
    pub fn find(&self, name: &str) -> Option<&ModelEntry> {
        self.entries.iter().find(|e| {
            e.label == name
                || e.node.as_deref() == Some(name)
                || e.node.as_deref().is_some_and(|n| n.strip_prefix("/dev/") == Some(name))
        })
    }

    /// Audits every model for structural defects beyond what boot-time
    /// validation covers: states unreachable from the initial state, dead
    /// transitions (every source state unreachable), and nondeterministic
    /// guard overlap (two same-op transitions from a common state whose
    /// guards admit a common witness but whose targets differ). Boot-time
    /// `validate_api` findings (duplicate request codes, empty
    /// `Choice`/`Flags` shapes, malformed models) are replayed as errors.
    pub fn audit(&self) -> Report {
        let mut report = Report::new();
        for problem in &self.api_problems {
            report.push(Severity::Error, "model-invalid", None, problem.clone());
        }
        for entry in &self.entries {
            audit_entry(entry, &mut report);
        }
        report
    }

    /// `(producer, consumer)` description pairs implied by matching
    /// `produces`/`consumes` tags across models — the static priors a
    /// relation graph can be seeded with before the first execution.
    /// Sorted and deduplicated, so seeding is deterministic.
    pub fn prior_pairs(&self, table: &DescTable) -> Vec<(DescId, DescId)> {
        let mut producers: Vec<(&str, Vec<DescId>)> = Vec::new();
        let mut consumers: Vec<(&str, Vec<DescId>)> = Vec::new();
        for entry in &self.entries {
            for t in &entry.model.transitions {
                if let Some(tag) = &t.produces {
                    producers.push((tag, descs_for_transition(entry, t, table)));
                }
                if let Some(tag) = &t.consumes {
                    consumers.push((tag, descs_for_transition(entry, t, table)));
                }
            }
        }
        let mut pairs = BTreeSet::new();
        for (ptag, pds) in &producers {
            for (ctag, cds) in &consumers {
                if ptag != ctag {
                    continue;
                }
                for &p in pds {
                    for &c in cds {
                        if p != c {
                            pairs.insert((p, c));
                        }
                    }
                }
            }
        }
        pairs.into_iter().collect()
    }

    /// Renders the model for `name` (plus its audit findings) as the
    /// human-readable text `droidfuzz-lint --model` prints.
    pub fn describe(&self, name: &str) -> Option<String> {
        let entry = self.find(name)?;
        let mut out = String::new();
        let interface = entry
            .node
            .clone()
            .or_else(|| entry.sock_kind.clone())
            .unwrap_or_default();
        out.push_str(&format!("model {} ({interface})\n", entry.label));
        let m = &entry.model;
        let mut flags = vec![if m.per_open { "per-open" } else { "device-global" }.to_owned()];
        if m.close_clobbers {
            flags.push("close-clobbers".into());
        }
        if m.close_orphans {
            flags.push("close-orphans".into());
        }
        if m.global_backing {
            flags.push("global-backing".into());
        }
        out.push_str(&format!("  scope: {}\n", flags.join(", ")));
        out.push_str(&format!("  states: {}\n", m
            .states
            .iter()
            .map(|s| if *s == m.initial { format!("*{s}") } else { s.clone() })
            .collect::<Vec<_>>()
            .join(", ")));
        for t in &m.transitions {
            out.push_str(&format!("  {}\n", render_transition(t)));
        }
        let mut audit = Report::new();
        audit_entry(entry, &mut audit);
        for d in &audit.diagnostics {
            out.push_str(&format!("  audit: {d}\n"));
        }
        if audit.is_clean() {
            out.push_str("  audit: clean\n");
        }
        Some(out)
    }
}

/// Descriptions in `table` that lower to transition `t` of `entry`: the
/// template matches the transition's op (typed ioctls by request code,
/// raw `ioctl$…` descriptions by any ioctl op) and the description's
/// first resource argument accepts this interface's handles.
fn descs_for_transition(entry: &ModelEntry, t: &Transition, table: &DescTable) -> Vec<DescId> {
    let produced = entry.produced_kind();
    table
        .iter()
        .filter(|(_, desc)| {
            let CallKind::Syscall(template) = &desc.kind else { return false };
            let op_matches = match (&t.op, template) {
                (TransOp::Ioctl(req), SyscallTemplate::Ioctl { request }) => req == request,
                (TransOp::Ioctl(_), SyscallTemplate::IoctlAny) => true,
                (TransOp::Read, SyscallTemplate::Read)
                | (TransOp::Write, SyscallTemplate::Write)
                | (TransOp::Mmap, SyscallTemplate::Mmap)
                | (TransOp::Bind, SyscallTemplate::Bind)
                | (TransOp::Connect, SyscallTemplate::Connect)
                | (TransOp::Listen, SyscallTemplate::Listen)
                | (TransOp::Accept, SyscallTemplate::Accept) => true,
                _ => false,
            };
            op_matches
                && desc.args.iter().find_map(|a| a.ty.resource_kind()).is_some_and(|k| k.accepts(&produced))
        })
        .map(|(id, _)| id)
        .collect()
}

fn audit_entry(entry: &ModelEntry, report: &mut Report) {
    let m = &entry.model;
    let reachable = reachable_states(m);
    for s in &m.states {
        if !reachable.contains(s.as_str()) {
            report.push(
                Severity::Warning,
                "model-unreachable-state",
                None,
                format!("{}: state {s:?} is unreachable from {:?}", entry.label, m.initial),
            );
        }
    }
    for (i, t) in m.transitions.iter().enumerate() {
        if !t.from.is_empty() && t.from.iter().all(|s| !reachable.contains(s.as_str())) {
            report.push(
                Severity::Warning,
                "model-dead-transition",
                None,
                format!(
                    "{}: transition {i} ({}) can never fire: every source state is unreachable",
                    entry.label,
                    render_op(&t.op)
                ),
            );
        }
    }
    for (i, a) in m.transitions.iter().enumerate() {
        for (j, b) in m.transitions.iter().enumerate().skip(i + 1) {
            if a.op != b.op {
                continue;
            }
            let Some(state) = common_source(m, a, b, &reachable) else { continue };
            let ta = a.to.clone().unwrap_or_else(|| state.clone());
            let tb = b.to.clone().unwrap_or_else(|| state.clone());
            if ta == tb {
                continue;
            }
            if guards_overlap(a, b) {
                report.push(
                    Severity::Warning,
                    "model-nondeterministic",
                    None,
                    format!(
                        "{}: transitions {i} and {j} ({}) overlap from state {state:?} \
                         but target {ta:?} vs {tb:?}",
                        entry.label,
                        render_op(&a.op)
                    ),
                );
            }
        }
    }
}

/// States reachable from the initial state via transition targets and
/// accept-spawn states (from-less transitions apply everywhere).
fn reachable_states(m: &StateModel) -> BTreeSet<&str> {
    let mut reachable: BTreeSet<&str> = BTreeSet::new();
    reachable.insert(m.initial.as_str());
    loop {
        let mut grew = false;
        for t in &m.transitions {
            let applies =
                t.from.is_empty() || t.from.iter().any(|s| reachable.contains(s.as_str()));
            if !applies {
                continue;
            }
            for target in t.to.iter().chain(t.spawns.iter()) {
                if reachable.insert(target.as_str()) {
                    grew = true;
                }
            }
        }
        if !grew {
            return reachable;
        }
    }
}

/// A reachable state both transitions can fire from, if any.
fn common_source(
    m: &StateModel,
    a: &Transition,
    b: &Transition,
    reachable: &BTreeSet<&str>,
) -> Option<String> {
    m.states
        .iter()
        .find(|s| {
            reachable.contains(s.as_str())
                && (a.from.is_empty() || a.from.contains(s))
                && (b.from.is_empty() || b.from.contains(s))
        })
        .cloned()
}

/// Witness-based joint satisfiability of two guard lists (and payload
/// prefixes): best-effort — a missing witness among the tried candidates
/// means "no overlap found", not a proof of disjointness.
fn guards_overlap(a: &Transition, b: &Transition) -> bool {
    let words = a.guards.len().max(b.guards.len());
    for i in 0..words {
        let ga = a.guards.get(i).unwrap_or(&WordGuard::Any);
        let gb = b.guards.get(i).unwrap_or(&WordGuard::Any);
        let candidates = [ga.example(), gb.example()];
        let witnessed = candidates
            .into_iter()
            .flatten()
            .any(|w| ga.admits(w) && gb.admits(w));
        if !witnessed {
            return false;
        }
    }
    match (&a.payload_prefix, &b.payload_prefix) {
        (Some(pa), Some(pb)) => pa.starts_with(pb.as_slice()) || pb.starts_with(pa.as_slice()),
        _ => true,
    }
}

fn render_op(op: &TransOp) -> String {
    match op {
        TransOp::Ioctl(req) => format!("ioctl {req:#010x}"),
        TransOp::Read => "read".into(),
        TransOp::Write => "write".into(),
        TransOp::Mmap => "mmap".into(),
        TransOp::Bind => "bind".into(),
        TransOp::Connect => "connect".into(),
        TransOp::Listen => "listen".into(),
        TransOp::Accept => "accept".into(),
    }
}

fn render_guard(g: &WordGuard) -> String {
    match g {
        WordGuard::Eq(v) => format!("={v}"),
        WordGuard::In(min, max) => format!("{min}..={max}"),
        WordGuard::OneOf(values) => format!(
            "{{{}}}",
            values.iter().map(u32::to_string).collect::<Vec<_>>().join(",")
        ),
        WordGuard::MaskEq(mask, value) => format!("&{mask:#x}=={value:#x}"),
        WordGuard::MaskNonZero(mask) => format!("&{mask:#x}!=0"),
        WordGuard::Any => "*".into(),
    }
}

fn render_transition(t: &Transition) -> String {
    let mut out = render_op(&t.op);
    if !t.guards.is_empty() {
        out.push_str(&format!(
            " [{}]",
            t.guards.iter().map(render_guard).collect::<Vec<_>>().join(", ")
        ));
    }
    if let Some(prefix) = &t.payload_prefix {
        out.push_str(&format!(
            " prefix={}",
            prefix.iter().map(|b| format!("{b:02x}")).collect::<String>()
        ));
    }
    match (&t.from, &t.to) {
        (from, Some(to)) if from.is_empty() => out.push_str(&format!(" * -> {to}")),
        (from, Some(to)) => out.push_str(&format!(" {} -> {to}", from.join("|"))),
        (from, None) if from.is_empty() => out.push_str(" * -> ."),
        (from, None) => out.push_str(&format!(" {} -> .", from.join("|"))),
    }
    if t.reliability == Reliability::MayFail {
        out.push_str(" may-fail");
    }
    if t.hazard {
        out.push_str(" hazard");
    }
    if let Some(tag) = &t.produces {
        out.push_str(&format!(" produces={tag}"));
    }
    if let Some(tag) = &t.consumes {
        out.push_str(&format!(" consumes={tag}"));
    }
    if let Some(state) = &t.spawns {
        out.push_str(&format!(" spawns={state}"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkernel::driver::Transition as T;

    fn toy_model() -> StateModel {
        StateModel::new("Closed", &["Closed", "Open", "Limbo"]).with(vec![
            T::ioctl(0x10).from(&["Closed"]).to("Open"),
            T::ioctl(0x11).from(&["Open"]).to("Closed"),
            T::ioctl(0x12).from(&["Limbo"]).to("Open"),
        ])
    }

    fn toy_entry(model: StateModel) -> ModelEntry {
        ModelEntry { label: "toy".into(), node: Some("/dev/toy".into()), sock_kind: None, model }
    }

    #[test]
    fn audit_flags_unreachable_state_and_dead_transition() {
        let mut report = Report::new();
        audit_entry(&toy_entry(toy_model()), &mut report);
        let codes: Vec<&str> = report.diagnostics.iter().map(|d| d.code).collect();
        assert!(codes.contains(&"model-unreachable-state"));
        assert!(codes.contains(&"model-dead-transition"));
    }

    #[test]
    fn audit_flags_guard_overlap_with_diverging_targets() {
        let model = StateModel::new("A", &["A", "B", "C"]).with(vec![
            T::ioctl(0x10).guard(WordGuard::In(0, 10)).from(&["A"]).to("B"),
            T::ioctl(0x10).guard(WordGuard::In(5, 20)).from(&["A"]).to("C"),
        ]);
        let mut report = Report::new();
        audit_entry(&toy_entry(model), &mut report);
        assert!(report.diagnostics.iter().any(|d| d.code == "model-nondeterministic"));
    }

    #[test]
    fn disjoint_guards_are_deterministic() {
        let model = StateModel::new("A", &["A", "B", "C"]).with(vec![
            T::ioctl(0x10).guard(WordGuard::Eq(0)).from(&["A"]).to("B"),
            T::ioctl(0x10).guard(WordGuard::Eq(1)).from(&["A"]).to("C"),
        ]);
        let mut report = Report::new();
        audit_entry(&toy_entry(model), &mut report);
        assert!(!report.diagnostics.iter().any(|d| d.code == "model-nondeterministic"));
    }

    #[test]
    fn describe_renders_states_and_transitions() {
        let mut set = ModelSet::default();
        set.entries.push(toy_entry(toy_model()));
        let text = set.describe("toy").unwrap();
        assert!(text.contains("*Closed"));
        assert!(text.contains("ioctl 0x00000010"));
        assert!(text.contains("Closed -> Open"));
        assert!(set.describe("no-such-driver").is_none());
    }

    #[test]
    fn produced_kind_lookup_prefers_longest_socket_prefix() {
        let mut set = ModelSet::default();
        set.entries.push(ModelEntry {
            label: "l2cap".into(),
            node: None,
            sock_kind: Some("sock:l2cap".into()),
            model: toy_model(),
        });
        set.entries.push(ModelEntry {
            label: "l2cap-stream".into(),
            node: None,
            sock_kind: Some("sock:l2cap:stream".into()),
            model: toy_model(),
        });
        let hit = set.entry_for_produced("sock:l2cap:stream").unwrap();
        assert_eq!(set.entries()[hit].label, "l2cap-stream");
        assert_eq!(set.entry_for_produced("sock:l2cap:dgram").map(|i| &set.entries()[i].label),
                   Some(&"l2cap".to_owned()));
        assert!(set.entry_for_produced("fd:/dev/none").is_none());
    }
}
