//! Deterministic auto-repair: rewrite fixable `Error`-severity defects
//! instead of discarding the program.
//!
//! The repairer rebuilds the program front to back, the same way §IV-C's
//! producer insertion does, but with every choice made deterministically
//! (lowest description id, nearest earlier producer, type-minimal default
//! values) so that gating it into a seeded engine consumes no randomness
//! and leaves campaign replay byte-identical.
//!
//! Per call:
//!
//! * unknown description id → the call is dropped (nothing to rebuild
//!   against); calls depending on it are re-pointed or dropped in turn,
//! * argument lists are conformed to the description: surplus arguments
//!   are truncated, missing or class-mismatched ones replaced by the
//!   type's minimal value,
//! * resource slots keep their reference when it still resolves to a
//!   producer of the right kind; otherwise they are re-pointed at the
//!   *nearest earlier* producer, and when none exists a producer chain is
//!   inserted (leaf producers preferred, so `dup`-style self-consuming
//!   producers cannot recurse forever). A resource no description can
//!   produce drops the call.
//!
//! Warnings are left alone on purpose: an out-of-range integer is an
//! interesting input, not a defect.

use crate::counters::LintCounters;
use crate::lint::lint_prog;
use fuzzlang::desc::{DescId, DescTable};
use fuzzlang::prog::{ArgValue, Call, Prog};
use fuzzlang::types::{ResourceKind, TypeDesc};

/// Producer-insertion recursion cap (mirrors `fuzzlang::gen`).
const MAX_PRODUCER_DEPTH: usize = 8;

/// Repairs every `Error`-severity defect in `prog`, returning the fixed
/// program, or `None` when nothing executable is left (every call was
/// structurally unrecoverable).
pub fn repair_prog(prog: &Prog, table: &DescTable) -> Option<Prog> {
    let mut out = Prog::new();
    // Original call index → rebuilt index (None when dropped).
    let mut remap: Vec<Option<usize>> = Vec::with_capacity(prog.calls.len());
    for call in &prog.calls {
        if call.desc.0 >= table.len() {
            remap.push(None);
            continue;
        }
        let desc = table.get(call.desc).clone();
        let mut args = Vec::with_capacity(desc.args.len());
        let mut droppable = false;
        for (a, arg_desc) in desc.args.iter().enumerate() {
            let existing = call.args.get(a);
            match &arg_desc.ty {
                TypeDesc::Resource { kind } => {
                    let kept = match existing {
                        Some(ArgValue::Ref(t)) => remap
                            .get(*t)
                            .copied()
                            .flatten()
                            .filter(|&new_t| produces_wanted(&out, table, new_t, kind)),
                        _ => None,
                    };
                    let target = kept
                        .or_else(|| nearest_producer(&out, table, kind))
                        .or_else(|| insert_producer(&mut out, table, kind, 0));
                    match target {
                        Some(t) => args.push(ArgValue::Ref(t)),
                        None => {
                            droppable = true;
                            break;
                        }
                    }
                }
                ty => args.push(conform_value(ty, existing)),
            }
        }
        if droppable {
            remap.push(None);
        } else {
            out.calls.push(Call { desc: call.desc, args });
            remap.push(Some(out.calls.len() - 1));
        }
    }
    (!out.calls.is_empty()).then_some(out)
}

/// Lints `prog` and, on errors, repairs it in place. Returns whether the
/// program may proceed to execution; `counters` records the outcome
/// (`repaired` when the rewrite cleared every error, `rejected` when the
/// program had to be discarded). Clean programs pass through untouched
/// and uncounted.
pub fn gate_prog(prog: &mut Prog, table: &DescTable, counters: &mut LintCounters) -> bool {
    if !lint_prog(prog, table).has_errors() {
        return true;
    }
    if let Some(fixed) = repair_prog(prog, table) {
        if !lint_prog(&fixed, table).has_errors() {
            *prog = fixed;
            counters.repaired += 1;
            return true;
        }
    }
    counters.rejected += 1;
    false
}

/// Whether rebuilt call `t` produces a resource accepted as `kind`.
fn produces_wanted(out: &Prog, table: &DescTable, t: usize, kind: &ResourceKind) -> bool {
    out.calls
        .get(t)
        .map(|c| table.get(c.desc))
        .and_then(|d| d.produces.as_ref())
        .is_some_and(|p| kind.accepts(p))
}

/// Nearest earlier producer of `kind` in the rebuilt program.
fn nearest_producer(out: &Prog, table: &DescTable, kind: &ResourceKind) -> Option<usize> {
    (0..out.calls.len())
        .rev()
        .find(|&t| produces_wanted(out, table, t, kind))
}

/// Appends a producer chain for `kind`, preferring producers without
/// resource arguments of their own (a `dup`-style producer that consumes
/// what it produces would otherwise recurse forever).
fn insert_producer(out: &mut Prog, table: &DescTable, kind: &ResourceKind, depth: usize) -> Option<usize> {
    if depth > MAX_PRODUCER_DEPTH {
        return None;
    }
    let producers = table.producers_of(kind);
    let chosen = producers
        .iter()
        .copied()
        .find(|&id| table.get(id).args.iter().all(|a| !a.ty.is_resource()))
        .or_else(|| producers.first().copied())?;
    append_leafwards(out, table, chosen, depth)
}

fn append_leafwards(out: &mut Prog, table: &DescTable, desc_id: DescId, depth: usize) -> Option<usize> {
    let desc = table.get(desc_id).clone();
    let mut args = Vec::with_capacity(desc.args.len());
    for arg_desc in &desc.args {
        match &arg_desc.ty {
            TypeDesc::Resource { kind } => {
                let t = nearest_producer(out, table, kind)
                    .or_else(|| insert_producer(out, table, kind, depth + 1))?;
                args.push(ArgValue::Ref(t));
            }
            ty => args.push(conform_value(ty, None)),
        }
    }
    out.calls.push(Call { desc: desc_id, args });
    Some(out.calls.len() - 1)
}

/// Keeps `existing` when its value class matches the described type,
/// otherwise substitutes the type's minimal value.
fn conform_value(ty: &TypeDesc, existing: Option<&ArgValue>) -> ArgValue {
    match (ty, existing) {
        (TypeDesc::Int { .. } | TypeDesc::Choice { .. } | TypeDesc::Flags { .. }, Some(v @ ArgValue::Int(_)))
        | (TypeDesc::Buffer { .. }, Some(v @ ArgValue::Bytes(_)))
        | (TypeDesc::Str { .. }, Some(v @ ArgValue::Str(_))) => (*v).clone(),
        (TypeDesc::Int { min, .. }, _) => ArgValue::Int(*min),
        (TypeDesc::Choice { values }, _) => ArgValue::Int(values.first().copied().unwrap_or_default()),
        (TypeDesc::Flags { .. }, _) => ArgValue::Int(0),
        (TypeDesc::Buffer { min_len, .. }, _) => ArgValue::Bytes(vec![0; *min_len]),
        (TypeDesc::Str { choices }, _) => ArgValue::Str(choices.first().cloned().unwrap_or_default()),
        (TypeDesc::Resource { .. }, _) => unreachable!("resource slots are resolved, not conformed"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fuzzlang::desc::{ArgDesc, CallDesc, CallKind, SyscallTemplate};

    fn table() -> DescTable {
        let mut t = DescTable::new();
        t.add(CallDesc::syscall_close()); // 0 (before any producer, like the real tables)
        t.add(CallDesc::syscall_dup()); // 1: produces fd, consumes fd
        t.add(CallDesc::syscall_open("/dev/x")); // 2
        t.add(CallDesc::new(
            "ioctl$X", // 3
            CallKind::Syscall(SyscallTemplate::Ioctl { request: 7 }),
            vec![
                ArgDesc::new("fd", TypeDesc::Resource { kind: "fd:/dev/x".into() }),
                ArgDesc::new("mode", TypeDesc::Choice { values: vec![2, 4] }),
            ],
            None,
        ));
        t
    }

    fn call(desc: usize, args: Vec<ArgValue>) -> Call {
        Call { desc: DescId(desc), args }
    }

    #[test]
    fn dangling_ref_repointed_to_nearest_producer() {
        let t = table();
        // Two opens; the ioctl references a dangling r9.
        let p = Prog {
            calls: vec![
                call(2, vec![]),
                call(2, vec![]),
                call(3, vec![ArgValue::Ref(9), ArgValue::Int(2)]),
            ],
        };
        let fixed = repair_prog(&p, &t).expect("repairable");
        assert!(!lint_prog(&fixed, &t).has_errors());
        assert_eq!(fixed.calls[2].args[0], ArgValue::Ref(1), "nearest earlier producer wins");
    }

    #[test]
    fn missing_producer_inserted_deterministically() {
        let t = table();
        let p = Prog { calls: vec![call(3, vec![ArgValue::Ref(0), ArgValue::Int(2)])] };
        let fixed = repair_prog(&p, &t).expect("repairable");
        assert!(!lint_prog(&fixed, &t).has_errors());
        assert_eq!(fixed.calls.len(), 2);
        assert_eq!(fixed.calls[0].desc, DescId(2), "leaf producer (open), not dup");
        assert_eq!(fixed.calls[1].args[0], ArgValue::Ref(0));
        // Determinism: repairing again yields the identical program.
        assert_eq!(repair_prog(&p, &t).unwrap(), fixed);
    }

    #[test]
    fn self_consuming_producer_does_not_recurse_forever() {
        let mut t = DescTable::new();
        // Only producer of "fd" is dup, which consumes "fd": unrepairable.
        t.add(CallDesc::syscall_dup());
        let p = Prog { calls: vec![call(0, vec![ArgValue::Ref(5)])] };
        assert_eq!(repair_prog(&p, &t), None);
    }

    #[test]
    fn unknown_desc_dropped_and_dependents_repointed() {
        let t = table();
        let p = Prog {
            calls: vec![
                call(2, vec![]),
                call(42, vec![]), // unknown
                call(3, vec![ArgValue::Ref(1), ArgValue::Int(4)]),
            ],
        };
        let fixed = repair_prog(&p, &t).expect("repairable");
        assert!(!lint_prog(&fixed, &t).has_errors());
        assert_eq!(fixed.calls.len(), 2);
        assert_eq!(fixed.calls[1].args[0], ArgValue::Ref(0), "re-pointed at the surviving open");
    }

    #[test]
    fn arg_lists_conformed_to_description() {
        let t = table();
        let p = Prog {
            calls: vec![
                call(2, vec![ArgValue::Int(9)]), // surplus arg
                call(3, vec![ArgValue::Ref(0)]), // missing mode
            ],
        };
        let fixed = repair_prog(&p, &t).expect("repairable");
        assert!(!lint_prog(&fixed, &t).has_errors());
        assert!(fixed.calls[0].args.is_empty());
        assert_eq!(fixed.calls[1].args[1], ArgValue::Int(2), "first described choice");
    }

    #[test]
    fn kept_values_and_warnings_survive_repair() {
        let t = table();
        // Valid ref, out-of-choice mode (warning) + a dangling second use.
        let p = Prog {
            calls: vec![
                call(2, vec![]),
                call(3, vec![ArgValue::Ref(0), ArgValue::Int(99)]),
                call(3, vec![ArgValue::Ref(7), ArgValue::Int(4)]),
            ],
        };
        let fixed = repair_prog(&p, &t).expect("repairable");
        let report = lint_prog(&fixed, &t);
        assert!(!report.has_errors());
        assert_eq!(fixed.calls[1].args[1], ArgValue::Int(99), "warning value untouched");
        assert!(report.diagnostics.iter().any(|d| d.code == "not-in-choice"));
    }

    #[test]
    fn gate_counts_outcomes() {
        let t = table();
        let mut counters = LintCounters::default();
        // Clean program: passes uncounted.
        let mut clean = Prog { calls: vec![call(2, vec![])] };
        assert!(gate_prog(&mut clean, &t, &mut counters));
        assert_eq!(counters.total(), 0);
        // Repairable program.
        let mut broken = Prog { calls: vec![call(3, vec![ArgValue::Ref(9), ArgValue::Int(2)])] };
        assert!(gate_prog(&mut broken, &t, &mut counters));
        assert_eq!(counters.repaired, 1);
        assert!(!lint_prog(&broken, &t).has_errors());
        // Unrepairable program.
        let mut hopeless = Prog { calls: vec![call(42, vec![])] };
        assert!(!gate_prog(&mut hopeless, &t, &mut counters));
        assert_eq!(counters.rejected, 1);
    }
}
