//! End-to-end engine throughput: full fuzzing iterations (generation →
//! broker execution → feedback analysis) against device models, plus the
//! one-time costs of probing and device boot.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use droidfuzz::config::FuzzerConfig;
use droidfuzz::engine::FuzzingEngine;
use droidfuzz::probe::probe_device;
use simdevice::catalog;

fn bench(c: &mut Criterion) {
    c.bench_function("device/boot_a1", |b| {
        b.iter(|| catalog::device_a1().boot());
    });
    c.bench_function("probe/full_pass_a1", |b| {
        b.iter_batched(
            || catalog::device_a1().boot(),
            |mut device| probe_device(&mut device),
            BatchSize::SmallInput,
        );
    });
    let mut group = c.benchmark_group("engine_steps");
    group.sample_size(20);
    for (name, make) in [
        ("droidfuzz", FuzzerConfig::droidfuzz as fn(u64) -> FuzzerConfig),
        ("syzkaller", FuzzerConfig::syzkaller),
    ] {
        group.bench_function(format!("100_iterations_{name}"), |b| {
            b.iter_batched(
                || FuzzingEngine::new(catalog::device_a1().boot(), make(1)),
                |mut engine| {
                    engine.run_iterations(100);
                    engine.kernel_coverage()
                },
                BatchSize::PerIteration,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
