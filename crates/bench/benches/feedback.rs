//! Microbenchmarks for cross-boundary feedback processing (§IV-D):
//! specialized-ID lookup, directional pair hashing, and signal-set merges.

use criterion::{criterion_group, criterion_main, Criterion};
use droidfuzz::feedback::{
    signals_from_execution, signals_from_execution_into, Signal, SignalScratch, SignalSet,
    SyscallIdTable,
};
use std::collections::HashSet;
use simdevice::catalog;
use simkernel::coverage::Block;
use simkernel::syscall::SyscallNr;
use simkernel::trace::{Origin, SyscallEvent};

fn events(n: usize) -> Vec<SyscallEvent> {
    (0..n)
        .map(|i| SyscallEvent {
            origin: Origin::Hal((i % 6) as u32 + 1),
            nr: SyscallNr::Ioctl,
            critical: (i % 40) as u64,
            path: None,
            ok: true,
        })
        .collect()
}

/// The pre-bitmap [`SignalSet`]: a flat `HashSet<Signal>` whose
/// `count_new` built a fresh `HashSet` of candidates on every call.
/// Kept here as the before/after baseline for the bitmap benches.
#[derive(Default)]
struct HashSetSignals(HashSet<Signal>);

impl HashSetSignals {
    fn merge(&mut self, signals: &[Signal]) {
        self.0.extend(signals.iter().copied());
    }

    fn count_new(&self, signals: &[Signal]) -> usize {
        signals
            .iter()
            .filter(|s| !self.0.contains(s))
            .collect::<HashSet<_>>()
            .len()
    }
}

fn bench(c: &mut Criterion) {
    c.bench_function("feedback/compile_id_table_a1", |b| {
        let mut device = catalog::device_a1().boot();
        b.iter(|| SyscallIdTable::compile(std::hint::black_box(device.kernel())));
    });
    c.bench_function("feedback/signals_100cov_50events", |b| {
        let kcov: Vec<Block> = (0..100u64).map(|i| Block(0x1000_0000 + i * 13)).collect();
        let evs = events(50);
        let mut table = SyscallIdTable::new();
        b.iter(|| signals_from_execution(&kcov, &evs, &mut table, true));
    });
    c.bench_function("feedback/merge_into_100k_set", |b| {
        let mut set = SignalSet::new();
        let mut table = SyscallIdTable::new();
        let warmup: Vec<Block> = (0..100_000u64).map(|i| Block(i * 7)).collect();
        set.merge(&signals_from_execution(&warmup, &[], &mut table, false));
        let kcov: Vec<Block> = (0..200u64).map(|i| Block(0x9_0000_0000 + i)).collect();
        let sigs = signals_from_execution(&kcov, &events(30), &mut table, true);
        b.iter(|| std::hint::black_box(set.count_new(&sigs)));
    });
    // Before/after pair for the bitmap rewrite: the same 100k-signal set
    // and 230-signal probe against the old flat-HashSet representation
    // (one HashSet allocated per count_new call) and the two-level bitmap
    // (non-allocating after the scratch buffer warms up).
    c.bench_function("feedback/count_new_hashset_baseline", |b| {
        let mut set = HashSetSignals::default();
        let mut table = SyscallIdTable::new();
        let warmup: Vec<Block> = (0..100_000u64).map(|i| Block(i * 7)).collect();
        set.merge(&signals_from_execution(&warmup, &[], &mut table, false));
        let kcov: Vec<Block> = (0..200u64).map(|i| Block(0x9_0000_0000 + i)).collect();
        let sigs = signals_from_execution(&kcov, &events(30), &mut table, true);
        b.iter(|| std::hint::black_box(set.count_new(&sigs)));
    });
    c.bench_function("feedback/count_new_bitmap", |b| {
        let mut set = SignalSet::new();
        let mut table = SyscallIdTable::new();
        let warmup: Vec<Block> = (0..100_000u64).map(|i| Block(i * 7)).collect();
        set.merge(&signals_from_execution(&warmup, &[], &mut table, false));
        let kcov: Vec<Block> = (0..200u64).map(|i| Block(0x9_0000_0000 + i)).collect();
        let sigs = signals_from_execution(&kcov, &events(30), &mut table, true);
        b.iter(|| std::hint::black_box(set.count_new(&sigs)));
    });
    c.bench_function("feedback/signals_into_reused_buffers", |b| {
        let kcov: Vec<Block> = (0..100u64).map(|i| Block(0x1000_0000 + i * 13)).collect();
        let evs = events(50);
        let mut table = SyscallIdTable::new();
        let mut scratch = SignalScratch::default();
        let mut out = Vec::new();
        b.iter(|| {
            signals_from_execution_into(&kcov, &evs, &mut table, true, &mut scratch, &mut out);
            std::hint::black_box(out.len())
        });
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
