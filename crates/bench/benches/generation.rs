//! Microbenchmarks for payload generation and mutation over a realistic
//! device vocabulary (device A1's syscall + probed HAL descriptions).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use droidfuzz::descs::build_syscall_table;
use droidfuzz::generate::{random_generate, relational_generate};
use droidfuzz::probe::{add_hal_descs, probe_device};
use droidfuzz::relation::RelationGraph;
use fuzzlang::desc::{DescId, DescTable};
use fuzzlang::mutate::mutate;
use fuzzlang::text::{format_prog, parse_prog};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simdevice::catalog;

fn a1_vocabulary() -> DescTable {
    let mut device = catalog::device_a1().boot();
    let mut table = build_syscall_table(device.kernel());
    let report = probe_device(&mut device);
    add_hal_descs(&mut table, &report);
    table
}

fn bench(c: &mut Criterion) {
    let table = a1_vocabulary();
    let mut graph = RelationGraph::new(&table);
    let mut rng = StdRng::seed_from_u64(1);
    for _ in 0..300 {
        graph.learn(
            DescId(rng.gen_range(0..table.len())),
            DescId(rng.gen_range(0..table.len())),
        );
    }

    c.bench_function("generate/random_16_calls", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| random_generate(&table, 16, &mut rng));
    });
    c.bench_function("generate/relational_16_calls", |b| {
        let mut rng = StdRng::seed_from_u64(3);
        b.iter(|| relational_generate(&table, &graph, 16, &mut rng));
    });
    c.bench_function("mutate/one_op", |b| {
        let mut rng = StdRng::seed_from_u64(4);
        let seed = random_generate(&table, 12, &mut rng);
        b.iter_batched(
            || seed.clone(),
            |mut prog| {
                mutate(&mut prog, &table, &mut rng);
                prog
            },
            BatchSize::SmallInput,
        );
    });
    c.bench_function("text/roundtrip_16_calls", |b| {
        let mut rng = StdRng::seed_from_u64(5);
        let prog = random_generate(&table, 16, &mut rng);
        b.iter(|| {
            let text = format_prog(&prog, &table);
            parse_prog(&text, &table).expect("roundtrip")
        });
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
