//! Microbenchmarks for Binder parcel marshaling — every HAL invocation
//! (fuzzing and probing alike) crosses this path.

use criterion::{criterion_group, criterion_main, Criterion};
use simbinder::Parcel;

fn bench(c: &mut Criterion) {
    c.bench_function("parcel/write_mixed_10", |b| {
        b.iter(|| {
            let mut p = Parcel::new();
            for i in 0..4 {
                p.write_i32(i);
            }
            p.write_i64(1 << 40);
            p.write_string16("android.hardware.camera");
            p.write_blob(vec![0u8; 64]);
            p.write_fd(3);
            std::hint::black_box(p)
        });
    });
    c.bench_function("parcel/read_mixed_10", |b| {
        let mut p = Parcel::new();
        for i in 0..4 {
            p.write_i32(i);
        }
        p.write_i64(1 << 40);
        p.write_string16("android.hardware.camera");
        p.write_blob(vec![0u8; 64]);
        p.write_fd(3);
        b.iter(|| {
            let mut r = p.reader();
            for _ in 0..4 {
                std::hint::black_box(r.read_i32().unwrap());
            }
            std::hint::black_box(r.read_i64().unwrap());
            std::hint::black_box(r.read_string16().unwrap());
            std::hint::black_box(r.read_blob().unwrap());
            std::hint::black_box(r.read_fd().unwrap());
        });
    });
    c.bench_function("parcel/shape_and_wire_size", |b| {
        let mut p = Parcel::new();
        for i in 0..16 {
            p.write_i32(i);
        }
        b.iter(|| (std::hint::black_box(p.shape()), std::hint::black_box(p.wire_size())));
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
