//! Microbenchmarks for the relation graph (§IV-C): Eq. 1 learning, decay,
//! and weighted sampling — the per-execution hot path of relational
//! payload generation.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use droidfuzz::relation::RelationGraph;
use fuzzlang::desc::{CallDesc, CallKind, DescId, DescTable};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn table(n: usize) -> DescTable {
    let mut t = DescTable::new();
    for i in 0..n {
        t.add(CallDesc::new(
            format!("call{i}"),
            CallKind::Hal { service: "svc".into(), code: i as u32 },
            vec![],
            None,
        ));
    }
    t
}

fn learned_graph(vertices: usize, edges: usize) -> RelationGraph {
    let t = table(vertices);
    let mut g = RelationGraph::new(&t);
    let mut rng = StdRng::seed_from_u64(1);
    for _ in 0..edges {
        let a = DescId(rng.gen_range(0..vertices));
        let b = DescId(rng.gen_range(0..vertices));
        g.learn(a, b);
    }
    g
}

fn bench(c: &mut Criterion) {
    let t = table(300);
    c.bench_function("relation/learn_300v", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        b.iter_batched(
            || RelationGraph::new(&t),
            |mut g| {
                for _ in 0..100 {
                    g.learn(DescId(rng.gen_range(0..300)), DescId(rng.gen_range(0..300)));
                }
                g
            },
            BatchSize::SmallInput,
        );
    });
    c.bench_function("relation/sample_base_300v", |b| {
        let g = learned_graph(300, 500);
        let mut rng = StdRng::seed_from_u64(3);
        b.iter(|| g.sample_base(&mut rng));
    });
    c.bench_function("relation/sample_next_500e", |b| {
        let g = learned_graph(300, 500);
        let mut rng = StdRng::seed_from_u64(4);
        b.iter(|| g.sample_next(DescId(rng.gen_range(0..300)), &mut rng));
    });
    c.bench_function("relation/decay_500e", |b| {
        b.iter_batched(
            || learned_graph(300, 500),
            |mut g| {
                g.decay(0.9);
                g
            },
            BatchSize::SmallInput,
        );
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
