//! Runs every experiment binary in sequence (Table I, Fig. 4, Fig. 5,
//! Table III, per-driver coverage, Table II), honoring the same `DF_*`
//! environment variables each binary reads.

use std::process::Command;

fn main() {
    let exe = std::env::current_exe().expect("current exe");
    let dir = exe.parent().expect("bin dir");
    for bin in ["table1", "fig4", "fig5", "table3", "driver_cov", "table2"] {
        println!("================ {bin} ================\n");
        let status = Command::new(dir.join(bin))
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        assert!(status.success(), "{bin} failed");
    }
}
