//! Regenerates the paper's §I per-driver coverage claim: "through
//! evaluating per-driver coverage in the kernel, DROIDFUZZ achieves a 17%
//! increase on average" over syzkaller.
//!
//! Scale: `DF_HOURS` (default 48), one run per fuzzer per device
//! (`DF_SEED` selects the seed).

use droidfuzz::config::FuzzerConfig;
use droidfuzz::engine::FuzzingEngine;
use droidfuzz::report::ascii_table;
use droidfuzz_bench::{env_f64, env_u64};
use simdevice::catalog;
use std::sync::Mutex;

fn main() {
    let hours = env_f64("DF_HOURS", 48.0);
    let seed = env_u64("DF_SEED", 1);
    println!("Per-driver kernel coverage, DroidFuzz vs Syzkaller ({hours} h)\n");
    let devices = catalog::all_devices();
    let rows = Mutex::new(Vec::new());
    let mut ratios = Vec::new();
    std::thread::scope(|scope| {
        for spec in &devices {
            let rows = &rows;
            scope.spawn(move || {
                let mut df = FuzzingEngine::new(spec.clone().boot(), FuzzerConfig::droidfuzz(seed));
                df.run_for_virtual_hours(hours);
                let mut syz =
                    FuzzingEngine::new(spec.clone().boot(), FuzzerConfig::syzkaller(seed));
                syz.run_for_virtual_hours(hours);
                let df_cov = df.per_driver_coverage();
                let syz_cov: std::collections::HashMap<String, usize> =
                    syz.per_driver_coverage().into_iter().collect();
                let mut local = Vec::new();
                for (driver, blocks) in df_cov {
                    let syz_blocks = syz_cov.get(&driver).copied().unwrap_or(0);
                    if blocks == 0 && syz_blocks == 0 {
                        continue;
                    }
                    let gain = if syz_blocks > 0 {
                        format!("{:+.0}%", 100.0 * (blocks as f64 / syz_blocks as f64 - 1.0))
                    } else {
                        "inf".into()
                    };
                    local.push((
                        spec.meta.id.clone(),
                        driver,
                        blocks,
                        syz_blocks,
                        gain,
                    ));
                }
                rows.lock().expect("no poisoning").extend(local);
            });
        }
    });
    let mut collected = rows.into_inner().expect("no poisoning");
    collected.sort();
    let table_rows: Vec<Vec<String>> = collected
        .iter()
        .map(|(dev, drv, df, syz, gain)| {
            vec![dev.clone(), drv.clone(), df.to_string(), syz.to_string(), gain.clone()]
        })
        .collect();
    for (_, _, df, syz, _) in &collected {
        if *syz > 0 {
            ratios.push(*df as f64 / *syz as f64 - 1.0);
        }
    }
    println!(
        "{}",
        ascii_table(&["Device", "Driver", "DroidFuzz", "Syzkaller", "Gain"], &table_rows)
    );
    let avg = 100.0 * ratios.iter().sum::<f64>() / ratios.len().max(1) as f64;
    println!(
        "average per-driver gain over drivers syzkaller reaches at all: {avg:+.0}% (paper: +17%)"
    );
}
