//! Regenerates **Figure 4** — kernel coverage of DroidFuzz vs syzkaller
//! over 48 virtual hours on devices A1, A2, B and C1 (the paper omits
//! D/E/C2 as following the same pattern; pass `DF_ALL_DEVICES=1` to plot
//! them too).
//!
//! Scale: `DF_HOURS` (default 48), `DF_REPEATS` (default 3).

use droidfuzz::config::FuzzerConfig;
use droidfuzz::report::ascii_chart;
use droidfuzz_bench::{env_f64, env_u64, run_matrix, MakeConfig};
use simdevice::catalog;

fn main() {
    let hours = env_f64("DF_HOURS", 48.0);
    let repeats = env_u64("DF_REPEATS", 3);
    let ids: &[&str] = if std::env::var("DF_ALL_DEVICES").is_ok() {
        &["A1", "A2", "B", "C1", "C2", "D", "E"]
    } else {
        &["A1", "A2", "B", "C1"]
    };
    let devices: Vec<_> = ids.iter().map(|id| catalog::by_id(id).expect("known id")).collect();
    println!(
        "Figure 4: coverage comparison DroidFuzz vs Syzkaller over {hours} h (mean of {repeats} runs)\n"
    );
    let variants: Vec<(&str, MakeConfig)> = vec![
        ("DroidFuzz", FuzzerConfig::droidfuzz),
        ("Syzkaller", FuzzerConfig::syzkaller),
    ];
    let results = run_matrix(&devices, &variants, hours, repeats);
    for chunk in results.chunks(2) {
        let (df, syz) = (&chunk[0], &chunk[1]);
        let title = format!(
            "Device {} — final coverage: DroidFuzz {:.0}, Syzkaller {:.0} ({:+.1}%)",
            df.device_id,
            df.mean_final_coverage(),
            syz.mean_final_coverage(),
            100.0 * (df.mean_final_coverage() / syz.mean_final_coverage().max(1.0) - 1.0),
        );
        println!(
            "{}",
            ascii_chart(
                &title,
                &[("DroidFuzz", &df.mean_series), ("Syzkaller", &syz.mean_series)],
                64,
                12,
            )
        );
        // The raw series, for external plotting.
        println!("  t(h), DroidFuzz, Syzkaller");
        for (i, (t, v)) in df.mean_series.points().iter().enumerate() {
            let syz_v = syz.mean_series.points().get(i).map_or(0.0, |&(_, v)| v);
            println!("  {:5.1}, {v:8.0}, {syz_v:8.0}", *t as f64 / 3_600_000_000.0);
        }
        println!();
    }
}
