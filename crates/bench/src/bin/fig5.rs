//! Regenerates **Figure 5** — coverage of DroidFuzz, Difuze, and
//! DroidFuzz-D over 48 virtual hours on devices A1 and A2 (the two devices
//! the paper adapted Difuze to), plus the Difuze interface-extraction
//! counts and the DroidFuzz-D vs Difuze lead the paper quantifies (≈34 %).
//!
//! Scale: `DF_HOURS` (default 48), `DF_REPEATS` (default 3).

use droidfuzz::baselines::difuze;
use droidfuzz::config::FuzzerConfig;
use droidfuzz::report::ascii_chart;
use droidfuzz_bench::{env_f64, env_u64, run_matrix, MakeConfig};
use simdevice::catalog;

fn main() {
    let hours = env_f64("DF_HOURS", 48.0);
    let repeats = env_u64("DF_REPEATS", 3);
    let devices = vec![catalog::device_a1(), catalog::device_a2()];
    for spec in &devices {
        let mut device = spec.clone().boot();
        println!(
            "Difuze interface extraction on {}: {} ioctl interfaces (paper: {} on real firmware)",
            spec.meta.id,
            difuze::extract_interfaces(&mut device),
            if spec.meta.id == "A1" { 285 } else { 232 },
        );
    }
    println!(
        "\nFigure 5: DroidFuzz vs Difuze vs DroidFuzz-D over {hours} h (mean of {repeats} runs)\n"
    );
    let variants: Vec<(&str, MakeConfig)> = vec![
        ("DroidFuzz", FuzzerConfig::droidfuzz),
        ("DroidFuzz-D", FuzzerConfig::droidfuzz_d),
        ("Difuze", FuzzerConfig::difuze),
    ];
    let results = run_matrix(&devices, &variants, hours, repeats);
    for chunk in results.chunks(3) {
        let (df, dfd, dif) = (&chunk[0], &chunk[1], &chunk[2]);
        let lead = 100.0 * (dfd.mean_final_coverage() / dif.mean_final_coverage().max(1.0) - 1.0);
        let title = format!(
            "Device {} — DroidFuzz {:.0}, DroidFuzz-D {:.0}, Difuze {:.0} (DF-D leads Difuze by {lead:.0}%)",
            df.device_id,
            df.mean_final_coverage(),
            dfd.mean_final_coverage(),
            dif.mean_final_coverage(),
        );
        println!(
            "{}",
            ascii_chart(
                &title,
                &[
                    ("DroidFuzz", &df.mean_series),
                    ("DroidFuzz-D", &dfd.mean_series),
                    ("Difuze", &dif.mean_series),
                ],
                64,
                12,
            )
        );
    }
}
