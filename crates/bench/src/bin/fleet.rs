//! Fleet orchestration demo: a synced multi-shard campaign versus the
//! same shards running as independent repeats — the speedup the corpus
//! hub and relation-graph sync buy, measured as executions-to-coverage —
//! plus a mid-campaign kill/resume exercise of the snapshot path.
//!
//! Scale: `DF_HOURS` (default 2 virtual hours), `DF_SHARDS` (falls back
//! to `DF_REPEATS`, then 4),
//! `DF_SYNC_MIN` (sync round interval in virtual minutes, default 15),
//! `DF_DEVICE` (default A1), `DF_FAULTS` (fault profile every engine
//! runs under: `reliable`, `flaky`, or `hostile`; default reliable).
//! `DF_SNAPSHOT_OUT` writes the final fleet snapshot to a file.
//!
//! The run ends with a fault-overhead comparison — the same small fleet
//! under `reliable` vs `flaky` — reported as one machine-readable JSON
//! line (`"bench":"fleet_fault_overhead"`) — and a thread-scaling arm:
//! the same campaign at 1/2/4/8 workers (`DF_PAR_SHARDS` shards, default
//! 8; `DF_PAR_HOURS` virtual hours, default min(DF_HOURS, 0.5)), one
//! `"bench":"fleet_parallel"` JSON line per point with wall-clock
//! executions/second and the speedup over the single-worker run. Every
//! point's final snapshot is asserted byte-identical to the
//! single-worker snapshot — the parallel executor is exercised as a
//! pure wall-clock optimization.
//!
//! A batched-execution arm (`"bench":"exec_batch"`) then compares the
//! historical per-program broker flow against the batched session on an
//! identical program stream (`DF_BATCH_PROGS` programs, default 2000, in
//! batches of `DF_BATCH`, default 32), asserts outcome equality, measures
//! hostile-fault overhead at fleet granularity (`DF_BATCH_HOURS` virtual
//! hours, default 0.15), and sweeps batch {1,4,32} x threads {1,4} for
//! snapshot byte-identity.

use droidfuzz::config::FuzzerConfig;
use droidfuzz::descs::build_syscall_table;
use droidfuzz::exec::Broker;
use droidfuzz::fleet::{Fleet, FleetConfig, FleetResult};
use droidfuzz::generate::random_generate;
use droidfuzz::report::ascii_chart;
use droidfuzz_bench::{env_f64, env_u64};
use rand::rngs::StdRng;
use rand::SeedableRng;
use simdevice::catalog;
use simdevice::faults::FaultProfile;

fn fleet_config(shards: usize, hours: f64, sync_min: f64, sync: bool) -> FleetConfig {
    FleetConfig {
        shards,
        hours,
        sync_interval_hours: sync_min / 60.0,
        sync,
        ..FleetConfig::default()
    }
}

/// Executions spent per distinct kernel block — lower is better; the
/// fleet's cost metric for "executions-to-coverage".
fn execs_per_block(result: &FleetResult) -> f64 {
    result.executions as f64 / result.union_coverage.max(1) as f64
}

fn main() {
    let hours = env_f64("DF_HOURS", 2.0);
    // DF_REPEATS (the knob the other bench binaries use) doubles as the
    // shard count so one env block drives the whole suite.
    let shards = env_u64("DF_SHARDS", env_u64("DF_REPEATS", 4)).max(1) as usize;
    let sync_min = env_f64("DF_SYNC_MIN", 15.0);
    let device = std::env::var("DF_DEVICE").unwrap_or_else(|_| "A1".into());
    let Some(spec) = catalog::by_id(&device) else {
        eprintln!("unknown device {device}; known: A1 A2 B C1 C2 D E");
        std::process::exit(2);
    };
    let profile: FaultProfile = match std::env::var("DF_FAULTS").unwrap_or_default().parse() {
        Ok(profile) => profile,
        Err(e) => {
            eprintln!("bad DF_FAULTS: {e}");
            std::process::exit(2);
        }
    };
    let make_config = move |seed| FuzzerConfig::droidfuzz(seed).with_fault_profile(profile);

    println!(
        "fleet campaign: {shards} shards x {hours} h on device {device}, sync every {sync_min} virtual min, fault profile {profile}\n"
    );

    let synced =
        Fleet::new(fleet_config(shards, hours, sync_min, true)).run(&spec, make_config);
    println!("== synced fleet ==");
    println!("{}", synced.stats.render());

    let independent =
        Fleet::new(fleet_config(shards, hours, sync_min, false)).run(&spec, make_config);
    println!("== independent repeats (no sync) ==");
    println!("{}", independent.stats.render());

    println!(
        "{}",
        ascii_chart(
            "union coverage over the campaign",
            &[("synced", &synced.union_series), ("independent", &independent.union_series)],
            64,
            12,
        )
    );

    let synced_cost = execs_per_block(&synced);
    let independent_cost = execs_per_block(&independent);
    println!(
        "executions-to-coverage: synced {:.1} execs/block ({} execs -> {} blocks), \
         independent {:.1} execs/block ({} execs -> {} blocks)",
        synced_cost,
        synced.executions,
        synced.union_coverage,
        independent_cost,
        independent.executions,
        independent.union_coverage,
    );
    if synced_cost < independent_cost {
        println!(
            "sync speedup: {:.2}x fewer executions per covered block",
            independent_cost / synced_cost
        );
    } else {
        println!("no speedup at this scale; longer campaigns amortize the sync better");
    }

    // Kill/resume exercise: kill the synced fleet after half its rounds,
    // then resume from the snapshot it left behind.
    let rounds = ((hours * 60.0) / sync_min).ceil() as usize;
    let kill_at = (rounds / 2).max(1);
    let fleet = Fleet::new(FleetConfig {
        kill_after_rounds: Some(kill_at),
        ..fleet_config(shards, hours, sync_min, true)
    });
    let killed = fleet.run(&spec, make_config);
    let resumed = Fleet::new(fleet_config(shards, hours, sync_min, true))
        .resume(&spec, make_config, &killed.snapshot)
        .expect("snapshot restores");
    println!(
        "\nkill/resume: killed after round {}/{} (union coverage {}), resumed to round {} \
         (union coverage {}, {} crashes carried over, finished: {})",
        killed.rounds_completed,
        rounds,
        killed.union_coverage,
        resumed.rounds_completed,
        resumed.union_coverage,
        resumed.crashes.len(),
        resumed.finished,
    );

    // Fault-overhead comparison: the same small fleet under reliable vs
    // flaky devices — how many extra executions a covered block costs
    // when links drop, HALs die, and devices hang. Capped at half a
    // virtual hour so the comparison stays cheap at any DF_HOURS.
    let overhead_hours = hours.min(0.5);
    let arm = |p: FaultProfile| {
        Fleet::new(fleet_config(shards, overhead_hours, sync_min.min(7.5), true))
            .run(&spec, move |seed| FuzzerConfig::droidfuzz(seed).with_fault_profile(p))
    };
    let reliable = arm(FaultProfile::Reliable);
    let flaky = arm(FaultProfile::Flaky);
    let reliable_cost = execs_per_block(&reliable);
    let flaky_cost = execs_per_block(&flaky);
    println!(
        "\nfault overhead ({shards} shards x {overhead_hours} h): reliable {:.1} execs/block, \
         flaky {:.1} execs/block ({} faults injected, {} retries, {} reprovisions)",
        reliable_cost,
        flaky_cost,
        flaky.fault_totals.injected,
        flaky.fault_totals.transient_retries,
        flaky.fault_totals.reprovisions,
    );
    println!(
        "{{\"bench\":\"fleet_fault_overhead\",\"device\":\"{device}\",\"shards\":{shards},\
         \"hours\":{overhead_hours},\"reliable_executions\":{},\"reliable_coverage\":{},\
         \"flaky_executions\":{},\"flaky_coverage\":{},\"flaky_faults_injected\":{},\
         \"reliable_execs_per_block\":{reliable_cost:.3},\"flaky_execs_per_block\":{flaky_cost:.3},\
         \"overhead_ratio\":{:.3}}}",
        reliable.executions,
        reliable.union_coverage,
        flaky.executions,
        flaky.union_coverage,
        flaky.fault_totals.injected,
        flaky_cost / reliable_cost.max(1e-9),
    );

    // Thread-scaling arm: the identical campaign run at 1/2/4/8 workers.
    // The virtual clock makes the *results* bit-identical across thread
    // counts (asserted below); the wall clock measures how well the shard
    // slices overlap on this host's cores.
    let par_shards = env_u64("DF_PAR_SHARDS", 8).max(1) as usize;
    let par_hours = env_f64("DF_PAR_HOURS", hours.min(0.5));
    let par_sync = env_f64("DF_PAR_SYNC_MIN", sync_min.min(7.5));
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    println!(
        "\nthread scaling: {par_shards} shards x {par_hours} h on device {device}, \
         {cores} core(s) available"
    );
    let par_arm = |threads: usize| {
        let cfg = FleetConfig { threads, ..fleet_config(par_shards, par_hours, par_sync, true) };
        let start = std::time::Instant::now();
        let result = Fleet::new(cfg).run(&spec, FuzzerConfig::droidfuzz);
        (result, start.elapsed().as_secs_f64())
    };
    let mut base_rate = 0.0_f64;
    let mut base_snapshot = String::new();
    let mut measured = Vec::new();
    for &threads in &[1_usize, 2, 4, 8] {
        let workers = threads.min(par_shards);
        if measured.contains(&workers) {
            continue; // clamped onto an already-measured point
        }
        measured.push(workers);
        let (result, wall) = par_arm(workers);
        let rate = result.executions as f64 / wall.max(1e-9);
        if threads == 1 {
            base_rate = rate;
            base_snapshot = result.snapshot.clone();
        }
        assert_eq!(
            result.snapshot, base_snapshot,
            "threads={workers} snapshot diverged from the single-worker run"
        );
        let speedup = rate / base_rate.max(1e-9);
        println!(
            "  threads={workers}: {} execs in {wall:.2} s wall = {rate:.0} execs/s \
             ({speedup:.2}x vs threads=1, snapshot identical)",
            result.executions,
        );
        println!(
            "{{\"bench\":\"fleet_parallel\",\"device\":\"{device}\",\"shards\":{par_shards},\
             \"hours\":{par_hours},\"threads\":{workers},\"cores\":{cores},\
             \"executions\":{},\"wall_secs\":{wall:.3},\"execs_per_sec\":{rate:.1},\
             \"speedup\":{speedup:.3}}}",
            result.executions,
        );
    }

    // Batched-execution arm: the historical per-program broker flow
    // (per-exec trace attach/detach, per-call descriptor clones, fresh
    // collection buffers, a full coverage-map scan against a HashSet seen
    // filter) versus the batched session (persistent trace, recycled
    // scratch, O(new) page-marked coverage delta) over the identical
    // program stream on identical devices. Outcome equality is asserted
    // program by program — the speedup is pure host-side amortization.
    let batch_progs = env_u64("DF_BATCH_PROGS", 2_000).max(1) as usize;
    let batch_size = env_u64("DF_BATCH", 32).max(1) as usize;
    let mut ref_device = catalog::by_id(&device).expect("known device").boot();
    let mut fast_device = catalog::by_id(&device).expect("known device").boot();
    let batch_table = build_syscall_table(ref_device.kernel());
    let mut prog_rng = StdRng::seed_from_u64(0xBA7C);
    let progs: Vec<_> =
        (0..batch_progs).map(|_| random_generate(&batch_table, 12, &mut prog_rng)).collect();

    let mut ref_broker = Broker::new();
    let start = std::time::Instant::now();
    let ref_outcomes: Vec<_> = progs
        .iter()
        .map(|p| ref_broker.execute_reference(&mut ref_device, &batch_table, p))
        .collect();
    let ref_wall = start.elapsed().as_secs_f64();
    let ref_rate = batch_progs as f64 / ref_wall.max(1e-9);

    let mut fast_broker = Broker::new();
    let start = std::time::Instant::now();
    let mut fast_outcomes = Vec::with_capacity(batch_progs);
    for chunk in progs.chunks(batch_size) {
        fast_outcomes.extend(fast_broker.execute_batch(&mut fast_device, &batch_table, chunk));
    }
    let fast_wall = start.elapsed().as_secs_f64();
    let fast_rate = batch_progs as f64 / fast_wall.max(1e-9);
    assert_eq!(ref_outcomes.len(), fast_outcomes.len());
    for (i, (a, b)) in ref_outcomes.iter().zip(&fast_outcomes).enumerate() {
        assert_eq!(a, b, "batched outcome {i} diverged from the reference path");
    }
    let exec_speedup = fast_rate / ref_rate.max(1e-9);
    println!(
        "\nbatched execution ({batch_progs} programs, batch={batch_size}): \
         reference {ref_rate:.0} progs/s, batched {fast_rate:.0} progs/s \
         ({exec_speedup:.2}x, outcomes identical)"
    );

    // The same comparison under hostile faults, at fleet granularity: a
    // hostile campaign with exec_batch=32 must produce the per-program
    // snapshot byte for byte, and its wall-clock overhead is measured
    // rather than assumed.
    let sweep_hours = env_f64("DF_BATCH_HOURS", 0.15);
    let sweep_cfg = |threads: usize| FleetConfig {
        threads,
        ..fleet_config(3, sweep_hours, sync_min.min(7.5), true)
    };
    let mk_batch = |batch: usize, p: FaultProfile| {
        move |seed: u64| {
            FuzzerConfig::droidfuzz(seed).with_fault_profile(p).with_exec_batch(batch)
        }
    };
    let timed = |threads: usize, batch: usize, p: FaultProfile| {
        let start = std::time::Instant::now();
        let result = Fleet::new(sweep_cfg(threads)).run(&spec, mk_batch(batch, p));
        (result, start.elapsed().as_secs_f64())
    };
    let (hostile_pp, hostile_pp_wall) = timed(1, 1, FaultProfile::Hostile);
    let (hostile_batched, hostile_batched_wall) = timed(1, 32, FaultProfile::Hostile);
    assert_eq!(
        hostile_pp.snapshot, hostile_batched.snapshot,
        "hostile batched snapshot diverged from per-program"
    );
    let hostile_pp_rate = hostile_pp.executions as f64 / hostile_pp_wall.max(1e-9);
    let hostile_batched_rate =
        hostile_batched.executions as f64 / hostile_batched_wall.max(1e-9);
    let hostile_speedup = hostile_batched_rate / hostile_pp_rate.max(1e-9);
    println!(
        "hostile fleet overhead: per-program {hostile_pp_rate:.0} execs/s, \
         batch=32 {hostile_batched_rate:.0} execs/s ({hostile_speedup:.2}x, \
         {} faults injected, snapshots identical)",
        hostile_batched.fault_totals.injected,
    );

    // Reliable-profile snapshot sweep: batch {1,4,32} x threads {1,4}
    // all byte-identical.
    let sweep_base = Fleet::new(sweep_cfg(1)).run(&spec, mk_batch(1, FaultProfile::Reliable));
    for &batch in &[4_usize, 32] {
        for &threads in &[1_usize, 4] {
            let run =
                Fleet::new(sweep_cfg(threads)).run(&spec, mk_batch(batch, FaultProfile::Reliable));
            assert_eq!(
                sweep_base.snapshot, run.snapshot,
                "batch={batch} threads={threads} snapshot diverged"
            );
        }
    }
    println!("snapshot sweep: batch {{1,4,32}} x threads {{1,4}} byte-identical");
    println!(
        "{{\"bench\":\"exec_batch\",\"device\":\"{device}\",\"progs\":{batch_progs},\
         \"batch\":{batch_size},\"reference_wall_secs\":{ref_wall:.3},\
         \"reference_progs_per_sec\":{ref_rate:.1},\"batched_wall_secs\":{fast_wall:.3},\
         \"batched_progs_per_sec\":{fast_rate:.1},\"speedup\":{exec_speedup:.3},\
         \"hostile_per_program_execs_per_sec\":{hostile_pp_rate:.1},\
         \"hostile_batched_execs_per_sec\":{hostile_batched_rate:.1},\
         \"hostile_speedup\":{hostile_speedup:.3},\
         \"hostile_faults_injected\":{}}}",
        hostile_batched.fault_totals.injected,
    );

    if let Ok(path) = std::env::var("DF_SNAPSHOT_OUT") {
        if let Err(e) = std::fs::write(&path, &synced.snapshot) {
            eprintln!("cannot write snapshot {path}: {e}");
            std::process::exit(1);
        }
        println!("wrote fleet snapshot to {path}");
    }
}
