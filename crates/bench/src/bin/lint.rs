//! Lint-gate benchmark: raw linter throughput over generated programs,
//! gate throughput (lint + repair on deliberately broken inputs), and the
//! end-to-end overhead the gate adds to a fleet campaign, measured by
//! running the same campaign with the gate on and off.
//!
//! Scale: `DF_PROGS` (programs for the throughput phase, default 20000),
//! `DF_HOURS` (campaign length for the overhead phase, default 0.5),
//! `DF_SHARDS` (default 2), `DF_SYNC_MIN` (default 7.5), `DF_DEVICE`
//! (default A1). The run ends with one machine-readable JSON line
//! (`"bench":"lint_overhead"`).

use droidfuzz::analysis::{gate_prog, lint_prog, LintCounters};
use droidfuzz::config::FuzzerConfig;
use droidfuzz::engine::FuzzingEngine;
use droidfuzz::fleet::{Fleet, FleetConfig};
use droidfuzz_bench::{env_f64, env_u64};
use fuzzlang::gen::generate;
use fuzzlang::prog::{ArgValue, Prog};
use rand::rngs::StdRng;
use rand::SeedableRng;
use simdevice::catalog;
use std::time::Instant;

/// Breaks a program the way corruption reaches the gate in practice: the
/// last ref argument is re-pointed past the end of the program, forcing
/// the repair path instead of the fast lint-only path.
fn corrupt(prog: &Prog) -> Prog {
    let mut broken = prog.clone();
    let len = broken.calls.len();
    for call in broken.calls.iter_mut().rev() {
        if let Some(arg) = call
            .args
            .iter_mut()
            .rev()
            .find(|a| matches!(a, ArgValue::Ref(_)))
        {
            *arg = ArgValue::Ref(len + 7);
            return broken;
        }
    }
    broken
}

fn main() {
    let progs = env_u64("DF_PROGS", 20_000) as usize;
    let hours = env_f64("DF_HOURS", 0.5);
    let shards = env_u64("DF_SHARDS", 2).max(1) as usize;
    let sync_min = env_f64("DF_SYNC_MIN", 7.5);
    let device = std::env::var("DF_DEVICE").unwrap_or_else(|_| "A1".into());
    let Some(spec) = catalog::by_id(&device) else {
        eprintln!("unknown device {device}; known: A1 A2 B C1 C2 D E");
        std::process::exit(2);
    };

    // The campaign vocabulary (syscalls + probed HAL interfaces).
    let engine = FuzzingEngine::new(spec.clone().boot(), FuzzerConfig::droidfuzz(1));
    let table = engine.desc_table();
    let mut rng = StdRng::seed_from_u64(0x11A7);
    let inputs: Vec<Prog> = (0..progs).map(|_| generate(table, 12, &mut rng)).collect();

    // Phase 1: raw lint throughput on healthy generator output.
    let start = Instant::now();
    let mut findings = 0usize;
    for prog in &inputs {
        findings += lint_prog(prog, table).diagnostics.len();
    }
    let lint_secs = start.elapsed().as_secs_f64();
    let lint_rate = progs as f64 / lint_secs.max(1e-9);
    println!(
        "lint throughput: {progs} programs in {lint_secs:.3} s -> {lint_rate:.0} progs/sec \
         ({findings} findings, none gating)"
    );

    // Phase 2: gate throughput on broken inputs (lint + repair + re-lint).
    let mut counters = LintCounters::default();
    let mut broken: Vec<Prog> = inputs.iter().map(corrupt).collect();
    let start = Instant::now();
    let mut passed = 0usize;
    for prog in &mut broken {
        if gate_prog(prog, table, &mut counters) {
            passed += 1;
        }
    }
    let gate_secs = start.elapsed().as_secs_f64();
    let gate_rate = progs as f64 / gate_secs.max(1e-9);
    println!(
        "gate throughput on corrupted inputs: {gate_rate:.0} progs/sec \
         ({passed} passed, {} repaired, {} rejected)",
        counters.repaired, counters.rejected
    );

    // Phase 3: end-to-end overhead — the identical fleet campaign with
    // the gate on vs off. Same seeds, same fault-free devices; the only
    // difference is `lint_gate`.
    let fleet_config = FleetConfig {
        shards,
        hours,
        sync_interval_hours: sync_min / 60.0,
        ..FleetConfig::default()
    };
    let arm = |gated: bool| {
        let start = Instant::now();
        let result = Fleet::new(fleet_config.clone()).run(&spec, move |seed| {
            FuzzerConfig::droidfuzz(seed).with_lint_gate(gated)
        });
        (result, start.elapsed().as_secs_f64())
    };
    let (gated, gated_secs) = arm(true);
    let (ungated, ungated_secs) = arm(false);
    let overhead = gated_secs / ungated_secs.max(1e-9);
    println!(
        "end-to-end: gated {gated_secs:.2} s / ungated {ungated_secs:.2} s \
         ({:.1}% overhead) over {shards} shards x {hours} h; gated campaign \
         repaired {} and rejected {} programs",
        (overhead - 1.0) * 100.0,
        gated.lint_totals.repaired,
        gated.lint_totals.rejected,
    );

    println!(
        "{{\"bench\":\"lint_overhead\",\"device\":\"{device}\",\"progs\":{progs},\
         \"lint_progs_per_sec\":{lint_rate:.0},\"gate_progs_per_sec\":{gate_rate:.0},\
         \"repaired\":{},\"rejected\":{},\"shards\":{shards},\"hours\":{hours},\
         \"gated_wall_secs\":{gated_secs:.3},\"ungated_wall_secs\":{ungated_secs:.3},\
         \"gated_executions\":{},\"ungated_executions\":{},\"overhead_ratio\":{overhead:.3}}}",
        counters.repaired,
        counters.rejected,
        gated.executions,
        ungated.executions,
    );
}
