//! Lint-gate benchmark: raw linter throughput over generated programs,
//! gate throughput (lint + repair on deliberately broken inputs), the
//! end-to-end overhead the gate adds to a fleet campaign (same campaign,
//! gate on vs off), the abstract-interpretation overhead on top of the
//! flow-insensitive lint, and the static-prior warmup race (DroidFuzz-S
//! vs cold-start executions-to-first-deep-state).
//!
//! Scale: `DF_PROGS` (programs for the throughput phases, default 20000),
//! `DF_HOURS` (campaign length for the overhead phase, default 0.5),
//! `DF_SHARDS` (default 2), `DF_SYNC_MIN` (default 7.5), `DF_DEVICE`
//! (default A1), `DF_WARMUP_MAX` (execution cap per warmup arm, default
//! 4000), `DF_WARMUP_SEEDS` (campaigns per warmup arm, default 3),
//! `DF_DEEP_DEPTH` (static depth that counts as "deep", default 2). The
//! run emits three machine-readable JSON lines: `"bench":"lint_overhead"`,
//! `"bench":"absint_overhead"`, and `"bench":"static_prior_warmup"`.

use droidfuzz::analysis::{
    absint_prog, gate_prog, gate_prog_static, lint_prog, static_depth, LintCounters, ModelSet,
};
use droidfuzz::config::FuzzerConfig;
use droidfuzz::engine::FuzzingEngine;
use droidfuzz::fleet::{Fleet, FleetConfig};
use droidfuzz_bench::{env_f64, env_u64};
use fuzzlang::gen::generate;
use fuzzlang::prog::{ArgValue, Prog};
use rand::rngs::StdRng;
use rand::SeedableRng;
use simdevice::catalog;
use std::time::Instant;

/// Breaks a program the way corruption reaches the gate in practice: the
/// last ref argument is re-pointed past the end of the program, forcing
/// the repair path instead of the fast lint-only path.
fn corrupt(prog: &Prog) -> Prog {
    let mut broken = prog.clone();
    let len = broken.calls.len();
    for call in broken.calls.iter_mut().rev() {
        if let Some(arg) = call
            .args
            .iter_mut()
            .rev()
            .find(|a| matches!(a, ArgValue::Ref(_)))
        {
            *arg = ArgValue::Ref(len + 7);
            return broken;
        }
    }
    broken
}

fn main() {
    let progs = env_u64("DF_PROGS", 20_000) as usize;
    let hours = env_f64("DF_HOURS", 0.5);
    let shards = env_u64("DF_SHARDS", 2).max(1) as usize;
    let sync_min = env_f64("DF_SYNC_MIN", 7.5);
    let device = std::env::var("DF_DEVICE").unwrap_or_else(|_| "A1".into());
    let Some(spec) = catalog::by_id(&device) else {
        eprintln!("unknown device {device}; known: A1 A2 B C1 C2 D E");
        std::process::exit(2);
    };

    // The campaign vocabulary (syscalls + probed HAL interfaces).
    let engine = FuzzingEngine::new(spec.clone().boot(), FuzzerConfig::droidfuzz(1));
    let table = engine.desc_table();
    let mut rng = StdRng::seed_from_u64(0x11A7);
    let inputs: Vec<Prog> = (0..progs).map(|_| generate(table, 12, &mut rng)).collect();

    // Phase 1: raw lint throughput on healthy generator output.
    let start = Instant::now();
    let mut findings = 0usize;
    for prog in &inputs {
        findings += lint_prog(prog, table).diagnostics.len();
    }
    let lint_secs = start.elapsed().as_secs_f64();
    let lint_rate = progs as f64 / lint_secs.max(1e-9);
    println!(
        "lint throughput: {progs} programs in {lint_secs:.3} s -> {lint_rate:.0} progs/sec \
         ({findings} findings, none gating)"
    );

    // Phase 2: gate throughput on broken inputs (lint + repair + re-lint).
    let mut counters = LintCounters::default();
    let mut broken: Vec<Prog> = inputs.iter().map(corrupt).collect();
    let start = Instant::now();
    let mut passed = 0usize;
    for prog in &mut broken {
        if gate_prog(prog, table, &mut counters) {
            passed += 1;
        }
    }
    let gate_secs = start.elapsed().as_secs_f64();
    let gate_rate = progs as f64 / gate_secs.max(1e-9);
    println!(
        "gate throughput on corrupted inputs: {gate_rate:.0} progs/sec \
         ({passed} passed, {} repaired, {} rejected)",
        counters.repaired, counters.rejected
    );

    // Phase 3: end-to-end overhead — the identical fleet campaign with
    // the gate on vs off. Same seeds, same fault-free devices; the only
    // difference is `lint_gate`.
    let fleet_config = FleetConfig {
        shards,
        hours,
        sync_interval_hours: sync_min / 60.0,
        ..FleetConfig::default()
    };
    let arm = |gated: bool| {
        let start = Instant::now();
        let result = Fleet::new(fleet_config.clone()).run(&spec, move |seed| {
            FuzzerConfig::droidfuzz(seed).with_lint_gate(gated)
        });
        (result, start.elapsed().as_secs_f64())
    };
    let (gated, gated_secs) = arm(true);
    let (ungated, ungated_secs) = arm(false);
    let overhead = gated_secs / ungated_secs.max(1e-9);
    println!(
        "end-to-end: gated {gated_secs:.2} s / ungated {ungated_secs:.2} s \
         ({:.1}% overhead) over {shards} shards x {hours} h; gated campaign \
         repaired {} and rejected {} programs",
        (overhead - 1.0) * 100.0,
        gated.lint_totals.repaired,
        gated.lint_totals.rejected,
    );

    println!(
        "{{\"bench\":\"lint_overhead\",\"device\":\"{device}\",\"progs\":{progs},\
         \"lint_progs_per_sec\":{lint_rate:.0},\"gate_progs_per_sec\":{gate_rate:.0},\
         \"repaired\":{},\"rejected\":{},\"shards\":{shards},\"hours\":{hours},\
         \"gated_wall_secs\":{gated_secs:.3},\"ungated_wall_secs\":{ungated_secs:.3},\
         \"gated_executions\":{},\"ungated_executions\":{},\"overhead_ratio\":{overhead:.3}}}",
        counters.repaired,
        counters.rejected,
        gated.executions,
        ungated.executions,
    );

    // Phase 4: abstract-interpretation overhead — absint_prog and the
    // full static gate (absint + prerequisite repair) over the same
    // healthy inputs the raw linter saw, so the two rates are comparable.
    let models = ModelSet::for_kernel(engine.device().kernel_ref());
    let start = Instant::now();
    let mut depth_sum = 0u64;
    let mut flagged = 0usize;
    for prog in &inputs {
        let result = absint_prog(prog, table, &models);
        depth_sum += u64::from(result.depth);
        flagged += usize::from(!result.report.is_clean());
    }
    let absint_secs = start.elapsed().as_secs_f64();
    let absint_rate = progs as f64 / absint_secs.max(1e-9);
    let mut static_counters = LintCounters::default();
    let mut gated_inputs: Vec<Prog> = inputs.clone();
    let start = Instant::now();
    let mut static_passed = 0usize;
    for prog in &mut gated_inputs {
        if gate_prog_static(prog, table, &models, &mut static_counters) {
            static_passed += 1;
        }
    }
    let static_gate_secs = start.elapsed().as_secs_f64();
    let static_gate_rate = progs as f64 / static_gate_secs.max(1e-9);
    let absint_vs_lint = absint_secs / lint_secs.max(1e-9);
    println!(
        "absint throughput: {absint_rate:.0} progs/sec ({:.2}x the raw lint), \
         mean static depth {:.2}, {flagged} programs flagged; static gate \
         {static_gate_rate:.0} progs/sec ({static_passed} passed, {} repaired, {} rejected)",
        absint_vs_lint,
        depth_sum as f64 / progs.max(1) as f64,
        static_counters.absint_repaired,
        static_counters.absint_rejected,
    );
    println!(
        "{{\"bench\":\"absint_overhead\",\"device\":\"{device}\",\"progs\":{progs},\
         \"lint_progs_per_sec\":{lint_rate:.0},\"absint_progs_per_sec\":{absint_rate:.0},\
         \"static_gate_progs_per_sec\":{static_gate_rate:.0},\
         \"absint_vs_lint_ratio\":{absint_vs_lint:.3},\
         \"mean_static_depth\":{:.3},\"flagged\":{flagged},\
         \"absint_repaired\":{},\"absint_rejected\":{}}}",
        depth_sum as f64 / progs.max(1) as f64,
        static_counters.absint_repaired,
        static_counters.absint_rejected,
    );

    // Phase 5: static-prior warmup — how many executions until a corpus
    // seed reaches a deep driver state, with the model-derived relation
    // prior (DroidFuzz-S) vs a cold-start relation graph (DroidFuzz).
    // Depth is measured by the same absint scorer for both arms, so the
    // only difference is how fast each campaign *finds* a deep program.
    let warmup_max = env_u64("DF_WARMUP_MAX", 4000);
    let warmup_seeds = env_u64("DF_WARMUP_SEEDS", 3).max(1);
    let deep = env_u64("DF_DEEP_DEPTH", 2) as u32;
    let warmup_arm = |mk: fn(u64) -> FuzzerConfig| -> (f64, u64) {
        let mut total = 0u64;
        let mut hits = 0u64;
        for seed in 1..=warmup_seeds {
            let mut engine = FuzzingEngine::new(spec.clone().boot(), mk(seed));
            let scorer = ModelSet::for_kernel(engine.device().kernel_ref());
            let mut checked = engine.corpus().admitted();
            let executions = loop {
                engine.step();
                if engine.corpus().admitted() != checked {
                    checked = engine.corpus().admitted();
                    let best = engine
                        .corpus()
                        .seeds()
                        .iter()
                        .map(|s| static_depth(&s.prog, engine.desc_table(), &scorer))
                        .max()
                        .unwrap_or(0);
                    if best >= deep {
                        hits += 1;
                        break engine.executions();
                    }
                }
                if engine.executions() >= warmup_max {
                    break engine.executions();
                }
            };
            total += executions;
        }
        (total as f64 / warmup_seeds as f64, hits)
    };
    let (warm_execs, warm_hits) = warmup_arm(FuzzerConfig::droidfuzz_s);
    let (cold_execs, cold_hits) = warmup_arm(FuzzerConfig::droidfuzz);
    println!(
        "static-prior warmup to depth>={deep}: DroidFuzz-S {warm_execs:.0} executions \
         ({warm_hits}/{warmup_seeds} runs), cold start {cold_execs:.0} executions \
         ({cold_hits}/{warmup_seeds} runs)"
    );
    println!(
        "{{\"bench\":\"static_prior_warmup\",\"device\":\"{device}\",\
         \"deep_depth\":{deep},\"cap\":{warmup_max},\"runs\":{warmup_seeds},\
         \"prior_executions_to_deep\":{warm_execs:.1},\"prior_runs_reached\":{warm_hits},\
         \"cold_executions_to_deep\":{cold_execs:.1},\"cold_runs_reached\":{cold_hits},\
         \"speedup_ratio\":{:.3}}}",
        cold_execs / warm_execs.max(1e-9),
    );
}
