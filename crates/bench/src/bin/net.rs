//! Wire-layer microbenchmarks: codec encode/decode throughput on
//! realistic corpus-bearing messages, and the end-to-end cost of a
//! distributed sync round over the in-process loopback transport.
//!
//! Scale: `DF_HOURS` (default 0.15 virtual hours for the campaign arm),
//! `DF_SHARDS` (falls back to `DF_REPEATS`, then 2), `DF_SYNC_MIN`
//! (default 3), `DF_DEVICE` (default A1), `DF_CODEC_MSGS` (messages per
//! codec arm, default 5000).
//!
//! Ends with two machine-readable JSON lines (`"bench":"net_codec"` and
//! `"bench":"net_sync_roundtrip"`).

use droidfuzz::config::FuzzerConfig;
use droidfuzz::engine::FuzzingEngine;
use droidfuzz::fleet::FleetConfig;
use droidfuzz::net::{
    decode_frame, decode_message, encode_frame, encode_message, HubServer, LoopbackConnector,
    Message, ServeConfig, WireUpdate, WorkerConfig, WorkerRuntime,
};
use droidfuzz_bench::{env_f64, env_u64};
use simdevice::catalog;
use simdevice::faults::FaultProfile;
use std::thread;
use std::time::Instant;

fn main() {
    let hours = env_f64("DF_HOURS", 0.15);
    let shards = env_u64("DF_SHARDS", env_u64("DF_REPEATS", 2)).max(1) as usize;
    let sync_min = env_f64("DF_SYNC_MIN", 3.0);
    let codec_msgs = env_u64("DF_CODEC_MSGS", 5_000).max(1);
    let device = std::env::var("DF_DEVICE").unwrap_or_else(|_| "A1".into());
    let Some(spec) = catalog::by_id(&device) else {
        eprintln!("unknown device {device}; known: A1 A2 B C1 C2 D E");
        std::process::exit(2);
    };

    println!(
        "wire bench on device {device}: {codec_msgs} codec messages, then a \
         {shards}-shard x {hours} h loopback campaign\n"
    );

    // -- codec throughput -------------------------------------------
    // Realistic payloads: push updates carrying real corpus deltas and
    // crash records from a briefly-fuzzed engine, not synthetic strings.
    let mut engine = FuzzingEngine::new(spec.clone().boot(), FuzzerConfig::droidfuzz(1));
    engine.run_for_virtual_hours(0.02);
    let corpus = engine.export_corpus();
    let crashes: Vec<_> = engine.crash_db().records().into_iter().cloned().collect();
    let chunks: Vec<&str> = corpus.split("# seed ").filter(|c| !c.is_empty()).collect();
    let messages: Vec<Message> = (0..codec_msgs)
        .map(|i| Message::PushUpdate {
            round: i as usize % 8,
            update: WireUpdate {
                shard: i as usize % shards,
                corpus_delta: format!("# seed {}", chunks[i as usize % chunks.len().max(1)]),
                new_blocks: (0..16).map(|b| i * 131 + b).collect(),
                relations_text: (i % 4 == 0)
                    .then(|| engine.relation_graph().export(engine.desc_table())),
                crashes: crashes.clone(),
            },
        })
        .collect();

    let start = Instant::now();
    let frames: Vec<Vec<u8>> = messages
        .iter()
        .enumerate()
        .map(|(seq, msg)| encode_frame(seq as u64, encode_message(msg).as_bytes()))
        .collect();
    let encode_secs = start.elapsed().as_secs_f64();
    let wire_bytes: usize = frames.iter().map(Vec::len).sum();

    let start = Instant::now();
    let mut decoded = 0u64;
    for frame in &frames {
        let (_, payload, _) = decode_frame(frame).expect("frame decodes");
        let text = std::str::from_utf8(&payload).expect("payload is UTF-8");
        decode_message(text).expect("message decodes");
        decoded += 1;
    }
    let decode_secs = start.elapsed().as_secs_f64();
    assert_eq!(decoded, codec_msgs);
    let encode_rate = codec_msgs as f64 / encode_secs.max(1e-9);
    let decode_rate = codec_msgs as f64 / decode_secs.max(1e-9);
    let mib = |secs: f64| wire_bytes as f64 / secs.max(1e-9) / (1024.0 * 1024.0);
    println!(
        "codec: {codec_msgs} push updates ({} KiB framed) encode {encode_rate:.0} msg/s \
         ({:.1} MiB/s), decode {decode_rate:.0} msg/s ({:.1} MiB/s)",
        wire_bytes / 1024,
        mib(encode_secs),
        mib(decode_secs),
    );

    // -- distributed sync round trip --------------------------------
    // A real hub + one worker over reliable loopback: what a sync
    // barrier costs end to end (pushes, ordered apply, pulls, round
    // finalize) beyond the engines' own fuzzing time.
    let fleet = FleetConfig {
        shards,
        hours,
        sync_interval_hours: sync_min / 60.0,
        ..FleetConfig::default()
    };
    let serve = ServeConfig {
        fleet,
        device: device.clone(),
        variant: "droidfuzz".into(),
        seed: 1,
    };
    let (connector, listener) = LoopbackConnector::new(FaultProfile::Reliable, 1);
    let start = Instant::now();
    let hub = thread::spawn(move || HubServer::new(serve).serve(listener, None, None));
    let worker = WorkerRuntime::new(WorkerConfig {
        shards,
        threads: 0,
        name: "bench".into(),
        max_link_retries: 3,
    })
    .run(Box::new(connector))
    .expect("worker completes");
    let hub = hub.join().expect("hub thread").expect("hub completes");
    let campaign_secs = start.elapsed().as_secs_f64();
    let rounds = hub.rounds_completed.max(1);
    let net = hub.net_totals;
    let round_ms = campaign_secs / rounds as f64 * 1e3;
    let frames_total = net.frames_sent + net.frames_received;
    println!(
        "sync round trip: {} round(s) of {shards} shard(s) in {campaign_secs:.3} s \
         -> {round_ms:.2} ms per round, {} frames ({} KiB) on the wire, cov={}",
        rounds,
        frames_total,
        (net.bytes_sent + net.bytes_received) / 1024,
        hub.union_coverage,
    );
    assert!(worker.finished && hub.finished);

    println!(
        "\n{{\"bench\":\"net_codec\",\"device\":\"{device}\",\"messages\":{codec_msgs},\
         \"wire_bytes\":{wire_bytes},\"encode_msgs_per_sec\":{encode_rate:.0},\
         \"decode_msgs_per_sec\":{decode_rate:.0},\"encode_secs\":{encode_secs:.6},\
         \"decode_secs\":{decode_secs:.6}}}"
    );
    println!(
        "{{\"bench\":\"net_sync_roundtrip\",\"device\":\"{device}\",\"shards\":{shards},\
         \"hours\":{hours},\"rounds\":{rounds},\"campaign_secs\":{campaign_secs:.6},\
         \"round_ms\":{round_ms:.3},\"frames\":{frames_total},\
         \"wire_bytes\":{},\"executions\":{},\"union_coverage\":{}}}",
        net.bytes_sent + net.bytes_received,
        hub.executions,
        hub.union_coverage,
    );
}
