//! Durable-store microbenchmarks: write-ahead-journal append throughput,
//! snapshot write/compaction cost, and cold recovery time from a real
//! killed campaign's on-disk state.
//!
//! Scale: `DF_HOURS` (default 0.5 virtual hours for the campaign arm),
//! `DF_SHARDS` (falls back to `DF_REPEATS`, then 4), `DF_SYNC_MIN`
//! (default 7.5), `DF_DEVICE` (default A1), `DF_WAL_RECORDS` (journal
//! append count, default 20000), `DF_SNAP_WRITES` (snapshot generations
//! written, default 50).
//!
//! Ends with one machine-readable JSON line (`"bench":"store_recovery"`).

use droidfuzz::config::FuzzerConfig;
use droidfuzz::engine::FuzzingEngine;
use droidfuzz::fleet::{Fleet, FleetConfig};
use droidfuzz::store::{
    FleetDelta, Journal, RecoveryManager, SimMedium, SnapshotStore, StorageMedium,
    FLEET_SECTION,
};
use droidfuzz_bench::{env_f64, env_u64};
use simdevice::catalog;
use std::time::Instant;

fn main() {
    let hours = env_f64("DF_HOURS", 0.5);
    let shards = env_u64("DF_SHARDS", env_u64("DF_REPEATS", 4)).max(1) as usize;
    let sync_min = env_f64("DF_SYNC_MIN", 7.5);
    let wal_records = env_u64("DF_WAL_RECORDS", 20_000);
    let snap_writes = env_u64("DF_SNAP_WRITES", 50).max(1);
    let device = std::env::var("DF_DEVICE").unwrap_or_else(|_| "A1".into());
    let Some(spec) = catalog::by_id(&device) else {
        eprintln!("unknown device {device}; known: A1 A2 B C1 C2 D E");
        std::process::exit(2);
    };

    println!(
        "durable store bench on device {device}: {wal_records} WAL appends, \
         {snap_writes} snapshot writes, then cold recovery of a {shards}-shard \
         x {hours} h campaign killed midway\n"
    );

    // -- WAL append throughput --------------------------------------
    // A realistic payload mix: mostly admitted seeds (real programs from
    // a briefly-fuzzed engine), cut with counter and round records.
    let mut engine = FuzzingEngine::new(spec.clone().boot(), FuzzerConfig::droidfuzz(1));
    engine.run_for_virtual_hours(0.02);
    let corpus = engine.export_corpus();
    let bodies: Vec<&str> = corpus
        .split("# seed ")
        .skip(1)
        .filter_map(|chunk| chunk.split_once('\n').map(|(_, body)| body.trim_end()))
        .collect();
    let payloads: Vec<String> = (0..wal_records)
        .map(|i| match i % 10 {
            9 => FleetDelta::Round { round: i as usize, clock_us: i * 1_000 }.encode(),
            8 => FleetDelta::Sample { t: i * 1_000, v: i as f64 }.encode(),
            _ => FleetDelta::Seed {
                signals: (1 + i % 7) as usize,
                body: bodies[i as usize % bodies.len().max(1)].to_owned(),
            }
            .encode(),
        })
        .collect();
    let mut journal = Journal::create(SimMedium::new(), 0).expect("journal create");
    let start = Instant::now();
    for payload in &payloads {
        journal.append(payload).expect("append");
    }
    let wal_secs = start.elapsed().as_secs_f64();
    let wal_bytes: usize = payloads.iter().map(String::len).sum();
    let wal_rate = wal_records as f64 / wal_secs.max(1e-9);
    println!(
        "WAL append: {wal_records} records ({} KiB) in {wal_secs:.3} s -> {wal_rate:.0} \
         records/s, {:.1} MiB/s",
        wal_bytes / 1024,
        wal_bytes as f64 / wal_secs.max(1e-9) / (1024.0 * 1024.0),
    );

    // -- snapshot write + compaction cost ---------------------------
    // A real campaign snapshot is the section payload; every write is a
    // full encode + CRC + tmp-write + rename, exactly the checkpoint
    // path, with the ring pruning old generations as it advances.
    let reference = Fleet::new(FleetConfig {
        shards,
        hours: hours.min(0.25),
        sync_interval_hours: sync_min / 60.0,
        ..FleetConfig::default()
    })
    .run(&spec, FuzzerConfig::droidfuzz);
    let section = reference.snapshot.as_bytes();
    let mut snapshots = SnapshotStore::new(SimMedium::new(), 3);
    let start = Instant::now();
    for gen in 1..=snap_writes {
        snapshots.write(gen, &[(FLEET_SECTION, section)]).expect("snapshot write");
        snapshots.prune().expect("prune");
    }
    let snap_secs = start.elapsed().as_secs_f64();
    let snap_each = snap_secs / snap_writes as f64;
    println!(
        "snapshot write: {snap_writes} generations of {} KiB in {snap_secs:.3} s -> \
         {:.2} ms per compaction",
        section.len() / 1024,
        snap_each * 1e3,
    );

    // -- cold recovery of a killed campaign -------------------------
    let medium = SimMedium::new();
    let rounds = ((hours * 60.0) / sync_min).ceil() as usize;
    let kill_at = (rounds / 2).max(1);
    let killed = Fleet::new(FleetConfig {
        shards,
        hours,
        sync_interval_hours: sync_min / 60.0,
        kill_after_rounds: Some(kill_at),
        // A sparse checkpoint cadence leaves a long journal tail to
        // replay, which is what cold recovery has to pay for.
        checkpoint_interval_rounds: rounds.max(1),
        ..FleetConfig::default()
    })
    .run_durable(&spec, FuzzerConfig::droidfuzz, medium.clone())
    .expect("durable campaign");
    let store_bytes: u64 = medium
        .list()
        .expect("list")
        .iter()
        .map(|name| medium.read(name).map(|b| b.len() as u64).unwrap_or(0))
        .sum();
    // A clean kill checkpoints on its way out, so recovery from the final
    // state replays nothing. The interesting number is an *abrupt* crash:
    // probe evenly spaced crash offsets and time recovery at the one
    // with the longest journal tail to replay.
    let total_units = medium.total_units();
    let worst = (1..=16)
        .map(|i| medium.crash_at(total_units * i / 16))
        .max_by_key(|crashed| {
            RecoveryManager::new(crashed.clone())
                .recover()
                .map(|r| r.report.replayed_records)
                .unwrap_or(0)
        })
        .expect("candidates");
    let probe = FuzzingEngine::new(spec.clone().boot(), FuzzerConfig::droidfuzz(0));
    let start = Instant::now();
    let recovered = RecoveryManager::new(worst)
        .recover_verified(probe.desc_table())
        .expect("recovery");
    let recovery_secs = start.elapsed().as_secs_f64();
    println!(
        "cold recovery: killed after round {kill_at}/{rounds} ({} journal records, \
         {} KiB on disk); worst probed crash point -> {} ({} replayed) in {recovery_secs:.3} s",
        killed.store_totals.journal_records,
        store_bytes / 1024,
        recovered.report.outcome,
        recovered.report.replayed_records,
    );

    println!(
        "\n{{\"bench\":\"store_recovery\",\"device\":\"{device}\",\"shards\":{shards},\
         \"hours\":{hours},\"wal_records\":{wal_records},\"wal_records_per_sec\":{wal_rate:.0},\
         \"wal_bytes\":{wal_bytes},\"snapshot_writes\":{snap_writes},\
         \"snapshot_bytes\":{},\"snapshot_write_secs_each\":{snap_each:.6},\
         \"campaign_journal_records\":{},\"store_bytes\":{store_bytes},\
         \"replayed_records\":{},\"cold_recovery_secs\":{recovery_secs:.6}}}",
        section.len(),
        killed.store_totals.journal_records,
        recovered.report.replayed_records,
    );
}
