//! Regenerates **Table I** — the list of embedded Android devices tested.

use droidfuzz::report::ascii_table;
use simdevice::catalog;

fn main() {
    println!("Table I: List of Embedded Android Devices Tested\n");
    let rows: Vec<Vec<String>> = catalog::all_devices()
        .iter()
        .map(|spec| {
            vec![
                spec.meta.id.clone(),
                spec.meta.name.clone(),
                spec.meta.vendor.clone(),
                spec.meta.arch.to_string(),
                spec.meta.aosp.to_string(),
                spec.meta.kernel.clone(),
                spec.drivers.len().to_string(),
                spec.services.len().to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        ascii_table(
            &["ID", "Device", "Vendor", "Arch.", "AOSP", "Kernel", "Drivers", "HALs"],
            &rows
        )
    );
}
