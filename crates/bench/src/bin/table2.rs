//! Regenerates **Table II** — the list of new bugs found by DroidFuzz over
//! 144-hour campaigns on each device, together with §V-B's syzkaller
//! comparison ("Syzkaller was only able to find 2, both of which are from
//! the kernel").
//!
//! Scale: `DF_HOURS` (default 144), `DF_REPEATS` (default 5; the union of
//! bugs across repetitions is reported, as in the paper's repeated runs).

use droidfuzz::config::FuzzerConfig;
use droidfuzz::report::ascii_table;
use droidfuzz_bench::{env_f64, env_u64, run_matrix, MakeConfig};
use simdevice::bugs::{bugs_on, identify, BUG_CATALOG};
use simdevice::catalog;

fn main() {
    let hours = env_f64("DF_HOURS", 144.0);
    let repeats = env_u64("DF_REPEATS", 5);
    let devices = catalog::all_devices();
    println!(
        "Table II: bugs found ({hours} virtual hours x {repeats} repetitions per device)\n"
    );

    let variants: Vec<(&str, MakeConfig)> = vec![
        ("DroidFuzz", FuzzerConfig::droidfuzz),
        ("Syzkaller", FuzzerConfig::syzkaller),
    ];
    let results = run_matrix(&devices, &variants, hours, repeats);

    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut df_found = std::collections::BTreeSet::new();
    let mut syz_found = std::collections::BTreeSet::new();
    for chunk in results.chunks(2) {
        let (df, syz) = (&chunk[0], &chunk[1]);
        let spec = catalog::by_id(&df.device_id).expect("known device");
        for crash in &df.crashes {
            let report = simkernel::report::BugReport::with_title(
                crash.kind,
                crash.title.clone(),
                crash.component,
            );
            let label = match identify(&report) {
                Some(kb) => {
                    df_found.insert(kb.id.0);
                    format!("{}", kb.id.0)
                }
                None => "?".into(),
            };
            rows.push(vec![
                label,
                format!("{}: {} {}", spec.meta.id, spec.meta.vendor, spec.meta.name),
                crash.title.clone(),
                match crash.kind {
                    k if k.is_memory_bug() => "Memory Related Bug".into(),
                    _ => "Logic Error".into(),
                },
                crash.component.to_string(),
            ]);
        }
        for crash in &syz.crashes {
            let report = simkernel::report::BugReport::with_title(
                crash.kind,
                crash.title.clone(),
                crash.component,
            );
            if let Some(kb) = identify(&report) {
                syz_found.insert(kb.id.0);
            }
        }
    }
    rows.sort_by_key(|r| r[0].parse::<u8>().unwrap_or(99));
    println!(
        "{}",
        ascii_table(&["No", "Device", "Bug Info", "Bug Type", "Component"], &rows)
    );

    println!("DroidFuzz found {} / 12 catalog bugs: {:?}", df_found.len(), df_found);
    println!("Syzkaller found {} / 12 catalog bugs: {:?}", syz_found.len(), syz_found);
    let missing: Vec<u8> = BUG_CATALOG
        .iter()
        .map(|kb| kb.id.0)
        .filter(|id| !df_found.contains(id))
        .collect();
    if missing.is_empty() {
        println!("All Table II bugs reproduced.");
    } else {
        println!("Missed by DroidFuzz in this budget: {missing:?}");
        for id in &missing {
            if let Some(kb) = BUG_CATALOG.iter().find(|k| k.id.0 == *id) {
                println!("  #{id} on {}: {} ({})", kb.device, kb.title, kb.bug_type);
                let _ = bugs_on(kb.device);
            }
        }
    }
}
