//! Regenerates **Table III** — coverage statistics for the ablation tests
//! (48 h): DroidFuzz, DF-NoRel, DF-NoHCov, and the syzkaller baseline on
//! all seven devices, with Mann-Whitney U significance per §V-A
//! ("data groups that do not exhibit such significance will be labelled
//! explicitly").
//!
//! Scale: `DF_HOURS` (default 48), `DF_REPEATS` (default 5; paper: 10).

use droidfuzz::config::FuzzerConfig;
use droidfuzz::report::ascii_table;
use droidfuzz::stats::mann_whitney_u;
use droidfuzz_bench::{env_f64, env_u64, run_matrix, MakeConfig};
use simdevice::catalog;

fn main() {
    let hours = env_f64("DF_HOURS", 48.0);
    let repeats = env_u64("DF_REPEATS", 5);
    let devices = catalog::all_devices();
    println!(
        "Table III: ablation coverage ({hours} h, mean of {repeats} runs; * = not significant vs DroidFuzz at p<0.05)\n"
    );
    let variants: Vec<(&str, MakeConfig)> = vec![
        ("DroidFuzz", FuzzerConfig::droidfuzz),
        ("DF-NoRel", FuzzerConfig::droidfuzz_norel),
        ("DF-NoHCov", FuzzerConfig::droidfuzz_nohcov),
        ("Syzkaller", FuzzerConfig::syzkaller),
    ];
    let results = run_matrix(&devices, &variants, hours, repeats);
    let mut rows = Vec::new();
    for chunk in results.chunks(variants.len()) {
        let df = &chunk[0];
        let mut row = vec![df.device_id.clone(), format!("{:.0}", df.mean_final_coverage())];
        for other in &chunk[1..] {
            let (_, p) = mann_whitney_u(&df.final_coverage, &other.final_coverage);
            let marker = if p >= 0.05 { "*" } else { "" };
            row.push(format!("{:.0}{marker}", other.mean_final_coverage()));
        }
        rows.push(row);
    }
    println!(
        "{}",
        ascii_table(
            &["Device", "DroidFuzz", "DF-NoRel", "DF-NoHCov", "Syzkaller"],
            &rows
        )
    );
    // Aggregate ordering check (the paper's qualitative claims).
    let mean_of = |idx: usize| -> f64 {
        results
            .chunks(variants.len())
            .map(|c| c[idx].mean_final_coverage())
            .sum::<f64>()
            / devices.len() as f64
    };
    println!("fleet means: DroidFuzz {:.0}, DF-NoRel {:.0}, DF-NoHCov {:.0}, Syzkaller {:.0}",
        mean_of(0), mean_of(1), mean_of(2), mean_of(3));
}
