//! # droidfuzz-bench — experiment harness
//!
//! One binary per table/figure of the DroidFuzz paper's evaluation (§V):
//!
//! | Binary       | Regenerates                                             |
//! |--------------|---------------------------------------------------------|
//! | `table1`     | Table I — the device list                               |
//! | `table2`     | Table II — bugs found (plus the syzkaller comparison)   |
//! | `fig4`       | Fig. 4 — coverage vs syzkaller over 48 h (A1, A2, B, C1)|
//! | `fig5`       | Fig. 5 — coverage vs Difuze and DroidFuzz-D (A1, A2)    |
//! | `table3`     | Table III — ablation coverage on all 7 devices          |
//! | `driver_cov` | §I claim — per-driver kernel coverage vs syzkaller      |
//! | `all`        | everything above, in sequence                           |
//!
//! Campaign scale is configurable through environment variables so CI can
//! run quick smoke versions:
//!
//! * `DF_HOURS` — virtual hours per campaign (default: the paper's value
//!   per experiment, 48 or 144),
//! * `DF_REPEATS` — repetitions per configuration (default 3–5; the paper
//!   uses 10).

use droidfuzz::config::FuzzerConfig;
use droidfuzz::daemon::{CampaignResult, Daemon};
use simdevice::firmware::FirmwareSpec;
use std::sync::Mutex;

/// Reads a scale parameter from the environment.
pub fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Reads an integer scale parameter from the environment.
pub fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// A named fuzzer-variant constructor.
pub type MakeConfig = fn(u64) -> FuzzerConfig;

/// Runs `variants × devices` campaigns in parallel (each campaign itself
/// runs its repeats in parallel threads) and returns results in
/// `(device, variant)` iteration order.
pub fn run_matrix(
    devices: &[FirmwareSpec],
    variants: &[(&str, MakeConfig)],
    hours: f64,
    repeats: u64,
) -> Vec<CampaignResult> {
    let results: Mutex<Vec<(usize, CampaignResult)>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for (di, spec) in devices.iter().enumerate() {
            for (vi, (_, make)) in variants.iter().enumerate() {
                let results = &results;
                let make = *make;
                scope.spawn(move || {
                    let daemon = Daemon::new();
                    let result = daemon.run_campaign(spec, make, hours, repeats);
                    results
                        .lock()
                        .expect("no poisoning")
                        .push((di * variants.len() + vi, result));
                });
            }
        }
    });
    let mut out = results.into_inner().expect("no poisoning");
    out.sort_by_key(|(order, _)| *order);
    out.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use simdevice::catalog;

    #[test]
    fn env_parsing_falls_back() {
        assert_eq!(env_f64("DF_DOES_NOT_EXIST", 4.5), 4.5);
        assert_eq!(env_u64("DF_DOES_NOT_EXIST", 7), 7);
    }

    #[test]
    fn matrix_preserves_order() {
        let devices = vec![catalog::device_e()];
        let variants: Vec<(&str, MakeConfig)> = vec![
            ("DroidFuzz", FuzzerConfig::droidfuzz),
            ("Syzkaller", FuzzerConfig::syzkaller),
        ];
        let results = run_matrix(&devices, &variants, 0.02, 2);
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].fuzzer, "DroidFuzz");
        assert_eq!(results[1].fuzzer, "Syzkaller");
        assert_eq!(results[0].device_id, "E");
    }
}
