//! Round arenas: slab-style ownership of the engine's per-round scratch.
//!
//! The engine's hot loop used to clone a corpus seed per iteration, clone
//! a crossover donor on top of that, and grow fresh `Vec`s inside the
//! minimizer for every candidate replay. A [`RoundArena`] owns those
//! buffers instead — a small pool of recycled [`Prog`] slots, the
//! [`MinimizeScratch`], and the minimizer's signal buffers — handed out
//! per iteration and reset once per execution round (one broker batch).
//! Arena recycling touches no RNG and charges no virtual time, so it is
//! invisible to campaign results: fixed-seed runs are byte-identical to
//! the historical clone-per-iteration path.
//!
//! Lifetime rules:
//! - A slot from [`take_prog`](RoundArena::take_prog) has *unspecified*
//!   contents — holders must overwrite it (`Prog::assign_from` or full
//!   regeneration) before reading. What is recycled is capacity, never
//!   content.
//! - Every taken slot is returned via [`put_prog`](RoundArena::put_prog)
//!   on every exit path; slots beyond the pool cap are simply dropped,
//!   so leaks degrade to the old allocation behavior, never to growth.
//! - The minimizer buffers (`min_scratch`, `min_target`, `cand_sigs`)
//!   are exclusively borrowed for the duration of one minimization and
//!   only grow to the largest program/signal set seen.

use crate::feedback::Signal;
use crate::minimize::MinimizeScratch;
use fuzzlang::prog::Prog;

/// Upper bound on pooled program slots. The engine holds at most one
/// in-flight program plus a crossover intermediate at a time; the small
/// headroom absorbs interleavings without hoarding memory.
const PROG_POOL_CAP: usize = 4;

/// Per-round scratch arena for one [`FuzzingEngine`].
///
/// [`FuzzingEngine`]: crate::engine::FuzzingEngine
#[derive(Debug, Default)]
pub struct RoundArena {
    progs: Vec<Prog>,
    /// Recycled candidate/remap buffers for [`minimize_with`].
    ///
    /// [`minimize_with`]: crate::minimize::minimize_with
    pub(crate) min_scratch: MinimizeScratch,
    /// The minimizer's target-signal buffer (taken/restored per call).
    pub(crate) min_target: Vec<Signal>,
    /// The minimizer's per-candidate signal buffer (taken/restored).
    pub(crate) cand_sigs: Vec<Signal>,
    rounds: u64,
}

impl RoundArena {
    /// An empty arena; buffers are grown on first use and kept warm.
    pub fn new() -> Self {
        Self::default()
    }

    /// Marks the start of a new execution round (one broker batch).
    pub fn begin_round(&mut self) {
        self.rounds += 1;
    }

    /// Rounds started so far.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Hands out a program slot with unspecified contents. Callers must
    /// overwrite it before reading; the win is the retained call-slot and
    /// byte-buffer capacity.
    pub fn take_prog(&mut self) -> Prog {
        self.progs.pop().unwrap_or_default()
    }

    /// Returns a slot to the pool (dropped beyond the cap, so a missed
    /// return can never leak memory — it just forgoes the reuse).
    pub fn put_prog(&mut self, prog: Prog) {
        if self.progs.len() < PROG_POOL_CAP {
            self.progs.push(prog);
        }
    }

    /// Program slots currently pooled (for tests and diagnostics).
    pub fn pooled_progs(&self) -> usize {
        self.progs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fuzzlang::desc::DescId;
    use fuzzlang::prog::{ArgValue, Call};

    #[test]
    fn prog_pool_recycles_and_caps() {
        let mut arena = RoundArena::new();
        assert_eq!(arena.pooled_progs(), 0);
        let mut p = arena.take_prog();
        p.calls.push(Call { desc: DescId(0), args: vec![ArgValue::Int(7)] });
        arena.put_prog(p);
        assert_eq!(arena.pooled_progs(), 1);
        // The recycled slot keeps its capacity; contents are unspecified
        // but in practice whatever the last holder left behind.
        let q = arena.take_prog();
        assert!(q.calls.capacity() >= 1);
        arena.put_prog(q);
        for _ in 0..PROG_POOL_CAP + 3 {
            arena.put_prog(Prog::new());
        }
        assert_eq!(arena.pooled_progs(), PROG_POOL_CAP, "pool never grows past cap");
    }

    #[test]
    fn rounds_count_monotonically() {
        let mut arena = RoundArena::new();
        arena.begin_round();
        arena.begin_round();
        assert_eq!(arena.rounds(), 2);
    }
}
