//! The Difuze stand-in: interface-aware, generation-based ioctl fuzzing.
//!
//! Difuze statically extracts valid ioctl commands and argument
//! structures from driver code and feeds them through MangoFuzz (built on
//! Peach) *without* coverage feedback. Our stand-in "extracts" the same
//! information from the simulated firmware's driver metadata — the ground
//! truth a perfect static analysis would recover — and runs the shared
//! engine in generation-only mode restricted to the ioctl path.

use crate::config::FuzzerConfig;
use crate::descs::build_difuze_table;
use crate::engine::FuzzingEngine;
use simdevice::Device;

/// The interface-extraction pass: returns how many ioctl interface
/// descriptions were recovered from the firmware (the paper reports 285
/// and 232 for devices A1 and A2 with real Difuze; our counts reflect the
/// simulated drivers' smaller surface).
pub fn extract_interfaces(device: &mut Device) -> usize {
    build_difuze_table(device.kernel())
        .iter()
        .filter(|(_, d)| matches!(
            d.kind,
            fuzzlang::desc::CallKind::Syscall(fuzzlang::desc::SyscallTemplate::Ioctl { .. })
        ))
        .count()
}

/// Builds a Difuze-baseline engine for `device`.
pub fn engine(device: Device, seed: u64) -> FuzzingEngine {
    FuzzingEngine::new(device, FuzzerConfig::difuze(seed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use simdevice::catalog;

    #[test]
    fn extraction_counts_scale_with_firmware_size() {
        let mut a1 = catalog::device_a1().boot();
        let mut b = catalog::device_b().boot();
        let a1_count = extract_interfaces(&mut a1);
        let b_count = extract_interfaces(&mut b);
        assert!(a1_count > b_count, "A1 ({a1_count}) ships more drivers than Pi ({b_count})");
        assert!(a1_count > 50);
    }

    #[test]
    fn difuze_engine_is_generation_only_and_ioctl_bound() {
        let mut engine = engine(catalog::device_a1().boot(), 2);
        engine.run_iterations(300);
        assert!(engine.corpus().is_empty(), "no feedback, no corpus");
        assert!(engine.kernel_coverage() > 10);
        // Every vocabulary entry compiles to the ioctl path.
        for (_, d) in engine.desc_table().iter() {
            assert!(d.kind.is_ioctl_path(), "{} escapes the restriction", d.name);
        }
    }
}
