//! Evaluation baselines: the syzkaller and Difuze stand-ins (§V).
//!
//! Both reuse the same engine machinery with features switched off, which
//! is precisely how the paper frames the comparison: the deltas under test
//! are HAL access, relational generation, and cross-boundary feedback —
//! not engine plumbing.

pub mod difuze;
pub mod syz;
