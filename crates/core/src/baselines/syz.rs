//! The syzkaller stand-in: syscall-only, coverage-guided, mutation +
//! generation fuzzing with kcov feedback — no HAL vocabulary, no relation
//! learning, no directional HAL coverage.
//!
//! The paper compares against syzkaller commit `fb88827` with its
//! hand-written syzlang descriptions; our stand-in uses the same
//! driver-derived syscall descriptions DroidFuzz's native side uses, so
//! the *only* differences are the paper's three techniques.

use crate::config::FuzzerConfig;
use crate::engine::FuzzingEngine;
use simdevice::Device;

/// Builds a syzkaller-baseline engine for `device`.
pub fn engine(device: Device, seed: u64) -> FuzzingEngine {
    FuzzingEngine::new(device, FuzzerConfig::syzkaller(seed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use simdevice::catalog;

    #[test]
    fn syz_covers_kernel_without_hal() {
        let mut engine = engine(catalog::device_b().boot(), 11);
        engine.run_iterations(400);
        assert!(engine.kernel_coverage() > 20);
        assert!(engine.desc_table().hal_ids().is_empty());
        assert_eq!(engine.relation_graph().edge_count(), 0, "no relation learning");
    }

    #[test]
    fn syz_finds_shallow_l2cap_bug_on_pi() {
        // Bug #8 is one of the two bugs the paper credits to syzkaller.
        let mut engine = engine(catalog::device_b().boot(), 3);
        engine.run_iterations(6000);
        let found = engine
            .crash_db()
            .records()
            .iter()
            .any(|r| r.title.contains("l2cap_send_disconn_req"));
        assert!(found, "crashes: {:?}", engine.crash_db().records());
    }
}
