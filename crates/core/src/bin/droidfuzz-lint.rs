//! The `droidfuzz-lint` command-line front end: run the static-analysis
//! pass over saved fuzzer artifacts — fuzzlang programs, corpus exports,
//! relation-graph exports, and fleet snapshots — and emit one
//! machine-readable JSON report line per input.
//!
//! ```sh
//! droidfuzz-lint --device A1 a1.corpus campaign.snapshot prog.txt
//! ```
//!
//! The input format is detected from the file's leading bytes:
//!
//! - `# droidfuzz-fleet-snapshot v1 ...` → full snapshot audit (framing,
//!   nested relation graph, fault/lint counters, corpus seeds);
//! - `# relation-graph ...` or `edge ...`  → relation-graph audit (Eq. 1
//!   in-weight invariants, vertex names, duplicate/self/orphan edges);
//! - `# seed <i> signals=<n>` anywhere  → corpus audit (per-seed parse +
//!   program lint);
//! - anything else → a single fuzzlang program, parsed then linted.
//!
//! The vocabulary comes from booting (and probing) the selected Table-I
//! device, so HAL interface names resolve exactly as they would inside a
//! campaign. Exit status is 1 when any input carries an `Error`-severity
//! finding, 2 on usage errors, 0 otherwise — warnings never fail the run,
//! matching the in-engine gate.

use droidfuzz::analysis::{audit_corpus, audit_relations, audit_snapshot, lint_prog};
use droidfuzz::config::FuzzerConfig;
use droidfuzz::engine::FuzzingEngine;
use droidfuzz::fleet::SNAPSHOT_HEADER;
use fuzzlang::text::parse_prog;
use simdevice::catalog;

struct Options {
    device: String,
    paths: Vec<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: droidfuzz-lint [--device <A1|A2|B|C1|C2|D|E>] <file>...\n\
         \x20      input kinds (auto-detected): fleet snapshot, relation-graph export,\n\
         \x20      corpus export, single fuzzlang program"
    );
    std::process::exit(2);
}

fn parse_args() -> Options {
    let mut opts = Options { device: "A1".into(), paths: Vec::new() };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--device" => {
                opts.device = args.next().unwrap_or_else(|| {
                    eprintln!("missing value for --device");
                    usage()
                });
            }
            "--help" | "-h" => usage(),
            other if other.starts_with("--") => {
                eprintln!("unknown flag {other}");
                usage()
            }
            path => opts.paths.push(path.to_owned()),
        }
    }
    if opts.paths.is_empty() {
        usage();
    }
    opts
}

fn main() {
    let opts = parse_args();
    let Some(spec) = catalog::by_id(&opts.device) else {
        eprintln!("unknown device {}; known: A1 A2 B C1 C2 D E", opts.device);
        std::process::exit(2);
    };
    // Boot + probe exactly as a campaign would, then borrow the engine's
    // vocabulary; the lint gate itself stays off since nothing executes.
    let engine = FuzzingEngine::new(spec.boot(), FuzzerConfig::droidfuzz(1));
    let table = engine.desc_table();

    let mut failed = false;
    for path in &opts.paths {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                std::process::exit(2);
            }
        };
        let report = if text.starts_with(SNAPSHOT_HEADER) {
            audit_snapshot(&text, table)
        } else if text.starts_with("# relation-graph") || text.starts_with("edge ") {
            audit_relations(&text, table)
        } else if text.contains("# seed ") {
            audit_corpus(&text, table)
        } else {
            match parse_prog(&text, table) {
                Ok(prog) => lint_prog(&prog, table),
                Err(e) => {
                    let mut report = droidfuzz::analysis::Report::new();
                    report.push(
                        droidfuzz::analysis::Severity::Error,
                        "prog-unparseable",
                        None,
                        e.to_string(),
                    );
                    report
                }
            }
        };
        failed |= report.has_errors();
        println!("{}", report.to_json(path));
    }
    std::process::exit(if failed { 1 } else { 0 });
}
