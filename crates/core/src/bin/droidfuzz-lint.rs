//! The `droidfuzz-lint` command-line front end: run the static-analysis
//! pass over saved fuzzer artifacts — fuzzlang programs, corpus exports,
//! relation-graph exports, and fleet snapshots — and emit one
//! machine-readable JSON report line per input.
//!
//! ```sh
//! droidfuzz-lint --device A1 a1.corpus campaign.snapshot prog.txt
//! ```
//!
//! The input format is detected from the file's leading bytes:
//!
//! - `# droidfuzz-store snapshot v1 ...` → durable-store snapshot file:
//!   CRC framing is verified, then the embedded fleet section is audited
//!   as a fleet snapshot;
//! - `# droidfuzz-store journal v1 ...` → durable-store journal file:
//!   frame checksums and record sequencing are verified, truncated tails
//!   and undecodable delta payloads are reported;
//! - `# droidfuzz-fleet-snapshot v1 ...` → full snapshot audit (framing,
//!   nested relation graph, fault/lint counters, corpus seeds);
//! - `# droidfuzz-net stream v1 ...` → captured wire stream (one
//!   direction of one hub/worker connection): frame CRCs and sequence
//!   continuity are verified and every payload is decoded as a protocol
//!   message; a torn tail is a warning (a link fault cut the capture),
//!   duplicated frames are warnings (faulty-link replays are dropped by
//!   the receiver by design), anything else malformed is an error;
//! - `# relation-graph ...` or `edge ...`  → relation-graph audit (Eq. 1
//!   in-weight invariants, vertex names, duplicate/self/orphan edges);
//! - `# seed <i> signals=<n>` anywhere  → corpus audit (per-seed parse +
//!   program lint);
//! - anything else → a single fuzzlang program, parsed then linted.
//!
//! Single programs additionally run through the flow-sensitive abstract
//! interpreter against the device's driver state models, so `absint-*`
//! findings (dead calls, guard violations, statically-dead programs)
//! appear alongside the flow-insensitive lint. `--model <driver>` skips
//! file auditing entirely and prints the named driver's state model plus
//! its audit findings (`<driver>` is a model label, `/dev` node path, or
//! node basename).
//!
//! The vocabulary comes from booting (and probing) the selected Table-I
//! device, so HAL interface names resolve exactly as they would inside a
//! campaign. Exit status is 1 when any input carries an `Error`-severity
//! finding (or, under `--deny-warnings`, a `Warning`), 2 on usage errors,
//! 0 otherwise — by default warnings never fail the run, matching the
//! in-engine gate. A torn journal tail is a warning (the recovery path
//! replays the valid prefix by design); a snapshot file that fails its
//! checksums is an error.

use droidfuzz::analysis::{
    absint_prog, audit_corpus, audit_relations, audit_snapshot, lint_prog, Report, Severity,
};
use droidfuzz::config::FuzzerConfig;
use droidfuzz::engine::FuzzingEngine;
use droidfuzz::fleet::SNAPSHOT_HEADER;
use droidfuzz::net::{decode_frame, decode_message, NetError, NET_STREAM_HEADER};
use droidfuzz::store::{
    decode_journal, decode_snapshot, parse_journal_name, FleetDelta, FLEET_SECTION,
    JOURNAL_HEADER, STORE_SNAPSHOT_HEADER,
};
use fuzzlang::desc::DescTable;
use fuzzlang::text::parse_prog;
use simdevice::catalog;

struct Options {
    device: String,
    deny_warnings: bool,
    model: Option<String>,
    paths: Vec<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: droidfuzz-lint [--device <A1|A2|B|C1|C2|D|E>] [--deny-warnings] <file>...\n\
         \x20      droidfuzz-lint [--device <id>] [--deny-warnings] --model <driver>\n\
         \x20      input kinds (auto-detected): fleet snapshot, relation-graph export,\n\
         \x20      corpus export, single fuzzlang program (linted + abstractly\n\
         \x20      interpreted against the device's state models)\n\
         \x20      --model prints the named driver's state model and its audit;\n\
         \x20      <driver> is a model label, /dev node path, or node basename\n\
         \x20      exit codes: 0 clean (warnings allowed unless --deny-warnings),\n\
         \x20      1 findings at gating severity, 2 usage or I/O error"
    );
    std::process::exit(2);
}

fn parse_args() -> Options {
    let mut opts = Options {
        device: "A1".into(),
        deny_warnings: false,
        model: None,
        paths: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--device" => {
                opts.device = args.next().unwrap_or_else(|| {
                    eprintln!("missing value for --device");
                    usage()
                });
            }
            "--deny-warnings" => opts.deny_warnings = true,
            "--model" => {
                opts.model = Some(args.next().unwrap_or_else(|| {
                    eprintln!("missing value for --model");
                    usage()
                }));
            }
            "--help" | "-h" => usage(),
            other if other.starts_with("--") => {
                eprintln!("unknown flag {other}");
                usage()
            }
            path => opts.paths.push(path.to_owned()),
        }
    }
    if opts.paths.is_empty() && opts.model.is_none() {
        usage();
    }
    opts
}

/// Audits a durable-store snapshot file: CRC framing first, then the
/// embedded fleet section through the full snapshot audit.
fn audit_store_snapshot(bytes: &[u8], table: &DescTable) -> Report {
    let (gen, sections) = match decode_snapshot(bytes) {
        Ok(decoded) => decoded,
        Err(e) => {
            let mut report = Report::new();
            report.push(Severity::Error, "store-snapshot-corrupt", None, e.to_string());
            return report;
        }
    };
    let Some((_, payload)) = sections.iter().find(|(name, _)| name == FLEET_SECTION) else {
        let mut report = Report::new();
        report.push(
            Severity::Error,
            "store-snapshot-missing-fleet-section",
            None,
            format!("generation {gen} has no `{FLEET_SECTION}` section"),
        );
        return report;
    };
    match std::str::from_utf8(payload) {
        Ok(text) => audit_snapshot(text, table),
        Err(_) => {
            let mut report = Report::new();
            report.push(
                Severity::Error,
                "store-snapshot-non-utf8-fleet-section",
                None,
                format!("generation {gen} fleet section is not valid UTF-8"),
            );
            report
        }
    }
}

/// Audits a durable-store journal file: frame checksums, sequencing,
/// torn tails, and per-record delta decodability.
fn audit_store_journal(path: &str, bytes: &[u8]) -> Report {
    let mut report = Report::new();
    // The base generation claimed by the file name, when it has the
    // canonical `journal-<gen>.wal` shape; otherwise trust the header.
    let named_base = std::path::Path::new(path)
        .file_name()
        .and_then(|n| n.to_str())
        .and_then(parse_journal_name);
    let header_base = bytes
        .split(|&b| b == b'\n')
        .next()
        .and_then(|line| std::str::from_utf8(line).ok())
        .and_then(|line| line.strip_prefix(JOURNAL_HEADER))
        .and_then(|rest| rest.trim().strip_prefix("base="))
        .and_then(|v| v.parse::<u64>().ok());
    let base = match (named_base, header_base) {
        (Some(named), Some(header)) if named != header => {
            report.push(
                Severity::Error,
                "store-journal-base-mismatch",
                None,
                format!("file named base {named} but header claims base {header}"),
            );
            named
        }
        (_, Some(header)) => header,
        (named, None) => named.unwrap_or(0),
    };
    let scan = decode_journal(bytes, base);
    let undecodable = scan
        .records
        .iter()
        .filter(|r| FleetDelta::decode(&r.payload).is_none())
        .count();
    if undecodable > 0 {
        report.push(
            Severity::Warning,
            "store-journal-undecodable-records",
            None,
            format!(
                "{undecodable} of {} record(s) carry payloads this build cannot decode",
                scan.records.len()
            ),
        );
    }
    if scan.truncated {
        report.push(
            Severity::Warning,
            "store-journal-truncated",
            None,
            format!(
                "valid prefix is {} record(s); {} trailing byte(s) are torn or corrupt \
                 and would be dropped on recovery",
                scan.records.len(),
                scan.dropped_bytes
            ),
        );
    } else {
        report.push(
            Severity::Info,
            "store-journal-clean",
            None,
            format!("{} record(s), every frame checksum valid", scan.records.len()),
        );
    }
    report
}

/// Audits a captured net stream: the same `rec <seq> <len> <crc>`
/// framing audit the journal gets, plus protocol-message decoding.
fn audit_net_stream(bytes: &[u8]) -> Report {
    let mut report = Report::new();
    // Skip the `# droidfuzz-net stream v1` header line.
    let mut offset =
        bytes.iter().position(|&b| b == b'\n').map_or(bytes.len(), |nl| nl + 1);
    let mut next_seq = 0u64;
    let mut frames = 0usize;
    let mut duplicates = 0usize;
    let mut torn = false;
    while offset < bytes.len() {
        match decode_frame(&bytes[offset..]) {
            Ok((seq, payload, used)) => {
                offset += used;
                frames += 1;
                if seq.wrapping_add(1) == next_seq {
                    // A faulty link delivered the frame twice; receivers
                    // drop the replay, so the capture is still sound.
                    duplicates += 1;
                } else if seq != next_seq {
                    report.push(
                        Severity::Error,
                        "net-stream-seq-gap",
                        None,
                        format!("frame {frames} carries seq {seq}, expected {next_seq}"),
                    );
                    break;
                } else {
                    next_seq += 1;
                }
                let decoded = std::str::from_utf8(&payload)
                    .map_err(|_| NetError::Garbage("payload is not UTF-8".to_owned()))
                    .and_then(decode_message);
                if let Err(e) = decoded {
                    report.push(
                        Severity::Error,
                        "net-stream-bad-message",
                        None,
                        format!("frame seq {seq} does not decode as a message: {e}"),
                    );
                }
            }
            Err(NetError::Truncated(what)) => {
                torn = true;
                report.push(
                    Severity::Warning,
                    "net-stream-torn-tail",
                    None,
                    format!(
                        "capture ends mid-frame after {frames} whole frame(s): {what} \
                         ({} trailing byte(s))",
                        bytes.len() - offset
                    ),
                );
                break;
            }
            Err(e) => {
                report.push(
                    Severity::Error,
                    "net-stream-malformed-frame",
                    None,
                    format!("after {frames} valid frame(s): {e}"),
                );
                break;
            }
        }
    }
    if duplicates > 0 {
        report.push(
            Severity::Warning,
            "net-stream-duplicate-frames",
            None,
            format!("{duplicates} duplicated frame(s) (dropped by the receiver)"),
        );
    }
    if !report.has_errors() && !torn {
        report.push(
            Severity::Info,
            "net-stream-clean",
            None,
            format!("{frames} frame(s), every checksum and message valid"),
        );
    }
    report
}

fn main() {
    let opts = parse_args();
    let Some(spec) = catalog::by_id(&opts.device) else {
        eprintln!("unknown device {}; known: A1 A2 B C1 C2 D E", opts.device);
        std::process::exit(2);
    };
    // Boot + probe exactly as a campaign would, then borrow the engine's
    // vocabulary; DroidFuzz-S so the state models are loaded for absint
    // and `--model`, while the lint gate itself stays off since nothing
    // executes.
    let engine = FuzzingEngine::new(spec.boot(), FuzzerConfig::droidfuzz_s(1));
    let table = engine.desc_table();
    let models = engine.model_set().expect("DroidFuzz-S always loads state models");

    if let Some(name) = &opts.model {
        let Some(text) = models.describe(name) else {
            let known: Vec<&str> =
                models.entries().iter().map(|e| e.label.as_str()).collect();
            eprintln!("unknown driver model {name}; known: {}", known.join(" "));
            std::process::exit(2);
        };
        print!("{text}");
        let audit = models.audit();
        let gating = audit.has_errors()
            || (opts.deny_warnings && audit.count(Severity::Warning) > 0);
        std::process::exit(if gating { 1 } else { 0 });
    }

    let mut failed = false;
    for path in &opts.paths {
        // Store files carry binary payloads and checksum framing, so
        // detection runs on raw bytes before any UTF-8 requirement.
        let bytes = match std::fs::read(path) {
            Ok(bytes) => bytes,
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                std::process::exit(2);
            }
        };
        let report = if bytes.starts_with(STORE_SNAPSHOT_HEADER.as_bytes()) {
            audit_store_snapshot(&bytes, table)
        } else if bytes.starts_with(JOURNAL_HEADER.as_bytes()) {
            audit_store_journal(path, &bytes)
        } else if bytes.starts_with(NET_STREAM_HEADER.as_bytes()) {
            audit_net_stream(&bytes)
        } else {
            match String::from_utf8(bytes) {
                Err(_) => {
                    let mut report = Report::new();
                    report.push(
                        Severity::Error,
                        "input-not-utf8",
                        None,
                        "not a store file and not valid UTF-8 text".to_owned(),
                    );
                    report
                }
                Ok(text) => {
                    if text.starts_with(SNAPSHOT_HEADER) {
                        audit_snapshot(&text, table)
                    } else if text.starts_with("# relation-graph") || text.starts_with("edge ") {
                        audit_relations(&text, table)
                    } else if text.contains("# seed ") {
                        audit_corpus(&text, table)
                    } else {
                        match parse_prog(&text, table) {
                            Ok(prog) => {
                                let mut report = lint_prog(&prog, table);
                                report.merge(absint_prog(&prog, table, models).report);
                                report
                            }
                            Err(e) => {
                                let mut report = Report::new();
                                report.push(
                                    Severity::Error,
                                    "prog-unparseable",
                                    None,
                                    e.to_string(),
                                );
                                report
                            }
                        }
                    }
                }
            }
        };
        failed |= report.has_errors()
            || (opts.deny_warnings && report.count(Severity::Warning) > 0);
        println!("{}", report.to_json(path));
    }
    std::process::exit(if failed { 1 } else { 0 });
}
