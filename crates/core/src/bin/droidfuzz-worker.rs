//! The `droidfuzz-worker` front end: run local fuzzing shards against a
//! remote corpus hub started with `droidfuzz --serve`.
//!
//! ```sh
//! droidfuzz --serve 127.0.0.1:7800 --device A1 --hours 2 --shards 4 &
//! droidfuzz-worker --connect 127.0.0.1:7800 --shards 2
//! droidfuzz-worker --connect 127.0.0.1:7800 --shards 2
//! ```
//!
//! The hub hands each worker a global shard range and the full campaign
//! spec (device, variant, seed, clock), so a worker needs nothing but an
//! address: engines are seeded by *global* shard id and every sync
//! barrier is sequenced hub-side in shard order, which keeps a
//! fixed-seed distributed campaign bit-identical to the local
//! `--threads` run no matter how the shards are split across workers.

use droidfuzz::net::{TcpConnector, WorkerConfig, WorkerRuntime};

struct Options {
    connect: String,
    shards: usize,
    threads: usize,
    name: String,
    max_link_retries: u32,
    quiet: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: droidfuzz-worker --connect <host:port> [--shards <n>] [--threads <n>]\n\
         \x20                       [--name <label>] [--max-link-retries <n>] [--quiet]\n\
         \n\
         \x20 Runs <n> local shards of a campaign served by `droidfuzz --serve`.\n\
         \x20 --threads caps the slice worker pool (0 = one thread per shard; any\n\
         \x20 value is bit-identical). --max-link-retries bounds reconnect attempts\n\
         \x20 after a link fault before the worker gives up."
    );
    std::process::exit(2);
}

fn parse_args() -> Options {
    let mut opts = Options {
        connect: String::new(),
        shards: 1,
        threads: 0,
        name: "worker".into(),
        max_link_retries: 10,
        quiet: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match flag.as_str() {
            "--connect" => opts.connect = value("--connect"),
            "--shards" => {
                opts.shards = value("--shards").parse().unwrap_or_else(|_| usage());
            }
            "--threads" => {
                opts.threads = value("--threads").parse().unwrap_or_else(|_| usage());
            }
            "--name" => opts.name = value("--name"),
            "--max-link-retries" => {
                opts.max_link_retries =
                    value("--max-link-retries").parse().unwrap_or_else(|_| usage());
            }
            "--quiet" => opts.quiet = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                usage()
            }
        }
    }
    if opts.connect.is_empty() {
        eprintln!("--connect is required");
        usage();
    }
    opts
}

fn main() {
    let opts = parse_args();
    if !opts.quiet {
        println!(
            "worker {:?}: {} shard(s), dialing {}",
            opts.name, opts.shards, opts.connect
        );
    }
    let runtime = WorkerRuntime::new(WorkerConfig {
        shards: opts.shards,
        threads: opts.threads,
        name: opts.name.clone(),
        max_link_retries: opts.max_link_retries,
    });
    let result = match runtime.run(Box::new(TcpConnector::new(opts.connect.clone()))) {
        Ok(result) => result,
        Err(e) => {
            eprintln!("worker {:?} failed: {e}", opts.name);
            std::process::exit(1);
        }
    };
    if !opts.quiet {
        let net = result.net_totals;
        println!(
            "worker {:?}: shards {}..{} done, {} round(s), execs={}{}",
            opts.name,
            result.base_shard,
            result.base_shard + result.shards - 1,
            result.rounds_completed,
            result.executions,
            if result.finished { "" } else { " (campaign stopped early)" },
        );
        println!(
            "net: {} frame(s) sent / {} received, {} reconnect(s), {} link retrie(s)",
            net.frames_sent, net.frames_received, net.reconnects, net.link_retries,
        );
    }
    std::process::exit(if result.finished { 0 } else { 3 });
}
