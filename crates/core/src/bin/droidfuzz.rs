//! The `droidfuzz` command-line front end: run a fuzzing campaign against
//! one of the simulated Table-I devices.
//!
//! ```sh
//! droidfuzz --device A1 --hours 24 --variant droidfuzz \
//!           --corpus-out a1.corpus --seed 7
//! ```
//!
//! With `--store-dir` the campaign runs as a *durable fleet*: hub deltas
//! are journaled to disk and compacted into checksummed snapshot
//! generations, and re-running with the same directory resumes from the
//! newest recoverable state instead of starting over:
//!
//! ```sh
//! droidfuzz --device A1 --hours 2 --store-dir ./a1-store --shards 4
//! droidfuzz --device A1 --hours 2 --store-dir ./a1-store --shards 4  # resumes
//! ```

use droidfuzz::config::FuzzerConfig;
use droidfuzz::engine::FuzzingEngine;
use droidfuzz::fleet::{Fleet, FleetConfig, FleetResult};
use droidfuzz::store::{FsMedium, StorageMedium};
use simdevice::catalog;

struct Options {
    device: String,
    hours: f64,
    variant: String,
    seed: u64,
    corpus_in: Option<String>,
    corpus_out: Option<String>,
    quiet: bool,
    store_dir: Option<String>,
    shards: usize,
    sync_interval: f64,
    threads: usize,
    checkpoint_every: usize,
    kill_after: Option<usize>,
}

fn usage() -> ! {
    eprintln!(
        "usage: droidfuzz [--device <A1|A2|B|C1|C2|D|E>] [--hours <virtual-hours>]\n\
         \x20                [--variant <droidfuzz|norel|nohcov|droidfuzz-d|syzkaller|difuze>]\n\
         \x20                [--seed <n>] [--corpus-in <file>] [--corpus-out <file>] [--quiet]\n\
         \x20                [--store-dir <dir>] [--shards <n>] [--sync-interval <hours>]\n\
         \x20                [--threads <n>] [--checkpoint-every <rounds>] [--kill-after <rounds>]\n\
         \n\
         \x20 --store-dir runs a durable fleet campaign journaled to <dir>; re-running\n\
         \x20 with an occupied <dir> resumes from the newest recoverable snapshot.\n\
         \x20 --threads caps the fleet worker pool (0 = one worker per shard; results\n\
         \x20 are bit-identical for every thread count)."
    );
    std::process::exit(2);
}

fn parse_args() -> Options {
    let mut opts = Options {
        device: "A1".into(),
        hours: 4.0,
        variant: "droidfuzz".into(),
        seed: 1,
        corpus_in: None,
        corpus_out: None,
        quiet: false,
        store_dir: None,
        shards: 4,
        sync_interval: 0.25,
        threads: 0,
        checkpoint_every: 1,
        kill_after: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match flag.as_str() {
            "--device" => opts.device = value("--device"),
            "--hours" => {
                opts.hours = value("--hours").parse().unwrap_or_else(|_| usage());
            }
            "--variant" => opts.variant = value("--variant"),
            "--seed" => opts.seed = value("--seed").parse().unwrap_or_else(|_| usage()),
            "--corpus-in" => opts.corpus_in = Some(value("--corpus-in")),
            "--corpus-out" => opts.corpus_out = Some(value("--corpus-out")),
            "--store-dir" => opts.store_dir = Some(value("--store-dir")),
            "--shards" => {
                opts.shards = value("--shards").parse().unwrap_or_else(|_| usage());
            }
            "--sync-interval" => {
                opts.sync_interval =
                    value("--sync-interval").parse().unwrap_or_else(|_| usage());
            }
            "--threads" => {
                opts.threads = value("--threads").parse().unwrap_or_else(|_| usage());
            }
            "--checkpoint-every" => {
                opts.checkpoint_every =
                    value("--checkpoint-every").parse().unwrap_or_else(|_| usage());
            }
            "--kill-after" => {
                opts.kill_after =
                    Some(value("--kill-after").parse().unwrap_or_else(|_| usage()));
            }
            "--quiet" => opts.quiet = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                usage()
            }
        }
    }
    opts
}

fn config_for(variant: &str, seed: u64) -> FuzzerConfig {
    match variant {
        "droidfuzz" => FuzzerConfig::droidfuzz(seed),
        "norel" => FuzzerConfig::droidfuzz_norel(seed),
        "nohcov" => FuzzerConfig::droidfuzz_nohcov(seed),
        "droidfuzz-d" => FuzzerConfig::droidfuzz_d(seed),
        "syzkaller" => FuzzerConfig::syzkaller(seed),
        "difuze" => FuzzerConfig::difuze(seed),
        other => {
            eprintln!("unknown variant {other}");
            usage()
        }
    }
}

fn report_fleet(result: &FleetResult, quiet: bool) {
    if !quiet {
        println!(
            "fleet: {} shard(s), {} round(s), cov={} execs={} crashes={}",
            result.shards.len(),
            result.rounds_completed,
            result.union_coverage,
            result.executions,
            result.crashes.len(),
        );
        println!(
            "store: {} journal record(s), {} snapshot(s) written, {} skipped, {} io error(s)",
            result.store_totals.journal_records,
            result.store_totals.snapshots_written,
            result.store_totals.snapshots_skipped,
            result.store_totals.io_errors,
        );
    }
    println!("\n== crash summary ==");
    if result.crashes.is_empty() {
        println!("(no crashes)");
    }
    for crash in &result.crashes {
        println!(
            "{} [{}] first seen at {:.1} h, {} occurrence(s)",
            crash.title,
            crash.component,
            crash.first_seen_us as f64 / 3.6e9,
            crash.count
        );
    }
}

fn run_durable_fleet(opts: &Options, spec: simdevice::firmware::FirmwareSpec, dir: &str) -> ! {
    let medium = FsMedium::new(dir).unwrap_or_else(|e| {
        eprintln!("cannot open store dir {dir}: {e}");
        std::process::exit(1);
    });
    let occupied = !medium.list().unwrap_or_default().is_empty();
    let fleet = Fleet::new(FleetConfig {
        shards: opts.shards.max(1),
        hours: opts.hours,
        sync_interval_hours: opts.sync_interval,
        kill_after_rounds: opts.kill_after,
        checkpoint_interval_rounds: opts.checkpoint_every.max(1),
        threads: opts.threads,
        ..FleetConfig::default()
    });
    let make_config = |s: u64| config_for(&opts.variant, opts.seed.wrapping_add(s));
    let result = if occupied {
        match fleet.resume_durable(&spec, make_config, medium) {
            Ok((result, report)) => {
                if !opts.quiet {
                    println!("{}", report.describe());
                }
                result
            }
            Err(e) => {
                eprintln!("cannot resume from {dir}: {e}");
                std::process::exit(1);
            }
        }
    } else {
        match fleet.run_durable(&spec, make_config, medium) {
            Ok(result) => result,
            Err(e) => {
                eprintln!("cannot start durable campaign in {dir}: {e}");
                std::process::exit(1);
            }
        }
    };
    report_fleet(&result, opts.quiet);
    std::process::exit(0);
}

fn main() {
    let opts = parse_args();
    let Some(spec) = catalog::by_id(&opts.device) else {
        eprintln!("unknown device {}; known: A1 A2 B C1 C2 D E", opts.device);
        std::process::exit(2);
    };
    let config = config_for(&opts.variant, opts.seed);
    if let Some(dir) = opts.store_dir.clone() {
        if !opts.quiet {
            println!(
                "durable fleet on {} {} — store dir {dir}",
                spec.meta.vendor, spec.meta.name
            );
        }
        run_durable_fleet(&opts, spec, &dir);
    }
    if !opts.quiet {
        println!(
            "booting {} {} ({}, AOSP {}, kernel {})",
            spec.meta.vendor, spec.meta.name, spec.meta.arch, spec.meta.aosp, spec.meta.kernel
        );
    }
    let mut engine = FuzzingEngine::new(spec.boot(), config);
    if let Some(path) = &opts.corpus_in {
        match std::fs::read_to_string(path) {
            Ok(text) => {
                let (n, rejects) = engine.import_corpus(&text);
                if !opts.quiet {
                    println!("restored {n} corpus seeds from {path} ({rejects} rejected)");
                }
            }
            Err(e) => {
                eprintln!("cannot read corpus {path}: {e}");
                std::process::exit(1);
            }
        }
    }
    if let Some(report) = engine.probe_report() {
        if !opts.quiet {
            println!(
                "probed {} HAL interfaces across {} services",
                report.interface_count(),
                report.services
            );
        }
    }

    // Report progress every simulated hour.
    let steps = (opts.hours.max(0.1) * 4.0).ceil() as u32;
    for step in 1..=steps {
        engine.run_for_virtual_hours(opts.hours / f64::from(steps));
        if !opts.quiet {
            println!(
                "[{:5.1}h] cov={} execs={} corpus={} relations={} crashes={}",
                opts.hours * f64::from(step) / f64::from(steps),
                engine.kernel_coverage(),
                engine.executions(),
                engine.corpus().len(),
                engine.relation_graph().edge_count(),
                engine.crash_db().len(),
            );
        }
    }

    println!("\n== crash summary ==");
    if engine.crash_db().is_empty() {
        println!("(no crashes)");
    }
    for crash in engine.crash_db().records() {
        println!(
            "{} [{}] first seen at {:.1} h, {} occurrence(s)",
            crash.title,
            crash.component,
            crash.first_seen_us as f64 / 3.6e9,
            crash.count
        );
        if let Some(repro) = &crash.repro {
            for line in repro.lines() {
                println!("    {line}");
            }
        }
    }

    if let Some(path) = &opts.corpus_out {
        if let Err(e) = std::fs::write(path, engine.export_corpus()) {
            eprintln!("cannot write corpus {path}: {e}");
            std::process::exit(1);
        }
        if !opts.quiet {
            println!("\nwrote {} seeds to {path}", engine.corpus().len());
        }
    }
}
