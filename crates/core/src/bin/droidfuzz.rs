//! The `droidfuzz` command-line front end: run a fuzzing campaign against
//! one of the simulated Table-I devices.
//!
//! ```sh
//! droidfuzz --device A1 --hours 24 --variant droidfuzz \
//!           --corpus-out a1.corpus --seed 7
//! ```
//!
//! With `--store-dir` the campaign runs as a *durable fleet*: hub deltas
//! are journaled to disk and compacted into checksummed snapshot
//! generations, and re-running with the same directory resumes from the
//! newest recoverable state instead of starting over:
//!
//! ```sh
//! droidfuzz --device A1 --hours 2 --store-dir ./a1-store --shards 4
//! droidfuzz --device A1 --hours 2 --store-dir ./a1-store --shards 4  # resumes
//! ```
//!
//! With `--serve <addr>` the process becomes a *corpus hub* instead of
//! running engines itself: it listens for `droidfuzz-worker` sessions,
//! hands each a shard range, sequences their pushes in shard-id order at
//! every sync barrier, and runs the same checkpoint cadence — so a
//! fixed-seed distributed campaign reproduces the local run bit for bit
//! (modulo the snapshot's wire-counter section). `--store-dir` composes:
//! a durable hub journals every round and resumes like a local fleet.
//!
//! ```sh
//! droidfuzz --serve 127.0.0.1:7800 --device A1 --hours 2 --shards 4
//! droidfuzz-worker --connect 127.0.0.1:7800 --shards 2   # twice
//! ```

use droidfuzz::config::FuzzerConfig;
use droidfuzz::engine::FuzzingEngine;
use droidfuzz::fleet::{Fleet, FleetConfig, FleetResult, FleetStore, DEFAULT_KEEP};
use droidfuzz::net::{variant_config, HubResult, HubServer, ServeConfig, TcpHubListener};
use droidfuzz::store::{FsMedium, RecoveryManager, StorageMedium};
use simdevice::catalog;

struct Options {
    device: String,
    hours: f64,
    variant: String,
    seed: u64,
    corpus_in: Option<String>,
    corpus_out: Option<String>,
    quiet: bool,
    store_dir: Option<String>,
    shards: usize,
    sync_interval: f64,
    threads: usize,
    checkpoint_every: usize,
    kill_after: Option<usize>,
    serve: Option<String>,
    fleet: bool,
    snapshot_out: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: droidfuzz [--device <A1|A2|B|C1|C2|D|E>] [--hours <virtual-hours>]\n\
         \x20                [--variant <droidfuzz|norel|nohcov|droidfuzz-d|syzkaller|difuze>]\n\
         \x20                [--seed <n>] [--corpus-in <file>] [--corpus-out <file>] [--quiet]\n\
         \x20                [--store-dir <dir>] [--shards <n>] [--sync-interval <hours>]\n\
         \x20                [--threads <n>] [--checkpoint-every <rounds>] [--kill-after <rounds>]\n\
         \x20                [--fleet] [--serve <addr>] [--snapshot-out <file>]\n\
         \n\
         \x20 --store-dir runs a durable fleet campaign journaled to <dir>; re-running\n\
         \x20 with an occupied <dir> resumes from the newest recoverable snapshot.\n\
         \x20 --threads caps the fleet worker pool (0 = one worker per shard; results\n\
         \x20 are bit-identical for every thread count).\n\
         \x20 --fleet runs an in-memory fleet campaign (no store) with the same knobs.\n\
         \x20 --serve turns the process into a corpus hub: droidfuzz-worker processes\n\
         \x20 connect to <addr> and run the shards; composes with --store-dir.\n\
         \x20 --snapshot-out writes the final fleet/hub snapshot text to <file>."
    );
    std::process::exit(2);
}

fn parse_args() -> Options {
    let mut opts = Options {
        device: "A1".into(),
        hours: 4.0,
        variant: "droidfuzz".into(),
        seed: 1,
        corpus_in: None,
        corpus_out: None,
        quiet: false,
        store_dir: None,
        shards: 4,
        sync_interval: 0.25,
        threads: 0,
        checkpoint_every: 1,
        kill_after: None,
        serve: None,
        fleet: false,
        snapshot_out: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match flag.as_str() {
            "--device" => opts.device = value("--device"),
            "--hours" => {
                opts.hours = value("--hours").parse().unwrap_or_else(|_| usage());
            }
            "--variant" => opts.variant = value("--variant"),
            "--seed" => opts.seed = value("--seed").parse().unwrap_or_else(|_| usage()),
            "--corpus-in" => opts.corpus_in = Some(value("--corpus-in")),
            "--corpus-out" => opts.corpus_out = Some(value("--corpus-out")),
            "--store-dir" => opts.store_dir = Some(value("--store-dir")),
            "--shards" => {
                opts.shards = value("--shards").parse().unwrap_or_else(|_| usage());
            }
            "--sync-interval" => {
                opts.sync_interval =
                    value("--sync-interval").parse().unwrap_or_else(|_| usage());
            }
            "--threads" => {
                opts.threads = value("--threads").parse().unwrap_or_else(|_| usage());
            }
            "--checkpoint-every" => {
                opts.checkpoint_every =
                    value("--checkpoint-every").parse().unwrap_or_else(|_| usage());
            }
            "--kill-after" => {
                opts.kill_after =
                    Some(value("--kill-after").parse().unwrap_or_else(|_| usage()));
            }
            "--serve" => opts.serve = Some(value("--serve")),
            "--fleet" => opts.fleet = true,
            "--snapshot-out" => opts.snapshot_out = Some(value("--snapshot-out")),
            "--quiet" => opts.quiet = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                usage()
            }
        }
    }
    opts
}

fn config_for(variant: &str, seed: u64) -> FuzzerConfig {
    // The same table `CampaignSpec::engine_config` uses on workers, so a
    // hub and its workers can never disagree on what a label means.
    variant_config(variant, seed).unwrap_or_else(|| {
        eprintln!("unknown variant {variant}");
        usage()
    })
}

fn write_snapshot(path: &Option<String>, snapshot: &str, quiet: bool) {
    let Some(path) = path else { return };
    if let Err(e) = std::fs::write(path, snapshot) {
        eprintln!("cannot write snapshot {path}: {e}");
        std::process::exit(1);
    }
    if !quiet {
        println!("wrote snapshot to {path}");
    }
}

fn report_fleet(result: &FleetResult, quiet: bool) {
    if !quiet {
        println!(
            "fleet: {} shard(s), {} round(s), cov={} execs={} crashes={}",
            result.shards.len(),
            result.rounds_completed,
            result.union_coverage,
            result.executions,
            result.crashes.len(),
        );
        println!(
            "store: {} journal record(s), {} snapshot(s) written, {} skipped, {} io error(s)",
            result.store_totals.journal_records,
            result.store_totals.snapshots_written,
            result.store_totals.snapshots_skipped,
            result.store_totals.io_errors,
        );
    }
    println!("\n== crash summary ==");
    if result.crashes.is_empty() {
        println!("(no crashes)");
    }
    for crash in &result.crashes {
        println!(
            "{} [{}] first seen at {:.1} h, {} occurrence(s)",
            crash.title,
            crash.component,
            crash.first_seen_us as f64 / 3.6e9,
            crash.count
        );
    }
}

fn fleet_config(opts: &Options) -> FleetConfig {
    FleetConfig {
        shards: opts.shards.max(1),
        hours: opts.hours,
        sync_interval_hours: opts.sync_interval,
        kill_after_rounds: opts.kill_after,
        checkpoint_interval_rounds: opts.checkpoint_every.max(1),
        threads: opts.threads,
        ..FleetConfig::default()
    }
}

/// `--serve`: run as the fleet's corpus hub. Workers bring the engines;
/// this process owns the hub, the barrier sequencing, and (with
/// `--store-dir`) the durable store.
fn run_hub(opts: &Options, spec: &simdevice::firmware::FirmwareSpec, addr: &str) -> ! {
    let serve_cfg = ServeConfig {
        fleet: fleet_config(opts),
        device: opts.device.clone(),
        variant: opts.variant.clone(),
        seed: opts.seed,
    };
    let (listener, bound) = TcpHubListener::bind(addr).unwrap_or_else(|e| {
        eprintln!("cannot bind hub on {addr}: {e}");
        std::process::exit(1);
    });
    if !opts.quiet {
        println!(
            "hub for {} {} listening on {bound} — waiting for {} shard(s) of workers",
            spec.meta.vendor,
            spec.meta.name,
            opts.shards.max(1)
        );
    }
    let hub = HubServer::new(serve_cfg);
    let served = match &opts.store_dir {
        None => hub.serve(listener, None, None),
        Some(dir) => {
            let medium = FsMedium::new(dir).unwrap_or_else(|e| {
                eprintln!("cannot open store dir {dir}: {e}");
                std::process::exit(1);
            });
            let occupied = !medium.list().unwrap_or_default().is_empty();
            if occupied {
                // Same recovery path as a durable local resume: a probe
                // engine supplies the table the auditors verify against.
                let probe = FuzzingEngine::new(
                    spec.clone().boot(),
                    config_for(&opts.variant, opts.seed),
                );
                let recovered = RecoveryManager::new(medium.clone())
                    .recover_verified(probe.desc_table())
                    .unwrap_or_else(|e| {
                        eprintln!("cannot recover hub state from {dir}: {e}");
                        std::process::exit(1);
                    });
                if !opts.quiet {
                    println!("{}", recovered.report.describe());
                }
                let mut store = FleetStore::resume(medium, DEFAULT_KEEP, &recovered)
                    .unwrap_or_else(|e| {
                        eprintln!("cannot resume store in {dir}: {e}");
                        std::process::exit(1);
                    });
                hub.serve(listener, Some(&mut store), Some(&recovered.snapshot))
            } else {
                let mut store =
                    FleetStore::create(medium, DEFAULT_KEEP).unwrap_or_else(|e| {
                        eprintln!("cannot start durable hub in {dir}: {e}");
                        std::process::exit(1);
                    });
                hub.serve(listener, Some(&mut store), None)
            }
        }
    };
    let result = served.unwrap_or_else(|e| {
        eprintln!("hub failed: {e}");
        std::process::exit(1);
    });
    report_hub(&result, opts.quiet);
    write_snapshot(&opts.snapshot_out, &result.snapshot, opts.quiet);
    std::process::exit(0);
}

fn report_hub(result: &HubResult, quiet: bool) {
    if !quiet {
        println!(
            "hub: {} worker(s), {} round(s), cov={} execs={} crashes={}",
            result.workers,
            result.rounds_completed,
            result.union_coverage,
            result.executions,
            result.crashes.len(),
        );
        let net = result.net_totals;
        println!(
            "net: {} session(s), {} frame(s) sent / {} received, \
             {} malformed, {} reconnect(s)",
            net.sessions,
            net.frames_sent,
            net.frames_received,
            net.malformed_frames + net.truncated_frames + net.oversized_frames,
            net.reconnects,
        );
    }
    println!("\n== crash summary ==");
    if result.crashes.is_empty() {
        println!("(no crashes)");
    }
    for crash in &result.crashes {
        println!(
            "{} [{}] first seen at {:.1} h, {} occurrence(s)",
            crash.title,
            crash.component,
            crash.first_seen_us as f64 / 3.6e9,
            crash.count
        );
    }
}

/// `--fleet`: an in-memory fleet campaign — the single-process reference
/// a distributed run is diffed against (same knobs, no store).
fn run_plain_fleet(opts: &Options, spec: &simdevice::firmware::FirmwareSpec) -> ! {
    let fleet = Fleet::new(fleet_config(opts));
    let make_config = |s: u64| config_for(&opts.variant, opts.seed.wrapping_add(s));
    let result = fleet.run(spec, make_config);
    report_fleet(&result, opts.quiet);
    write_snapshot(&opts.snapshot_out, &result.snapshot, opts.quiet);
    std::process::exit(0);
}

fn run_durable_fleet(opts: &Options, spec: simdevice::firmware::FirmwareSpec, dir: &str) -> ! {
    let medium = FsMedium::new(dir).unwrap_or_else(|e| {
        eprintln!("cannot open store dir {dir}: {e}");
        std::process::exit(1);
    });
    let occupied = !medium.list().unwrap_or_default().is_empty();
    let fleet = Fleet::new(fleet_config(opts));
    let make_config = |s: u64| config_for(&opts.variant, opts.seed.wrapping_add(s));
    let result = if occupied {
        match fleet.resume_durable(&spec, make_config, medium) {
            Ok((result, report)) => {
                if !opts.quiet {
                    println!("{}", report.describe());
                }
                result
            }
            Err(e) => {
                eprintln!("cannot resume from {dir}: {e}");
                std::process::exit(1);
            }
        }
    } else {
        match fleet.run_durable(&spec, make_config, medium) {
            Ok(result) => result,
            Err(e) => {
                eprintln!("cannot start durable campaign in {dir}: {e}");
                std::process::exit(1);
            }
        }
    };
    report_fleet(&result, opts.quiet);
    write_snapshot(&opts.snapshot_out, &result.snapshot, opts.quiet);
    std::process::exit(0);
}

fn main() {
    let opts = parse_args();
    let Some(spec) = catalog::by_id(&opts.device) else {
        eprintln!("unknown device {}; known: A1 A2 B C1 C2 D E", opts.device);
        std::process::exit(2);
    };
    let config = config_for(&opts.variant, opts.seed);
    if let Some(addr) = opts.serve.clone() {
        run_hub(&opts, &spec, &addr);
    }
    if opts.fleet && opts.store_dir.is_none() {
        run_plain_fleet(&opts, &spec);
    }
    if let Some(dir) = opts.store_dir.clone() {
        if !opts.quiet {
            println!(
                "durable fleet on {} {} — store dir {dir}",
                spec.meta.vendor, spec.meta.name
            );
        }
        run_durable_fleet(&opts, spec, &dir);
    }
    if !opts.quiet {
        println!(
            "booting {} {} ({}, AOSP {}, kernel {})",
            spec.meta.vendor, spec.meta.name, spec.meta.arch, spec.meta.aosp, spec.meta.kernel
        );
    }
    let mut engine = FuzzingEngine::new(spec.boot(), config);
    if let Some(path) = &opts.corpus_in {
        match std::fs::read_to_string(path) {
            Ok(text) => {
                let (n, rejects) = engine.import_corpus(&text);
                if !opts.quiet {
                    println!("restored {n} corpus seeds from {path} ({rejects} rejected)");
                }
            }
            Err(e) => {
                eprintln!("cannot read corpus {path}: {e}");
                std::process::exit(1);
            }
        }
    }
    if let Some(report) = engine.probe_report() {
        if !opts.quiet {
            println!(
                "probed {} HAL interfaces across {} services",
                report.interface_count(),
                report.services
            );
        }
    }

    // Report progress every simulated hour.
    let steps = (opts.hours.max(0.1) * 4.0).ceil() as u32;
    for step in 1..=steps {
        engine.run_for_virtual_hours(opts.hours / f64::from(steps));
        if !opts.quiet {
            println!(
                "[{:5.1}h] cov={} execs={} corpus={} relations={} crashes={}",
                opts.hours * f64::from(step) / f64::from(steps),
                engine.kernel_coverage(),
                engine.executions(),
                engine.corpus().len(),
                engine.relation_graph().edge_count(),
                engine.crash_db().len(),
            );
        }
    }

    println!("\n== crash summary ==");
    if engine.crash_db().is_empty() {
        println!("(no crashes)");
    }
    for crash in engine.crash_db().records() {
        println!(
            "{} [{}] first seen at {:.1} h, {} occurrence(s)",
            crash.title,
            crash.component,
            crash.first_seen_us as f64 / 3.6e9,
            crash.count
        );
        if let Some(repro) = &crash.repro {
            for line in repro.lines() {
                println!("    {line}");
            }
        }
    }

    if let Some(path) = &opts.corpus_out {
        if let Err(e) = std::fs::write(path, engine.export_corpus()) {
            eprintln!("cannot write corpus {path}: {e}");
            std::process::exit(1);
        }
        if !opts.quiet {
            println!("\nwrote {} seeds to {path}", engine.corpus().len());
        }
    }
}
