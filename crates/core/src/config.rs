//! Fuzzer configurations: DroidFuzz proper, its ablations (`DF-NoRel`,
//! `DF-NoHCov`), the restricted `DroidFuzz-D`, and the evaluation
//! baselines (syzkaller-like, Difuze-like).

use simdevice::faults::{FaultProfile, FaultRates};
use std::fmt;

/// Which fuzzer variant a configuration describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Variant {
    /// Full DroidFuzz.
    DroidFuzz,
    /// DroidFuzz with static interface models: the relation graph is
    /// seeded with model-derived priors before the first execution, the
    /// abstract-interpretation reachability gate rejects (or repairs)
    /// programs whose driver calls provably fail, and static depth feeds
    /// corpus seed energy.
    DroidFuzzS,
    /// DroidFuzz without relational payload generation (§V-D1).
    NoRel,
    /// DroidFuzz without HAL directional coverage (§V-D2).
    NoHCov,
    /// DroidFuzz restricted to the ioctl path (§V-C2).
    DroidFuzzD,
    /// Syscall-only coverage-guided baseline (syzkaller stand-in).
    Syzkaller,
    /// Interface-extraction + generation-only baseline (Difuze stand-in).
    Difuze,
}

impl fmt::Display for Variant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Variant::DroidFuzz => "DroidFuzz",
            Variant::DroidFuzzS => "DroidFuzz-S",
            Variant::NoRel => "DF-NoRel",
            Variant::NoHCov => "DF-NoHCov",
            Variant::DroidFuzzD => "DroidFuzz-D",
            Variant::Syzkaller => "Syzkaller",
            Variant::Difuze => "Difuze",
        };
        f.write_str(s)
    }
}

/// Full fuzzer configuration.
#[derive(Debug, Clone)]
pub struct FuzzerConfig {
    /// Which variant this is (drives reporting labels).
    pub variant: Variant,
    /// RNG seed (campaigns repeat with different seeds).
    pub seed: u64,
    /// Probe the HAL and include HAL interfaces in the vocabulary.
    pub hal_enabled: bool,
    /// Learn and use the relation graph (§IV-C).
    pub relations: bool,
    /// Merge HAL directional coverage into feedback (§IV-D).
    pub hal_coverage: bool,
    /// Use coverage feedback at all (Difuze is generation-only).
    pub feedback: bool,
    /// Restrict the device to the ioctl path (DroidFuzz-D, Difuze).
    pub ioctl_only: bool,
    /// Use statically-extracted vendor ioctl descriptions instead of the
    /// public syzlang set (Difuze's interface-awareness).
    pub vendor_ioctl_descs: bool,
    /// Target call count per generated payload.
    pub max_prog_calls: usize,
    /// Probability of mutating a corpus seed instead of generating fresh.
    pub mutate_prob: f64,
    /// Decay the relation graph every this many executions.
    pub decay_interval: u64,
    /// Decay factor (< 1).
    pub decay_factor: f64,
    /// Run minimization on coverage-increasing inputs (costs executions).
    pub minimize: bool,
    /// Lint-gate every program before execution or admission, repairing
    /// fixable defects (on for all variants; the bench harness turns it
    /// off to measure gate overhead).
    pub lint_gate: bool,
    /// Use the static interface models: seed the relation graph with
    /// model-derived priors, gate programs through the abstract
    /// interpreter (with prerequisite-insertion repair), and boost corpus
    /// seed energy by static depth (DroidFuzz-S).
    pub static_models: bool,
    /// Reboot the device upon encountering any bug (paper §V-A).
    pub reboot_on_bug: bool,
    /// Device-fault profile the supervisor draws from (`Reliable` is
    /// behavior-identical to a fault-free build).
    pub fault_profile: FaultProfile,
    /// Explicit fault rates overriding the profile (tests force specific
    /// fault mixes; `None` uses the profile's presets).
    pub fault_rates: Option<FaultRates>,
    /// How many engine steps share one broker batch (persistent trace
    /// session + amortized device setup). Batch boundaries draw no RNG
    /// and charge no virtual time, so any value — including 1, the
    /// per-program path — produces bit-identical campaigns.
    pub exec_batch: usize,
}

impl FuzzerConfig {
    fn base(variant: Variant, seed: u64) -> Self {
        Self {
            variant,
            seed,
            hal_enabled: true,
            relations: true,
            hal_coverage: true,
            feedback: true,
            ioctl_only: false,
            vendor_ioctl_descs: false,
            max_prog_calls: 16,
            mutate_prob: 0.6,
            decay_interval: 2000,
            decay_factor: 0.9,
            minimize: true,
            lint_gate: true,
            static_models: false,
            reboot_on_bug: true,
            fault_profile: FaultProfile::Reliable,
            fault_rates: None,
            exec_batch: 16,
        }
    }

    /// The same configuration under a device-fault profile.
    pub fn with_fault_profile(self, profile: FaultProfile) -> Self {
        Self { fault_profile: profile, ..self }
    }

    /// The same configuration with explicit fault rates (overrides the
    /// profile's presets; mainly for tests forcing a fault mix).
    pub fn with_fault_rates(self, rates: FaultRates) -> Self {
        Self { fault_rates: Some(rates), ..self }
    }

    /// The same configuration with the lint gate toggled (the bench
    /// harness compares gated vs ungated campaigns).
    pub fn with_lint_gate(self, lint_gate: bool) -> Self {
        Self { lint_gate, ..self }
    }

    /// The same configuration with a different execution batch size
    /// (values < 1 are clamped to the per-program path).
    pub fn with_exec_batch(self, exec_batch: usize) -> Self {
        Self { exec_batch: exec_batch.max(1), ..self }
    }

    /// Full DroidFuzz.
    pub fn droidfuzz(seed: u64) -> Self {
        Self::base(Variant::DroidFuzz, seed)
    }

    /// `DroidFuzz-S`: DroidFuzz plus static interface models (prior
    /// seeding, reachability gating, static-depth seed energy).
    pub fn droidfuzz_s(seed: u64) -> Self {
        Self { static_models: true, ..Self::base(Variant::DroidFuzzS, seed) }
    }

    /// `DF-NoRel`: randomized dependency generation only.
    pub fn droidfuzz_norel(seed: u64) -> Self {
        Self { relations: false, ..Self::base(Variant::NoRel, seed) }
    }

    /// `DF-NoHCov`: kernel kcov feedback only.
    pub fn droidfuzz_nohcov(seed: u64) -> Self {
        Self { hal_coverage: false, ..Self::base(Variant::NoHCov, seed) }
    }

    /// `DroidFuzz-D`: executor and HAL restricted to the ioctl path.
    pub fn droidfuzz_d(seed: u64) -> Self {
        Self { ioctl_only: true, ..Self::base(Variant::DroidFuzzD, seed) }
    }

    /// Syzkaller stand-in: syscall-only, coverage-guided, no HAL probing,
    /// no relation learning, no HAL coverage.
    pub fn syzkaller(seed: u64) -> Self {
        Self {
            hal_enabled: false,
            relations: false,
            hal_coverage: false,
            ..Self::base(Variant::Syzkaller, seed)
        }
    }

    /// Difuze stand-in: extracted ioctl interfaces, generation-based (no
    /// feedback, no corpus, no HAL).
    pub fn difuze(seed: u64) -> Self {
        Self {
            hal_enabled: false,
            relations: false,
            hal_coverage: false,
            feedback: false,
            ioctl_only: true,
            vendor_ioctl_descs: true,
            minimize: false,
            ..Self::base(Variant::Difuze, seed)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variants_toggle_the_right_features() {
        let df = FuzzerConfig::droidfuzz(1);
        assert!(df.hal_enabled && df.relations && df.hal_coverage && df.feedback);
        assert!(!df.ioctl_only);
        assert!(!df.static_models, "static models are DroidFuzz-S only");

        let dfs = FuzzerConfig::droidfuzz_s(1);
        assert!(dfs.static_models && dfs.relations && dfs.hal_enabled);
        assert_eq!(dfs.variant, Variant::DroidFuzzS);

        let norel = FuzzerConfig::droidfuzz_norel(1);
        assert!(!norel.relations && norel.hal_coverage && norel.hal_enabled);

        let nohcov = FuzzerConfig::droidfuzz_nohcov(1);
        assert!(nohcov.relations && !nohcov.hal_coverage && nohcov.hal_enabled);

        let dfd = FuzzerConfig::droidfuzz_d(1);
        assert!(dfd.ioctl_only && dfd.hal_enabled);

        let syz = FuzzerConfig::syzkaller(1);
        assert!(!syz.hal_enabled && !syz.relations && !syz.hal_coverage && syz.feedback);

        let difuze = FuzzerConfig::difuze(1);
        assert!(!difuze.feedback && difuze.ioctl_only && !difuze.hal_enabled);
    }

    #[test]
    fn fault_profile_defaults_to_reliable_and_builders_override() {
        let df = FuzzerConfig::droidfuzz(1);
        assert_eq!(df.fault_profile, FaultProfile::Reliable);
        assert!(df.fault_rates.is_none());
        let flaky = FuzzerConfig::droidfuzz(1).with_fault_profile(FaultProfile::Flaky);
        assert_eq!(flaky.fault_profile, FaultProfile::Flaky);
        let forced = FuzzerConfig::droidfuzz(1)
            .with_fault_rates(FaultRates::for_profile(FaultProfile::Hostile));
        assert_eq!(forced.fault_rates, Some(FaultRates::for_profile(FaultProfile::Hostile)));
    }

    #[test]
    fn exec_batch_defaults_sane_and_clamps_to_one() {
        let df = FuzzerConfig::droidfuzz(1);
        assert!(df.exec_batch >= 1);
        assert_eq!(FuzzerConfig::droidfuzz(1).with_exec_batch(0).exec_batch, 1);
        assert_eq!(FuzzerConfig::droidfuzz(1).with_exec_batch(32).exec_batch, 32);
    }

    #[test]
    fn display_labels_match_paper() {
        assert_eq!(Variant::DroidFuzz.to_string(), "DroidFuzz");
        assert_eq!(Variant::DroidFuzzS.to_string(), "DroidFuzz-S");
        assert_eq!(Variant::NoRel.to_string(), "DF-NoRel");
        assert_eq!(Variant::NoHCov.to_string(), "DF-NoHCov");
        assert_eq!(Variant::DroidFuzzD.to_string(), "DroidFuzz-D");
    }
}
