//! The seed corpus: programs that triggered new execution state, kept for
//! further mutation (the daemon's persistent data of §IV-A).

use fuzzlang::desc::DescTable;
use fuzzlang::prog::Prog;
use fuzzlang::text::format_prog;
use rand::seq::SliceRandom;
use rand::Rng;

/// One seed.
#[derive(Debug, Clone)]
pub struct Seed {
    /// The program.
    pub prog: Prog,
    /// Admission score: the (kernel-weighted) signal count the seed
    /// contributed when admitted; drives selection and eviction.
    pub new_signals: usize,
    /// Times it has been picked for mutation.
    pub picks: u64,
}

/// Maximum corpus size; lowest-value seeds are evicted beyond this.
pub const MAX_SEEDS: usize = 4096;

/// The seed corpus.
#[derive(Debug, Clone, Default)]
pub struct Corpus {
    seeds: Vec<Seed>,
    admitted: u64,
}

impl Corpus {
    /// Creates an empty corpus.
    pub fn new() -> Self {
        Self::default()
    }

    /// Admits a program with the given admission score (the engine weights
    /// kernel-coverage novelty above HAL-ordering novelty).
    pub fn admit(&mut self, prog: Prog, new_signals: usize) {
        self.admitted += 1;
        self.seeds.push(Seed { prog, new_signals, picks: 0 });
        if self.seeds.len() > MAX_SEEDS {
            // Evict the least valuable (fewest signals, most picked).
            let idx = self
                .seeds
                .iter()
                .enumerate()
                .min_by_key(|(_, s)| (s.new_signals, u64::MAX - s.picks))
                .map(|(i, _)| i)
                .expect("non-empty");
            self.seeds.swap_remove(idx);
        }
    }

    /// Picks a seed for mutation, biased toward high-signal, rarely-picked
    /// seeds.
    pub fn pick<R: Rng>(&mut self, rng: &mut R) -> Option<&Prog> {
        if self.seeds.is_empty() {
            return None;
        }
        // Tournament of 4: best signal-per-pick ratio wins.
        let n = self.seeds.len();
        let mut best: Option<usize> = None;
        for _ in 0..4.min(n) {
            let i = rng.gen_range(0..n);
            let score = |s: &Seed| s.new_signals as f64 / (1.0 + s.picks as f64);
            if best.is_none_or(|b| score(&self.seeds[i]) > score(&self.seeds[b])) {
                best = Some(i);
            }
        }
        let idx = best.expect("non-empty");
        self.seeds[idx].picks += 1;
        Some(&self.seeds[idx].prog)
    }

    /// Picks a uniformly random seed (for splicing).
    pub fn pick_uniform<R: Rng>(&self, rng: &mut R) -> Option<&Prog> {
        self.seeds.choose(rng).map(|s| &s.prog)
    }

    /// Number of seeds currently held.
    pub fn len(&self) -> usize {
        self.seeds.len()
    }

    /// Whether the corpus is empty.
    pub fn is_empty(&self) -> bool {
        self.seeds.is_empty()
    }

    /// Total seeds ever admitted (including evicted ones).
    pub fn admitted(&self) -> u64 {
        self.admitted
    }

    /// Serializes the corpus in the DSL text format, seeds separated by
    /// `# seed` comment headers — the daemon's persistent representation.
    pub fn export(&self, table: &DescTable) -> String {
        let mut out = String::new();
        for (i, seed) in self.seeds.iter().enumerate() {
            out.push_str(&format!("# seed {i} signals={}\n", seed.new_signals));
            out.push_str(&format_prog(&seed.prog, table));
            out.push('\n');
        }
        out
    }

    /// Restores a corpus from an [`export`](Self::export) dump. Seeds that
    /// fail to parse or validate against `table` (e.g. after the device's
    /// vocabulary changed across a firmware update) are skipped; returns
    /// the number of seeds restored.
    pub fn import(&mut self, text: &str, table: &DescTable) -> usize {
        let mut restored = 0;
        for chunk in text.split("# seed ") {
            let body: String = chunk
                .lines()
                .filter(|l| l.starts_with('r'))
                .map(|l| format!("{l}\n"))
                .collect();
            if body.is_empty() {
                continue;
            }
            let signals = chunk
                .lines()
                .next()
                .and_then(|header| header.split("signals=").nth(1))
                .and_then(|v| v.trim().parse::<usize>().ok())
                .unwrap_or(1);
            if let Ok(prog) = fuzzlang::text::parse_prog(&body, table) {
                if prog.validate(table).is_ok() && !prog.is_empty() {
                    self.admit(prog, signals);
                    restored += 1;
                }
            }
        }
        restored
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fuzzlang::desc::{CallDesc, DescTable};
    use fuzzlang::prog::Call;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn prog(n: usize, t: &DescTable) -> Prog {
        let id = t.id_of("openat$/dev/x").unwrap();
        Prog { calls: (0..n).map(|_| Call { desc: id, args: vec![] }).collect() }
    }

    fn table() -> DescTable {
        let mut t = DescTable::new();
        t.add(CallDesc::syscall_open("/dev/x"));
        t
    }

    #[test]
    fn pick_prefers_valuable_seeds() {
        let t = table();
        let mut c = Corpus::new();
        c.admit(prog(1, &t), 1);
        c.admit(prog(2, &t), 100);
        let mut rng = StdRng::seed_from_u64(1);
        let mut big = 0;
        for _ in 0..200 {
            if c.pick(&mut rng).map(Prog::len) == Some(2) {
                big += 1;
            }
        }
        assert!(big > 120, "high-signal seed should dominate, got {big}");
    }

    #[test]
    fn eviction_keeps_size_bounded() {
        let t = table();
        let mut c = Corpus::new();
        for i in 0..MAX_SEEDS + 100 {
            c.admit(prog(1, &t), i);
        }
        assert_eq!(c.len(), MAX_SEEDS);
        assert_eq!(c.admitted(), (MAX_SEEDS + 100) as u64);
    }

    #[test]
    fn export_contains_headers_and_calls() {
        let t = table();
        let mut c = Corpus::new();
        c.admit(prog(2, &t), 7);
        let text = c.export(&t);
        assert!(text.contains("# seed 0 signals=7"));
        assert!(text.contains("openat$/dev/x"));
    }

    #[test]
    fn export_import_roundtrip() {
        let t = table();
        let mut c = Corpus::new();
        c.admit(prog(2, &t), 7);
        c.admit(prog(3, &t), 4);
        let text = c.export(&t);
        let mut restored = Corpus::new();
        assert_eq!(restored.import(&text, &t), 2);
        assert_eq!(restored.len(), 2);
        assert_eq!(restored.export(&t), text);
    }

    #[test]
    fn import_skips_stale_seeds() {
        let t = table();
        let text = "# seed 0 signals=3\nr0 = openat$/dev/x()\n\n# seed 1 signals=9\nr0 = openat$/dev/removed()\n";
        let mut c = Corpus::new();
        assert_eq!(c.import(text, &t), 1, "unknown call skipped, valid seed kept");
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn pick_from_empty_is_none() {
        let mut c = Corpus::new();
        let mut rng = StdRng::seed_from_u64(2);
        assert!(c.pick(&mut rng).is_none());
        assert!(c.pick_uniform(&mut rng).is_none());
    }
}
