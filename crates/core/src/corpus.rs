//! The seed corpus: programs that triggered new execution state, kept for
//! further mutation (the daemon's persistent data of §IV-A).

use droidfuzz_analysis::{gate_prog, LintCounters};
use fuzzlang::desc::DescTable;
use fuzzlang::prog::Prog;
use fuzzlang::text::format_prog;
use rand::seq::SliceRandom;
use rand::Rng;
use std::cmp::Reverse;

/// One seed.
#[derive(Debug, Clone)]
pub struct Seed {
    /// The program.
    pub prog: Prog,
    /// Admission score: the (kernel-weighted) signal count the seed
    /// contributed when admitted; drives selection and eviction.
    pub new_signals: usize,
    /// Times it has been picked for mutation.
    pub picks: u64,
    /// Admission sequence number (age tie-breaker for eviction).
    pub seq: u64,
}

/// Maximum corpus size; lowest-value seeds are evicted beyond this.
pub const MAX_SEEDS: usize = 4096;

/// The seed corpus.
#[derive(Debug, Clone, Default)]
pub struct Corpus {
    seeds: Vec<Seed>,
    admitted: u64,
}

impl Corpus {
    /// Creates an empty corpus.
    pub fn new() -> Self {
        Self::default()
    }

    /// Admits a program with the given admission score (the engine weights
    /// kernel-coverage novelty above HAL-ordering novelty).
    ///
    /// The just-admitted seed is never the eviction victim, even when it
    /// ties for fewest `new_signals` — otherwise a full corpus would
    /// discard every incoming seed at the admission score floor. Among
    /// the remaining seeds the victim is the one with fewest signals,
    /// then most picks (already well-explored), then oldest.
    pub fn admit(&mut self, prog: Prog, new_signals: usize) {
        self.admitted += 1;
        let seq = self.admitted;
        self.seeds.push(Seed { prog, new_signals, picks: 0, seq });
        if self.seeds.len() > MAX_SEEDS {
            let idx = self
                .seeds
                .iter()
                .take(self.seeds.len() - 1) // exclude the seed just pushed
                .enumerate()
                .min_by_key(|(_, s)| (s.new_signals, Reverse(s.picks), s.seq))
                .map(|(i, _)| i)
                .expect("non-empty");
            self.seeds.swap_remove(idx);
        }
    }

    /// [`admit`](Self::admit) behind the lint gate: the program is linted
    /// against `table`, auto-repaired if it has fixable errors, and only
    /// then admitted. Returns whether a seed entered the corpus; gate
    /// outcomes land in `counters`.
    pub fn admit_gated(
        &mut self,
        mut prog: Prog,
        new_signals: usize,
        table: &DescTable,
        counters: &mut LintCounters,
    ) -> bool {
        if !gate_prog(&mut prog, table, counters) || prog.is_empty() {
            return false;
        }
        self.admit(prog, new_signals);
        true
    }

    /// Picks a seed for mutation, biased toward high-signal, rarely-picked
    /// seeds.
    pub fn pick<R: Rng>(&mut self, rng: &mut R) -> Option<&Prog> {
        if self.seeds.is_empty() {
            return None;
        }
        // Tournament of 4: best signal-per-pick ratio wins.
        let n = self.seeds.len();
        let mut best: Option<usize> = None;
        for _ in 0..4.min(n) {
            let i = rng.gen_range(0..n);
            let score = |s: &Seed| s.new_signals as f64 / (1.0 + s.picks as f64);
            if best.is_none_or(|b| score(&self.seeds[i]) > score(&self.seeds[b])) {
                best = Some(i);
            }
        }
        let idx = best.expect("non-empty");
        self.seeds[idx].picks += 1;
        Some(&self.seeds[idx].prog)
    }

    /// Picks a uniformly random seed (for splicing).
    pub fn pick_uniform<R: Rng>(&self, rng: &mut R) -> Option<&Prog> {
        self.seeds.choose(rng).map(|s| &s.prog)
    }

    /// Removes the first seed holding exactly `prog` (the supervisor
    /// evicts programs that hang the device). Returns whether a seed was
    /// removed.
    pub fn remove_prog(&mut self, prog: &Prog) -> bool {
        match self.seeds.iter().position(|s| &s.prog == prog) {
            Some(idx) => {
                self.seeds.swap_remove(idx);
                true
            }
            None => false,
        }
    }

    /// Number of seeds currently held.
    pub fn len(&self) -> usize {
        self.seeds.len()
    }

    /// Whether the corpus is empty.
    pub fn is_empty(&self) -> bool {
        self.seeds.is_empty()
    }

    /// Total seeds ever admitted (including evicted ones).
    pub fn admitted(&self) -> u64 {
        self.admitted
    }

    /// The seeds currently held (the fleet hub reads these to publish
    /// per-seed signal scores).
    pub fn seeds(&self) -> &[Seed] {
        &self.seeds
    }

    /// Serializes the corpus in the DSL text format, seeds separated by
    /// `# seed` comment headers — the daemon's persistent representation.
    pub fn export(&self, table: &DescTable) -> String {
        let mut out = String::new();
        for (i, seed) in self.seeds.iter().enumerate() {
            out.push_str(&format!("# seed {i} signals={}\n", seed.new_signals));
            out.push_str(&format_prog(&seed.prog, table));
            out.push('\n');
        }
        out
    }

    /// Serializes only the seeds admitted after sequence `min_seq` (and
    /// still live). Same format as [`export`](Self::export); the header
    /// index is per-dump and carries no identity. Eviction reorders the
    /// seed vector, so the filter is by each seed's admission sequence,
    /// not by position.
    pub fn export_since(&self, table: &DescTable, min_seq: u64) -> String {
        let mut out = String::new();
        for (i, seed) in self.seeds.iter().filter(|s| s.seq > min_seq).enumerate() {
            out.push_str(&format!("# seed {i} signals={}\n", seed.new_signals));
            out.push_str(&format_prog(&seed.prog, table));
            out.push('\n');
        }
        out
    }

    /// Restores a corpus from an [`export`](Self::export) dump. Seeds that
    /// fail to parse or validate against `table` (stale vocabulary after a
    /// firmware update, truncated or corrupted snapshot lines) are skipped
    /// — never panicking, so a damaged snapshot restores everything it
    /// can. Returns `(accepted, rejected)`.
    pub fn import(&mut self, text: &str, table: &DescTable) -> (usize, usize) {
        self.import_inner(text, table, None)
    }

    /// [`import`](Self::import) behind the lint gate: each seed that
    /// parses is linted and, when it carries fixable errors (a dangling
    /// ref left by an old engine version, a seed from a shard with a
    /// slightly different vocabulary), auto-repaired instead of dropped.
    /// Repaired seeds count as accepted; gate outcomes land in `counters`.
    pub fn import_gated(
        &mut self,
        text: &str,
        table: &DescTable,
        counters: &mut LintCounters,
    ) -> (usize, usize) {
        self.import_inner(text, table, Some(counters))
    }

    fn import_inner(
        &mut self,
        text: &str,
        table: &DescTable,
        mut counters: Option<&mut LintCounters>,
    ) -> (usize, usize) {
        let mut accepted = 0;
        let mut rejected = 0;
        for (i, chunk) in text.split("# seed ").enumerate() {
            if chunk.trim().is_empty() {
                continue;
            }
            let body: String = chunk
                .lines()
                .filter(|l| l.starts_with('r'))
                .map(|l| format!("{l}\n"))
                .collect();
            if body.is_empty() {
                // A header with no program lines is a damaged seed record;
                // the split's first chunk (text before any header) is
                // preamble noise, not a seed.
                if i > 0 {
                    rejected += 1;
                }
                continue;
            }
            let signals = chunk
                .lines()
                .next()
                .and_then(|header| header.split("signals=").nth(1))
                .and_then(|v| v.trim().parse::<usize>().ok())
                .unwrap_or(1);
            match fuzzlang::text::parse_prog(&body, table) {
                Ok(prog) if !prog.is_empty() => {
                    let admitted = match counters.as_deref_mut() {
                        Some(c) => self.admit_gated(prog, signals, table, c),
                        None => {
                            let valid = prog.validate(table).is_ok();
                            if valid {
                                self.admit(prog, signals);
                            }
                            valid
                        }
                    };
                    if admitted {
                        accepted += 1;
                    } else {
                        rejected += 1;
                    }
                }
                _ => rejected += 1,
            }
        }
        (accepted, rejected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fuzzlang::desc::{CallDesc, DescTable};
    use fuzzlang::prog::Call;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn prog(n: usize, t: &DescTable) -> Prog {
        let id = t.id_of("openat$/dev/x").unwrap();
        Prog { calls: (0..n).map(|_| Call { desc: id, args: vec![] }).collect() }
    }

    fn table() -> DescTable {
        let mut t = DescTable::new();
        t.add(CallDesc::syscall_open("/dev/x"));
        t
    }

    #[test]
    fn pick_prefers_valuable_seeds() {
        let t = table();
        let mut c = Corpus::new();
        c.admit(prog(1, &t), 1);
        c.admit(prog(2, &t), 100);
        let mut rng = StdRng::seed_from_u64(1);
        let mut big = 0;
        for _ in 0..200 {
            if c.pick(&mut rng).map(Prog::len) == Some(2) {
                big += 1;
            }
        }
        assert!(big > 120, "high-signal seed should dominate, got {big}");
    }

    #[test]
    fn eviction_keeps_size_bounded() {
        let t = table();
        let mut c = Corpus::new();
        for i in 0..MAX_SEEDS + 100 {
            c.admit(prog(1, &t), i);
        }
        assert_eq!(c.len(), MAX_SEEDS);
        assert_eq!(c.admitted(), (MAX_SEEDS + 100) as u64);
    }

    #[test]
    fn just_admitted_seed_survives_tie_eviction() {
        let t = table();
        let mut c = Corpus::new();
        // Fill the corpus entirely with score-0 seeds, then admit one
        // more score-0 seed: some *other* seed must be evicted.
        for _ in 0..MAX_SEEDS {
            c.admit(prog(1, &t), 0);
        }
        c.admit(prog(3, &t), 0);
        assert_eq!(c.len(), MAX_SEEDS);
        assert!(
            c.seeds().iter().any(|s| s.prog.len() == 3),
            "the seed admitted into a full corpus must survive a score tie"
        );
    }

    #[test]
    fn tie_eviction_prefers_old_high_picks_seeds() {
        let t = table();
        let mut c = Corpus::new();
        for _ in 0..MAX_SEEDS {
            c.admit(prog(1, &t), 0);
        }
        // Mark one early seed as heavily explored.
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..64 {
            let _ = c.pick(&mut rng);
        }
        let most_picked = c.seeds().iter().map(|s| (s.picks, s.seq)).max().unwrap();
        assert!(most_picked.0 > 0);
        c.admit(prog(2, &t), 0);
        assert!(
            !c.seeds().iter().any(|s| (s.picks, s.seq) == most_picked),
            "the most-picked tied seed should be the eviction victim"
        );
    }

    #[test]
    fn remove_prog_evicts_matching_seed_only() {
        let t = table();
        let mut c = Corpus::new();
        c.admit(prog(2, &t), 7);
        c.admit(prog(3, &t), 4);
        assert!(c.remove_prog(&prog(3, &t)));
        assert_eq!(c.len(), 1);
        assert!(!c.remove_prog(&prog(3, &t)), "already gone");
        assert!(c.seeds().iter().all(|s| s.prog.len() == 2));
    }

    #[test]
    fn export_contains_headers_and_calls() {
        let t = table();
        let mut c = Corpus::new();
        c.admit(prog(2, &t), 7);
        let text = c.export(&t);
        assert!(text.contains("# seed 0 signals=7"));
        assert!(text.contains("openat$/dev/x"));
    }

    #[test]
    fn export_import_roundtrip() {
        let t = table();
        let mut c = Corpus::new();
        c.admit(prog(2, &t), 7);
        c.admit(prog(3, &t), 4);
        let text = c.export(&t);
        let mut restored = Corpus::new();
        assert_eq!(restored.import(&text, &t), (2, 0));
        assert_eq!(restored.len(), 2);
        assert_eq!(restored.export(&t), text);
    }

    #[test]
    fn import_skips_stale_seeds() {
        let t = table();
        let text = "# seed 0 signals=3\nr0 = openat$/dev/x()\n\n# seed 1 signals=9\nr0 = openat$/dev/removed()\n";
        let mut c = Corpus::new();
        assert_eq!(c.import(text, &t), (1, 1), "unknown call skipped, valid seed kept");
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn import_survives_malformed_and_truncated_lines() {
        let t = table();
        let text = concat!(
            "garbage preamble, not a seed\n",
            "# seed 0 signals=7\nr0 = openat$/dev/x()\n\n",
            "# seed 1 signals=notanumber\nr0 = openat$/dev/x()\n\n",
            "# seed 2 signals=9\nr0 = openat$/dev/x(trunc", // truncated mid-line
            "\n# seed 3\n\n",                               // header only, no body
            "# seed 4 signals=2\nr0 = openat$/dev/x()\n",
        );
        let mut c = Corpus::new();
        let (accepted, rejected) = c.import(text, &t);
        assert_eq!(accepted, 3, "valid seeds restored, incl. defaulted signals");
        assert_eq!(rejected, 2, "truncated body and empty body both counted");
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn import_gated_repairs_dangling_refs() {
        let mut t = table();
        t.add(CallDesc::syscall_close());
        // A close of a resource nothing produced: old plain import would
        // reject it; the gate inserts the missing producer instead.
        let text = "# seed 0 signals=5\nr0 = close(r9)\n";
        let mut c = Corpus::new();
        let mut counters = LintCounters::default();
        let (accepted, rejected) = c.import_gated(text, &t, &mut counters);
        assert_eq!((accepted, rejected), (1, 0));
        assert_eq!(counters.repaired, 1);
        assert_eq!(counters.rejected, 0);
        assert_eq!(c.seeds()[0].prog.len(), 2, "producer inserted before the close");
        assert!(c.seeds()[0].prog.validate(&t).is_ok());
    }

    #[test]
    fn import_of_empty_text_is_a_noop() {
        let t = table();
        let mut c = Corpus::new();
        assert_eq!(c.import("", &t), (0, 0));
        assert_eq!(c.import("\n\n", &t), (0, 0));
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn pick_from_empty_is_none() {
        let mut c = Corpus::new();
        let mut rng = StdRng::seed_from_u64(2);
        assert!(c.pick(&mut rng).is_none());
        assert!(c.pick_uniform(&mut rng).is_none());
    }
}
