//! Crash collection: deduplication, reproducer storage, and reporting
//! (the paper's bugs "were initially minimized, deduplicated, and
//! reproduced", §V-B).

use fuzzlang::desc::DescTable;
use fuzzlang::prog::Prog;
use fuzzlang::text::format_prog;
use simkernel::report::{BugKind, BugReport, Component};
use std::collections::BTreeMap;

/// One deduplicated crash.
#[derive(Debug, Clone, PartialEq)]
pub struct CrashRecord {
    /// Stable headline.
    pub title: String,
    /// Bug class.
    pub kind: BugKind,
    /// Stack layer.
    pub component: Component,
    /// Times observed.
    pub count: u64,
    /// Virtual time of first observation, µs.
    pub first_seen_us: u64,
    /// Minimized reproducer in DSL text form, once captured.
    pub repro: Option<String>,
}

/// Normalizes a headline into the dedup key (drops KASAN's access
/// direction and numeric suffixes, mirroring syzkaller's title hashing).
pub fn dedup_key(title: &str) -> String {
    title
        .replace(" Read in ", " in ")
        .replace(" Write in ", " in ")
        .split(": 0x")
        .next()
        .unwrap_or(title)
        .to_owned()
}

/// The deduplicating crash database.
#[derive(Debug, Clone, Default)]
pub struct CrashDb {
    records: BTreeMap<String, CrashRecord>,
    total_reports: u64,
}

impl CrashDb {
    /// Creates an empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a report observed at `now_us`; returns `true` when this is
    /// a previously unseen crash (which callers should then minimize and
    /// attach a reproducer for).
    pub fn record(&mut self, report: &BugReport, now_us: u64) -> bool {
        self.total_reports += 1;
        let key = dedup_key(&report.title);
        match self.records.get_mut(&key) {
            Some(existing) => {
                existing.count += 1;
                false
            }
            None => {
                self.records.insert(
                    key,
                    CrashRecord {
                        title: report.title.clone(),
                        kind: report.kind,
                        component: report.component,
                        count: 1,
                        first_seen_us: now_us,
                        repro: None,
                    },
                );
                true
            }
        }
    }

    /// Merges an already-deduplicated record from a peer database (fleet
    /// crash sync): counts add up, the earliest observation wins
    /// `first_seen_us`, and the first available reproducer sticks.
    pub fn merge_record(&mut self, record: &CrashRecord) {
        self.total_reports += record.count;
        let key = dedup_key(&record.title);
        match self.records.get_mut(&key) {
            Some(existing) => {
                existing.count += record.count;
                if record.first_seen_us < existing.first_seen_us {
                    existing.first_seen_us = record.first_seen_us;
                    existing.title = record.title.clone();
                }
                if existing.repro.is_none() {
                    existing.repro = record.repro.clone();
                }
            }
            None => {
                self.records.insert(key, record.clone());
            }
        }
    }

    /// Attaches a minimized reproducer to a crash.
    pub fn attach_repro(&mut self, title: &str, prog: &Prog, table: &DescTable) {
        let key = dedup_key(title);
        if let Some(record) = self.records.get_mut(&key) {
            record.repro = Some(format_prog(prog, table));
        }
    }

    /// All records, sorted by first observation time.
    pub fn records(&self) -> Vec<&CrashRecord> {
        let mut v: Vec<&CrashRecord> = self.records.values().collect();
        v.sort_by_key(|r| r.first_seen_us);
        v
    }

    /// Number of distinct crashes.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether no crash has been recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Total (pre-dedup) reports seen.
    pub fn total_reports(&self) -> u64 {
        self.total_reports
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(title: &str) -> BugReport {
        BugReport::with_title(BugKind::Warning, title, Component::KernelDriver)
    }

    #[test]
    fn dedup_by_normalized_title() {
        let mut db = CrashDb::new();
        assert!(db.record(&report("WARNING in foo"), 10));
        assert!(!db.record(&report("WARNING in foo"), 20));
        let kasan_a = BugReport::with_title(
            BugKind::KasanUseAfterFree,
            "KASAN: slab-use-after-free Read in bar",
            Component::KernelDriver,
        );
        let kasan_b = BugReport::with_title(
            BugKind::KasanUseAfterFree,
            "KASAN: slab-use-after-free in bar",
            Component::KernelDriver,
        );
        assert!(db.record(&kasan_a, 30));
        assert!(!db.record(&kasan_b, 40), "access direction must not split crashes");
        assert_eq!(db.len(), 2);
        assert_eq!(db.total_reports(), 4);
    }

    #[test]
    fn records_sorted_by_first_seen() {
        let mut db = CrashDb::new();
        db.record(&report("B"), 50);
        db.record(&report("A"), 10);
        let order: Vec<&str> = db.records().iter().map(|r| r.title.as_str()).collect();
        assert_eq!(order, vec!["A", "B"]);
        assert_eq!(db.records()[0].first_seen_us, 10);
    }

    #[test]
    fn repro_attaches_by_normalized_title() {
        let mut table = DescTable::new();
        table.add(fuzzlang::desc::CallDesc::syscall_open("/dev/x"));
        let prog = Prog {
            calls: vec![fuzzlang::prog::Call {
                desc: fuzzlang::desc::DescId(0),
                args: vec![],
            }],
        };
        let mut db = CrashDb::new();
        db.record(&report("WARNING in foo"), 1);
        db.attach_repro("WARNING in foo", &prog, &table);
        assert!(db.records()[0].repro.as_ref().unwrap().contains("openat$/dev/x"));
    }
}
