//! The Daemon (§IV-A): the root process coordinating one fuzzing engine
//! per device, maintaining the persistent data (corpus exports, crash
//! records, relation tables), and running repeated campaigns for the
//! evaluation.

use crate::config::FuzzerConfig;
use crate::crashes::CrashRecord;
use crate::engine::{FuzzingEngine, HOUR_US};
use crate::stats::{mean_series, Series};
use simdevice::firmware::FirmwareSpec;
use std::thread;

/// Result of one repeated campaign on one device.
#[derive(Debug, Clone)]
pub struct CampaignResult {
    /// Table I device id.
    pub device_id: String,
    /// Variant label.
    pub fuzzer: String,
    /// Final kernel coverage per repetition.
    pub final_coverage: Vec<f64>,
    /// Mean coverage-over-time series across repetitions.
    pub mean_series: Series,
    /// Deduplicated crashes across all repetitions (by title).
    pub crashes: Vec<CrashRecord>,
    /// Total executions across repetitions.
    pub executions: u64,
}

impl CampaignResult {
    /// Mean of the final coverage values.
    pub fn mean_final_coverage(&self) -> f64 {
        crate::stats::mean(&self.final_coverage)
    }
}

/// The campaign daemon.
#[derive(Debug, Default)]
pub struct Daemon;

impl Daemon {
    /// Creates a daemon.
    pub fn new() -> Self {
        Self
    }

    /// Runs `repeats` independent campaigns of `hours` virtual hours of
    /// `make_config(seed)` on (fresh boots of) `spec`, in parallel
    /// threads, and aggregates the results.
    pub fn run_campaign<F>(
        &self,
        spec: &FirmwareSpec,
        make_config: F,
        hours: f64,
        repeats: u64,
    ) -> CampaignResult
    where
        F: Fn(u64) -> FuzzerConfig + Sync,
    {
        let runs: Vec<(Series, f64, Vec<CrashRecord>, u64)> = thread::scope(|scope| {
            let handles: Vec<_> = (0..repeats)
                .map(|rep| {
                    let spec = spec.clone();
                    let make_config = &make_config;
                    scope.spawn(move || {
                        let mut engine =
                            FuzzingEngine::new(spec.boot(), make_config(rep + 1));
                        engine.run_for_virtual_hours(hours);
                        let crashes: Vec<CrashRecord> =
                            engine.crash_db().records().into_iter().cloned().collect();
                        (
                            engine.coverage_series().clone(),
                            engine.kernel_coverage() as f64,
                            crashes,
                            engine.executions(),
                        )
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("campaign thread")).collect()
        });

        let series: Vec<Series> = runs.iter().map(|(s, _, _, _)| s.clone()).collect();
        let final_coverage: Vec<f64> = runs.iter().map(|(_, c, _, _)| *c).collect();
        let end_us = (hours * HOUR_US as f64) as u64;
        let mut crashes: Vec<CrashRecord> = Vec::new();
        for (_, _, run_crashes, _) in &runs {
            for crash in run_crashes {
                match crashes.iter_mut().find(|c| c.title == crash.title) {
                    Some(existing) => existing.count += crash.count,
                    None => crashes.push(crash.clone()),
                }
            }
        }
        crashes.sort_by_key(|c| c.first_seen_us);
        let fuzzer = make_config(0).variant.to_string();
        CampaignResult {
            device_id: spec.meta.id.clone(),
            fuzzer,
            final_coverage,
            mean_series: mean_series(&series, end_us, 48),
            crashes,
            executions: runs.iter().map(|(_, _, _, e)| e).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simdevice::catalog;

    #[test]
    fn campaign_aggregates_repeats() {
        let daemon = Daemon::new();
        let result = daemon.run_campaign(
            &catalog::device_e(),
            FuzzerConfig::droidfuzz,
            0.05,
            3,
        );
        assert_eq!(result.device_id, "E");
        assert_eq!(result.fuzzer, "DroidFuzz");
        assert_eq!(result.final_coverage.len(), 3);
        assert!(result.mean_final_coverage() > 0.0);
        assert!(result.executions > 0);
        assert!(!result.mean_series.is_empty());
    }

    #[test]
    fn campaign_crashes_deduplicate_across_repeats() {
        let daemon = Daemon::new();
        // Device E's querycap bug is shallow enough to appear in most
        // short runs; across repeats it must appear once in the aggregate.
        let result = daemon.run_campaign(
            &catalog::device_e(),
            FuzzerConfig::droidfuzz,
            0.4,
            2,
        );
        let querycaps = result
            .crashes
            .iter()
            .filter(|c| c.title.contains("v4l_querycap"))
            .count();
        assert!(querycaps <= 1, "dedup failed: {:?}", result.crashes);
    }
}
