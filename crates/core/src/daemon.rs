//! The Daemon (§IV-A): the root process coordinating one fuzzing engine
//! per device, maintaining the persistent data (corpus exports, crash
//! records, relation tables), and running repeated campaigns for the
//! evaluation.

use crate::config::FuzzerConfig;
use crate::crashes::CrashRecord;
use crate::fleet::{Fleet, FleetConfig, FleetResult};
use crate::stats::Series;
use crate::store::{RecoveryReport, StorageMedium, StoreCounters, StoreError};
use crate::supervisor::FaultCounters;
use simdevice::faults::FaultProfile;
use simdevice::firmware::FirmwareSpec;

/// Result of one repeated campaign on one device.
#[derive(Debug, Clone)]
pub struct CampaignResult {
    /// Table I device id.
    pub device_id: String,
    /// Variant label.
    pub fuzzer: String,
    /// Final kernel coverage per repetition.
    pub final_coverage: Vec<f64>,
    /// Mean coverage-over-time series across repetitions.
    pub mean_series: Series,
    /// Deduplicated crashes across all repetitions (by title).
    pub crashes: Vec<CrashRecord>,
    /// Total executions across repetitions.
    pub executions: u64,
    /// Fault/recovery counters summed across repetitions (all zero under
    /// the default reliable profile).
    pub fault_totals: FaultCounters,
    /// Durable-store counters (all zero for in-memory campaigns).
    pub store_totals: StoreCounters,
}

impl CampaignResult {
    /// Mean of the final coverage values.
    pub fn mean_final_coverage(&self) -> f64 {
        crate::stats::mean(&self.final_coverage)
    }
}

/// The campaign daemon.
#[derive(Debug, Default)]
pub struct Daemon {
    /// Worker threads per fleet round (`0` = one per shard).
    threads: usize,
}

impl Daemon {
    /// Creates a daemon with one worker thread per repetition.
    pub fn new() -> Self {
        Self::default()
    }

    /// Caps the campaign worker pool: repetitions are chunked over
    /// `threads` scoped workers instead of one thread per repeat.
    /// `0` restores the one-worker-per-shard default; the results are
    /// bit-identical for every setting.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Runs `repeats` independent campaigns of `hours` virtual hours of
    /// `make_config(seed)` on (fresh boots of) `spec`, in parallel
    /// threads, and aggregates the results.
    ///
    /// This is the unsynced special case of the fleet path: one shard per
    /// repeat, no corpus/relation exchange, a single slice spanning the
    /// whole campaign — each engine behaves exactly as a standalone run.
    pub fn run_campaign<F>(
        &self,
        spec: &FirmwareSpec,
        make_config: F,
        hours: f64,
        repeats: u64,
    ) -> CampaignResult
    where
        F: Fn(u64) -> FuzzerConfig + Sync,
    {
        let fleet = self.campaign_fleet(hours, repeats);
        Self::aggregate(fleet.run(spec, &make_config))
    }

    /// Like [`run_campaign`](Self::run_campaign), but durable: hub deltas
    /// are journaled to `medium` and compacted into checksummed snapshot
    /// generations. If `medium` is empty a fresh campaign starts; if it
    /// already holds campaign state, the campaign *resumes* from the
    /// newest recoverable snapshot + journal prefix and the recovery
    /// report is returned alongside the result.
    pub fn run_campaign_durable<F, M>(
        &self,
        spec: &FirmwareSpec,
        make_config: F,
        hours: f64,
        repeats: u64,
        medium: M,
    ) -> Result<(CampaignResult, Option<RecoveryReport>), StoreError>
    where
        F: Fn(u64) -> FuzzerConfig + Sync,
        M: StorageMedium + Clone,
    {
        let fleet = self.campaign_fleet(hours, repeats);
        if medium.list()?.is_empty() {
            let result = fleet.run_durable(spec, &make_config, medium)?;
            Ok((Self::aggregate(result), None))
        } else {
            let (result, report) = fleet.resume_durable(spec, &make_config, medium)?;
            Ok((Self::aggregate(result), Some(report)))
        }
    }

    fn campaign_fleet(&self, hours: f64, repeats: u64) -> Fleet {
        Fleet::new(FleetConfig {
            shards: repeats.max(1) as usize,
            hours,
            sync_interval_hours: hours,
            sync: false,
            kill_after_rounds: None,
            threads: self.threads,
            ..FleetConfig::default()
        })
    }

    fn aggregate(result: FleetResult) -> CampaignResult {
        CampaignResult {
            device_id: result.device_id,
            fuzzer: result.fuzzer,
            final_coverage: result.shards.iter().map(|s| s.final_coverage).collect(),
            mean_series: result.mean_series,
            crashes: result.crashes,
            executions: result.executions,
            fault_totals: result.fault_totals,
            store_totals: result.store_totals,
        }
    }

    /// Like [`run_campaign`](Self::run_campaign), but every repetition
    /// runs under `profile` — the robustness arm of the evaluation: the
    /// same campaign replayed against flaky or hostile devices, with the
    /// supervisor's fault/recovery counters reported in the result.
    pub fn run_campaign_under<F>(
        &self,
        profile: FaultProfile,
        spec: &FirmwareSpec,
        make_config: F,
        hours: f64,
        repeats: u64,
    ) -> CampaignResult
    where
        F: Fn(u64) -> FuzzerConfig + Sync,
    {
        self.run_campaign(
            spec,
            |seed| make_config(seed).with_fault_profile(profile),
            hours,
            repeats,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simdevice::catalog;

    #[test]
    fn campaign_aggregates_repeats() {
        let daemon = Daemon::new();
        let result = daemon.run_campaign(
            &catalog::device_e(),
            FuzzerConfig::droidfuzz,
            0.05,
            3,
        );
        assert_eq!(result.device_id, "E");
        assert_eq!(result.fuzzer, "DroidFuzz");
        assert_eq!(result.final_coverage.len(), 3);
        assert!(result.mean_final_coverage() > 0.0);
        assert!(result.executions > 0);
        assert!(!result.mean_series.is_empty());
        assert_eq!(result.fault_totals.total(), 0, "default profile injects nothing");
    }

    #[test]
    fn campaign_under_flaky_profile_reports_faults_and_still_progresses() {
        let daemon = Daemon::new();
        let result = daemon.run_campaign_under(
            FaultProfile::Flaky,
            &catalog::device_e(),
            FuzzerConfig::droidfuzz,
            0.1,
            2,
        );
        assert!(result.fault_totals.injected > 0, "flaky devices see injected faults");
        assert!(result.mean_final_coverage() > 0.0, "coverage still accrues under faults");
        assert!(result.executions > 0);
    }

    #[test]
    fn durable_campaign_runs_fresh_then_resumes_from_the_same_medium() {
        use crate::store::{RecoveryOutcome, SimMedium};
        let daemon = Daemon::new();
        let medium = SimMedium::new();
        let (first, report) = daemon
            .run_campaign_durable(
                &catalog::device_e(),
                FuzzerConfig::droidfuzz,
                0.05,
                2,
                medium.clone(),
            )
            .unwrap();
        assert!(report.is_none(), "fresh medium must not report a recovery");
        assert!(first.store_totals.snapshots_written > 0);
        assert!(first.mean_final_coverage() > 0.0);
        // A second durable call on the now-occupied medium resumes
        // rather than refusing or restarting from scratch.
        let (second, report) = daemon
            .run_campaign_durable(
                &catalog::device_e(),
                FuzzerConfig::droidfuzz,
                0.05,
                2,
                medium,
            )
            .unwrap();
        let report = report.expect("occupied medium must resume, not restart");
        assert_eq!(report.outcome, RecoveryOutcome::Clean);
        assert!(second.store_totals.recoveries >= 1);
    }

    #[test]
    fn campaign_crashes_deduplicate_across_repeats() {
        let daemon = Daemon::new();
        // Device E's querycap bug is shallow enough to appear in most
        // short runs; across repeats it must appear once in the aggregate.
        let result = daemon.run_campaign(
            &catalog::device_e(),
            FuzzerConfig::droidfuzz,
            0.4,
            2,
        );
        let querycaps = result
            .crashes
            .iter()
            .filter(|c| c.title.contains("v4l_querycap"))
            .count();
        assert!(querycaps <= 1, "dedup failed: {:?}", result.crashes);
    }
}
