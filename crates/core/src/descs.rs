//! Syscall description synthesis.
//!
//! DroidFuzz "borrowed system call descriptions … from Syzkaller" (§V).
//! Our stand-in derives equivalent typed descriptions from the simulated
//! drivers' self-description metadata ([`simkernel::driver::DriverApi`])
//! plus a hand-written set for the Bluetooth socket family — the same
//! information a syzlang file encodes.

use fuzzlang::desc::{ArgDesc, CallDesc, CallKind, DescTable, SyscallTemplate};
use fuzzlang::types::{ResourceKind, TypeDesc};
use simkernel::driver::WordShape;
use simkernel::drivers::bt;
use simkernel::syscall::{af, btproto};
use simkernel::Kernel;

/// Converts a driver word shape to a DSL type at syzlang fidelity (the
/// hand-curated descriptions know exact constants and flag sets).
fn word_type(shape: &WordShape) -> TypeDesc {
    match shape {
        WordShape::Range { min, max } => TypeDesc::Int { min: u64::from(*min), max: u64::from(*max) },
        WordShape::Choice(values) => {
            TypeDesc::Choice { values: values.iter().map(|&v| u64::from(v)).collect() }
        }
        WordShape::Flags(values) => {
            TypeDesc::Flags { values: values.iter().map(|&v| u64::from(v)).collect() }
        }
        WordShape::Any => TypeDesc::any_u32(),
    }
}

/// Converts a word shape at static-extraction fidelity: Difuze recovers
/// request codes and argument structure layouts exactly, but *valid value
/// sets* (enum constants, flag bits) are runtime semantics its analysis
/// only bounds, not enumerates.
fn extracted_word_type(shape: &WordShape) -> TypeDesc {
    match shape {
        // Explicit bounds checks are visible to static analysis…
        WordShape::Range { min, max } => TypeDesc::Int { min: u64::from(*min), max: u64::from(*max) },
        // …but enum constants and flag bit meanings are runtime semantics
        // the analysis only sees as an opaque u32 of roughly bounded
        // magnitude.
        WordShape::Choice(values) => {
            let max = values.iter().copied().max().unwrap_or(u32::MAX);
            TypeDesc::Int { min: 0, max: u64::from(max.saturating_mul(2).max(255)) }
        }
        WordShape::Flags(values) => {
            let all: u32 = values.iter().fold(0, |acc, v| acc | v);
            TypeDesc::Int { min: 0, max: u64::from(all.saturating_mul(2).max(255)) }
        }
        WordShape::Any => TypeDesc::any_u32(),
    }
}

/// How much a description builder is allowed to know about vendor
/// drivers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VendorKnowledge {
    /// Syzlang-level: upstream interfaces are fully typed, proprietary
    /// vendor drivers appear only as an opaque `ioctl` surface (request
    /// code and payload unknown). This is what "borrowed system call
    /// descriptions from Syzkaller" gives every fuzzer's native side.
    Syzlang,
    /// Difuze-level: a static-analysis pass has recovered the vendor
    /// drivers' ioctl commands and argument structures too.
    Extracted,
}

/// Adds descriptions for every registered character device: `openat`, the
/// per-driver ioctls (typed or opaque per `knowledge`), and
/// `read`/`write`/`mmap`/`poll` where supported.
pub fn add_device_descs(table: &mut DescTable, kernel: &Kernel, knowledge: VendorKnowledge) {
    for node in kernel.device_nodes() {
        let api = kernel.device_api(&node).expect("node listed");
        table.add(CallDesc::syscall_open(&node));
        let fd = TypeDesc::Resource { kind: CallDesc::fd_kind(&node) };
        let opaque = api.vendor && knowledge == VendorKnowledge::Syzlang;
        if opaque {
            // No public descriptions exist: all a fuzzer can do is throw
            // arbitrary request codes and payloads at the node.
            let short = node.rsplit('/').next().unwrap_or(&node);
            table.add(CallDesc::new(
                format!("ioctl$raw_{short}"),
                CallKind::Syscall(SyscallTemplate::IoctlAny),
                vec![
                    ArgDesc::new("fd", fd.clone()),
                    ArgDesc::new("request", TypeDesc::any_u32()),
                    ArgDesc::new("payload", TypeDesc::Buffer { min_len: 0, max_len: 32 }),
                ],
                None,
            ));
        }
        for ioctl in api.ioctls.iter().filter(|_| !opaque) {
            let mut args = vec![ArgDesc::new("fd", fd.clone())];
            for (i, shape) in ioctl.words.iter().enumerate() {
                let ty = if api.vendor && knowledge == VendorKnowledge::Extracted {
                    extracted_word_type(shape)
                } else {
                    word_type(shape)
                };
                args.push(ArgDesc::new(&format!("w{i}"), ty));
            }
            if ioctl.trailing_bytes > 0 {
                args.push(ArgDesc::new(
                    "payload",
                    TypeDesc::Buffer { min_len: 0, max_len: ioctl.trailing_bytes },
                ));
            }
            table.add(CallDesc::new(
                format!("ioctl${}", ioctl.name),
                CallKind::Syscall(SyscallTemplate::Ioctl { request: ioctl.request }),
                args,
                None,
            ));
        }
        let short = node.rsplit('/').next().unwrap_or(&node);
        if api.supports_read {
            table.add(CallDesc::new(
                format!("read${short}"),
                CallKind::Syscall(SyscallTemplate::Read),
                vec![
                    ArgDesc::new("fd", fd.clone()),
                    ArgDesc::new("len", TypeDesc::Int { min: 1, max: 4096 }),
                ],
                None,
            ));
        }
        if api.supports_write {
            table.add(CallDesc::new(
                format!("write${short}"),
                CallKind::Syscall(SyscallTemplate::Write),
                vec![
                    ArgDesc::new("fd", fd.clone()),
                    ArgDesc::new("data", TypeDesc::Buffer { min_len: 1, max_len: 2048 }),
                ],
                None,
            ));
        }
        if api.supports_mmap {
            table.add(CallDesc::new(
                format!("mmap${short}"),
                CallKind::Syscall(SyscallTemplate::Mmap),
                vec![
                    ArgDesc::new("fd", fd.clone()),
                    ArgDesc::new("len", TypeDesc::Choice { values: vec![4096, 8192, 65536] }),
                    ArgDesc::new("prot", TypeDesc::Flags { values: vec![1, 2] }),
                ],
                None,
            ));
        }
        table.add(CallDesc::new(
            format!("poll${short}"),
            CallKind::Syscall(SyscallTemplate::Poll),
            vec![
                ArgDesc::new("fd", fd),
                ArgDesc::new("events", TypeDesc::Flags { values: vec![1, 4, 8] }),
            ],
            None,
        ));
    }
}

/// Resource kind of an HCI socket.
pub fn hci_sock_kind() -> ResourceKind {
    ResourceKind::new("sock:hci")
}

/// Resource kind of an L2CAP socket of the given type tag.
pub fn l2cap_sock_kind(ty: &str) -> ResourceKind {
    ResourceKind::new(format!("sock:l2cap:{ty}"))
}

fn sock_ioctl(
    table: &mut DescTable,
    name: &str,
    request: u32,
    sock: &ResourceKind,
    extra: Vec<ArgDesc>,
) {
    let mut args = vec![ArgDesc::new("sock", TypeDesc::Resource { kind: sock.clone() })];
    args.extend(extra);
    table.add(CallDesc::new(
        format!("ioctl${name}"),
        CallKind::Syscall(SyscallTemplate::Ioctl { request }),
        args,
        None,
    ));
}

/// Adds the hand-written Bluetooth socket-family descriptions (the
/// syzlang-equivalent for the HCI/L2CAP stack).
pub fn add_bluetooth_descs(table: &mut DescTable) {
    let hci = hci_sock_kind();
    table.add(CallDesc::new(
        "socket$hci",
        CallKind::Syscall(SyscallTemplate::Socket {
            domain: af::BLUETOOTH,
            ty: 3,
            proto: btproto::HCI,
        }),
        vec![],
        Some(hci.clone()),
    ));
    table.add(CallDesc::new(
        "bind$hci",
        CallKind::Syscall(SyscallTemplate::Bind),
        vec![
            ArgDesc::new("sock", TypeDesc::Resource { kind: hci.clone() }),
            ArgDesc::new("dev", TypeDesc::Choice { values: vec![0] }),
        ],
        None,
    ));
    sock_ioctl(
        table,
        "HCIDEVUP",
        bt::HCIDEVUP,
        &hci,
        vec![ArgDesc::new("mode", TypeDesc::Choice { values: vec![0, 1] })],
    );
    sock_ioctl(table, "HCIDEVSETUP", bt::HCIDEVSETUP, &hci, vec![]);
    sock_ioctl(table, "HCIDEVDOWN", bt::HCIDEVDOWN, &hci, vec![]);
    sock_ioctl(table, "HCIDEVRESET", bt::HCIDEVRESET, &hci, vec![]);
    sock_ioctl(
        table,
        "HCIINQUIRY",
        bt::HCIINQUIRY,
        &hci,
        vec![ArgDesc::new("duration", TypeDesc::Int { min: 1, max: 8 })],
    );
    sock_ioctl(table, "HCIREADCODECS", bt::HCIREADCODECS, &hci, vec![]);

    for (tag, ty) in [("stream", 1u32), ("dgram", 2), ("raw", 3)] {
        let kind = l2cap_sock_kind(tag);
        table.add(CallDesc::new(
            format!("socket$l2cap_{tag}"),
            CallKind::Syscall(SyscallTemplate::Socket {
                domain: af::BLUETOOTH,
                ty,
                proto: btproto::L2CAP,
            }),
            vec![],
            Some(kind),
        ));
    }
    // Generic L2CAP operations accept any l2cap socket type.
    let any = ResourceKind::new("sock:l2cap");
    table.add(CallDesc::new(
        "bind$l2cap",
        CallKind::Syscall(SyscallTemplate::Bind),
        vec![
            ArgDesc::new("sock", TypeDesc::Resource { kind: any.clone() }),
            ArgDesc::new("psm", TypeDesc::Int { min: 1, max: 0x1fff }),
        ],
        None,
    ));
    table.add(CallDesc::new(
        "connect$l2cap",
        CallKind::Syscall(SyscallTemplate::Connect),
        vec![
            ArgDesc::new("sock", TypeDesc::Resource { kind: any.clone() }),
            ArgDesc::new(
                "addr",
                TypeDesc::Choice {
                    values: vec![0x42, 0x99, 0xBDADD0, 0xBDADD1, 0xBDADD2, 0xBDADD3],
                },
            ),
        ],
        None,
    ));
    table.add(CallDesc::new(
        "listen$l2cap",
        CallKind::Syscall(SyscallTemplate::Listen),
        vec![
            ArgDesc::new("sock", TypeDesc::Resource { kind: l2cap_sock_kind("stream") }),
            ArgDesc::new("backlog", TypeDesc::Int { min: 1, max: 8 }),
        ],
        None,
    ));
    table.add(CallDesc::new(
        "accept$l2cap",
        CallKind::Syscall(SyscallTemplate::Accept),
        vec![ArgDesc::new("sock", TypeDesc::Resource { kind: l2cap_sock_kind("stream") })],
        Some(l2cap_sock_kind("stream")),
    ));
    sock_ioctl(table, "L2CAP_DISCONN_REQ", bt::L2CAP_DISCONN_REQ, &any, vec![]);
    sock_ioctl(
        table,
        "L2CAP_SET_MTU",
        bt::L2CAP_SET_MTU,
        &any,
        vec![ArgDesc::new("mtu", TypeDesc::Int { min: 48, max: 65535 })],
    );
    sock_ioctl(
        table,
        "L2CAP_SET_MODE",
        bt::L2CAP_SET_MODE,
        &any,
        vec![ArgDesc::new("mode", TypeDesc::Choice { values: vec![0, 1, 2, 3] })],
    );
    sock_ioctl(table, "L2CAP_GET_CONNINFO", bt::L2CAP_GET_CONNINFO, &any, vec![]);
    let any_sock = ResourceKind::new("sock");
    table.add(CallDesc::new(
        "read$sock",
        CallKind::Syscall(SyscallTemplate::Read),
        vec![
            ArgDesc::new("sock", TypeDesc::Resource { kind: any_sock.clone() }),
            ArgDesc::new("len", TypeDesc::Int { min: 1, max: 1024 }),
        ],
        None,
    ));
    table.add(CallDesc::new(
        "write$sock",
        CallKind::Syscall(SyscallTemplate::Write),
        vec![
            ArgDesc::new("sock", TypeDesc::Resource { kind: any_sock }),
            ArgDesc::new("data", TypeDesc::Buffer { min_len: 1, max_len: 1024 }),
        ],
        None,
    ));
}

/// Builds the syzkaller-equivalent syscall vocabulary for a device
/// kernel: generic lifecycle calls, fully-typed descriptions for upstream
/// drivers, an opaque ioctl surface for proprietary vendor drivers, and
/// the Bluetooth socket family. This is the native-side vocabulary of
/// DroidFuzz and all its variants, and the entire vocabulary of the
/// syzkaller baseline.
pub fn build_syscall_table(kernel: &Kernel) -> DescTable {
    let mut table = DescTable::new();
    table.add(CallDesc::syscall_close());
    table.add(CallDesc::syscall_dup());
    add_device_descs(&mut table, kernel, VendorKnowledge::Syzlang);
    add_bluetooth_descs(&mut table);
    table
}

/// Builds the Difuze-style vocabulary: vendor ioctl interfaces recovered
/// by (here: perfect) static analysis, restricted to the ioctl path.
pub fn build_difuze_table(kernel: &Kernel) -> DescTable {
    let mut table = DescTable::new();
    table.add(CallDesc::syscall_close());
    add_device_descs(&mut table, kernel, VendorKnowledge::Extracted);
    ioctl_only_view(&table)
}

/// Restricts a table to the ioctl path (`openat`/`ioctl`/`close`), the
/// vocabulary Difuze's extracted interfaces cover.
pub fn ioctl_only_view(table: &DescTable) -> DescTable {
    let mut out = DescTable::new();
    for (_, desc) in table.iter() {
        // Socket-backed ioctls need socket()/bind() producers, which the
        // restriction blocks — drop descriptions whose resource args
        // cannot be produced in the restricted vocabulary.
        let needs_socket = desc
            .args
            .iter()
            .any(|a| a.ty.resource_kind().is_some_and(|k| k.0.starts_with("sock")));
        if desc.kind.is_ioctl_path() && !needs_socket && !desc.kind.is_hal() {
            out.add(desc.clone());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use simdevice::catalog;
    // build_difuze_table used by the extraction test above.

    #[test]
    fn a1_syzlang_table_types_upstream_but_not_vendor_drivers() {
        let mut device = catalog::device_a1().boot();
        let table = build_syscall_table(device.kernel());
        // Upstream interfaces are fully described…
        assert!(table.id_of("ioctl$VIDIOC_QUERYCAP").is_some());
        assert!(table.id_of("ioctl$DRM_MODE_SET").is_some());
        assert!(table.id_of("socket$hci").is_some());
        assert!(table.id_of("ioctl$HCIREADCODECS").is_some());
        assert!(table.id_of("accept$l2cap").is_some());
        // …vendor drivers only expose an opaque surface.
        assert!(table.id_of("openat$/dev/tcpc0").is_some());
        assert!(table.id_of("ioctl$TCPC_PR_SWAP").is_none());
        assert!(table.id_of("ioctl$raw_tcpc0").is_some());
        assert!(table.id_of("ioctl$GPU_IMPORT").is_none());
        assert!(table.id_of("ioctl$raw_gpu0").is_some());
        assert!(table.len() > 60, "A1 should have a rich vocabulary, got {}", table.len());
    }

    #[test]
    fn difuze_table_recovers_vendor_ioctls() {
        let mut device = catalog::device_a1().boot();
        let table = build_difuze_table(device.kernel());
        assert!(table.id_of("ioctl$TCPC_PR_SWAP").is_some());
        assert!(table.id_of("ioctl$GPU_IMPORT").is_some());
        assert!(table.id_of("ioctl$VIDIOC_QUERYCAP").is_some());
        assert!(table.id_of("socket$hci").is_none(), "ioctl path only");
        assert!(table.id_of("write$snd_pcm0").is_none());
    }

    #[test]
    fn pi_table_lacks_tcpc() {
        let mut device = catalog::device_b().boot();
        let table = build_syscall_table(device.kernel());
        assert!(table.id_of("openat$/dev/tcpc0").is_none());
        assert!(table.id_of("openat$/dev/video0").is_some());
    }

    #[test]
    fn ioctl_view_drops_socket_and_rw_calls() {
        let mut device = catalog::device_a1().boot();
        let table = build_syscall_table(device.kernel());
        let view = ioctl_only_view(&table);
        assert!(view.id_of("socket$hci").is_none());
        assert!(view.id_of("ioctl$HCIDEVUP").is_none());
        assert!(view.id_of("write$snd_pcm0").is_none());
        assert!(view.id_of("ioctl$VIDIOC_QUERYCAP").is_some());
        assert!(view.id_of("ioctl$raw_tcpc0").is_some());
        assert!(view.id_of("openat$/dev/tcpc0").is_some());
        assert!(view.len() < table.len());
    }

    #[test]
    fn every_resource_arg_has_a_producer() {
        let mut device = catalog::device_a2().boot();
        let table = build_syscall_table(device.kernel());
        for (_, desc) in table.iter() {
            for arg in &desc.args {
                if let Some(kind) = arg.ty.resource_kind() {
                    assert!(
                        !table.producers_of(kind).is_empty(),
                        "{}: no producer for {kind}",
                        desc.name
                    );
                }
            }
        }
    }
}
