//! The Fuzzing Engine (§IV-A): per-device generate → execute → analyze
//! loop over a virtual clock.
//!
//! Virtual time models the host↔device pipeline of the paper's setup: an
//! ADB round trip plus executor session per test case, per-call device
//! time, and a multi-second reboot penalty after every bug (the paper
//! reboots on *any* bug). Campaign lengths ("48 hours") are expressed in
//! this virtual time, so coverage-versus-time curves have the same shape
//! drivers as the physical experiment without wall-clock cost.

use crate::arena::RoundArena;
use crate::config::FuzzerConfig;
use crate::corpus::Corpus;
use crate::crashes::CrashDb;
use crate::descs::{build_difuze_table, build_syscall_table, ioctl_only_view};
use crate::exec::Broker;
use crate::feedback::{
    signals_from_execution_into, Signal, SignalScratch, SignalSet, SyscallIdTable,
};
use crate::generate::{random_generate, relational_generate};
use crate::minimize::minimize_with;
use crate::probe::{add_hal_descs, probe_device, ProbeReport};
use crate::relation::RelationGraph;
use crate::stats::Series;
use crate::supervisor::{FailureClass, FaultCounters, Supervisor, SupervisorConfig};
use droidfuzz_analysis::{gate_prog, gate_prog_static, static_depth, LintCounters, ModelSet};
use fuzzlang::desc::DescTable;
use fuzzlang::mutate::{crossover, mutate_n};
use fuzzlang::prog::Prog;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simdevice::faults::FaultPlan;
use simdevice::{AdbLink, Device};
use simkernel::coverage::{Block, CoverageMap};

/// Virtual µs per executor session (ADB shell + kcov setup + teardown).
pub const EXEC_SESSION_US: u64 = 1_500_000;
/// Virtual µs of device time charged per executed call.
pub const PER_CALL_US: u64 = 2_000;
/// Coverage series sampling interval (15 virtual minutes).
pub const SAMPLE_INTERVAL_US: u64 = 15 * 60 * 1_000_000;
/// Virtual µs in one hour.
pub const HOUR_US: u64 = 3_600_000_000;

/// The per-device fuzzing engine.
#[derive(Debug)]
pub struct FuzzingEngine {
    device: Device,
    config: FuzzerConfig,
    table: DescTable,
    graph: RelationGraph,
    corpus: Corpus,
    crash_db: CrashDb,
    signals: SignalSet,
    id_table: SyscallIdTable,
    broker: Broker,
    adb: AdbLink,
    supervisor: Supervisor,
    lint: LintCounters,
    /// Static interface models (DroidFuzz-S only): drives the relation
    /// prior, the abstract-interpretation gate, and seed-energy depth.
    models: Option<ModelSet>,
    rng: StdRng,
    clock_us: u64,
    executions: u64,
    series: Series,
    /// Device-wide kernel coverage across all boots — the evaluation
    /// metric (Figs. 4/5, Table III), measured out-of-band from feedback.
    observed_kernel: CoverageMap,
    /// The same blocks in first-observation order: an append-only log so
    /// fleet shards can publish only the suffix since their last sync.
    cov_log: Vec<Block>,
    /// Reusable buffers for the per-execution signal conversion.
    sig_scratch: SignalScratch,
    sig_buf: Vec<Signal>,
    /// Round arena: recycled program slots and minimizer scratch, reset
    /// per execution round (see [`RoundArena`]).
    arena: RoundArena,
    probe_report: Option<ProbeReport>,
    driver_regions: Vec<(String, u64)>,
    last_sample_us: u64,
}

impl FuzzingEngine {
    /// Boots an engine on `device` with `config`: builds the syscall
    /// vocabulary, runs the pre-testing HAL probing pass (when HAL access
    /// is enabled), applies the ioctl-only restriction (when configured),
    /// and initializes the relation graph with `E = ∅`.
    pub fn new(mut device: Device, config: FuzzerConfig) -> Self {
        let mut table = if config.vendor_ioctl_descs {
            build_difuze_table(device.kernel())
        } else {
            let full_table = build_syscall_table(device.kernel());
            if config.ioctl_only {
                ioctl_only_view(&full_table)
            } else {
                full_table
            }
        };
        let probe_report = if config.hal_enabled {
            let report = probe_device(&mut device);
            add_hal_descs(&mut table, &report);
            Some(report)
        } else {
            None
        };
        device.set_ioctl_only(config.ioctl_only);
        let id_table = SyscallIdTable::compile(device.kernel());
        let mut graph = RelationGraph::new(&table);
        // DroidFuzz-S: collect the drivers' self-described state machines
        // and seed the relation graph with their produces/consumes pairs
        // before the first execution (a warm start no runtime learning
        // has to discover).
        let models = config.static_models.then(|| ModelSet::for_kernel(device.kernel()));
        if let Some(models) = &models {
            if config.relations {
                graph.seed_prior(&models.prior_pairs(&table));
            }
        }
        let driver_regions = device.kernel().driver_regions();
        let adb = if device.spec().meta.id.starts_with('C') {
            AdbLink::tcp()
        } else {
            AdbLink::usb()
        };
        let rng = StdRng::seed_from_u64(config.seed ^ 0xD501D); // per-config stream
        // The fault plan gets its own stream: fault schedules never
        // perturb generation, so `Reliable` is behavior-identical to a
        // fault-free build and faulty campaigns stay seed-deterministic.
        let fault_seed = config.seed ^ 0xFA017;
        let plan = match config.fault_rates {
            Some(rates) => FaultPlan::with_rates(rates, fault_seed),
            None => FaultPlan::for_profile(config.fault_profile, fault_seed),
        };
        let supervisor = Supervisor::new(plan, SupervisorConfig::default());
        Self {
            device,
            config,
            table,
            graph,
            corpus: Corpus::new(),
            crash_db: CrashDb::new(),
            signals: SignalSet::new(),
            id_table,
            broker: Broker::new(),
            adb,
            supervisor,
            lint: LintCounters::default(),
            models,
            rng,
            clock_us: 0,
            executions: 0,
            series: Series::new(),
            observed_kernel: CoverageMap::new(),
            cov_log: Vec::new(),
            sig_scratch: SignalScratch::default(),
            sig_buf: Vec::new(),
            arena: RoundArena::new(),
            probe_report,
            driver_regions,
            last_sample_us: 0,
        }
    }

    fn next_prog(&mut self) -> Prog {
        let use_corpus = self.config.feedback
            && !self.corpus.is_empty()
            && self.rng.gen_bool(self.config.mutate_prob);
        if use_corpus {
            // Arena slot instead of a fresh clone: `assign_from` overwrites
            // the recycled program in place, reusing its call and byte
            // buffers. Neither the slot swap nor `assign_from` consumes
            // RNG, so the campaign's random stream is unchanged.
            let mut prog = self.arena.take_prog();
            prog.assign_from(self.corpus.pick(&mut self.rng).expect("non-empty corpus"));
            if self.rng.gen_bool(0.15) {
                if let Some(other) = self.corpus.pick_uniform(&mut self.rng) {
                    // Crossover borrows both parents directly; the replaced
                    // seed slot goes back to the arena.
                    let crossed = crossover(&prog, other, &mut self.rng);
                    self.arena.put_prog(std::mem::replace(&mut prog, crossed));
                }
            }
            let n = self.rng.gen_range(1..=3);
            mutate_n(&mut prog, &self.table, n, &mut self.rng);
            if prog.is_empty() || !self.lint_gate(&mut prog) {
                self.arena.put_prog(prog);
                return self.generate_fresh();
            }
            prog
        } else {
            self.generate_fresh()
        }
    }

    fn generate_fresh(&mut self) -> Prog {
        let mut prog = if self.config.relations {
            relational_generate(&self.table, &self.graph, self.config.max_prog_calls, &mut self.rng)
        } else {
            random_generate(&self.table, self.config.max_prog_calls, &mut self.rng)
        };
        if !self.lint_gate(&mut prog) {
            // Unrepairable fresh program (generator soundness bug): skip
            // the iteration rather than execute it.
            return Prog::new();
        }
        prog
    }

    /// Runs the static-analysis gate over `prog` in place: `true` lets the
    /// (possibly repaired) program through, `false` means it carried
    /// unrepairable errors. With static models loaded (DroidFuzz-S) the
    /// abstract-interpretation reachability gate runs after the lint
    /// gate: programs whose modeled driver calls all provably fail get
    /// prerequisite transitions inserted, and unfixable ones are
    /// rejected. Both passes are deterministic and consume no RNG, so
    /// gated campaigns replay identically. A disabled gate passes
    /// everything.
    fn lint_gate(&mut self, prog: &mut Prog) -> bool {
        if !self.config.lint_gate {
            return true;
        }
        if !gate_prog(prog, &self.table, &mut self.lint) {
            return false;
        }
        match &self.models {
            Some(models) => gate_prog_static(prog, &self.table, models, &mut self.lint),
            None => true,
        }
    }

    /// Extra seed energy from the static depth score (DroidFuzz-S):
    /// programs that provably advance driver state machines get mutated
    /// more often. Zero without models.
    fn static_energy_bonus(&self, prog: &Prog) -> usize {
        self.models
            .as_ref()
            .map_or(0, |models| static_depth(prog, &self.table, models) as usize * 4)
    }

    /// Runs exactly one fuzzing iteration, advancing the virtual clock.
    ///
    /// Every execution goes through the [`Supervisor`]: faults drawn
    /// from the configured profile are injected and recovered from
    /// (retry with backoff, watchdog abort, device re-provisioning), and
    /// the whole episode's virtual cost lands on the clock. A
    /// permanently lost device makes this a no-op — the fleet layer
    /// detects that and restarts the shard from hub state.
    pub fn step(&mut self) {
        if self.supervisor.device_lost() {
            return;
        }
        let prog = self.next_prog();
        if prog.is_empty() {
            self.arena.put_prog(prog);
            return;
        }
        self.step_exec(prog);
    }

    /// The execute→analyze half of [`step`](Self::step). Owns the program
    /// slot and returns it to the arena on every exit path.
    fn step_exec(&mut self, prog: Prog) {
        let mut run = self.supervisor.supervise(
            &mut self.broker,
            &mut self.device,
            &mut self.adb,
            &self.table,
            &prog,
        );
        self.clock_us += run.cost_us;
        self.executions += run.attempts;
        // Crash state survives every fault: reports from discarded
        // attempts are salvaged even when the feedback was not.
        for report in &run.salvaged_bugs {
            if self.crash_db.record(report, self.clock_us) {
                self.crash_db.attach_repro(&report.title, &prog, &self.table);
            }
        }
        let Some(outcome) = run.outcome.take() else {
            if run.failure == Some(FailureClass::Hang) {
                // A hanging program is worthless mutation material; a
                // quarantined one is also barred from re-admission.
                self.corpus.remove_prog(&prog);
            }
            self.arena.put_prog(prog);
            self.sample_if_due();
            return;
        };
        for &b in &outcome.observed_new_blocks {
            if self.observed_kernel.insert(b) {
                self.cov_log.push(b);
            }
        }

        let mut sigs = std::mem::take(&mut self.sig_buf);
        signals_from_execution_into(
            &outcome.kcov,
            &outcome.hal_events,
            &mut self.id_table,
            self.config.hal_coverage,
            &mut self.sig_scratch,
            &mut sigs,
        );

        let had_bug = !outcome.bugs.is_empty();
        if self.config.feedback {
            let (new_count, kernel_new) = self.signals.count_new_split(&sigs);
            // Crashing executions are reported, not seeded: their
            // coverage is tainted and mutating them would re-trigger the
            // same bug (and pay the reboot) forever.
            if new_count > 0 && !had_bug {
                if kernel_new > 0 {
                    // New kernel coverage: minimize, learn relations from
                    // the essential sequence, and seed the corpus.
                    let mut admitted = if self.config.minimize && prog.len() > 2 && new_count <= 64
                    {
                        self.minimize_interesting(&prog, &sigs)
                    } else {
                        prog.clone()
                    };
                    // Gate the (possibly minimized) program before it can
                    // teach the relation graph or seed the corpus:
                    // minimization can strip a producer whose consumer
                    // survived, and repair re-points or re-inserts it.
                    if self.lint_gate(&mut admitted) {
                        if self.config.relations {
                            self.learn_from(&admitted);
                        }
                        if !self.supervisor.is_prog_quarantined(&admitted, &self.table) {
                            let energy = kernel_new * 8
                                + (new_count - kernel_new)
                                + self.static_energy_bonus(&admitted);
                            self.corpus.admit(admitted, energy);
                        }
                    }
                } else if self.config.relations {
                    // New *HAL behaviour* only (directional coverage, §IV-D):
                    // this is how cross-boundary feedback "assist[s] in
                    // further input generation" — it refines the relation
                    // graph with the freshly observed valid sequence (only
                    // pairs whose calls both succeeded; failed calls are
                    // noise, not dependencies), and keeps a light corpus
                    // presence as mutation material for climbing HAL state
                    // ladders.
                    self.learn_from_successes(&prog, &outcome.call_results);
                    if self.rng.gen_bool(0.5)
                        && !self.supervisor.is_prog_quarantined(&prog, &self.table)
                    {
                        let energy = new_count.min(8) + self.static_energy_bonus(&prog);
                        self.corpus.admit(prog.clone(), energy);
                    }
                }
            }
            self.signals.merge(&sigs);
        } else {
            // Difuze-style: still track coverage for reporting, but do not
            // let it influence generation.
            self.signals.merge(&sigs);
        }
        self.sig_buf = sigs;

        for report in &outcome.bugs {
            if self.crash_db.record(report, self.clock_us) {
                self.crash_db.attach_repro(&report.title, &prog, &self.table);
            }
        }
        self.broker.recycle(outcome);
        self.arena.put_prog(prog);
        if (had_bug && self.config.reboot_on_bug) || self.device.is_wedged() {
            self.device.reboot();
            self.clock_us += self.adb.reboot_cost();
        }

        if self.config.relations && self.executions.is_multiple_of(self.config.decay_interval) {
            self.graph.decay(self.config.decay_factor);
        }
        self.sample_if_due();
    }

    /// Minimizes a coverage-increasing program against the device; the
    /// oracle replays candidates (each replay charged to the clock) and
    /// keeps reductions that preserve most of the new signals.
    fn minimize_interesting(&mut self, prog: &Prog, sigs: &[Signal]) -> Prog {
        // All minimizer working memory comes from the arena: the target
        // and candidate signal buffers are taken/restored, and candidate
        // programs are built inside the recycled `MinimizeScratch` — the
        // replay hot loop allocates nothing once the buffers are warm.
        let mut target = std::mem::take(&mut self.arena.min_target);
        target.clear();
        target.extend(sigs.iter().copied().filter(|s| !self.signals.covers(&[*s])));
        let required = target.len().div_ceil(2);
        let device = &mut self.device;
        let broker = &mut self.broker;
        let table = &self.table;
        let id_table = &mut self.id_table;
        let sig_scratch = &mut self.sig_scratch;
        let hal_cov = self.config.hal_coverage;
        let mut replay_cost = 0u64;
        let mut rebooted = false;
        let mut cand_sigs = std::mem::take(&mut self.arena.cand_sigs);
        let (minimized, checks) = minimize_with(prog, &mut self.arena.min_scratch, |candidate| {
            let outcome = broker.execute(device, table, candidate);
            replay_cost += EXEC_SESSION_US / 2 + outcome.calls_executed as u64 * PER_CALL_US;
            if !outcome.bugs.is_empty() || device.is_wedged() {
                device.reboot();
                rebooted = true;
            }
            signals_from_execution_into(
                &outcome.kcov,
                &outcome.hal_events,
                id_table,
                hal_cov,
                sig_scratch,
                &mut cand_sigs,
            );
            let hits = target
                .iter()
                .filter(|t| cand_sigs.contains(t))
                .count();
            broker.recycle(outcome);
            hits >= required
        });
        let _ = checks;
        self.arena.min_target = target;
        self.arena.cand_sigs = cand_sigs;
        self.clock_us += replay_cost;
        if rebooted {
            self.clock_us += self.adb.reboot_cost();
        }
        minimized
    }

    /// Learns relation edges from the adjacent call pairs of a minimized,
    /// coverage-increasing program (§IV-C).
    fn learn_from(&mut self, prog: &Prog) {
        for pair in prog.calls.windows(2) {
            self.graph.learn(pair[0].desc, pair[1].desc);
        }
    }

    /// Learns only from adjacent pairs where both calls succeeded — the
    /// cheap validity filter used for unminimized, HAL-novel programs.
    fn learn_from_successes(&mut self, prog: &Prog, results: &[bool]) {
        for (i, pair) in prog.calls.windows(2).enumerate() {
            if results.get(i).copied().unwrap_or(false)
                && results.get(i + 1).copied().unwrap_or(false)
            {
                self.graph.learn(pair[0].desc, pair[1].desc);
            }
        }
    }

    fn sample_if_due(&mut self) {
        if self.clock_us - self.last_sample_us >= SAMPLE_INTERVAL_US {
            self.last_sample_us = self.clock_us;
            self.series.push(self.clock_us, self.observed_kernel.len() as f64);
        }
    }

    /// Runs until the virtual clock reaches `target_us`, or until the
    /// device is permanently lost (a lost device can no longer advance
    /// the clock; the fleet layer restarts such shards from hub state).
    ///
    /// Steps run in broker batches of `config.exec_batch`: one persistent
    /// trace session and one arena round per batch. Batch boundaries draw
    /// no RNG and charge no virtual time, so results are bit-identical at
    /// every batch size.
    pub fn run_until(&mut self, target_us: u64) {
        let batch = self.config.exec_batch.max(1);
        while self.clock_us < target_us && !self.supervisor.device_lost() {
            self.arena.begin_round();
            let open = self.supervisor.begin_batch(&mut self.broker, &mut self.device);
            for _ in 0..batch {
                if self.clock_us >= target_us || self.supervisor.device_lost() {
                    break;
                }
                self.step();
            }
            if open {
                self.supervisor.end_batch(&mut self.broker, &mut self.device);
            }
        }
        self.series.push(self.clock_us, self.observed_kernel.len() as f64);
    }

    /// Runs for `hours` of virtual time from the current clock.
    pub fn run_for_virtual_hours(&mut self, hours: f64) {
        let target = self.clock_us + (hours * HOUR_US as f64) as u64;
        self.run_until(target);
    }

    /// Runs exactly `n` iterations, batched like [`run_until`](Self::run_until).
    pub fn run_iterations(&mut self, n: u64) {
        let batch = self.config.exec_batch.max(1) as u64;
        let mut done = 0;
        while done < n {
            self.arena.begin_round();
            let open = self.supervisor.begin_batch(&mut self.broker, &mut self.device);
            let chunk = batch.min(n - done);
            for _ in 0..chunk {
                self.step();
            }
            if open {
                self.supervisor.end_batch(&mut self.broker, &mut self.device);
            }
            done += chunk;
        }
    }

    /// Distinct kernel coverage blocks observed device-wide (the Fig. 4/5
    /// metric, from the evaluation's kernel instrumentation — independent
    /// of what the fuzzer's feedback loop sees).
    pub fn kernel_coverage(&self) -> usize {
        self.observed_kernel.len()
    }

    /// Total feedback signals (kernel + HAL-directional).
    pub fn total_signals(&self) -> usize {
        self.signals.len()
    }

    /// The crash database.
    pub fn crash_db(&self) -> &CrashDb {
        &self.crash_db
    }

    /// The learned relation graph.
    pub fn relation_graph(&self) -> &RelationGraph {
        &self.graph
    }

    /// Merges a peer engine's relation graph into this one (fleet
    /// relation sync; Eq. 1 normalization keeps in-weights a valid
    /// distribution). No-op for variants that don't learn relations.
    pub fn merge_relations(&mut self, peer: &RelationGraph) {
        if self.config.relations {
            self.graph.merge_from(peer);
        }
    }

    /// The kernel blocks observed device-wide, sorted (deterministic
    /// order for fleet union-coverage accounting and snapshots).
    pub fn observed_blocks(&self) -> Vec<simkernel::coverage::Block> {
        // The paged-bitmap map iterates in ascending block order already.
        self.observed_kernel.iter().collect()
    }

    /// Length of the first-observation block log — a monotonic cursor for
    /// [`observed_blocks_since`](Self::observed_blocks_since).
    pub fn observed_blocks_len(&self) -> usize {
        self.cov_log.len()
    }

    /// The blocks first observed at log position `since` or later, in
    /// observation order. Fleet shards publish this suffix each sync
    /// instead of re-sending the whole coverage map.
    pub fn observed_blocks_since(&self, since: usize) -> &[Block] {
        &self.cov_log[since.min(self.cov_log.len())..]
    }

    /// The seed corpus.
    pub fn corpus(&self) -> &Corpus {
        &self.corpus
    }

    /// The call-description vocabulary in use.
    pub fn desc_table(&self) -> &DescTable {
        &self.table
    }

    /// Serializes the seed corpus (the daemon's persistent data, §IV-A).
    pub fn export_corpus(&self) -> String {
        self.corpus.export(&self.table)
    }

    /// Serializes only the seeds admitted after sequence `min_seq` — the
    /// shard-side half of batched hub sync. `corpus_seq` is the matching
    /// cursor source.
    ///
    /// [`corpus_seq`]: Self::corpus_seq
    pub fn export_corpus_since(&self, min_seq: u64) -> String {
        self.corpus.export_since(&self.table, min_seq)
    }

    /// The corpus admission-sequence tip (monotonic across evictions).
    pub fn corpus_seq(&self) -> u64 {
        self.corpus.admitted()
    }

    /// Restores seeds from a previous session's [`export_corpus`] dump;
    /// returns `(accepted, rejected)` against the current vocabulary.
    /// With the lint gate enabled, seeds carrying fixable defects are
    /// auto-repaired instead of dropped (counted in
    /// [`lint_counters`](Self::lint_counters)).
    ///
    /// [`export_corpus`]: Self::export_corpus
    pub fn import_corpus(&mut self, text: &str) -> (usize, usize) {
        if self.config.lint_gate {
            self.corpus.import_gated(text, &self.table, &mut self.lint)
        } else {
            self.corpus.import(text, &self.table)
        }
    }

    /// The probing-pass report (None for HAL-less baselines).
    pub fn probe_report(&self) -> Option<&ProbeReport> {
        self.probe_report.as_ref()
    }

    /// The static interface models (None unless `static_models` is set —
    /// i.e. outside DroidFuzz-S).
    pub fn model_set(&self) -> Option<&ModelSet> {
        self.models.as_ref()
    }

    /// Virtual time elapsed, µs.
    pub fn virtual_time_us(&self) -> u64 {
        self.clock_us
    }

    /// Test cases executed.
    pub fn executions(&self) -> u64 {
        self.executions
    }

    /// Cumulative fault-injection and recovery counters.
    pub fn fault_counters(&self) -> FaultCounters {
        self.supervisor.counters()
    }

    /// Cumulative lint-gate outcomes (`rejected` / `repaired`). Zero on a
    /// healthy campaign: the generator and mutators are sound under the
    /// linter, so the gate only fires on imported or minimized programs
    /// that actually carried defects.
    pub fn lint_counters(&self) -> LintCounters {
        self.lint
    }

    /// Whether the device has been permanently lost (re-provisioning
    /// exhausted). A lost engine can no longer make progress.
    pub fn device_lost(&self) -> bool {
        self.supervisor.device_lost()
    }

    /// Programs quarantined for repeatedly hanging the device.
    pub fn quarantined_programs(&self) -> usize {
        self.supervisor.quarantined_count()
    }

    /// The coverage-over-time series.
    pub fn coverage_series(&self) -> &Series {
        &self.series
    }

    /// The device under test.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// Per-driver kernel coverage: `(driver name, distinct blocks)`.
    pub fn per_driver_coverage(&self) -> Vec<(String, usize)> {
        self.driver_regions
            .iter()
            .map(|(name, base)| (name.clone(), self.observed_kernel.count_in_region(*base)))
            .collect::<Vec<_>>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simdevice::catalog;

    fn quick_engine(config: FuzzerConfig) -> FuzzingEngine {
        FuzzingEngine::new(catalog::device_a1().boot(), config)
    }

    #[test]
    fn engine_makes_progress_and_tracks_time() {
        let mut engine = quick_engine(FuzzerConfig::droidfuzz(7));
        engine.run_iterations(300);
        assert_eq!(engine.executions(), 300);
        assert!(engine.kernel_coverage() > 50, "got {}", engine.kernel_coverage());
        assert!(engine.virtual_time_us() > 300 * EXEC_SESSION_US);
        assert!(!engine.corpus().is_empty());
    }

    #[test]
    fn relations_are_learned_during_fuzzing() {
        let mut engine = quick_engine(FuzzerConfig::droidfuzz(3));
        engine.run_iterations(400);
        assert!(
            engine.relation_graph().edge_count() > 5,
            "edges: {}",
            engine.relation_graph().edge_count()
        );
    }

    #[test]
    fn syzkaller_variant_has_no_hal_vocabulary() {
        let engine = quick_engine(FuzzerConfig::syzkaller(5));
        assert!(engine.desc_table().hal_ids().is_empty());
        assert!(engine.probe_report().is_none());
    }

    #[test]
    fn droidfuzz_has_hal_vocabulary_from_probe() {
        let engine = quick_engine(FuzzerConfig::droidfuzz(5));
        assert!(!engine.desc_table().hal_ids().is_empty());
        assert!(engine.probe_report().unwrap().interface_count() > 30);
    }

    #[test]
    fn run_until_reaches_virtual_target() {
        let mut engine = quick_engine(FuzzerConfig::droidfuzz(9));
        engine.run_for_virtual_hours(0.25);
        assert!(engine.virtual_time_us() >= HOUR_US / 4);
        assert!(!engine.coverage_series().is_empty());
    }

    #[test]
    fn shallow_bug_found_quickly_on_device_e() {
        // Bug #12 (v4l_querycap) is one ioctl deep; any variant finds it
        // within a modest budget.
        let mut engine =
            FuzzingEngine::new(catalog::device_e().boot(), FuzzerConfig::droidfuzz(21));
        engine.run_iterations(3000);
        let titles: Vec<&str> = engine
            .crash_db()
            .records()
            .iter()
            .map(|r| r.title.as_str())
            .collect();
        assert!(
            titles.iter().any(|t| t.contains("v4l_querycap")),
            "expected querycap warning, got {titles:?}"
        );
    }

    #[test]
    fn corpus_persists_across_engine_sessions() {
        let mut first = quick_engine(FuzzerConfig::droidfuzz(31));
        first.run_iterations(150);
        let dump = first.export_corpus();
        assert!(!dump.is_empty());
        let mut second = quick_engine(FuzzerConfig::droidfuzz(32));
        let (restored, rejected) = second.import_corpus(&dump);
        assert!(restored > 0, "seeds should survive a restart");
        assert_eq!(rejected, 0, "a clean dump has no rejects");
        assert_eq!(second.corpus().len(), restored);
    }

    #[test]
    fn lint_gate_is_silent_on_a_healthy_campaign() {
        let mut engine = quick_engine(FuzzerConfig::droidfuzz(7));
        engine.run_iterations(300);
        assert_eq!(
            engine.lint_counters().total(),
            0,
            "generator/mutator output should pass the linter untouched: {:?}",
            engine.lint_counters()
        );
    }

    #[test]
    fn lint_gate_repairs_defective_imported_seeds() {
        let mut engine = quick_engine(FuzzerConfig::droidfuzz(41));
        // A close of a resource nothing produced: repair inserts the
        // missing producer instead of dropping the seed.
        let (accepted, rejected) = engine.import_corpus("# seed 0 signals=4\nr0 = close(r9)\n");
        assert_eq!((accepted, rejected), (1, 0));
        assert_eq!(engine.lint_counters().repaired, 1);
        assert_eq!(engine.corpus().len(), 1);
        let seed = &engine.corpus().seeds()[0];
        assert!(seed.prog.validate(engine.desc_table()).is_ok());
        assert_eq!(seed.prog.len(), 2, "producer inserted before the close");
    }

    #[test]
    fn disabled_lint_gate_rejects_instead_of_repairing() {
        let config = FuzzerConfig::droidfuzz(41).with_lint_gate(false);
        let mut engine = quick_engine(config);
        let (accepted, rejected) = engine.import_corpus("# seed 0 signals=4\nr0 = close(r9)\n");
        assert_eq!((accepted, rejected), (0, 1), "ungated import drops the defective seed");
        assert_eq!(engine.lint_counters().total(), 0);
    }

    #[test]
    fn droidfuzz_s_seeds_priors_and_makes_progress() {
        let engine = quick_engine(FuzzerConfig::droidfuzz_s(7));
        let models = engine.model_set().expect("DroidFuzz-S loads models");
        assert!(!models.is_empty());
        assert!(!models.audit().has_errors(), "catalog models must audit clean");
        assert!(
            engine.relation_graph().edge_count() > 0,
            "model priors seed the graph before round 0"
        );
        assert_eq!(engine.relation_graph().learn_events(), 0, "priors are not observations");
        let mut engine = engine;
        engine.run_iterations(300);
        assert!(engine.kernel_coverage() > 50, "got {}", engine.kernel_coverage());
        assert!(!engine.corpus().is_empty());
    }

    #[test]
    fn droidfuzz_s_campaign_is_seed_deterministic() {
        let run = |seed| {
            let mut engine = quick_engine(FuzzerConfig::droidfuzz_s(seed));
            engine.run_iterations(250);
            (
                engine.kernel_coverage(),
                engine.total_signals(),
                engine.virtual_time_us(),
                engine.lint_counters(),
                engine.relation_graph().edge_count(),
            )
        };
        assert_eq!(run(13), run(13), "the absint gate must not break determinism");
    }

    #[test]
    fn plain_droidfuzz_loads_no_models() {
        let engine = quick_engine(FuzzerConfig::droidfuzz(7));
        assert!(engine.model_set().is_none());
    }

    #[test]
    fn reliable_profile_injects_nothing() {
        let mut engine = quick_engine(FuzzerConfig::droidfuzz(7));
        engine.run_iterations(200);
        assert_eq!(engine.fault_counters().total(), 0);
        assert!(!engine.device_lost());
        assert_eq!(engine.quarantined_programs(), 0);
    }

    #[test]
    fn flaky_campaign_is_deterministic_and_makes_progress() {
        use simdevice::faults::FaultProfile;
        let run = |seed| {
            let mut engine = quick_engine(
                FuzzerConfig::droidfuzz(seed).with_fault_profile(FaultProfile::Flaky),
            );
            engine.run_for_virtual_hours(0.3);
            (
                engine.kernel_coverage(),
                engine.executions(),
                engine.virtual_time_us(),
                engine.fault_counters(),
            )
        };
        let a = run(13);
        let b = run(13);
        assert_eq!(a, b, "same (seed, profile) must replay identically");
        assert!(a.0 > 30, "faults degrade but must not stop progress: {}", a.0);
        assert!(a.3.injected > 0, "a flaky device faults over 0.3 h");
    }

    #[test]
    fn hostile_campaign_completes_with_recoveries() {
        use simdevice::faults::FaultProfile;
        let mut engine = quick_engine(
            FuzzerConfig::droidfuzz(5).with_fault_profile(FaultProfile::Hostile),
        );
        engine.run_for_virtual_hours(0.5);
        let c = engine.fault_counters();
        assert!(c.injected > 0);
        assert!(engine.executions() > 0);
        assert!(engine.kernel_coverage() > 0);
        assert!(
            engine.virtual_time_us() >= HOUR_US / 2 || engine.device_lost(),
            "a hostile campaign either finishes its budget or loses the device"
        );
    }

    #[test]
    fn hal_death_mid_campaign_is_recovered() {
        use simdevice::faults::{FaultProfile, FaultRates};
        // Degradation seam: HAL services keep dying silently mid-campaign
        // (hal_alive flips false without any crash report). The supervisor
        // must detect each loss, re-provision, and keep the campaign going.
        let rates = FaultRates {
            hal_death: 0.05,
            ..FaultRates::for_profile(FaultProfile::Reliable)
        };
        let mut engine = quick_engine(FuzzerConfig::droidfuzz(11).with_fault_rates(rates));
        engine.run_iterations(150);
        let c = engine.fault_counters();
        assert!(c.device_lost > 0, "deaths must have been detected");
        assert!(c.reprovisions >= c.device_lost, "each loss pays a re-provision");
        assert!(!engine.device_lost());
        let device = engine.device();
        assert!(
            device.hal_descriptors().iter().all(|d| device.hal_alive(d)),
            "campaign ends with every service revived"
        );
        assert!(engine.kernel_coverage() > 0);
    }

    #[test]
    fn double_reboot_before_boot_is_harmless() {
        // Degradation seam: a device that rebooted twice in a row (e.g. a
        // boot-loop blip) before the engine attached must fuzz normally.
        let mut device = catalog::device_a1().boot();
        device.reboot();
        device.reboot();
        assert_eq!(device.boot_count(), 3);
        let mut engine = FuzzingEngine::new(device, FuzzerConfig::droidfuzz(17));
        engine.run_iterations(100);
        assert!(engine.kernel_coverage() > 0);
        assert!(!engine.corpus().is_empty());
    }

    #[test]
    fn constant_hangs_never_poison_the_corpus() {
        use simdevice::faults::{FaultProfile, FaultRates};
        let rates = FaultRates {
            hang: 1.0,
            hang_extra_us: 120_000_000,
            ..FaultRates::for_profile(FaultProfile::Reliable)
        };
        let mut engine = quick_engine(FuzzerConfig::droidfuzz(19).with_fault_rates(rates));
        engine.run_iterations(5);
        assert_eq!(engine.fault_counters().hangs, 5);
        assert!(engine.corpus().is_empty(), "hung feedback is never admitted");
        // Each hang costs the watchdog budget plus a recovery reboot.
        assert!(engine.virtual_time_us() >= 5 * 30 * 1_000_000);
    }

    #[test]
    fn vanished_device_halts_the_engine_cleanly() {
        use simdevice::faults::{FaultProfile, FaultRates};
        let rates = FaultRates {
            vanish: 1.0,
            ..FaultRates::for_profile(FaultProfile::Reliable)
        };
        let mut engine = quick_engine(FuzzerConfig::droidfuzz(23).with_fault_rates(rates));
        engine.run_for_virtual_hours(1.0);
        assert!(engine.device_lost());
        assert_eq!(engine.executions(), 0, "nothing ever ran");
        assert!(
            engine.virtual_time_us() < HOUR_US / 10,
            "a lost device must not spin the clock to the target"
        );
    }

    #[test]
    fn per_driver_coverage_accounts_blocks() {
        let mut engine = quick_engine(FuzzerConfig::droidfuzz(4));
        engine.run_iterations(200);
        let per_driver = engine.per_driver_coverage();
        let sum: usize = per_driver.iter().map(|(_, c)| c).sum();
        assert_eq!(sum, engine.kernel_coverage(), "regions partition the block space");
        assert!(per_driver.iter().any(|(_, c)| *c > 0));
    }
}
