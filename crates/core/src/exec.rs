//! Execution agents (§IV-A): the Execution Broker with its HAL and Native
//! executors, compiled into one component that runs a DSL program against
//! a device and bonds the feedback into a uniform record.

use fuzzlang::desc::{CallKind, DescTable, SyscallTemplate};
use fuzzlang::prog::{ArgValue, Prog};
use fuzzlang::types::TypeDesc;
use simbinder::{Parcel, Transaction, TransactionError};
use simdevice::Device;
use simkernel::coverage::{Block, CoverageMap};
use simkernel::fd::Fd;
use simkernel::report::BugReport;
use simkernel::trace::{Origin, SyscallEvent, TraceFilter};
use simkernel::{Syscall, SyscallRet};

/// What one call produced at runtime (for later `Ref` resolution).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Produced {
    Fd(Fd),
    Scalar(u64),
    Nothing,
    Failed,
}

/// Bonded feedback from one program execution (§IV-A: "the feedback is
/// then bonded to form a uniform feedback statistic").
#[derive(Debug, Clone)]
pub struct ExecOutcome {
    /// kcov blocks hit by the *native executor task*. kcov is per-task:
    /// kernel work done by HAL service processes is invisible here — the
    /// blind spot DroidFuzz's directional HAL coverage exists to fill.
    pub kcov: Vec<Block>,
    /// Kernel blocks newly reached device-wide during this execution
    /// (any task, including HAL services). This is *measurement
    /// infrastructure* for the evaluation's coverage metric — a real
    /// fuzzer's feedback loop does not see it.
    pub observed_new_blocks: Vec<Block>,
    /// HAL-originated syscall events, in order (directional coverage).
    pub hal_events: Vec<SyscallEvent>,
    /// Bug reports raised during the execution (kernel + HAL).
    pub bugs: Vec<BugReport>,
    /// Per-call success flags (relation learning, minimization).
    pub call_results: Vec<bool>,
    /// Calls actually dispatched.
    pub calls_executed: usize,
    /// Approximate feedback payload size pulled back over ADB.
    pub reply_bytes: usize,
}

/// The device-side execution broker.
///
/// Forks a fresh native-executor process per program (so descriptor state
/// never leaks between test cases, as with the paper's per-payload
/// executor processes) and dispatches each call of a program to the
/// native or HAL executor by its kind.
#[derive(Debug, Default)]
pub struct Broker {
    executions: u64,
    /// Every block already attributed to an earlier execution (or present
    /// before the first one). Persisting this across executions lets each
    /// run compute its device-wide delta with one pass over the kernel's
    /// map instead of snapshotting the whole map per execution.
    seen_global: CoverageMap,
    seen_primed: bool,
}

impl Broker {
    /// Creates a broker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Programs executed so far.
    pub fn executions(&self) -> u64 {
        self.executions
    }

    /// Executes `prog` against `device`, returning the bonded feedback.
    ///
    /// Coverage is collected per-execution: the native executor's kcov
    /// buffer captures native-call driver coverage, and the global
    /// coverage delta captures HAL-side driver coverage; HAL-originated
    /// syscalls are additionally recorded *in order* by an eBPF-style
    /// trace session for the directional feedback of §IV-D.
    pub fn execute(&mut self, device: &mut Device, table: &DescTable, prog: &Prog) -> ExecOutcome {
        self.executions += 1;
        if !self.seen_primed {
            // Coverage present before the first execution (boot, probing)
            // is prior art, not this run's delta.
            self.seen_global.extend(device.kernel().global_coverage().iter().copied());
            self.seen_primed = true;
        }
        let pid = device.kernel().spawn_process(Origin::Native);
        let _ = device.kernel().kcov_enable(pid);
        let trace = device.kernel().attach_trace(TraceFilter::HalOnly);

        let mut produced: Vec<Produced> = Vec::with_capacity(prog.calls.len());
        let mut call_results = Vec::with_capacity(prog.calls.len());
        for call in &prog.calls {
            let desc = table.get(call.desc).clone();
            let (result, value) = match &desc.kind {
                CallKind::Syscall(template) => {
                    self.run_syscall(device, pid, template, &call.args, &produced)
                }
                CallKind::Hal { service, code } => {
                    self.run_hal(device, service, *code, &desc.args, &call.args, &produced)
                }
            };
            call_results.push(result);
            produced.push(value);
        }

        let kcov = device.kernel().kcov_collect(pid).unwrap_or_default();
        let hal_events = device.kernel().trace_drain(trace);
        device.kernel().detach_trace(trace);
        let _ = device.kernel().exit_process(pid);
        // The executor (the HAL services' Binder client) is gone: services
        // drop its sessions, closing their kernel resources.
        device.end_hal_client();
        let observed_new_blocks: Vec<Block> = device
            .kernel()
            .global_coverage()
            .iter()
            .filter(|b| !self.seen_global.contains(**b))
            .copied()
            .collect();
        self.seen_global.extend(observed_new_blocks.iter().copied());
        let bugs = device.take_bug_reports();
        let reply_bytes = kcov.len() * 8 + hal_events.len() * 16;
        ExecOutcome {
            kcov,
            observed_new_blocks,
            hal_events,
            bugs,
            calls_executed: call_results.len(),
            call_results,
            reply_bytes,
        }
    }

    fn resolve_fd(args_value: &ArgValue, produced: &[Produced]) -> Fd {
        match args_value {
            ArgValue::Ref(t) => match produced.get(*t) {
                Some(Produced::Fd(fd)) => *fd,
                // Stale/failed producer: use an invalid descriptor, which
                // fails with EBADF like a real stale handle.
                _ => Fd(0xFFFF),
            },
            _ => Fd(0xFFFF),
        }
    }

    fn resolve_scalar(value: &ArgValue, produced: &[Produced]) -> u64 {
        match value {
            ArgValue::Int(v) => *v,
            ArgValue::Ref(t) => match produced.get(*t) {
                Some(Produced::Scalar(v)) => *v,
                Some(Produced::Fd(fd)) => u64::from(fd.0),
                _ => 0,
            },
            _ => 0,
        }
    }

    fn run_syscall(
        &mut self,
        device: &mut Device,
        pid: simkernel::Pid,
        template: &SyscallTemplate,
        args: &[ArgValue],
        produced: &[Produced],
    ) -> (bool, Produced) {
        // Partition concrete args: first Ref is the fd; remaining ints in
        // order; first byte blob is the payload.
        let fd = args.first().map(|a| Self::resolve_fd(a, produced));
        let ints: Vec<u64> = args
            .iter()
            .skip(1)
            .filter_map(|a| match a {
                ArgValue::Int(v) => Some(*v),
                ArgValue::Ref(_) => Some(Self::resolve_scalar(a, produced)),
                _ => None,
            })
            .collect();
        let bytes: Vec<u8> = args
            .iter()
            .find_map(|a| match a {
                ArgValue::Bytes(b) => Some(b.clone()),
                _ => None,
            })
            .unwrap_or_default();
        let int = |i: usize| ints.get(i).copied().unwrap_or(0);

        let call = match template {
            SyscallTemplate::Openat { path } => Syscall::Openat { path: path.clone() },
            SyscallTemplate::Close => Syscall::Close { fd: fd.unwrap_or(Fd(0xFFFF)) },
            SyscallTemplate::Read => Syscall::Read {
                fd: fd.unwrap_or(Fd(0xFFFF)),
                len: (int(0) as usize).min(1 << 16),
            },
            SyscallTemplate::Write => {
                Syscall::Write { fd: fd.unwrap_or(Fd(0xFFFF)), data: bytes }
            }
            SyscallTemplate::Ioctl { request } => {
                let mut arg = Vec::with_capacity(ints.len() * 4 + bytes.len());
                for v in &ints {
                    arg.extend_from_slice(&(*v as u32).to_le_bytes());
                }
                arg.extend_from_slice(&bytes);
                Syscall::Ioctl { fd: fd.unwrap_or(Fd(0xFFFF)), request: *request, arg }
            }
            SyscallTemplate::IoctlAny => {
                let request = int(0) as u32;
                let mut arg = Vec::with_capacity((ints.len().saturating_sub(1)) * 4 + bytes.len());
                for v in ints.iter().skip(1) {
                    arg.extend_from_slice(&(*v as u32).to_le_bytes());
                }
                arg.extend_from_slice(&bytes);
                Syscall::Ioctl { fd: fd.unwrap_or(Fd(0xFFFF)), request, arg }
            }
            SyscallTemplate::Mmap => Syscall::Mmap {
                fd: fd.unwrap_or(Fd(0xFFFF)),
                len: (int(0) as usize).min(1 << 24),
                prot: int(1) as u32,
            },
            SyscallTemplate::Poll => {
                Syscall::Poll { fd: fd.unwrap_or(Fd(0xFFFF)), events: int(0) as u32 }
            }
            SyscallTemplate::Dup => Syscall::Dup { fd: fd.unwrap_or(Fd(0xFFFF)) },
            SyscallTemplate::Socket { domain, ty, proto } => {
                Syscall::Socket { domain: *domain, ty: *ty, proto: *proto }
            }
            SyscallTemplate::Bind => {
                Syscall::Bind { fd: fd.unwrap_or(Fd(0xFFFF)), addr: int(0) }
            }
            SyscallTemplate::Connect => {
                Syscall::Connect { fd: fd.unwrap_or(Fd(0xFFFF)), addr: int(0) }
            }
            SyscallTemplate::Listen => Syscall::Listen {
                fd: fd.unwrap_or(Fd(0xFFFF)),
                backlog: int(0) as u32,
            },
            SyscallTemplate::Accept => Syscall::Accept { fd: fd.unwrap_or(Fd(0xFFFF)) },
        };
        match device.kernel().syscall(pid, call) {
            SyscallRet::NewFd(fd) => (true, Produced::Fd(fd)),
            SyscallRet::Ok(v) => (true, Produced::Scalar(v)),
            SyscallRet::Data(d) => (true, Produced::Scalar(d.len() as u64)),
            SyscallRet::Err(_) => (false, Produced::Failed),
        }
    }

    fn run_hal(
        &mut self,
        device: &mut Device,
        service: &str,
        code: u32,
        arg_descs: &[fuzzlang::desc::ArgDesc],
        args: &[ArgValue],
        produced: &[Produced],
    ) -> (bool, Produced) {
        let mut parcel = Parcel::new();
        for (desc, value) in arg_descs.iter().zip(args) {
            match (&desc.ty, value) {
                (TypeDesc::Resource { kind }, _) if kind.0.starts_with("hal:") => {
                    parcel.write_i32(Self::resolve_scalar(value, produced) as i32);
                }
                (TypeDesc::Resource { .. }, _) => {
                    parcel.write_fd(Self::resolve_fd(value, produced).0);
                }
                (TypeDesc::Int { max, .. }, _) if *max > u64::from(u32::MAX) => {
                    parcel.write_i64(Self::resolve_scalar(value, produced) as i64);
                }
                (_, ArgValue::Int(v)) => {
                    parcel.write_i32(*v as i32);
                }
                (_, ArgValue::Ref(_)) => {
                    parcel.write_i32(Self::resolve_scalar(value, produced) as i32);
                }
                (_, ArgValue::Bytes(b)) => {
                    parcel.write_blob(b.clone());
                }
                (_, ArgValue::Str(s)) => {
                    parcel.write_string16(s.clone());
                }
            }
        }
        match device.transact(service, Transaction::new(code, parcel)) {
            Ok(reply) => {
                let value = reply
                    .reader()
                    .read_i32()
                    .map(|v| Produced::Scalar(v as u64 & 0xFFFF_FFFF))
                    .or_else(|_| reply.reader().read_i64().map(|v| Produced::Scalar(v as u64)))
                    .unwrap_or(Produced::Nothing);
                (true, value)
            }
            Err(TransactionError::DeadObject { .. }) => (false, Produced::Failed),
            Err(_) => (false, Produced::Failed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descs::build_syscall_table;
    use fuzzlang::prog::Call;
    use simdevice::catalog;

    fn prog_of(table: &DescTable, lines: &[(&str, Vec<ArgValue>)]) -> Prog {
        match Prog::from_named(table, lines) {
            Ok(prog) => prog,
            Err(e) => panic!("test program: {e}"),
        }
    }

    #[test]
    fn unknown_call_name_is_an_error_not_a_panic() {
        let mut device = catalog::device_a1().boot();
        let table = build_syscall_table(device.kernel());
        let err = Prog::from_named(&table, &[("ioctl$NOT_A_REAL_CALL", vec![])])
            .expect_err("unknown names must be reported");
        assert_eq!(err.index, 0);
        assert_eq!(err.name, "ioctl$NOT_A_REAL_CALL");
        assert!(err.to_string().contains("NOT_A_REAL_CALL"));
    }

    #[test]
    fn native_open_ioctl_sequence_yields_kcov() {
        let mut device = catalog::device_a1().boot();
        let table = build_syscall_table(device.kernel());
        let mut broker = Broker::new();
        let prog = prog_of(
            &table,
            &[
                ("openat$/dev/video0", vec![]),
                (
                    "ioctl$VIDIOC_S_FMT",
                    vec![
                        ArgValue::Ref(0),
                        ArgValue::Int(640),
                        ArgValue::Int(480),
                        ArgValue::Int(u64::from(simkernel::drivers::v4l2::PIXFMTS[0])),
                    ],
                ),
                ("ioctl$VIDIOC_QUERYCAP", vec![ArgValue::Ref(0), ArgValue::Int(0)]),
            ],
        );
        let outcome = broker.execute(&mut device, &table, &prog);
        assert_eq!(outcome.call_results, vec![true, true, true]);
        assert!(outcome.kcov.len() >= 3);
        assert!(outcome.hal_events.is_empty());
        assert!(outcome.bugs.is_empty());
    }

    #[test]
    fn socket_sequence_triggers_shallow_l2cap_bug_on_pi() {
        let mut device = catalog::device_b().boot();
        let table = build_syscall_table(device.kernel());
        let mut broker = Broker::new();
        let prog = prog_of(
            &table,
            &[
                ("socket$l2cap_dgram", vec![]),
                ("connect$l2cap", vec![ArgValue::Ref(0), ArgValue::Int(0x99)]),
                ("ioctl$L2CAP_DISCONN_REQ", vec![ArgValue::Ref(0)]),
            ],
        );
        let outcome = broker.execute(&mut device, &table, &prog);
        assert_eq!(outcome.bugs.len(), 1);
        assert!(outcome.bugs[0].title.contains("l2cap_send_disconn_req"));
    }

    #[test]
    fn stale_ref_after_failed_producer_is_graceful() {
        let mut device = catalog::device_a1().boot();
        let table = build_syscall_table(device.kernel());
        let mut broker = Broker::new();
        // The second close references an already-closed socket; the broker
        // must degrade to EBADF semantics rather than panic.
        let prog = Prog {
            calls: vec![
                Call { desc: table.id_of("socket$hci").unwrap(), args: vec![] },
                Call {
                    desc: table.id_of("close").unwrap(),
                    args: vec![ArgValue::Ref(0)],
                },
                Call {
                    desc: table.id_of("close").unwrap(),
                    args: vec![ArgValue::Ref(0)],
                },
            ],
        };
        let outcome = broker.execute(&mut device, &table, &prog);
        assert_eq!(outcome.call_results, vec![true, true, false]);
    }

    #[test]
    fn broker_respawns_executor_after_reboot() {
        let mut device = catalog::device_a1().boot();
        let table = build_syscall_table(device.kernel());
        let mut broker = Broker::new();
        let prog = prog_of(&table, &[("openat$/dev/ion", vec![])]);
        assert!(broker.execute(&mut device, &table, &prog).call_results[0]);
        device.reboot();
        let outcome = broker.execute(&mut device, &table, &prog);
        assert!(outcome.call_results[0], "executor must follow the reboot");
    }

    #[test]
    fn hal_call_produces_directional_events() {
        let mut device = catalog::device_a1().boot();
        let mut table = build_syscall_table(device.kernel());
        // Hand-register a HAL desc for lights.setLight.
        table.add(fuzzlang::desc::CallDesc::new(
            "hal$ILight$setLight",
            CallKind::Hal {
                service: "android.hardware.lights@2.0::ILight/default".into(),
                code: 1,
            },
            vec![
                fuzzlang::desc::ArgDesc::new("id", TypeDesc::Choice { values: vec![0] }),
                fuzzlang::desc::ArgDesc::new("level", TypeDesc::Int { min: 0, max: 255 }),
            ],
            None,
        ));
        let mut broker = Broker::new();
        let prog = prog_of(
            &table,
            &[("hal$ILight$setLight", vec![ArgValue::Int(0), ArgValue::Int(200)])],
        );
        let outcome = broker.execute(&mut device, &table, &prog);
        assert_eq!(outcome.call_results, vec![true]);
        assert!(!outcome.hal_events.is_empty(), "HAL syscalls must be traced");
        assert!(outcome.hal_events.iter().all(|e| matches!(e.origin, Origin::Hal(_))));
        assert!(
            outcome.kcov.is_empty(),
            "per-task kcov must NOT see HAL-side kernel work"
        );
        assert!(
            !outcome.observed_new_blocks.is_empty(),
            "the measurement channel does see it"
        );
    }
}
