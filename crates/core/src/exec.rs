//! Execution agents (§IV-A): the Execution Broker with its HAL and Native
//! executors, compiled into one component that runs a DSL program against
//! a device and bonds the feedback into a uniform record.
//!
//! The broker executes in two modes with bit-identical results:
//!
//! * **One-shot** ([`Broker::execute`] outside a batch): a trace filter is
//!   installed and torn down around each program, as a standalone run would.
//! * **Batched** ([`Broker::begin_batch`]/[`Broker::end_batch`], or the
//!   [`Broker::execute_batch`] convenience): one `TraceFilter` install, one
//!   persistent seen-coverage map, and recycled feedback buffers amortized
//!   across a slice of programs. Residue the persistent session picks up
//!   *between* execution windows (executor teardown, fault arms, reprovision
//!   probing) is drained and discarded at the exact point where the
//!   per-program path would have attached a fresh session, so the captured
//!   event window — and therefore every outcome — is identical.
//!
//! Device-wide coverage deltas are computed in O(new blocks): the broker
//! marks each kernel coverage page's live count after a scan and word-diffs
//! only pages that grew since (see [`simkernel::coverage::CovPage::diff_into`]), instead of
//! filtering the whole map per execution.

use std::collections::{BTreeMap, HashSet};

use fuzzlang::desc::{CallKind, DescTable, SyscallTemplate};
use fuzzlang::prog::{ArgValue, Prog};
use fuzzlang::types::TypeDesc;
use simbinder::{Parcel, Transaction, TransactionError};
use simdevice::Device;
use simkernel::coverage::{Block, CoverageMap, COV_PAGE_SHIFT};
use simkernel::fd::Fd;
use simkernel::report::BugReport;
use simkernel::trace::{Origin, SyscallEvent, TraceFilter, TraceId};
use simkernel::{Syscall, SyscallRet};

/// What one call produced at runtime (for later `Ref` resolution).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Produced {
    Fd(Fd),
    Scalar(u64),
    Nothing,
    Failed,
}

/// Bonded feedback from one program execution (§IV-A: "the feedback is
/// then bonded to form a uniform feedback statistic").
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExecOutcome {
    /// kcov blocks hit by the *native executor task*. kcov is per-task:
    /// kernel work done by HAL service processes is invisible here — the
    /// blind spot DroidFuzz's directional HAL coverage exists to fill.
    pub kcov: Vec<Block>,
    /// Kernel blocks newly reached device-wide during this execution
    /// (any task, including HAL services). This is *measurement
    /// infrastructure* for the evaluation's coverage metric — a real
    /// fuzzer's feedback loop does not see it.
    pub observed_new_blocks: Vec<Block>,
    /// HAL-originated syscall events, in order (directional coverage).
    pub hal_events: Vec<SyscallEvent>,
    /// Bug reports raised during the execution (kernel + HAL).
    pub bugs: Vec<BugReport>,
    /// Per-call success flags (relation learning, minimization).
    pub call_results: Vec<bool>,
    /// Calls actually dispatched.
    pub calls_executed: usize,
    /// Approximate feedback payload size pulled back over ADB.
    pub reply_bytes: usize,
}

impl ExecOutcome {
    /// Empties every field, keeping buffer capacity for reuse.
    fn reset(&mut self) {
        self.kcov.clear();
        self.observed_new_blocks.clear();
        self.hal_events.clear();
        self.bugs.clear();
        self.call_results.clear();
        self.calls_executed = 0;
        self.reply_bytes = 0;
    }
}

/// The device-side execution broker.
///
/// Forks a fresh native-executor process per program (so descriptor state
/// never leaks between test cases, as with the paper's per-payload
/// executor processes) and dispatches each call of a program to the
/// native or HAL executor by its kind.
#[derive(Debug, Default)]
pub struct Broker {
    executions: u64,
    /// Every block already attributed to an earlier execution (or present
    /// before the first one). Persisting this across executions lets each
    /// run compute its device-wide delta against prior art only.
    seen_global: CoverageMap,
    seen_primed: bool,
    /// Per-page live counts of the kernel's coverage map at the last delta
    /// scan (valid for `marks_boot`). A page whose live count has not
    /// moved cannot hold new blocks, so the delta pass skips it entirely.
    page_marks: BTreeMap<u64, u32>,
    marks_boot: u32,
    marks_total: usize,
    /// Whether a batch session is open (`begin_batch`..`end_batch`).
    batch_open: bool,
    /// The persistent trace session and the boot count it was attached
    /// under — a reboot replaces the kernel and kills the session with it.
    session: Option<(TraceId, u32)>,
    /// Scratch buffers reused across executions.
    produced: Vec<Produced>,
    ints: Vec<u64>,
    discard: Vec<SyscallEvent>,
    outcome_pool: Vec<ExecOutcome>,
    /// State for [`execute_reference`](Self::execute_reference) only: the
    /// historical HashSet-based seen filter, kept independent so reference
    /// runs behave like a standalone pre-batching broker.
    seen_reference: HashSet<Block>,
    reference_primed: bool,
}

/// Cap on pooled [`ExecOutcome`] scratch objects.
const OUTCOME_POOL_CAP: usize = 8;

impl Broker {
    /// Creates a broker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Programs executed so far.
    pub fn executions(&self) -> u64 {
        self.executions
    }

    /// Opens a batch: installs one persistent HAL trace filter and keeps
    /// it (plus the seen-coverage marks and feedback scratch) live across
    /// every [`execute`](Self::execute) until [`end_batch`](Self::end_batch).
    /// Batch boundaries are invisible to results — they only amortize
    /// per-program setup.
    pub fn begin_batch(&mut self, device: &mut Device) {
        if self.batch_open {
            return;
        }
        self.batch_open = true;
        let boot = device.boot_count();
        let id = device.kernel().attach_trace(TraceFilter::HalOnly);
        self.session = Some((id, boot));
    }

    /// Closes the current batch, detaching the persistent trace session
    /// (when the kernel it was attached to is still the live one).
    pub fn end_batch(&mut self, device: &mut Device) {
        self.batch_open = false;
        if let Some((id, boot)) = self.session.take() {
            if device.boot_count() == boot {
                device.kernel().detach_trace(id);
            }
        }
    }

    /// Executes a slice of programs under one batch session, returning one
    /// outcome per program. Equivalent to (but cheaper than) calling
    /// [`execute`](Self::execute) per program outside a batch.
    pub fn execute_batch(
        &mut self,
        device: &mut Device,
        table: &DescTable,
        progs: &[Prog],
    ) -> Vec<ExecOutcome> {
        self.begin_batch(device);
        let outcomes = progs.iter().map(|p| self.execute(device, table, p)).collect();
        self.end_batch(device);
        outcomes
    }

    /// Returns an outcome's buffers to the broker's recycle pool. Purely
    /// an allocation optimization — dropping outcomes instead is always
    /// correct.
    pub fn recycle(&mut self, mut outcome: ExecOutcome) {
        if self.outcome_pool.len() < OUTCOME_POOL_CAP {
            outcome.reset();
            self.outcome_pool.push(outcome);
        }
    }

    /// Executes `prog` against `device`, returning the bonded feedback.
    ///
    /// Coverage is collected per-execution: the native executor's kcov
    /// buffer captures native-call driver coverage, and the global
    /// coverage delta captures HAL-side driver coverage; HAL-originated
    /// syscalls are additionally recorded *in order* by an eBPF-style
    /// trace session for the directional feedback of §IV-D.
    pub fn execute(&mut self, device: &mut Device, table: &DescTable, prog: &Prog) -> ExecOutcome {
        let mut outcome = self.outcome_pool.pop().unwrap_or_default();
        self.execute_into(device, table, prog, &mut outcome);
        outcome
    }

    fn execute_into(
        &mut self,
        device: &mut Device,
        table: &DescTable,
        prog: &Prog,
        out: &mut ExecOutcome,
    ) {
        out.reset();
        self.executions += 1;
        if !self.seen_primed {
            // Coverage present before the first execution (boot, probing)
            // is prior art, not this run's delta. Kept lazy — a fault arm
            // may mutate device coverage between batch open and the first
            // execution, and that too is prior art.
            self.seen_global.union_from(device.kernel_ref().global_coverage());
            self.seen_primed = true;
        }
        let pid = device.kernel().spawn_process(Origin::Native);
        let _ = device.kernel().kcov_enable(pid);
        let trace = self.install_trace(device);

        let mut produced = std::mem::take(&mut self.produced);
        produced.clear();
        for call in &prog.calls {
            let desc = table.get(call.desc);
            let (result, value) = match &desc.kind {
                CallKind::Syscall(template) => {
                    self.run_syscall(device, pid, template, &call.args, &produced)
                }
                CallKind::Hal { service, code } => {
                    self.run_hal(device, service, *code, &desc.args, &call.args, &produced)
                }
            };
            out.call_results.push(result);
            produced.push(value);
        }
        self.produced = produced;

        let _ = device.kernel().kcov_collect_into(pid, &mut out.kcov);
        device.kernel().trace_drain_into(trace, &mut out.hal_events);
        if !self.batch_open {
            device.kernel().detach_trace(trace);
        }
        let _ = device.kernel().exit_process(pid);
        // The executor (the HAL services' Binder client) is gone: services
        // drop its sessions, closing their kernel resources. (Under a batch
        // session those closes are recorded as residue and discarded at the
        // next execution's install point.)
        device.end_hal_client();
        self.collect_new_blocks(device, &mut out.observed_new_blocks);
        let mut bugs = device.take_bug_reports();
        out.bugs.append(&mut bugs);
        out.calls_executed = out.call_results.len();
        out.reply_bytes = out.kcov.len() * 8 + out.hal_events.len() * 16;
    }

    /// Returns the trace session this execution captures through. Outside
    /// a batch: a fresh per-program session. Inside one: the persistent
    /// session, first drained of any residue recorded since the previous
    /// capture window closed — exactly the events a fresh attach would
    /// never have seen. A reboot replaces the kernel (killing the session),
    /// so the session is revalidated against the boot count and reattached
    /// on the new kernel when stale.
    fn install_trace(&mut self, device: &mut Device) -> TraceId {
        if !self.batch_open {
            return device.kernel().attach_trace(TraceFilter::HalOnly);
        }
        let boot = device.boot_count();
        match self.session {
            Some((id, b)) if b == boot => {
                device.kernel().trace_drain_into(id, &mut self.discard);
                self.discard.clear();
                id
            }
            _ => {
                let id = device.kernel().attach_trace(TraceFilter::HalOnly);
                self.session = Some((id, boot));
                id
            }
        }
    }

    /// Appends every kernel coverage block not yet attributed to an
    /// earlier execution to `out` (ascending order), then marks them seen.
    ///
    /// O(new blocks): pages whose live count equals their mark are skipped
    /// without reading a word, and changed pages are word-diffed against
    /// the seen map. Reboots reset the kernel map, so marks are keyed to
    /// the boot count; `seen_global` itself persists across reboots (a
    /// re-hit block after reboot is not new, same as the historical
    /// whole-map filter).
    fn collect_new_blocks(&mut self, device: &mut Device, out: &mut Vec<Block>) {
        let boot = device.boot_count();
        if boot != self.marks_boot {
            self.page_marks.clear();
            self.marks_total = 0;
            self.marks_boot = boot;
        }
        let cov = device.kernel_ref().global_coverage();
        if cov.len() == self.marks_total {
            return;
        }
        self.marks_total = cov.len();
        let start = out.len();
        for (key, page) in cov.pages() {
            if self.page_marks.get(&key) == Some(&page.live()) {
                continue;
            }
            page.diff_into(self.seen_global.page(key), key << COV_PAGE_SHIFT, out);
            self.page_marks.insert(key, page.live());
        }
        for &block in &out[start..] {
            self.seen_global.insert(block);
        }
    }

    /// The historical per-program execution flow, kept verbatim: fresh
    /// buffers and per-call descriptor clones, a per-execution trace
    /// attach/detach, and a full filter scan of the kernel coverage map
    /// against its own `HashSet` seen filter. It is the differential
    /// oracle for the batched path (byte-equal outcomes required) and the
    /// honest baseline for the `exec_batch` bench arm. Not used by the
    /// engine.
    pub fn execute_reference(
        &mut self,
        device: &mut Device,
        table: &DescTable,
        prog: &Prog,
    ) -> ExecOutcome {
        self.executions += 1;
        if !self.reference_primed {
            self.seen_reference
                .extend(device.kernel_ref().global_coverage().iter());
            self.reference_primed = true;
        }
        let pid = device.kernel().spawn_process(Origin::Native);
        let _ = device.kernel().kcov_enable(pid);
        let trace = device.kernel().attach_trace(TraceFilter::HalOnly);

        let mut produced: Vec<Produced> = Vec::with_capacity(prog.calls.len());
        let mut call_results = Vec::with_capacity(prog.calls.len());
        for call in &prog.calls {
            let desc = table.get(call.desc).clone();
            let (result, value) = match &desc.kind {
                CallKind::Syscall(template) => {
                    self.run_syscall(device, pid, template, &call.args, &produced)
                }
                CallKind::Hal { service, code } => {
                    self.run_hal(device, service, *code, &desc.args, &call.args, &produced)
                }
            };
            call_results.push(result);
            produced.push(value);
        }

        let kcov = device.kernel().kcov_collect(pid).unwrap_or_default();
        let hal_events = device.kernel().trace_drain(trace);
        device.kernel().detach_trace(trace);
        let _ = device.kernel().exit_process(pid);
        device.end_hal_client();
        let observed_new_blocks: Vec<Block> = device
            .kernel_ref()
            .global_coverage()
            .iter()
            .filter(|b| !self.seen_reference.contains(b))
            .collect();
        self.seen_reference.extend(observed_new_blocks.iter().copied());
        let bugs = device.take_bug_reports();
        let reply_bytes = kcov.len() * 8 + hal_events.len() * 16;
        ExecOutcome {
            kcov,
            observed_new_blocks,
            hal_events,
            bugs,
            calls_executed: call_results.len(),
            call_results,
            reply_bytes,
        }
    }

    fn resolve_fd(args_value: &ArgValue, produced: &[Produced]) -> Fd {
        match args_value {
            ArgValue::Ref(t) => match produced.get(*t) {
                Some(Produced::Fd(fd)) => *fd,
                // Stale/failed producer: use an invalid descriptor, which
                // fails with EBADF like a real stale handle.
                _ => Fd(0xFFFF),
            },
            _ => Fd(0xFFFF),
        }
    }

    fn resolve_scalar(value: &ArgValue, produced: &[Produced]) -> u64 {
        match value {
            ArgValue::Int(v) => *v,
            ArgValue::Ref(t) => match produced.get(*t) {
                Some(Produced::Scalar(v)) => *v,
                Some(Produced::Fd(fd)) => u64::from(fd.0),
                _ => 0,
            },
            _ => 0,
        }
    }

    fn run_syscall(
        &mut self,
        device: &mut Device,
        pid: simkernel::Pid,
        template: &SyscallTemplate,
        args: &[ArgValue],
        produced: &[Produced],
    ) -> (bool, Produced) {
        // Partition concrete args: first Ref is the fd; remaining ints in
        // order; first byte blob is the payload.
        let fd = args.first().map(|a| Self::resolve_fd(a, produced));
        let mut ints = std::mem::take(&mut self.ints);
        ints.clear();
        ints.extend(args.iter().skip(1).filter_map(|a| match a {
            ArgValue::Int(v) => Some(*v),
            ArgValue::Ref(_) => Some(Self::resolve_scalar(a, produced)),
            _ => None,
        }));
        let bytes: Vec<u8> = args
            .iter()
            .find_map(|a| match a {
                ArgValue::Bytes(b) => Some(b.clone()),
                _ => None,
            })
            .unwrap_or_default();
        let int = |i: usize| ints.get(i).copied().unwrap_or(0);

        let call = match template {
            SyscallTemplate::Openat { path } => Syscall::Openat { path: path.clone() },
            SyscallTemplate::Close => Syscall::Close { fd: fd.unwrap_or(Fd(0xFFFF)) },
            SyscallTemplate::Read => Syscall::Read {
                fd: fd.unwrap_or(Fd(0xFFFF)),
                len: (int(0) as usize).min(1 << 16),
            },
            SyscallTemplate::Write => {
                Syscall::Write { fd: fd.unwrap_or(Fd(0xFFFF)), data: bytes }
            }
            SyscallTemplate::Ioctl { request } => {
                let mut arg = Vec::with_capacity(ints.len() * 4 + bytes.len());
                for v in &ints {
                    arg.extend_from_slice(&(*v as u32).to_le_bytes());
                }
                arg.extend_from_slice(&bytes);
                Syscall::Ioctl { fd: fd.unwrap_or(Fd(0xFFFF)), request: *request, arg }
            }
            SyscallTemplate::IoctlAny => {
                let request = int(0) as u32;
                let mut arg = Vec::with_capacity((ints.len().saturating_sub(1)) * 4 + bytes.len());
                for v in ints.iter().skip(1) {
                    arg.extend_from_slice(&(*v as u32).to_le_bytes());
                }
                arg.extend_from_slice(&bytes);
                Syscall::Ioctl { fd: fd.unwrap_or(Fd(0xFFFF)), request, arg }
            }
            SyscallTemplate::Mmap => Syscall::Mmap {
                fd: fd.unwrap_or(Fd(0xFFFF)),
                len: (int(0) as usize).min(1 << 24),
                prot: int(1) as u32,
            },
            SyscallTemplate::Poll => {
                Syscall::Poll { fd: fd.unwrap_or(Fd(0xFFFF)), events: int(0) as u32 }
            }
            SyscallTemplate::Dup => Syscall::Dup { fd: fd.unwrap_or(Fd(0xFFFF)) },
            SyscallTemplate::Socket { domain, ty, proto } => {
                Syscall::Socket { domain: *domain, ty: *ty, proto: *proto }
            }
            SyscallTemplate::Bind => {
                Syscall::Bind { fd: fd.unwrap_or(Fd(0xFFFF)), addr: int(0) }
            }
            SyscallTemplate::Connect => {
                Syscall::Connect { fd: fd.unwrap_or(Fd(0xFFFF)), addr: int(0) }
            }
            SyscallTemplate::Listen => Syscall::Listen {
                fd: fd.unwrap_or(Fd(0xFFFF)),
                backlog: int(0) as u32,
            },
            SyscallTemplate::Accept => Syscall::Accept { fd: fd.unwrap_or(Fd(0xFFFF)) },
        };
        self.ints = ints;
        match device.kernel().syscall(pid, call) {
            SyscallRet::NewFd(fd) => (true, Produced::Fd(fd)),
            SyscallRet::Ok(v) => (true, Produced::Scalar(v)),
            SyscallRet::Data(d) => (true, Produced::Scalar(d.len() as u64)),
            SyscallRet::Err(_) => (false, Produced::Failed),
        }
    }

    fn run_hal(
        &mut self,
        device: &mut Device,
        service: &str,
        code: u32,
        arg_descs: &[fuzzlang::desc::ArgDesc],
        args: &[ArgValue],
        produced: &[Produced],
    ) -> (bool, Produced) {
        let mut parcel = Parcel::new();
        for (desc, value) in arg_descs.iter().zip(args) {
            match (&desc.ty, value) {
                (TypeDesc::Resource { kind }, _) if kind.0.starts_with("hal:") => {
                    parcel.write_i32(Self::resolve_scalar(value, produced) as i32);
                }
                (TypeDesc::Resource { .. }, _) => {
                    parcel.write_fd(Self::resolve_fd(value, produced).0);
                }
                (TypeDesc::Int { max, .. }, _) if *max > u64::from(u32::MAX) => {
                    parcel.write_i64(Self::resolve_scalar(value, produced) as i64);
                }
                (_, ArgValue::Int(v)) => {
                    parcel.write_i32(*v as i32);
                }
                (_, ArgValue::Ref(_)) => {
                    parcel.write_i32(Self::resolve_scalar(value, produced) as i32);
                }
                (_, ArgValue::Bytes(b)) => {
                    parcel.write_blob(b.clone());
                }
                (_, ArgValue::Str(s)) => {
                    parcel.write_string16(s.clone());
                }
            }
        }
        match device.transact(service, Transaction::new(code, parcel)) {
            Ok(reply) => {
                let value = reply
                    .reader()
                    .read_i32()
                    .map(|v| Produced::Scalar(v as u64 & 0xFFFF_FFFF))
                    .or_else(|_| reply.reader().read_i64().map(|v| Produced::Scalar(v as u64)))
                    .unwrap_or(Produced::Nothing);
                (true, value)
            }
            Err(TransactionError::DeadObject { .. }) => (false, Produced::Failed),
            Err(_) => (false, Produced::Failed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descs::build_syscall_table;
    use crate::generate::random_generate;
    use fuzzlang::prog::Call;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use simdevice::catalog;

    fn prog_of(table: &DescTable, lines: &[(&str, Vec<ArgValue>)]) -> Prog {
        match Prog::from_named(table, lines) {
            Ok(prog) => prog,
            Err(e) => panic!("test program: {e}"),
        }
    }

    #[test]
    fn unknown_call_name_is_an_error_not_a_panic() {
        let mut device = catalog::device_a1().boot();
        let table = build_syscall_table(device.kernel());
        let err = Prog::from_named(&table, &[("ioctl$NOT_A_REAL_CALL", vec![])])
            .expect_err("unknown names must be reported");
        assert_eq!(err.index, 0);
        assert_eq!(err.name, "ioctl$NOT_A_REAL_CALL");
        assert!(err.to_string().contains("NOT_A_REAL_CALL"));
    }

    #[test]
    fn native_open_ioctl_sequence_yields_kcov() {
        let mut device = catalog::device_a1().boot();
        let table = build_syscall_table(device.kernel());
        let mut broker = Broker::new();
        let prog = prog_of(
            &table,
            &[
                ("openat$/dev/video0", vec![]),
                (
                    "ioctl$VIDIOC_S_FMT",
                    vec![
                        ArgValue::Ref(0),
                        ArgValue::Int(640),
                        ArgValue::Int(480),
                        ArgValue::Int(u64::from(simkernel::drivers::v4l2::PIXFMTS[0])),
                    ],
                ),
                ("ioctl$VIDIOC_QUERYCAP", vec![ArgValue::Ref(0), ArgValue::Int(0)]),
            ],
        );
        let outcome = broker.execute(&mut device, &table, &prog);
        assert_eq!(outcome.call_results, vec![true, true, true]);
        assert!(outcome.kcov.len() >= 3);
        assert!(outcome.hal_events.is_empty());
        assert!(outcome.bugs.is_empty());
    }

    #[test]
    fn socket_sequence_triggers_shallow_l2cap_bug_on_pi() {
        let mut device = catalog::device_b().boot();
        let table = build_syscall_table(device.kernel());
        let mut broker = Broker::new();
        let prog = prog_of(
            &table,
            &[
                ("socket$l2cap_dgram", vec![]),
                ("connect$l2cap", vec![ArgValue::Ref(0), ArgValue::Int(0x99)]),
                ("ioctl$L2CAP_DISCONN_REQ", vec![ArgValue::Ref(0)]),
            ],
        );
        let outcome = broker.execute(&mut device, &table, &prog);
        assert_eq!(outcome.bugs.len(), 1);
        assert!(outcome.bugs[0].title.contains("l2cap_send_disconn_req"));
    }

    #[test]
    fn stale_ref_after_failed_producer_is_graceful() {
        let mut device = catalog::device_a1().boot();
        let table = build_syscall_table(device.kernel());
        let mut broker = Broker::new();
        // The second close references an already-closed socket; the broker
        // must degrade to EBADF semantics rather than panic.
        let prog = Prog {
            calls: vec![
                Call { desc: table.id_of("socket$hci").unwrap(), args: vec![] },
                Call {
                    desc: table.id_of("close").unwrap(),
                    args: vec![ArgValue::Ref(0)],
                },
                Call {
                    desc: table.id_of("close").unwrap(),
                    args: vec![ArgValue::Ref(0)],
                },
            ],
        };
        let outcome = broker.execute(&mut device, &table, &prog);
        assert_eq!(outcome.call_results, vec![true, true, false]);
    }

    #[test]
    fn broker_respawns_executor_after_reboot() {
        let mut device = catalog::device_a1().boot();
        let table = build_syscall_table(device.kernel());
        let mut broker = Broker::new();
        let prog = prog_of(&table, &[("openat$/dev/ion", vec![])]);
        assert!(broker.execute(&mut device, &table, &prog).call_results[0]);
        device.reboot();
        let outcome = broker.execute(&mut device, &table, &prog);
        assert!(outcome.call_results[0], "executor must follow the reboot");
    }

    #[test]
    fn hal_call_produces_directional_events() {
        let mut device = catalog::device_a1().boot();
        let mut table = build_syscall_table(device.kernel());
        // Hand-register a HAL desc for lights.setLight.
        table.add(fuzzlang::desc::CallDesc::new(
            "hal$ILight$setLight",
            CallKind::Hal {
                service: "android.hardware.lights@2.0::ILight/default".into(),
                code: 1,
            },
            vec![
                fuzzlang::desc::ArgDesc::new("id", TypeDesc::Choice { values: vec![0] }),
                fuzzlang::desc::ArgDesc::new("level", TypeDesc::Int { min: 0, max: 255 }),
            ],
            None,
        ));
        let mut broker = Broker::new();
        let prog = prog_of(
            &table,
            &[("hal$ILight$setLight", vec![ArgValue::Int(0), ArgValue::Int(200)])],
        );
        let outcome = broker.execute(&mut device, &table, &prog);
        assert_eq!(outcome.call_results, vec![true]);
        assert!(!outcome.hal_events.is_empty(), "HAL syscalls must be traced");
        assert!(outcome.hal_events.iter().all(|e| matches!(e.origin, Origin::Hal(_))));
        assert!(
            outcome.kcov.is_empty(),
            "per-task kcov must NOT see HAL-side kernel work"
        );
        assert!(
            !outcome.observed_new_blocks.is_empty(),
            "the measurement channel does see it"
        );
    }

    /// A deterministic stream of generated programs for differential runs.
    fn generated_progs(table: &DescTable, seed: u64, n: usize) -> Vec<Prog> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| random_generate(table, 8, &mut rng))
            .filter(|p| !p.is_empty())
            .collect()
    }

    /// The batched path must be outcome-identical to the historical
    /// per-program reference flow, program by program.
    #[test]
    fn batched_execution_matches_reference_path() {
        let specs: [fn() -> simdevice::FirmwareSpec; 2] = [catalog::device_a1, catalog::device_b];
        for spec in specs {
            let mut dev_batch = spec().boot();
            let mut dev_ref = spec().boot();
            let table = build_syscall_table(dev_batch.kernel());
            let progs = generated_progs(&table, 0xBA7C4, 60);
            let mut batch_broker = Broker::new();
            let mut ref_broker = Broker::new();
            let batched = batch_broker.execute_batch(&mut dev_batch, &table, &progs);
            for (i, (prog, got)) in progs.iter().zip(&batched).enumerate() {
                let want = ref_broker.execute_reference(&mut dev_ref, &table, prog);
                assert_eq!(*got, want, "outcome {i} diverged from the reference path");
            }
        }
    }

    /// Outside a batch, `execute` must also match the reference — the two
    /// modes share one algorithm, batch boundaries only amortize setup.
    #[test]
    fn oneshot_execute_matches_reference_path() {
        let mut dev_new = catalog::device_a1().boot();
        let mut dev_ref = catalog::device_a1().boot();
        let table = build_syscall_table(dev_new.kernel());
        let mut new_broker = Broker::new();
        let mut ref_broker = Broker::new();
        for prog in generated_progs(&table, 0x05E0, 40) {
            let got = new_broker.execute(&mut dev_new, &table, &prog);
            let want = ref_broker.execute_reference(&mut dev_ref, &table, &prog);
            assert_eq!(got, want);
            new_broker.recycle(got);
        }
    }

    /// A reboot mid-batch kills the kernel (and the persistent trace
    /// session with it); the broker must reattach and keep producing
    /// reference-identical outcomes.
    #[test]
    fn batch_survives_mid_batch_reboot() {
        let mut dev_batch = catalog::device_a1().boot();
        let mut dev_ref = catalog::device_a1().boot();
        let table = build_syscall_table(dev_batch.kernel());
        let progs = generated_progs(&table, 0x5EB007, 30);
        let mut batch_broker = Broker::new();
        let mut ref_broker = Broker::new();
        batch_broker.begin_batch(&mut dev_batch);
        for (i, prog) in progs.iter().enumerate() {
            if i == 10 {
                dev_batch.reboot();
                dev_ref.reboot();
            }
            let got = batch_broker.execute(&mut dev_batch, &table, prog);
            let want = ref_broker.execute_reference(&mut dev_ref, &table, prog);
            assert_eq!(got, want, "outcome {i} diverged across the reboot");
            batch_broker.recycle(got);
        }
        batch_broker.end_batch(&mut dev_batch);
    }

    /// Recycled outcomes must be indistinguishable from fresh ones.
    #[test]
    fn recycled_outcomes_are_reset() {
        let mut device = catalog::device_a1().boot();
        let table = build_syscall_table(device.kernel());
        let mut broker = Broker::new();
        let prog = prog_of(&table, &[("openat$/dev/video0", vec![])]);
        let first = broker.execute(&mut device, &table, &prog);
        let reference = first.clone();
        broker.recycle(first);
        let again = broker.execute(&mut device, &table, &prog);
        assert_eq!(again.call_results, reference.call_results);
        assert_eq!(again.kcov, reference.kcov);
        assert!(again.observed_new_blocks.is_empty(), "nothing new the second time");
    }
}
