//! Cross-boundary execution state feedback (§IV-D).
//!
//! Two signal sources are merged into one uniform signal space:
//!
//! * **kernel code coverage** — kcov blocks, used directly;
//! * **directional HAL syscall coverage** — the ordered sequence of
//!   *specialized* syscall IDs the HAL issued (generic calls like `ioctl`
//!   are split by their critical argument through a lookup table compiled
//!   at initialization). Order is captured by hashing consecutive ID
//!   pairs, so the same set of calls in a different order yields different
//!   signals — the property plain kcov lacks.

use simkernel::coverage::{mix64, Block};
use simkernel::syscall::SyscallNr;
use simkernel::trace::SyscallEvent;
use simkernel::Kernel;
use std::collections::{HashMap, HashSet};

/// One feedback signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Signal(pub u64);

/// Tag bit distinguishing HAL-directional signals from kernel blocks.
const HAL_TAG: u64 = 1 << 63;

/// The lookup table assigning unique IDs to (specialized) system calls.
///
/// Compiled at fuzzer initialization from the device's driver metadata —
/// "a lookup table compiled at initialization consisting of all possible
/// system calls, including specialized system calls" (§IV-D). Calls not
/// in the table (e.g. a HAL issuing an ioctl the metadata missed) get
/// stable hash-derived IDs on demand.
#[derive(Debug, Clone, Default)]
pub struct SyscallIdTable {
    ids: HashMap<(SyscallNr, u64), u32>,
    next: u32,
}

impl SyscallIdTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Compiles the table for a device: one ID per plain syscall, plus one
    /// per `(ioctl, request)` from every registered driver's API.
    pub fn compile(kernel: &Kernel) -> Self {
        let mut t = Self::new();
        for &nr in SyscallNr::all() {
            t.intern(nr, 0);
        }
        for node in kernel.device_nodes() {
            let api = kernel.device_api(&node).expect("node listed");
            for ioctl in api.ioctls {
                t.intern(SyscallNr::Ioctl, u64::from(ioctl.request));
            }
        }
        t
    }

    fn intern(&mut self, nr: SyscallNr, critical: u64) -> u32 {
        let key = (nr, Self::specialize_critical(nr, critical));
        if let Some(&id) = self.ids.get(&key) {
            return id;
        }
        let id = self.next;
        self.next += 1;
        self.ids.insert(key, id);
        id
    }

    fn specialize_critical(nr: SyscallNr, critical: u64) -> u64 {
        match nr {
            SyscallNr::Ioctl | SyscallNr::Socket => critical,
            _ => 0,
        }
    }

    /// The specialized ID of one observed syscall event.
    pub fn id_of(&mut self, event: &SyscallEvent) -> u32 {
        self.intern(event.nr, event.critical)
    }

    /// Number of interned specialized calls.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }
}

/// An accumulating set of signals, partitioned so kernel coverage can be
/// reported separately (the paper's comparison metric).
#[derive(Debug, Clone, Default)]
pub struct SignalSet {
    signals: HashSet<Signal>,
    kernel_blocks: usize,
}

impl SignalSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Merges `signals`, returning how many were new.
    pub fn merge(&mut self, signals: &[Signal]) -> usize {
        let mut new = 0;
        for &s in signals {
            if self.signals.insert(s) {
                new += 1;
                if s.0 & HAL_TAG == 0 {
                    self.kernel_blocks += 1;
                }
            }
        }
        new
    }

    /// Whether every signal in `signals` is already covered.
    pub fn covers(&self, signals: &[Signal]) -> bool {
        signals.iter().all(|s| self.signals.contains(s))
    }

    /// How many of `signals` would be new.
    pub fn count_new(&self, signals: &[Signal]) -> usize {
        signals
            .iter()
            .collect::<HashSet<_>>()
            .into_iter()
            .filter(|s| !self.signals.contains(s))
            .count()
    }

    /// Total distinct signals.
    pub fn len(&self) -> usize {
        self.signals.len()
    }

    /// Whether no signals are recorded.
    pub fn is_empty(&self) -> bool {
        self.signals.is_empty()
    }

    /// Distinct *kernel* coverage blocks (the metric of Fig. 4/5 and
    /// Table III).
    pub fn kernel_blocks(&self) -> usize {
        self.kernel_blocks
    }

    /// Iterates the raw values of kernel (non-HAL-tagged) signals — these
    /// are kcov block identifiers, usable for per-driver accounting.
    pub fn iter_kernel(&self) -> impl Iterator<Item = u64> + '_ {
        self.signals.iter().filter(|s| s.0 & HAL_TAG == 0).map(|s| s.0)
    }
}

/// Converts one execution's raw feedback into the uniform signal list:
/// kcov blocks verbatim, plus directional pair-hashes of the HAL's
/// specialized syscall ID sequence (when `hal_coverage` is enabled).
pub fn signals_from_execution(
    kcov: &[Block],
    hal_events: &[SyscallEvent],
    table: &mut SyscallIdTable,
    hal_coverage: bool,
) -> Vec<Signal> {
    let mut out: Vec<Signal> = kcov.iter().map(|b| Signal(b.0 & !HAL_TAG)).collect();
    if hal_coverage {
        // Chain specialized IDs *per HAL service*: a service's internal
        // syscall order is a function of its state machine, so new pairs
        // mean genuinely new HAL behaviour — whereas cross-service
        // interleaving is an artifact of payload order and would flood
        // the signal space with noise.
        let mut prev_by_tag: std::collections::HashMap<u32, u64> = std::collections::HashMap::new();
        let mut occurrence: std::collections::HashMap<(u32, u64, u64), u64> =
            std::collections::HashMap::new();
        for event in hal_events {
            let simkernel::trace::Origin::Hal(tag) = event.origin else { continue };
            let id = u64::from(table.id_of(event));
            let prev = prev_by_tag.entry(tag).or_insert(0xFFFF_FFFF);
            // The n-th occurrence of a pair (capped) is its own signal, so
            // repetition ladders — e.g. one more buffer queued than ever
            // before — register as new HAL behaviour even when the kernel
            // blocks they touch are saturated.
            let count = occurrence.entry((tag, *prev, id)).or_insert(0);
            *count += 1;
            let pair = mix64(
                (u64::from(tag) << 40)
                    ^ prev.wrapping_mul(0x1_0000_0001)
                    ^ id.wrapping_mul(0x9E37_79B9)
                    ^ ((*count).min(8) << 52),
            );
            out.push(Signal(pair | HAL_TAG));
            *prev = id;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkernel::trace::Origin;

    fn ev(nr: SyscallNr, critical: u64) -> SyscallEvent {
        SyscallEvent { origin: Origin::Hal(1), nr, critical, path: None, ok: true }
    }

    #[test]
    fn table_specializes_ioctls_but_not_reads() {
        let mut t = SyscallIdTable::new();
        let a = t.id_of(&ev(SyscallNr::Ioctl, 0x100));
        let b = t.id_of(&ev(SyscallNr::Ioctl, 0x200));
        let c = t.id_of(&ev(SyscallNr::Ioctl, 0x100));
        assert_ne!(a, b);
        assert_eq!(a, c);
        let r1 = t.id_of(&ev(SyscallNr::Read, 11));
        let r2 = t.id_of(&ev(SyscallNr::Read, 99));
        assert_eq!(r1, r2, "read is not specialized by critical arg");
    }

    #[test]
    fn compile_covers_all_driver_ioctls() {
        let mut device = simdevice::catalog::device_a1().boot();
        let table = SyscallIdTable::compile(device.kernel());
        let total_ioctls: usize = device
            .kernel()
            .device_nodes()
            .iter()
            .map(|n| device.kernel().device_api(n).unwrap().ioctls.len())
            .sum();
        assert_eq!(table.len(), SyscallNr::all().len() + total_ioctls);
    }

    #[test]
    fn directional_coverage_distinguishes_order() {
        let mut t = SyscallIdTable::new();
        let seq_a = [ev(SyscallNr::Ioctl, 1), ev(SyscallNr::Ioctl, 2)];
        let seq_b = [ev(SyscallNr::Ioctl, 2), ev(SyscallNr::Ioctl, 1)];
        let sig_a = signals_from_execution(&[], &seq_a, &mut t, true);
        let sig_b = signals_from_execution(&[], &seq_b, &mut t, true);
        assert_ne!(sig_a, sig_b, "order must matter (directional)");
        let mut set = SignalSet::new();
        assert_eq!(set.merge(&sig_a), 2);
        assert!(set.count_new(&sig_b) > 0);
    }

    #[test]
    fn hal_signals_do_not_count_as_kernel_blocks() {
        let mut t = SyscallIdTable::new();
        let sigs = signals_from_execution(
            &[Block(0x1000)],
            &[ev(SyscallNr::Ioctl, 7)],
            &mut t,
            true,
        );
        let mut set = SignalSet::new();
        set.merge(&sigs);
        assert_eq!(set.len(), 2);
        assert_eq!(set.kernel_blocks(), 1);
    }

    #[test]
    fn hal_coverage_flag_gates_directional_signals() {
        let mut t = SyscallIdTable::new();
        let sigs = signals_from_execution(&[], &[ev(SyscallNr::Ioctl, 7)], &mut t, false);
        assert!(sigs.is_empty());
    }

    #[test]
    fn covers_and_count_new() {
        let mut set = SignalSet::new();
        set.merge(&[Signal(1), Signal(2)]);
        assert!(set.covers(&[Signal(1)]));
        assert!(!set.covers(&[Signal(1), Signal(3)]));
        assert_eq!(set.count_new(&[Signal(2), Signal(3), Signal(3)]), 1);
    }
}
