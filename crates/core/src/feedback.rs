//! Cross-boundary execution state feedback (§IV-D).
//!
//! Two signal sources are merged into one uniform signal space:
//!
//! * **kernel code coverage** — kcov blocks, used directly;
//! * **directional HAL syscall coverage** — the ordered sequence of
//!   *specialized* syscall IDs the HAL issued (generic calls like `ioctl`
//!   are split by their critical argument through a lookup table compiled
//!   at initialization). Order is captured by hashing consecutive ID
//!   pairs, so the same set of calls in a different order yields different
//!   signals — the property plain kcov lacks.
//!
//! [`SignalSet`] stores the accumulated space as a two-level fixed-page
//! bitmap rather than a `HashSet`: membership tests on the per-execution
//! hot path are a shift and a mask instead of a hash probe, and
//! [`SignalSet::count_new`] no longer allocates. The HAL tag bit selects
//! one of two independent partitions so the kernel-block count (the
//! paper's comparison metric) falls out of the partition length.

use simkernel::coverage::{mix64, words_new_bits, Block};
use simkernel::syscall::SyscallNr;
use simkernel::trace::SyscallEvent;
use simkernel::Kernel;
use std::collections::{HashMap, HashSet};
use std::fmt;

/// One feedback signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Signal(pub u64);

/// Tag bit distinguishing HAL-directional signals from kernel blocks.
const HAL_TAG: u64 = 1 << 63;

/// The lookup table assigning unique IDs to (specialized) system calls.
///
/// Compiled at fuzzer initialization from the device's driver metadata —
/// "a lookup table compiled at initialization consisting of all possible
/// system calls, including specialized system calls" (§IV-D). Calls not
/// in the table (e.g. a HAL issuing an ioctl the metadata missed) get
/// stable hash-derived IDs on demand.
#[derive(Debug, Clone, Default)]
pub struct SyscallIdTable {
    ids: HashMap<(SyscallNr, u64), u32>,
    next: u32,
}

impl SyscallIdTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Compiles the table for a device: one ID per plain syscall, plus one
    /// per `(ioctl, request)` from every registered driver's API.
    pub fn compile(kernel: &Kernel) -> Self {
        let mut t = Self::new();
        for &nr in SyscallNr::all() {
            t.intern(nr, 0);
        }
        for node in kernel.device_nodes() {
            let api = kernel.device_api(&node).expect("node listed");
            for ioctl in api.ioctls {
                t.intern(SyscallNr::Ioctl, u64::from(ioctl.request));
            }
        }
        t
    }

    fn intern(&mut self, nr: SyscallNr, critical: u64) -> u32 {
        let key = (nr, Self::specialize_critical(nr, critical));
        if let Some(&id) = self.ids.get(&key) {
            return id;
        }
        let id = self.next;
        self.next += 1;
        self.ids.insert(key, id);
        id
    }

    fn specialize_critical(nr: SyscallNr, critical: u64) -> u64 {
        match nr {
            SyscallNr::Ioctl | SyscallNr::Socket => critical,
            _ => 0,
        }
    }

    /// The specialized ID of one observed syscall event.
    pub fn id_of(&mut self, event: &SyscallEvent) -> u32 {
        self.intern(event.nr, event.critical)
    }

    /// Number of interned specialized calls.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }
}

/// Low bits of a signal selecting its slot within a page.
const PAGE_SHIFT: u32 = 12;
/// Slots per page (`1 << PAGE_SHIFT`).
const PAGE_SLOTS: usize = 1 << PAGE_SHIFT;
/// Pages per partition, selected by the bits above the slot bits. Kernel
/// blocks are a driver-region base plus a sub-16-bit offset
/// ([`simkernel::coverage::DRIVER_REGION`]), so slot + page bits cover the
/// whole offset space and distinct drivers land on distinct page groups;
/// HAL pair-hashes are `mix64`-uniform over all 64 page indices.
const PAGE_COUNT: usize = 64;
/// `u64` words in one page's presence bitmap.
const PAGE_WORDS: usize = PAGE_SLOTS / 64;

/// One lazily allocated page: a presence bit per slot plus the full
/// signal value that claimed the slot, so two signals colliding on the
/// same slot are detected instead of conflated.
#[derive(Clone)]
struct SignalPage {
    bits: [u64; PAGE_WORDS],
    owners: [u64; PAGE_SLOTS],
}

/// All-zero page bitmap, the diff base for pages absent on one side.
static ZERO_PAGE_BITS: [u64; PAGE_WORDS] = [0; PAGE_WORDS];

impl SignalPage {
    fn empty() -> Box<Self> {
        Box::new(Self { bits: [0; PAGE_WORDS], owners: [0; PAGE_SLOTS] })
    }

    fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        self.bits.iter().enumerate().flat_map(move |(w, &word)| {
            (0..64).filter(move |b| word >> b & 1 == 1).map(move |b| self.owners[w * 64 + b])
        })
    }

    /// Feeds the owner of every slot set here but not in `base` to the
    /// sink — the page-level snapshot diff the fleet delta path composes
    /// from. Word-level: the chunked [`words_new_bits`] kernel skips
    /// saturated regions without touching individual slots.
    fn diff_into<F: FnMut(u64)>(&self, base: Option<&SignalPage>, f: &mut F) {
        let base_bits = base.map_or(&ZERO_PAGE_BITS, |p| &p.bits);
        words_new_bits(&self.bits, base_bits, |w, mut mask| {
            while mask != 0 {
                let b = mask.trailing_zeros() as usize;
                f(self.owners[w * 64 + b]);
                mask &= mask - 1;
            }
        });
    }
}

/// One half of a [`SignalSet`]: all signals sharing a HAL-tag value.
/// Slot collisions (same low bits, different value) spill into a compact
/// overflow set so `len` stays exact.
#[derive(Clone)]
struct SignalPartition {
    pages: [Option<Box<SignalPage>>; PAGE_COUNT],
    overflow: HashSet<u64>,
    len: usize,
}

impl Default for SignalPartition {
    fn default() -> Self {
        Self { pages: std::array::from_fn(|_| None), overflow: HashSet::new(), len: 0 }
    }
}

impl fmt::Debug for SignalPartition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SignalPartition")
            .field("len", &self.len)
            .field("pages", &self.pages.iter().filter(|p| p.is_some()).count())
            .field("overflow", &self.overflow.len())
            .finish()
    }
}

impl SignalPartition {
    #[inline]
    fn locate(value: u64) -> (usize, usize, u64) {
        let slot = value as usize & (PAGE_SLOTS - 1);
        let page = (value >> PAGE_SHIFT) as usize & (PAGE_COUNT - 1);
        (page, slot, 1 << (slot % 64))
    }

    /// Inserts `value`, returning whether it was new.
    fn insert(&mut self, value: u64) -> bool {
        let (page_idx, slot, mask) = Self::locate(value);
        let page = self.pages[page_idx].get_or_insert_with(SignalPage::empty);
        let word = &mut page.bits[slot / 64];
        if *word & mask == 0 {
            *word |= mask;
            page.owners[slot] = value;
            self.len += 1;
            true
        } else if page.owners[slot] == value {
            false
        } else if self.overflow.insert(value) {
            self.len += 1;
            true
        } else {
            false
        }
    }

    fn contains(&self, value: u64) -> bool {
        let (page_idx, slot, mask) = Self::locate(value);
        match &self.pages[page_idx] {
            Some(page) if page.bits[slot / 64] & mask != 0 => {
                page.owners[slot] == value || self.overflow.contains(&value)
            }
            _ => false,
        }
    }

    fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        self.pages
            .iter()
            .flatten()
            .flat_map(|p| p.iter())
            .chain(self.overflow.iter().copied())
    }

    /// Calls `f` with every value present here but absent from `base`.
    /// Bit-new slots come straight from the word-level page diff; slots
    /// set on both sides are only walked when their owner words differ
    /// (a whole-word slice compare — the common saturated case skips 64
    /// slots per comparison).
    fn diff_with<F: FnMut(u64)>(&self, base: &SignalPartition, f: &mut F) {
        for (idx, page) in self.pages.iter().enumerate() {
            let Some(page) = page else { continue };
            let Some(bp) = base.pages[idx].as_deref() else {
                // No base page: nothing mapping here is in `base` at all
                // (inserts always materialize the page first).
                page.diff_into(None, f);
                continue;
            };
            page.diff_into(Some(bp), f);
            for w in 0..PAGE_WORDS {
                let shared = page.bits[w] & bp.bits[w];
                if shared == 0 {
                    continue;
                }
                let lo = w * 64;
                if page.owners[lo..lo + 64] == bp.owners[lo..lo + 64] {
                    continue;
                }
                let mut m = shared;
                while m != 0 {
                    let b = m.trailing_zeros() as usize;
                    let v = page.owners[lo + b];
                    if bp.owners[lo + b] != v && !base.overflow.contains(&v) {
                        f(v);
                    }
                    m &= m - 1;
                }
            }
        }
        for &v in &self.overflow {
            if !base.contains(v) {
                f(v);
            }
        }
    }
}

/// An accumulating set of signals, partitioned so kernel coverage can be
/// reported separately (the paper's comparison metric).
#[derive(Debug, Clone, Default)]
pub struct SignalSet {
    kernel: SignalPartition,
    hal: SignalPartition,
    /// Reused by [`Self::count_new_split`] so the per-execution novelty
    /// check allocates nothing in steady state.
    scratch: Vec<u64>,
}

impl SignalSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    fn partition(&self, value: u64) -> &SignalPartition {
        if value & HAL_TAG == 0 { &self.kernel } else { &self.hal }
    }

    #[inline]
    fn partition_mut(&mut self, value: u64) -> &mut SignalPartition {
        if value & HAL_TAG == 0 { &mut self.kernel } else { &mut self.hal }
    }

    /// Merges `signals`, returning how many were new.
    pub fn merge(&mut self, signals: &[Signal]) -> usize {
        let mut new = 0;
        for &s in signals {
            if self.partition_mut(s.0).insert(s.0) {
                new += 1;
            }
        }
        new
    }

    /// Whether every signal in `signals` is already covered.
    pub fn covers(&self, signals: &[Signal]) -> bool {
        signals.iter().all(|s| self.partition(s.0).contains(s.0))
    }

    /// How many of `signals` would be new.
    pub fn count_new(&mut self, signals: &[Signal]) -> usize {
        self.count_new_split(signals).0
    }

    /// How many of `signals` would be new, as `(total, kernel_blocks)` —
    /// the second component is what the old callers derived by merging
    /// into a throwaway clone. Deduplicates within `signals` via an
    /// internal scratch buffer instead of an allocated set.
    pub fn count_new_split(&mut self, signals: &[Signal]) -> (usize, usize) {
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        scratch.extend(signals.iter().map(|s| s.0).filter(|&v| !self.partition(v).contains(v)));
        scratch.sort_unstable();
        scratch.dedup();
        let total = scratch.len();
        let kernel = scratch.iter().filter(|&&v| v & HAL_TAG == 0).count();
        self.scratch = scratch;
        (total, kernel)
    }

    /// Unions a whole peer set into this one, returning how many of its
    /// signals were new. Word-level: pages diff via the chunked bitmap
    /// kernels, so saturated regions cost one OR-compare per 8 words
    /// instead of a probe per signal.
    pub fn merge_set(&mut self, other: &SignalSet) -> usize {
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        other.kernel.diff_with(&self.kernel, &mut |v| scratch.push(v));
        other.hal.diff_with(&self.hal, &mut |v| scratch.push(v));
        let mut new = 0;
        for &v in &scratch {
            if self.partition_mut(v).insert(v) {
                new += 1;
            }
        }
        self.scratch = scratch;
        new
    }

    /// Fills `out` with every signal present here but not in `base` — the
    /// snapshot diff the fleet delta path ships instead of a full set.
    /// `out` is cleared first and sorted by raw value, so the wire
    /// encoding is deterministic regardless of overflow hashing.
    pub fn diff_into(&self, base: &SignalSet, out: &mut Vec<Signal>) {
        out.clear();
        self.kernel.diff_with(&base.kernel, &mut |v| out.push(Signal(v)));
        self.hal.diff_with(&base.hal, &mut |v| out.push(Signal(v)));
        out.sort_unstable_by_key(|s| s.0);
    }

    /// Total distinct signals.
    pub fn len(&self) -> usize {
        self.kernel.len + self.hal.len
    }

    /// Whether no signals are recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Distinct *kernel* coverage blocks (the metric of Fig. 4/5 and
    /// Table III).
    pub fn kernel_blocks(&self) -> usize {
        self.kernel.len
    }

    /// Iterates the raw values of kernel (non-HAL-tagged) signals — these
    /// are kcov block identifiers, usable for per-driver accounting.
    pub fn iter_kernel(&self) -> impl Iterator<Item = u64> + '_ {
        self.kernel.iter()
    }
}

/// Reusable allocation pool for [`signals_from_execution_into`]: the
/// per-service chain state and pair-occurrence counts, kept across
/// executions so the hot path stops re-growing two hash maps per run.
#[derive(Debug, Clone, Default)]
pub struct SignalScratch {
    prev_by_tag: HashMap<u32, u64>,
    occurrence: HashMap<(u32, u64, u64), u64>,
}

/// Converts one execution's raw feedback into the uniform signal list:
/// kcov blocks verbatim, plus directional pair-hashes of the HAL's
/// specialized syscall ID sequence (when `hal_coverage` is enabled).
pub fn signals_from_execution(
    kcov: &[Block],
    hal_events: &[SyscallEvent],
    table: &mut SyscallIdTable,
    hal_coverage: bool,
) -> Vec<Signal> {
    let mut out = Vec::new();
    signals_from_execution_into(
        kcov,
        hal_events,
        table,
        hal_coverage,
        &mut SignalScratch::default(),
        &mut out,
    );
    out
}

/// Buffer-reusing form of [`signals_from_execution`]: clears and fills
/// `out`, borrowing hash-map capacity from `scratch`. The fuzzing engine
/// owns one scratch + output pair and threads them through every
/// execution.
pub fn signals_from_execution_into(
    kcov: &[Block],
    hal_events: &[SyscallEvent],
    table: &mut SyscallIdTable,
    hal_coverage: bool,
    scratch: &mut SignalScratch,
    out: &mut Vec<Signal>,
) {
    out.clear();
    out.extend(kcov.iter().map(|b| Signal(b.0 & !HAL_TAG)));
    if hal_coverage {
        // Chain specialized IDs *per HAL service*: a service's internal
        // syscall order is a function of its state machine, so new pairs
        // mean genuinely new HAL behaviour — whereas cross-service
        // interleaving is an artifact of payload order and would flood
        // the signal space with noise.
        scratch.prev_by_tag.clear();
        scratch.occurrence.clear();
        for event in hal_events {
            let simkernel::trace::Origin::Hal(tag) = event.origin else { continue };
            let id = u64::from(table.id_of(event));
            let prev = scratch.prev_by_tag.entry(tag).or_insert(0xFFFF_FFFF);
            // The n-th occurrence of a pair (capped) is its own signal, so
            // repetition ladders — e.g. one more buffer queued than ever
            // before — register as new HAL behaviour even when the kernel
            // blocks they touch are saturated.
            let count = scratch.occurrence.entry((tag, *prev, id)).or_insert(0);
            *count += 1;
            let pair = mix64(
                (u64::from(tag) << 40)
                    ^ prev.wrapping_mul(0x1_0000_0001)
                    ^ id.wrapping_mul(0x9E37_79B9)
                    ^ ((*count).min(8) << 52),
            );
            out.push(Signal(pair | HAL_TAG));
            *prev = id;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkernel::trace::Origin;

    fn ev(nr: SyscallNr, critical: u64) -> SyscallEvent {
        SyscallEvent { origin: Origin::Hal(1), nr, critical, path: None, ok: true }
    }

    #[test]
    fn table_specializes_ioctls_but_not_reads() {
        let mut t = SyscallIdTable::new();
        let a = t.id_of(&ev(SyscallNr::Ioctl, 0x100));
        let b = t.id_of(&ev(SyscallNr::Ioctl, 0x200));
        let c = t.id_of(&ev(SyscallNr::Ioctl, 0x100));
        assert_ne!(a, b);
        assert_eq!(a, c);
        let r1 = t.id_of(&ev(SyscallNr::Read, 11));
        let r2 = t.id_of(&ev(SyscallNr::Read, 99));
        assert_eq!(r1, r2, "read is not specialized by critical arg");
    }

    #[test]
    fn compile_covers_all_driver_ioctls() {
        let mut device = simdevice::catalog::device_a1().boot();
        let table = SyscallIdTable::compile(device.kernel());
        let total_ioctls: usize = device
            .kernel()
            .device_nodes()
            .iter()
            .map(|n| device.kernel().device_api(n).unwrap().ioctls.len())
            .sum();
        assert_eq!(table.len(), SyscallNr::all().len() + total_ioctls);
    }

    #[test]
    fn directional_coverage_distinguishes_order() {
        let mut t = SyscallIdTable::new();
        let seq_a = [ev(SyscallNr::Ioctl, 1), ev(SyscallNr::Ioctl, 2)];
        let seq_b = [ev(SyscallNr::Ioctl, 2), ev(SyscallNr::Ioctl, 1)];
        let sig_a = signals_from_execution(&[], &seq_a, &mut t, true);
        let sig_b = signals_from_execution(&[], &seq_b, &mut t, true);
        assert_ne!(sig_a, sig_b, "order must matter (directional)");
        let mut set = SignalSet::new();
        assert_eq!(set.merge(&sig_a), 2);
        assert!(set.count_new(&sig_b) > 0);
    }

    #[test]
    fn hal_signals_do_not_count_as_kernel_blocks() {
        let mut t = SyscallIdTable::new();
        let sigs = signals_from_execution(
            &[Block(0x1000)],
            &[ev(SyscallNr::Ioctl, 7)],
            &mut t,
            true,
        );
        let mut set = SignalSet::new();
        set.merge(&sigs);
        assert_eq!(set.len(), 2);
        assert_eq!(set.kernel_blocks(), 1);
    }

    #[test]
    fn hal_coverage_flag_gates_directional_signals() {
        let mut t = SyscallIdTable::new();
        let sigs = signals_from_execution(&[], &[ev(SyscallNr::Ioctl, 7)], &mut t, false);
        assert!(sigs.is_empty());
    }

    #[test]
    fn covers_and_count_new() {
        let mut set = SignalSet::new();
        set.merge(&[Signal(1), Signal(2)]);
        assert!(set.covers(&[Signal(1)]));
        assert!(!set.covers(&[Signal(1), Signal(3)]));
        assert_eq!(set.count_new(&[Signal(2), Signal(3), Signal(3)]), 1);
    }

    #[test]
    fn into_variant_matches_allocating_variant() {
        let mut t1 = SyscallIdTable::new();
        let mut t2 = SyscallIdTable::new();
        let events =
            [ev(SyscallNr::Ioctl, 1), ev(SyscallNr::Ioctl, 2), ev(SyscallNr::Ioctl, 1)];
        let kcov = [Block(0x10), Block(0x20)];
        let plain = signals_from_execution(&kcov, &events, &mut t1, true);
        let mut scratch = SignalScratch::default();
        let mut out = vec![Signal(999)]; // must be cleared, not appended to
        signals_from_execution_into(&kcov, &events, &mut t2, true, &mut scratch, &mut out);
        assert_eq!(plain, out);
        // Reuse with different input must not leak prior chain state.
        let plain2 = signals_from_execution(&[], &events[..1], &mut t1, true);
        signals_from_execution_into(&[], &events[..1], &mut t2, true, &mut scratch, &mut out);
        assert_eq!(plain2, out);
    }

    #[test]
    fn bitmap_handles_slot_collisions_exactly() {
        // Two values with identical page+slot bits (low 18) but different
        // high bits: the second must spill to overflow, keep the count
        // exact, and both must remain individually queryable.
        let a = Signal(0x0000_0000_0002_1234);
        let b = Signal(0x0000_0001_0002_1234);
        let mut set = SignalSet::new();
        assert_eq!(set.merge(&[a]), 1);
        assert!(set.covers(&[a]));
        assert!(!set.covers(&[b]), "colliding value must not be conflated");
        assert_eq!(set.count_new(&[b]), 1);
        assert_eq!(set.merge(&[b, b]), 1);
        assert!(set.covers(&[a, b]));
        assert_eq!(set.len(), 2);
        assert_eq!(set.kernel_blocks(), 2);
        assert_eq!(set.merge(&[a, b]), 0);
        let mut kernel: Vec<u64> = set.iter_kernel().collect();
        kernel.sort_unstable();
        assert_eq!(kernel, vec![a.0, b.0]);
    }

    #[test]
    fn bitmap_partitions_by_hal_tag() {
        // Same low 63 bits, differing only in the HAL tag: distinct
        // signals living in distinct partitions, no overflow involved.
        let k = Signal(0x42);
        let h = Signal(0x42 | HAL_TAG);
        let mut set = SignalSet::new();
        assert_eq!(set.merge(&[k, h]), 2);
        assert_eq!(set.len(), 2);
        assert_eq!(set.kernel_blocks(), 1);
        assert_eq!(set.iter_kernel().collect::<Vec<_>>(), vec![k.0]);
        assert_eq!(set.count_new_split(&[k, h, Signal(0x43), Signal(0x43 | HAL_TAG)]), (2, 1));
    }

    /// Value mix engineered to exercise pages, slots, collisions, and the
    /// HAL partition — shared by the set-level differential tests.
    fn mixed_values(n: u64, salt: u64) -> Vec<u64> {
        (0..n)
            .map(|i| {
                let i = i + salt;
                match i % 5 {
                    0 => i * 7,
                    1 => (i << 18) | (i & 0xFFF),
                    2 => mix64(i) | HAL_TAG,
                    3 => (i & 0x3_FFFF) | (i << 40),
                    _ => mix64(i) & !HAL_TAG,
                }
            })
            .collect()
    }

    #[test]
    fn merge_set_matches_per_signal_merge() {
        for (salt_a, salt_b) in [(0, 0), (0, 500), (3, 4000)] {
            let mut a = SignalSet::new();
            a.merge(&mixed_values(2_000, salt_a).iter().map(|&v| Signal(v)).collect::<Vec<_>>());
            let b_vals: Vec<Signal> =
                mixed_values(2_000, salt_b).iter().map(|&v| Signal(v)).collect();
            let mut b = SignalSet::new();
            b.merge(&b_vals);

            let mut reference = a.clone();
            let want_new = reference.merge(&b_vals);
            let got_new = a.merge_set(&b);
            assert_eq!(got_new, want_new, "salts {salt_a}/{salt_b}");
            assert_eq!(a.len(), reference.len());
            assert_eq!(a.kernel_blocks(), reference.kernel_blocks());
            for &s in &b_vals {
                assert!(a.covers(&[s]));
            }
        }
    }

    #[test]
    fn diff_into_matches_hashset_difference() {
        let all: Vec<u64> = mixed_values(3_000, 11);
        let (base_vals, extra_vals) = all.split_at(1_800);
        let mut base = SignalSet::new();
        base.merge(&base_vals.iter().map(|&v| Signal(v)).collect::<Vec<_>>());
        let mut full = base.clone();
        full.merge(&extra_vals.iter().map(|&v| Signal(v)).collect::<Vec<_>>());

        let mut delta = vec![Signal(123)]; // must be cleared, not appended to
        full.diff_into(&base, &mut delta);
        let base_set: HashSet<u64> = base_vals.iter().copied().collect();
        let mut want: Vec<u64> =
            extra_vals.iter().copied().filter(|v| !base_set.contains(v)).collect();
        want.sort_unstable();
        want.dedup();
        let got: Vec<u64> = delta.iter().map(|s| s.0).collect();
        assert_eq!(got, want, "word-level diff equals the set difference, sorted");

        // Shipping the delta reconstructs the full set on the far side.
        let mut rebuilt = base.clone();
        rebuilt.merge(&delta);
        assert_eq!(rebuilt.len(), full.len());
        assert_eq!(rebuilt.kernel_blocks(), full.kernel_blocks());
        full.diff_into(&rebuilt, &mut delta);
        assert!(delta.is_empty(), "no residual delta after reconstruction");
    }

    #[test]
    fn page_diff_into_matches_iter_difference() {
        let mut a = SignalPartition::default();
        let mut b = SignalPartition::default();
        for v in 0..200u64 {
            a.insert(v * 3);
            if v % 2 == 0 {
                b.insert(v * 3);
            }
        }
        let (pa, pb) = (a.pages[0].as_deref().unwrap(), b.pages[0].as_deref());
        let mut delta = Vec::new();
        pa.diff_into(pb, &mut |v| delta.push(v));
        let want: Vec<u64> = pa.iter().filter(|v| !b.contains(*v)).collect();
        assert_eq!(delta, want);
        let mut all = Vec::new();
        pa.diff_into(None, &mut |v| all.push(v));
        assert_eq!(all, pa.iter().collect::<Vec<_>>(), "diff against nothing is the full page");
    }

    #[test]
    fn diff_into_sees_owner_collisions() {
        // a and b share page+slot bits; a sits in the page slot of both
        // sets, so the bit-level diff alone would miss b. The owner-word
        // pass must surface it.
        let a = Signal(0x0000_0000_0002_1234);
        let b = Signal(0x0000_0001_0002_1234);
        let mut base = SignalSet::new();
        base.merge(&[a]);
        let mut full = SignalSet::new();
        full.merge(&[a, b]);
        let mut delta = Vec::new();
        full.diff_into(&base, &mut delta);
        assert_eq!(delta, vec![b]);
        let mut other = SignalSet::new();
        other.merge(&[b]);
        let mut set = SignalSet::new();
        set.merge(&[a]);
        assert_eq!(set.merge_set(&other), 1);
        assert!(set.covers(&[a, b]));
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn bitmap_matches_hashset_reference() {
        // Differential check against a reference HashSet over a value mix
        // engineered to exercise pages, slots, and collisions.
        let values: Vec<u64> = (0..4_000u64)
            .map(|i| match i % 4 {
                0 => i * 7,                          // dense low kernel blocks
                1 => (i << 18) | (i & 0xFFF),        // page-colliding highs
                2 => mix64(i) | HAL_TAG,             // uniform HAL hashes
                _ => (i & 0x3_FFFF) | (i << 40),     // slot-colliding highs
            })
            .collect();
        let mut set = SignalSet::new();
        let mut reference: HashSet<u64> = HashSet::new();
        for chunk in values.chunks(97) {
            let sigs: Vec<Signal> = chunk.iter().map(|&v| Signal(v)).collect();
            let distinct_new: HashSet<u64> =
                chunk.iter().copied().filter(|v| !reference.contains(v)).collect();
            assert_eq!(set.count_new(&sigs), distinct_new.len());
            assert_eq!(set.merge(&sigs), distinct_new.len());
            reference.extend(chunk.iter().copied());
            assert_eq!(set.len(), reference.len());
            assert_eq!(
                set.kernel_blocks(),
                reference.iter().filter(|&&v| v & HAL_TAG == 0).count()
            );
        }
        for &v in &values {
            assert!(set.covers(&[Signal(v)]));
        }
        let mut via_iter: Vec<u64> = set.iter_kernel().collect();
        via_iter.sort_unstable();
        let mut expect: Vec<u64> =
            reference.iter().copied().filter(|&v| v & HAL_TAG == 0).collect();
        expect.sort_unstable();
        assert_eq!(via_iter, expect);
    }
}
