//! The fleet events/metrics bus: shard worker threads push
//! [`FleetEvent`]s onto an mpsc channel while they run; the orchestrator
//! (and the `fleet` bench binary) drains them into a [`FleetStats`]
//! summary after each campaign. Senders are cheap clones, so the bus adds
//! no shared-lock contention to the fuzzing hot path.

use crate::report::ascii_table;
use crate::supervisor::FaultCounters;
use droidfuzz_analysis::LintCounters;
use std::sync::mpsc::{channel, Receiver, Sender};

/// One telemetry event on the fleet bus.
#[derive(Debug, Clone, PartialEq)]
pub enum FleetEvent {
    /// A shard booted its engine (and possibly restored hub seeds).
    ShardStarted {
        /// Shard index.
        shard: usize,
        /// Seeds imported from the hub at start (resume path).
        restored_seeds: usize,
    },
    /// Periodic per-shard progress, emitted at the end of every slice.
    Heartbeat {
        /// Shard index.
        shard: usize,
        /// Sync round the slice belonged to.
        round: usize,
        /// Shard-local virtual clock, µs.
        clock_us: u64,
        /// Test cases executed so far.
        executions: u64,
        /// Seeds currently in the shard corpus.
        corpus_len: usize,
        /// Distinct kernel blocks observed by the shard.
        coverage: usize,
        /// Distinct crashes in the shard's database.
        crashes: usize,
    },
    /// The orchestrator finished a corpus/relation sync round.
    SyncCompleted {
        /// Round index.
        round: usize,
        /// New unique seeds accepted by the hub this round.
        published: usize,
        /// Seeds delivered to shards this round.
        pulled: usize,
        /// Live hub corpus size after the round.
        hub_seeds: usize,
        /// Edges in the hub's merged relation graph.
        hub_edges: usize,
        /// Fleet-wide distinct kernel blocks.
        union_coverage: usize,
        /// Worker threads that ran the round's shard slices.
        workers: usize,
    },
    /// The orchestrator replaced a shard's lost device with a fresh
    /// engine restored from hub state.
    ShardRestarted {
        /// Shard index.
        shard: usize,
        /// Sync round the loss was detected in.
        round: usize,
        /// Lost-device restarts on this shard so far (including this one).
        restarts: u32,
    },
    /// A flapping shard was benched for a window of sync rounds.
    ShardQuarantined {
        /// Shard index.
        shard: usize,
        /// Sync round the quarantine was imposed in.
        round: usize,
        /// First round the shard runs again.
        until_round: usize,
    },
    /// A shard completed its campaign.
    ShardFinished {
        /// Shard index.
        shard: usize,
        /// Final shard-local virtual clock, µs.
        clock_us: u64,
        /// Total test cases executed.
        executions: u64,
        /// Final distinct kernel blocks.
        coverage: usize,
        /// Final distinct crashes.
        crashes: usize,
        /// Fault/recovery counters accumulated across the shard's engines.
        faults: FaultCounters,
        /// Lint-gate counters accumulated across the shard's engines.
        lint: LintCounters,
        /// Lost-device restarts performed on the shard.
        restarts: u32,
    },
}

/// Cloneable sending half of the bus, handed to each shard thread.
#[derive(Debug, Clone)]
pub struct EventBus {
    tx: Sender<FleetEvent>,
}

impl EventBus {
    /// Creates a bus, returning the sender and the draining receiver.
    pub fn new() -> (Self, Receiver<FleetEvent>) {
        let (tx, rx) = channel();
        (Self { tx }, rx)
    }

    /// Publishes an event. Errors (receiver dropped) are ignored: a
    /// shard must never fail because nobody is listening to telemetry.
    pub fn emit(&self, event: FleetEvent) {
        let _ = self.tx.send(event);
    }
}

/// Aggregated per-shard metrics, built by draining the bus.
#[derive(Debug, Clone, Default)]
pub struct ShardStats {
    /// Shard index.
    pub shard: usize,
    /// Heartbeats received.
    pub heartbeats: usize,
    /// Latest execution count.
    pub executions: u64,
    /// Latest virtual clock, µs.
    pub clock_us: u64,
    /// Latest corpus size.
    pub corpus_len: usize,
    /// Latest distinct-block coverage.
    pub coverage: usize,
    /// Latest distinct crash count.
    pub crashes: usize,
    /// Seeds restored from the hub at start.
    pub restored_seeds: usize,
    /// Fault/recovery counters (from the final `ShardFinished`).
    pub faults: FaultCounters,
    /// Lint-gate counters (from the final `ShardFinished`).
    pub lint: LintCounters,
    /// Lost-device restarts performed on the shard.
    pub restarts: u32,
    /// Flap quarantines imposed on the shard.
    pub quarantines: u32,
}

impl ShardStats {
    /// Executions per virtual second — the throughput the paper's
    /// "executions" columns normalize by campaign length.
    pub fn execs_per_vsec(&self) -> f64 {
        if self.clock_us == 0 {
            0.0
        } else {
            self.executions as f64 / (self.clock_us as f64 / 1e6)
        }
    }
}

/// Fleet-wide summary drained from the event bus.
#[derive(Debug, Clone, Default)]
pub struct FleetStats {
    /// Per-shard aggregates, indexed by shard id.
    pub shards: Vec<ShardStats>,
    /// Sync rounds completed.
    pub sync_rounds: usize,
    /// Unique seeds the hub accepted across all rounds.
    pub seeds_published: usize,
    /// Seed deliveries to shards across all rounds.
    pub seeds_pulled: usize,
    /// Final live hub corpus size.
    pub hub_seeds: usize,
    /// Final merged relation-graph edge count.
    pub hub_edges: usize,
    /// Final fleet-wide distinct kernel blocks.
    pub union_coverage: usize,
    /// Worker threads the orchestrator ran shard slices on.
    pub workers: usize,
    /// Fault/recovery counters summed across shards (this run).
    pub fault_totals: FaultCounters,
    /// Lint-gate counters summed across shards (this run).
    pub lint_totals: LintCounters,
    /// Lost-device shard restarts across the fleet.
    pub shard_restarts: u64,
    /// Flap quarantines imposed across the fleet.
    pub shard_quarantines: u64,
    /// Sync rounds that skipped the full snapshot re-serialization
    /// (checkpoint cadence; set by the orchestrator, not the bus).
    pub snapshots_skipped: u64,
    /// Wire-layer counters (all-zero for a purely local campaign; set
    /// by the hub server / worker runtime, not the bus).
    pub net_totals: crate::net::NetCounters,
    /// Total events observed on the bus.
    pub events: u64,
}

impl FleetStats {
    /// Drains every event currently buffered on `rx` into a summary for
    /// `shard_count` shards.
    pub fn drain(rx: &Receiver<FleetEvent>, shard_count: usize) -> Self {
        let mut stats = FleetStats {
            shards: (0..shard_count)
                .map(|shard| ShardStats { shard, ..ShardStats::default() })
                .collect(),
            ..FleetStats::default()
        };
        while let Ok(event) = rx.try_recv() {
            stats.events += 1;
            match event {
                FleetEvent::ShardStarted { shard, restored_seeds } => {
                    if let Some(s) = stats.shards.get_mut(shard) {
                        s.restored_seeds = restored_seeds;
                    }
                }
                FleetEvent::Heartbeat {
                    shard,
                    clock_us,
                    executions,
                    corpus_len,
                    coverage,
                    crashes,
                    ..
                } => {
                    if let Some(s) = stats.shards.get_mut(shard) {
                        s.heartbeats += 1;
                        s.executions = executions;
                        s.clock_us = clock_us;
                        s.corpus_len = corpus_len;
                        s.coverage = coverage;
                        s.crashes = crashes;
                    }
                }
                FleetEvent::SyncCompleted {
                    round,
                    published,
                    pulled,
                    hub_seeds,
                    hub_edges,
                    union_coverage,
                    workers,
                } => {
                    stats.sync_rounds = stats.sync_rounds.max(round + 1);
                    stats.seeds_published += published;
                    stats.seeds_pulled += pulled;
                    stats.hub_seeds = hub_seeds;
                    stats.hub_edges = hub_edges;
                    stats.union_coverage = union_coverage;
                    stats.workers = workers;
                }
                FleetEvent::ShardRestarted { shard, restarts, .. } => {
                    if let Some(s) = stats.shards.get_mut(shard) {
                        s.restarts = restarts;
                    }
                }
                FleetEvent::ShardQuarantined { shard, .. } => {
                    if let Some(s) = stats.shards.get_mut(shard) {
                        s.quarantines += 1;
                    }
                }
                FleetEvent::ShardFinished {
                    shard,
                    clock_us,
                    executions,
                    coverage,
                    crashes,
                    faults,
                    lint,
                    restarts,
                } => {
                    if let Some(s) = stats.shards.get_mut(shard) {
                        s.executions = executions;
                        s.clock_us = clock_us;
                        s.coverage = coverage;
                        s.crashes = crashes;
                        s.faults = faults;
                        s.lint = lint;
                        s.restarts = restarts;
                    }
                }
            }
        }
        for s in &stats.shards {
            stats.fault_totals.absorb(&s.faults);
            stats.lint_totals.absorb(&s.lint);
            stats.shard_restarts += u64::from(s.restarts);
            stats.shard_quarantines += u64::from(s.quarantines);
        }
        stats
    }

    /// Renders the per-shard metrics as an ASCII table plus a fleet
    /// summary line — the `fleet` bench binary's main output.
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .shards
            .iter()
            .map(|s| {
                vec![
                    s.shard.to_string(),
                    s.executions.to_string(),
                    format!("{:.1}", s.execs_per_vsec()),
                    s.coverage.to_string(),
                    s.corpus_len.to_string(),
                    s.crashes.to_string(),
                    s.heartbeats.to_string(),
                    s.faults.injected.to_string(),
                    s.restarts.to_string(),
                ]
            })
            .collect();
        let mut out = ascii_table(
            &[
                "shard",
                "execs",
                "execs/vsec",
                "coverage",
                "corpus",
                "crashes",
                "heartbeats",
                "faults",
                "restarts",
            ],
            &rows,
        );
        out.push_str(&format!(
            "sync rounds: {}  workers: {}  hub seeds: {} live / {} published  pulls: {}  hub edges: {}  union coverage: {}\n",
            self.sync_rounds,
            self.workers,
            self.hub_seeds,
            self.seeds_published,
            self.seeds_pulled,
            self.hub_edges,
            self.union_coverage,
        ));
        out.push_str(&format!(
            "faults injected: {}  transient retries: {}  hangs: {}  device losses: {}  reprovisions: {}  shard restarts: {}  quarantines: {}\n",
            self.fault_totals.injected,
            self.fault_totals.transient_retries,
            self.fault_totals.hangs,
            self.fault_totals.device_lost,
            self.fault_totals.reprovisions,
            self.shard_restarts,
            self.shard_quarantines,
        ));
        out.push_str(&format!(
            "lint rejected: {}  lint repaired: {}  absint rejected: {}  absint repaired: {}  snapshots skipped: {}\n",
            self.lint_totals.rejected,
            self.lint_totals.repaired,
            self.lint_totals.absint_rejected,
            self.lint_totals.absint_repaired,
            self.snapshots_skipped,
        ));
        if self.net_totals.total() > 0 {
            out.push_str(&format!(
                "net frames: {} sent / {} received  dups dropped: {}  reconnects: {}  sessions: {}\n",
                self.net_totals.frames_sent,
                self.net_totals.frames_received,
                self.net_totals.dup_frames,
                self.net_totals.reconnects,
                self.net_totals.sessions,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drain_aggregates_per_shard_and_fleet() {
        let (bus, rx) = EventBus::new();
        bus.emit(FleetEvent::ShardStarted { shard: 0, restored_seeds: 3 });
        bus.emit(FleetEvent::Heartbeat {
            shard: 0,
            round: 0,
            clock_us: 2_000_000,
            executions: 10,
            corpus_len: 4,
            coverage: 100,
            crashes: 1,
        });
        bus.emit(FleetEvent::Heartbeat {
            shard: 1,
            round: 0,
            clock_us: 1_000_000,
            executions: 5,
            corpus_len: 2,
            coverage: 50,
            crashes: 0,
        });
        bus.emit(FleetEvent::SyncCompleted {
            round: 0,
            published: 6,
            pulled: 4,
            hub_seeds: 6,
            hub_edges: 9,
            union_coverage: 120,
            workers: 2,
        });
        bus.emit(FleetEvent::ShardRestarted { shard: 1, round: 0, restarts: 1 });
        bus.emit(FleetEvent::ShardQuarantined { shard: 1, round: 0, until_round: 2 });
        let finished_faults =
            FaultCounters { injected: 7, device_lost: 1, reprovisions: 1, ..Default::default() };
        bus.emit(FleetEvent::ShardFinished {
            shard: 1,
            clock_us: 3_000_000,
            executions: 8,
            coverage: 60,
            crashes: 0,
            faults: finished_faults,
            lint: LintCounters { rejected: 2, repaired: 3, absint_rejected: 1, absint_repaired: 4 },
            restarts: 1,
        });
        let stats = FleetStats::drain(&rx, 2);
        assert_eq!(stats.events, 7);
        assert_eq!(stats.shards[0].executions, 10);
        assert_eq!(stats.shards[0].restored_seeds, 3);
        assert_eq!(stats.shards[1].coverage, 60);
        assert_eq!(stats.shards[1].faults.injected, 7);
        assert_eq!(stats.shards[1].restarts, 1);
        assert_eq!(stats.shards[1].quarantines, 1);
        assert_eq!(stats.sync_rounds, 1);
        assert_eq!(stats.seeds_published, 6);
        assert_eq!(stats.union_coverage, 120);
        assert_eq!(stats.workers, 2);
        assert_eq!(stats.fault_totals.injected, 7);
        assert_eq!(stats.shards[1].lint.repaired, 3);
        assert_eq!(stats.lint_totals.rejected, 2);
        assert_eq!(stats.lint_totals.repaired, 3);
        assert_eq!(stats.lint_totals.absint_rejected, 1);
        assert_eq!(stats.lint_totals.absint_repaired, 4);
        assert_eq!(stats.shard_restarts, 1);
        assert_eq!(stats.shard_quarantines, 1);
        assert!((stats.shards[0].execs_per_vsec() - 5.0).abs() < 1e-9);
        let table = stats.render();
        assert!(table.contains("execs/vsec"));
        assert!(table.contains("union coverage: 120"));
        assert!(table.contains("faults injected: 7"));
        assert!(table.contains("shard restarts: 1"));
        assert!(table.contains("lint rejected: 2  lint repaired: 3  absint rejected: 1  absint repaired: 4"));
    }

    #[test]
    fn emit_without_receiver_is_silent() {
        let (bus, rx) = EventBus::new();
        drop(rx);
        bus.emit(FleetEvent::ShardStarted { shard: 0, restored_seeds: 0 });
    }
}
