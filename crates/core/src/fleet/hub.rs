//! The corpus hub: the fleet's shared persistent data (§IV-A scaled to
//! many engines). Shards publish seeds that earned new signals and pull
//! their peers' seeds through the same text format the daemon uses on
//! disk, so hub traffic is exactly the corpus interchange format.
//!
//! The hub also owns the fleet-merged relation graph, the deduplicated
//! fleet crash database, and the union coverage series — everything the
//! snapshot serializes.

use crate::crashes::{CrashDb, CrashRecord};
use crate::relation::RelationGraph;
use crate::stats::Series;
use simkernel::coverage::{Block, CoverageMap};
use std::collections::BTreeSet;

/// Origin id used for seeds restored from a snapshot (no shard published
/// them in this process, so every shard may pull them).
pub const HUB_ORIGIN: usize = usize::MAX;

/// One published seed, stored in interchange-text form so the hub needs
/// no description table of its own.
#[derive(Debug, Clone)]
pub struct HubSeed {
    /// The program lines (`r<n> = call(...)`), newline-terminated.
    pub body: String,
    /// The admission score the publishing shard reported.
    pub signals: usize,
    /// Monotonic publication number; pull cursors compare against it.
    pub seq: u64,
    /// Publishing shard (or [`HUB_ORIGIN`] for snapshot restores) — a
    /// shard never pulls its own seeds back.
    pub origin: usize,
}

/// The fleet corpus hub.
#[derive(Debug)]
pub struct CorpusHub {
    capacity: usize,
    /// Live seeds, ascending `seq`.
    live: Vec<HubSeed>,
    /// Bodies ever accepted — evicted seeds stay here so low-value seeds
    /// cannot churn back in from a peer's republish.
    seen: BTreeSet<String>,
    next_seq: u64,
    accepted_total: usize,
    graph: Option<RelationGraph>,
    /// Crashes restored from a snapshot; per-round rebuilds start here.
    baseline_crashes: CrashDb,
    crashes: CrashDb,
    coverage: CoverageMap,
    series: Series,
}

impl CorpusHub {
    /// Creates an empty hub holding at most `capacity` live seeds.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            live: Vec::new(),
            seen: BTreeSet::new(),
            next_seq: 0,
            accepted_total: 0,
            graph: None,
            baseline_crashes: CrashDb::new(),
            crashes: CrashDb::new(),
            coverage: CoverageMap::new(),
            series: Series::new(),
        }
    }

    /// Publishes a shard's corpus dump (the
    /// [`Corpus::export`](crate::corpus::Corpus::export) text
    /// format). Seeds are deduplicated by program body; a body seen
    /// before — even one since evicted — is not re-accepted, and a live
    /// duplicate keeps the larger signal score. Returns newly accepted
    /// seeds.
    pub fn publish_corpus(&mut self, origin: usize, corpus_text: &str) -> usize {
        let mut accepted = 0;
        for chunk in corpus_text.split("# seed ") {
            if chunk.trim().is_empty() {
                continue;
            }
            let body: String = chunk
                .lines()
                .filter(|l| l.starts_with('r'))
                .map(|l| format!("{l}\n"))
                .collect();
            if body.is_empty() {
                continue;
            }
            let signals = chunk
                .lines()
                .next()
                .and_then(|header| header.split("signals=").nth(1))
                .and_then(|v| v.trim().parse::<usize>().ok())
                .unwrap_or(1);
            if self.seen.contains(&body) {
                if let Some(live) = self.live.iter_mut().find(|s| s.body == body) {
                    live.signals = live.signals.max(signals);
                }
                continue;
            }
            self.seen.insert(body.clone());
            let seq = self.next_seq;
            self.next_seq += 1;
            self.live.push(HubSeed { body, signals, seq, origin });
            self.accepted_total += 1;
            accepted += 1;
            while self.live.len() > self.capacity {
                // Never evict the seed just pushed (last slot): a full hub
                // must still rotate, not bounce every newcomer.
                let victim = self
                    .live
                    .iter()
                    .take(self.live.len() - 1)
                    .enumerate()
                    .min_by_key(|(_, s)| (s.signals, s.seq))
                    .map(|(i, _)| i)
                    .expect("non-empty");
                self.live.remove(victim);
            }
        }
        accepted
    }

    /// Renders the live seeds published after `cursor` by shards other
    /// than `origin`, in interchange-text form. Returns
    /// `(text, new cursor, seed count)`; feeding the cursor back on the
    /// next pull makes deliveries incremental.
    pub fn pull_corpus(&self, origin: usize, cursor: u64) -> (String, u64, usize) {
        let mut text = String::new();
        let mut count = 0;
        for seed in &self.live {
            if seed.seq >= cursor && seed.origin != origin {
                text.push_str(&format!("# seed {count} signals={}\n{}\n", seed.signals, seed.body));
                count += 1;
            }
        }
        (text, self.next_seq, count)
    }

    /// Every live seed in interchange-text form (snapshot body).
    pub fn corpus_text(&self) -> String {
        let mut text = String::new();
        for (i, seed) in self.live.iter().enumerate() {
            text.push_str(&format!("# seed {i} signals={}\n{}\n", seed.signals, seed.body));
        }
        text
    }

    /// Live seed count.
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// Whether the hub holds no live seed.
    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }

    /// Seeds accepted over the hub's lifetime (including evicted ones).
    pub fn accepted_total(&self) -> usize {
        self.accepted_total
    }

    /// The pull cursor pointing past every current seed.
    pub fn tip(&self) -> u64 {
        self.next_seq
    }

    /// Live seeds published at or after `cursor`, ascending `seq` — the
    /// journal writer mirrors these to disk and advances its cursor to
    /// [`tip`](Self::tip).
    pub fn seeds_since(&self, cursor: u64) -> impl Iterator<Item = &HubSeed> {
        self.live.iter().filter(move |s| s.seq >= cursor)
    }

    /// Applies one shard's batched round update ([`ShardUpdate`]): corpus
    /// delta, relation graph (when the shard's changed), and new coverage
    /// blocks, in one call. The orchestrator applies updates in shard-id
    /// order, which is what keeps a parallel fleet deterministic.
    ///
    /// Returns the seeds newly accepted from the delta.
    ///
    /// [`ShardUpdate`]: super::shard::ShardUpdate
    pub fn apply_update(&mut self, update: &super::shard::ShardUpdate) -> usize {
        let accepted = self.publish_corpus(update.shard, &update.corpus_delta);
        if let Some(graph) = &update.relations {
            self.publish_relations(graph);
        }
        self.publish_coverage(update.new_blocks.iter().copied());
        accepted
    }

    /// Merges a shard's relation graph into the fleet graph (Eq. 1
    /// normalization preserved by [`RelationGraph::merge_from`]).
    pub fn publish_relations(&mut self, peer: &RelationGraph) {
        match &mut self.graph {
            Some(graph) => graph.merge_from(peer),
            None => self.graph = Some(peer.clone()),
        }
    }

    /// The fleet-merged relation graph, once any shard has published.
    pub fn relations(&self) -> Option<&RelationGraph> {
        self.graph.as_ref()
    }

    /// Installs a restored relation graph (snapshot resume).
    pub fn set_relations(&mut self, graph: RelationGraph) {
        self.graph = Some(graph);
    }

    /// Rebuilds the fleet crash database for the current round: snapshot
    /// baseline plus every shard's current records. Rebuilt from scratch
    /// each round so republishing a shard's full database never double
    /// counts.
    pub fn sync_crashes<'a>(&mut self, shard_dbs: impl IntoIterator<Item = &'a CrashDb>) {
        let mut db = self.baseline_crashes.clone();
        for shard_db in shard_dbs {
            for record in shard_db.records() {
                db.merge_record(record);
            }
        }
        self.crashes = db;
    }

    /// The fleet crash database as of the last [`sync_crashes`].
    ///
    /// [`sync_crashes`]: Self::sync_crashes
    pub fn crashes(&self) -> &CrashDb {
        &self.crashes
    }

    /// Seeds the crash baseline from snapshot records (resume).
    pub fn set_baseline_crashes(&mut self, records: &[CrashRecord]) {
        let mut db = CrashDb::new();
        for record in records {
            db.merge_record(record);
        }
        self.crashes = db.clone();
        self.baseline_crashes = db;
    }

    /// Folds shard-observed kernel blocks into the fleet union coverage.
    pub fn publish_coverage(&mut self, blocks: impl IntoIterator<Item = Block>) {
        self.coverage.extend(blocks);
    }

    /// Distinct kernel blocks observed fleet-wide.
    pub fn union_coverage(&self) -> usize {
        self.coverage.len()
    }

    /// The union coverage blocks, sorted (snapshot body).
    pub fn coverage_blocks(&self) -> Vec<Block> {
        // The paged-bitmap map iterates in ascending order already.
        self.coverage.iter().collect()
    }

    /// Appends a `(fleet clock, union coverage)` sample to the series.
    pub fn record_sample(&mut self, clock_us: u64) {
        self.series.push(clock_us, self.coverage.len() as f64);
    }

    /// The union-coverage-over-time series.
    pub fn series(&self) -> &Series {
        &self.series
    }

    /// Restores series points from a snapshot (resume). Points come from
    /// external text, so out-of-order timestamps are dropped rather than
    /// asserted on; returns how many points were rejected.
    pub fn restore_series(&mut self, points: &[(u64, f64)]) -> usize {
        let mut rejected = 0;
        for &(t, v) in points {
            if !self.series.push_monotonic(t, v) {
                rejected += 1;
            }
        }
        rejected
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::Corpus;
    use fuzzlang::desc::{CallDesc, DescTable};

    fn table() -> DescTable {
        let mut t = DescTable::new();
        t.add(CallDesc::syscall_open("/dev/x"));
        t.add(CallDesc::syscall_open("/dev/y"));
        t
    }

    fn seed_text(dev: &str, signals: usize) -> String {
        format!("# seed 0 signals={signals}\nr0 = openat${dev}()\n\n")
    }

    #[test]
    fn publish_deduplicates_by_body() {
        let mut hub = CorpusHub::new(16);
        assert_eq!(hub.publish_corpus(0, &seed_text("/dev/x", 5)), 1);
        assert_eq!(hub.publish_corpus(1, &seed_text("/dev/x", 9)), 0, "same body, no new seed");
        assert_eq!(hub.publish_corpus(1, &seed_text("/dev/y", 2)), 1);
        assert_eq!(hub.len(), 2);
        assert_eq!(hub.accepted_total(), 2);
    }

    #[test]
    fn pull_is_incremental_and_skips_own_seeds() {
        let mut hub = CorpusHub::new(16);
        hub.publish_corpus(0, &seed_text("/dev/x", 5));
        hub.publish_corpus(1, &seed_text("/dev/y", 3));
        // Shard 0 sees only shard 1's seed.
        let (text, cursor, n) = hub.pull_corpus(0, 0);
        assert_eq!(n, 1);
        assert!(text.contains("/dev/y") && !text.contains("/dev/x"));
        // Nothing new after the cursor advances.
        let (_, _, n2) = hub.pull_corpus(0, cursor);
        assert_eq!(n2, 0);
        // Snapshot-restored seeds are pulled by everyone.
        let mut hub2 = CorpusHub::new(16);
        hub2.publish_corpus(HUB_ORIGIN, &seed_text("/dev/x", 5));
        assert_eq!(hub2.pull_corpus(0, 0).2, 1);
    }

    #[test]
    fn pulled_text_reimports_into_a_corpus() {
        let mut hub = CorpusHub::new(16);
        hub.publish_corpus(0, &seed_text("/dev/x", 5));
        let (text, _, _) = hub.pull_corpus(1, 0);
        let t = table();
        let mut corpus = Corpus::new();
        assert_eq!(corpus.import(&text, &t), (1, 0));
    }

    #[test]
    fn eviction_bounds_live_seeds_and_blocks_churn() {
        let mut hub = CorpusHub::new(2);
        hub.publish_corpus(0, &seed_text("/dev/a", 1));
        hub.publish_corpus(0, &seed_text("/dev/b", 9));
        hub.publish_corpus(0, &seed_text("/dev/c", 5));
        assert_eq!(hub.len(), 2, "capacity enforced");
        let text = hub.corpus_text();
        assert!(!text.contains("/dev/a"), "lowest-signal seed evicted");
        assert!(text.contains("/dev/c"), "the just-published seed survives");
        // The evicted body cannot churn back in.
        assert_eq!(hub.publish_corpus(1, &seed_text("/dev/a", 1)), 0);
    }

    #[test]
    fn crash_sync_rebuilds_without_double_counting() {
        use simkernel::report::{BugKind, BugReport, Component};
        let mut shard_db = CrashDb::new();
        shard_db.record(
            &BugReport::with_title(BugKind::Warning, "WARNING in foo", Component::KernelDriver),
            10,
        );
        let mut hub = CorpusHub::new(4);
        hub.sync_crashes([&shard_db]);
        hub.sync_crashes([&shard_db]); // republish of the same database
        assert_eq!(hub.crashes().len(), 1);
        assert_eq!(hub.crashes().records()[0].count, 1, "rebuild, not accumulate");
    }

    #[test]
    fn restore_series_drops_backwards_points() {
        let mut hub = CorpusHub::new(4);
        assert_eq!(hub.restore_series(&[(100, 1.0), (50, 9.0), (200, 2.0)]), 1);
        assert_eq!(hub.series().points(), &[(100, 1.0), (200, 2.0)]);
    }

    #[test]
    fn coverage_union_and_series() {
        let mut hub = CorpusHub::new(4);
        hub.publish_coverage([Block(1), Block(2)]);
        hub.publish_coverage([Block(2), Block(3)]);
        assert_eq!(hub.union_coverage(), 3);
        hub.record_sample(100);
        assert_eq!(hub.series().points(), &[(100, 3.0)]);
        assert_eq!(hub.coverage_blocks(), vec![Block(1), Block(2), Block(3)]);
    }
}
