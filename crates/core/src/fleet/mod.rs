//! Fleet orchestration: sharded multi-engine campaigns with corpus sync,
//! relation-graph sync, checkpoint/resume, and a metrics bus.
//!
//! The paper's daemon (§IV-A) coordinates one fuzzing engine per attached
//! device and owns their persistent data. This module scales that design
//! to a *fleet*: `n` shards (engine + device model) fuzz concurrently,
//! and between virtual-time slices the orchestrator runs a sync round
//! through the [`CorpusHub`] — shards publish seeds that earned new
//! signals, pull their peers' seeds, and merge relation graphs under the
//! Eq. 1 normalization. At every checkpoint
//! ([`FleetConfig::checkpoint_interval_rounds`], plus the final round and
//! any kill) the hub state is serialized to a [`FleetSnapshot`], so a
//! killed campaign resumes from its last checkpoint — and with
//! [`Fleet::run_durable`] the rounds in between are covered too: a
//! [`FleetStore`] journals every round's hub deltas to a
//! [`StorageMedium`] and [`Fleet::resume_durable`] recovers snapshot +
//! journal prefix from disk after a `kill -9`.
//!
//! The fleet is also *self-healing*: every engine runs under the
//! [`Supervisor`](crate::supervisor::Supervisor), and a shard whose
//! device is permanently lost (injected `vanish` faults, exhausted
//! re-provisioning) is restarted at the next sync boundary with a fresh
//! engine restored from hub state — its corpus, relation graph, and
//! crashes were published the same round, so nothing is lost. A shard
//! that keeps losing devices ([`FleetConfig::flap_limit`] consecutive
//! losses) is quarantined for an exponentially growing window of rounds
//! before it may rejoin.
//!
//! Execution is parallel: each sync round, the shards are split into
//! [`FleetConfig::threads`] contiguous chunks and every chunk runs on a
//! `std::thread::scope` worker — the round boundary (the scope join) is
//! the only barrier. At the end of its slice each shard assembles a
//! batched [`ShardUpdate`] *on the worker thread* (corpus delta by
//! admission sequence, newly observed coverage blocks, and a relation
//! graph only when its revision moved), so the orchestrator's sequential
//! section is reduced to applying pre-built messages.
//!
//! Determinism: worker threads only ever touch their own shards, and all
//! hub traffic — applying the batched updates, crash sync, pulls, persist
//! sink calls — happens on the orchestrator thread in shard-index order
//! regardless of which worker finished first. Restarts and quarantines
//! also run on the orchestrator thread in shard order, and replacement
//! engines are seeded from `(shard, restarts)`, so a fixed `(seed, shard
//! count, fault profile)` produces identical results run-to-run and for
//! every `threads` value: `threads: 1` runs the shards sequentially in
//! ascending order and any other worker count is bit-identical to it.

pub mod events;
pub mod hub;
pub mod persist;
pub mod shard;
pub mod snapshot;

pub use events::{EventBus, FleetEvent, FleetStats, ShardStats};
pub use hub::{CorpusHub, HubSeed, HUB_ORIGIN};
pub use persist::{FleetPersist, FleetStore, DEFAULT_KEEP};
pub use shard::{Shard, ShardUpdate};
pub use snapshot::{FleetSnapshot, SNAPSHOT_HEADER};

use crate::config::FuzzerConfig;
use crate::crashes::CrashRecord;
use crate::engine::{FuzzingEngine, HOUR_US};
use crate::relation::RelationGraph;
use crate::stats::{mean_series, Series};
use crate::store::{RecoveryManager, RecoveryReport, StorageMedium, StoreCounters, StoreError};
use crate::supervisor::FaultCounters;
use droidfuzz_analysis::LintCounters;
use simdevice::firmware::FirmwareSpec;
use std::thread;

/// Fleet campaign parameters.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Number of shards (engines fuzzing concurrently).
    pub shards: usize,
    /// Campaign length in virtual hours (fleet clock, shared by shards).
    pub hours: f64,
    /// Virtual hours between sync rounds (also the checkpoint cadence).
    pub sync_interval_hours: f64,
    /// Whether shards pull from the hub. With `false` the shards run as
    /// independent repeats — the control arm for measuring sync speedup —
    /// while the hub still aggregates coverage, crashes, and snapshots.
    pub sync: bool,
    /// Live-seed bound on the hub corpus.
    pub hub_capacity: usize,
    /// Fault injection: stop after this many rounds *of this run*, as if
    /// the daemon were killed, leaving the snapshot behind for resume.
    pub kill_after_rounds: Option<usize>,
    /// Consecutive device losses before a shard is quarantined instead of
    /// immediately restarted (clamped to at least 1). Each quarantine
    /// benches the shard for `2^(quarantines-1)` sync rounds.
    pub flap_limit: u32,
    /// Sync rounds between full snapshot serializations (clamped to at
    /// least 1). Rounds in between skip the re-serialization entirely —
    /// the journal already carries their deltas — and are counted in
    /// [`FleetStats::snapshots_skipped`]. The final round and a
    /// `kill_after_rounds` kill always checkpoint.
    pub checkpoint_interval_rounds: usize,
    /// Worker threads per round: the shards are split into this many
    /// contiguous chunks, each run by one scoped thread. `0` (the
    /// default) means one worker per shard; `1` runs the shards
    /// sequentially in ascending order; any value is clamped to the shard
    /// count. Every setting produces bit-identical campaign results —
    /// the knob trades wall-clock speed only.
    pub threads: usize,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            shards: 4,
            hours: 1.0,
            sync_interval_hours: 0.25,
            sync: true,
            hub_capacity: 512,
            kill_after_rounds: None,
            flap_limit: 2,
            checkpoint_interval_rounds: 1,
            threads: 0,
        }
    }
}

/// Per-shard outcome of a fleet campaign.
#[derive(Debug, Clone)]
pub struct ShardOutcome {
    /// Shard index.
    pub shard: usize,
    /// Final distinct kernel blocks this shard observed.
    pub final_coverage: f64,
    /// Test cases this shard executed this run, across every engine it
    /// owned (lost-device restarts retire their counts into this total;
    /// resumes restart at 0).
    pub executions: u64,
    /// Fault/recovery counters across every engine the shard owned.
    pub faults: FaultCounters,
    /// Lost-device restarts performed on the shard this run.
    pub restarts: u32,
    /// Coverage-over-time on the fleet clock.
    pub series: Series,
    /// Titles of the crashes this shard found.
    pub crash_titles: Vec<String>,
}

/// Aggregate result of a fleet campaign.
#[derive(Debug, Clone)]
pub struct FleetResult {
    /// Table I device id.
    pub device_id: String,
    /// Variant label.
    pub fuzzer: String,
    /// Per-shard outcomes, indexed by shard id.
    pub shards: Vec<ShardOutcome>,
    /// Fleet-deduplicated crashes (includes any snapshot baseline).
    pub crashes: Vec<CrashRecord>,
    /// Distinct kernel blocks observed fleet-wide.
    pub union_coverage: usize,
    /// Executions across all shards (this run).
    pub executions: u64,
    /// Mean per-shard coverage series on the fleet clock.
    pub mean_series: Series,
    /// Hub union-coverage series (the fleet's headline curve).
    pub union_series: Series,
    /// Fault/recovery counters over the whole campaign, including any
    /// snapshot baseline carried across a kill/resume.
    pub fault_totals: FaultCounters,
    /// Lint-gate counters over the whole campaign, including any snapshot
    /// baseline carried across a kill/resume.
    pub lint_totals: LintCounters,
    /// Durability counters over the whole campaign, including any
    /// snapshot baseline carried across a kill/resume (all zero for an
    /// in-memory campaign except `snapshots_skipped`).
    pub store_totals: StoreCounters,
    /// Wire-layer counters over the whole campaign (all zero for a
    /// purely local campaign; a snapshot baseline carries them across a
    /// kill/resume).
    pub net_totals: crate::net::NetCounters,
    /// Metrics drained from the event bus.
    pub stats: FleetStats,
    /// Sync rounds completed over the campaign (including pre-resume).
    pub rounds_completed: usize,
    /// Fleet virtual clock reached, µs.
    pub clock_us: u64,
    /// Snapshot text as of the last completed round; feed to
    /// [`Fleet::resume`] to continue a killed campaign.
    pub snapshot: String,
    /// Whether the campaign ran to its full length (false after a
    /// `kill_after_rounds` fault injection).
    pub finished: bool,
}

impl FleetResult {
    /// Mean of the shards' final coverage values.
    pub fn mean_final_coverage(&self) -> f64 {
        crate::stats::mean(
            &self.shards.iter().map(|s| s.final_coverage).collect::<Vec<_>>(),
        )
    }
}

/// The fleet orchestrator.
#[derive(Debug, Clone)]
pub struct Fleet {
    config: FleetConfig,
}

impl Fleet {
    /// Creates an orchestrator for `config` (shard count is clamped to at
    /// least 1).
    pub fn new(mut config: FleetConfig) -> Self {
        config.shards = config.shards.max(1);
        Self { config }
    }

    /// The configuration in effect.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// Runs a fresh fleet campaign: shard `i` boots `spec` with
    /// `make_config(i + 1)`.
    pub fn run<F>(&self, spec: &FirmwareSpec, make_config: F) -> FleetResult
    where
        F: Fn(u64) -> FuzzerConfig + Sync,
    {
        self.launch(spec, &make_config, None, None)
    }

    /// Runs a fresh *durable* campaign: every sync round's hub deltas are
    /// journaled to `medium` and every checkpoint compacts them into a
    /// checksummed snapshot generation, so a `kill -9` at any point
    /// resumes via [`resume_durable`](Self::resume_durable) with zero
    /// lost corpus/relation/crash records up to the last durable journal
    /// entry. Fails only if `medium` is unusable or already holds
    /// campaign state.
    pub fn run_durable<F, M>(
        &self,
        spec: &FirmwareSpec,
        make_config: F,
        medium: M,
    ) -> Result<FleetResult, StoreError>
    where
        F: Fn(u64) -> FuzzerConfig + Sync,
        M: StorageMedium + Clone,
    {
        let mut store = FleetStore::create(medium, DEFAULT_KEEP)?;
        Ok(self.launch(spec, &make_config, None, Some(&mut store)))
    }

    /// Resumes a durable campaign from `medium`: recovers the newest
    /// valid snapshot plus journal prefix ([`RecoveryManager`]),
    /// re-verifies it through the analysis auditors, seals it into a
    /// fresh generation, and runs the remaining rounds durably. Returns
    /// the result along with the recovery report.
    pub fn resume_durable<F, M>(
        &self,
        spec: &FirmwareSpec,
        make_config: F,
        medium: M,
    ) -> Result<(FleetResult, RecoveryReport), StoreError>
    where
        F: Fn(u64) -> FuzzerConfig + Sync,
        M: StorageMedium + Clone,
    {
        // A probe engine supplies the description table the auditors
        // verify Eq. 1 against.
        let probe = FuzzingEngine::new(spec.clone().boot(), make_config(0));
        let recovered =
            RecoveryManager::new(medium.clone()).recover_verified(probe.desc_table())?;
        let mut store = FleetStore::resume(medium, DEFAULT_KEEP, &recovered)?;
        let result =
            self.launch(spec, &make_config, Some(recovered.snapshot), Some(&mut store));
        Ok((result, recovered.report))
    }

    /// Resumes a killed campaign from [`FleetResult::snapshot`] text:
    /// restores the hub (corpus, relation graph, coverage, series,
    /// crashes), primes fresh shards from it, and runs the remaining
    /// rounds on the fleet clock.
    pub fn resume<F>(
        &self,
        spec: &FirmwareSpec,
        make_config: F,
        snapshot_text: &str,
    ) -> Result<FleetResult, String>
    where
        F: Fn(u64) -> FuzzerConfig + Sync,
    {
        let snap = FleetSnapshot::parse(snapshot_text)?;
        Ok(self.launch(spec, &make_config, Some(snap), None))
    }

    fn launch<F>(
        &self,
        spec: &FirmwareSpec,
        make_config: &F,
        resume: Option<FleetSnapshot>,
        mut persist: Option<&mut dyn FleetPersist>,
    ) -> FleetResult
    where
        F: Fn(u64) -> FuzzerConfig + Sync,
    {
        let cfg = &self.config;
        let total_us = (cfg.hours * HOUR_US as f64) as u64;
        let interval_us = ((cfg.sync_interval_hours * HOUR_US as f64) as u64).max(1);
        let total_rounds = (total_us.div_ceil(interval_us) as usize).max(1);
        let start_round = resume.as_ref().map_or(0, |s| s.round.min(total_rounds));
        let clock_offset_us = resume.as_ref().map_or(0, |s| s.clock_us.min(total_us));

        let (bus, rx) = EventBus::new();
        let workers = if cfg.threads == 0 {
            cfg.shards
        } else {
            cfg.threads.clamp(1, cfg.shards)
        };
        let chunk_len = cfg.shards.div_ceil(workers);

        // Boot the engines on the worker pool (probing is the expensive
        // part), then wrap them into shards on the orchestrator thread.
        // Chunks are contiguous and joined in order, so the engine list
        // comes back in shard order for any worker count.
        let shard_ids: Vec<usize> = (0..cfg.shards).collect();
        let engines: Vec<FuzzingEngine> = thread::scope(|scope| {
            let handles: Vec<_> = shard_ids
                .chunks(chunk_len)
                .map(|ids| {
                    let spec = spec.clone();
                    scope.spawn(move || {
                        ids.iter()
                            .map(|&i| FuzzingEngine::new(spec.clone().boot(), make_config(i as u64 + 1)))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("shard boot"))
                .collect()
        });
        let mut shards: Vec<Shard> = engines
            .into_iter()
            .enumerate()
            .map(|(i, engine)| Shard::new(i, engine, bus.clone(), clock_offset_us))
            .collect();

        let mut hub = CorpusHub::new(cfg.hub_capacity);
        if let Some(snap) = &resume {
            snap.restore_into(&mut hub);
            if !snap.relations_text.is_empty() {
                let table = shards[0].engine().desc_table();
                let mut graph = RelationGraph::new(table);
                graph.import(&snap.relations_text, table);
                hub.set_relations(graph);
            }
        }
        for shard in &mut shards {
            if cfg.sync {
                shard.restore_from_hub(&hub);
            } else {
                // Independent repeats keep their corpora private; still
                // announce the shard on the bus.
                bus.emit(FleetEvent::ShardStarted { shard: shard.id, restored_seeds: 0 });
            }
        }

        let baseline_faults =
            resume.as_ref().map_or_else(FaultCounters::default, |s| s.fault_totals);
        let fleet_fault_totals = |shards: &[Shard]| {
            let mut totals = baseline_faults;
            for shard in shards {
                totals.absorb(&shard.fault_totals());
            }
            totals
        };
        let baseline_lint =
            resume.as_ref().map_or_else(LintCounters::default, |s| s.lint_totals);
        let fleet_lint_totals = |shards: &[Shard]| {
            let mut totals = baseline_lint;
            for shard in shards {
                totals.absorb(&shard.lint_totals());
            }
            totals
        };
        let baseline_store =
            resume.as_ref().map_or_else(StoreCounters::default, |s| s.store_totals);
        let baseline_net = resume
            .as_ref()
            .map_or_else(crate::net::NetCounters::default, |s| s.net_totals);

        if let Some(sink) = persist.as_deref_mut() {
            sink.on_start(&hub, shards[0].engine().desc_table());
        }

        let mut rounds_completed = start_round;
        let mut clock_us = clock_offset_us;
        let mut snapshot_text =
            resume.as_ref().map_or_else(String::new, FleetSnapshot::to_text);
        let mut killed = false;
        let mut snapshots_skipped = 0u64;
        let checkpoint_interval = self.config.checkpoint_interval_rounds.max(1);

        for round in start_round..total_rounds {
            let global_target = (interval_us * (round as u64 + 1)).min(total_us);
            let slice_us = global_target.saturating_sub(clock_us);

            // Fuzz the slice: every worker owns a contiguous chunk of
            // shards and runs them back to back, ending each with its
            // batched hub update. Quarantined shards sit the slice out
            // (their clock offset absorbs it so they rejoin the fleet
            // clock without a giant catch-up slice) but still report an
            // update, which is empty for an idle shard. Chunks join in
            // order, so the updates come back in shard-id order.
            let updates: Vec<ShardUpdate> = thread::scope(|scope| {
                let handles: Vec<_> = shards
                    .chunks_mut(chunk_len)
                    .map(|chunk| {
                        scope.spawn(move || {
                            let mut updates = Vec::with_capacity(chunk.len());
                            for shard in chunk {
                                if shard.is_quarantined(round) {
                                    shard.skip_slice(slice_us);
                                } else {
                                    shard.run_slice(global_target, round);
                                }
                                updates.push(shard.prepare_update());
                            }
                            updates
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("shard worker"))
                    .collect()
            });

            // Sync round, sequential in shard order for determinism.
            let mut published = 0;
            for update in &updates {
                published += hub.apply_update(update);
            }
            hub.sync_crashes(shards.iter().map(|s| s.engine().crash_db()));
            let mut pulled = 0;
            if cfg.sync {
                for shard in &mut shards {
                    pulled += shard.pull(&hub);
                }
            }
            hub.record_sample(global_target);
            bus.emit(FleetEvent::SyncCompleted {
                round,
                published,
                pulled,
                hub_seeds: hub.len(),
                hub_edges: hub.relations().map_or(0, RelationGraph::edge_count),
                union_coverage: hub.union_coverage(),
                workers,
            });

            // Self-healing: a shard whose device is permanently lost
            // (vanished, or re-provisioning exhausted) restarts with a
            // fresh engine restored from hub state — everything it knew
            // was published above, so no corpus/relation/crash state is
            // lost. A flapping shard is benched for an exponentially
            // growing quarantine window instead of churning restarts.
            for (i, shard) in shards.iter_mut().enumerate() {
                if shard.is_quarantined(round) {
                    continue;
                }
                if !shard.engine().device_lost() {
                    shard.note_healthy();
                    continue;
                }
                let restarts = u64::from(shard.restarts()) + 1;
                let engine = FuzzingEngine::new(
                    spec.clone().boot(),
                    make_config(i as u64 + 1 + restarts * 1009),
                );
                shard.replace_engine(engine, global_target);
                bus.emit(FleetEvent::ShardRestarted {
                    shard: i,
                    round,
                    restarts: shard.restarts(),
                });
                shard.restore_all_from_hub(&hub);
                if shard.consecutive_losses() >= cfg.flap_limit.max(1) {
                    let window = 1usize << shard.quarantines().min(8);
                    let until = round + 1 + window;
                    shard.quarantine_until(until);
                    bus.emit(FleetEvent::ShardQuarantined { shard: i, round, until_round: until });
                }
            }

            rounds_completed = round + 1;
            clock_us = global_target;
            let rounds_this_run = rounds_completed - start_round;
            let table = shards[0].engine().desc_table();
            let fault_totals = fleet_fault_totals(&shards);
            let lint_totals = fleet_lint_totals(&shards);
            if let Some(sink) = persist.as_deref_mut() {
                sink.on_round(
                    &hub,
                    table,
                    rounds_completed,
                    clock_us,
                    &fault_totals,
                    &lint_totals,
                    &baseline_net,
                );
            }

            // Re-serializing the full snapshot every round is the single
            // biggest fixed cost of a sync round; with a journal (or a
            // coarser cadence) the in-between rounds skip it — the final
            // round and a kill always checkpoint.
            let is_kill = cfg.kill_after_rounds == Some(rounds_this_run);
            let is_last = rounds_completed == total_rounds;
            if is_kill || is_last || rounds_this_run.is_multiple_of(checkpoint_interval) {
                let mut store_totals = baseline_store;
                if let Some(sink) = persist.as_deref() {
                    store_totals.absorb(&sink.counters());
                }
                store_totals.snapshots_skipped += snapshots_skipped;
                let snap = FleetSnapshot::capture(
                    &hub,
                    table,
                    rounds_completed,
                    clock_us,
                    fault_totals,
                    lint_totals,
                    store_totals,
                    baseline_net,
                );
                snapshot_text = snap.to_text();
                if let Some(sink) = persist.as_deref_mut() {
                    sink.on_checkpoint(&snap);
                }
            } else {
                snapshots_skipped += 1;
            }

            if is_kill {
                killed = true;
                break;
            }
        }

        for shard in &shards {
            shard.finish();
        }
        let mut stats = FleetStats::drain(&rx, cfg.shards);
        stats.snapshots_skipped = snapshots_skipped;
        stats.net_totals = baseline_net;
        let mut store_totals = baseline_store;
        if let Some(sink) = persist.as_deref() {
            store_totals.absorb(&sink.counters());
        }
        store_totals.snapshots_skipped += snapshots_skipped;

        let outcomes: Vec<ShardOutcome> = shards
            .iter()
            .map(|shard| {
                // The shard's own offset, not the fleet resume offset: a
                // restarted shard's current engine booted mid-campaign.
                let mut series = Series::new();
                for &(t, v) in shard.engine().coverage_series().points() {
                    series.push(shard.clock_offset_us() + t, v);
                }
                ShardOutcome {
                    shard: shard.id,
                    final_coverage: shard.engine().kernel_coverage() as f64,
                    executions: shard.total_executions(),
                    faults: shard.fault_totals(),
                    restarts: shard.restarts(),
                    series,
                    crash_titles: shard
                        .engine()
                        .crash_db()
                        .records()
                        .iter()
                        .map(|r| r.title.clone())
                        .collect(),
                }
            })
            .collect();
        let shard_series: Vec<Series> = outcomes.iter().map(|o| o.series.clone()).collect();

        FleetResult {
            device_id: spec.meta.id.clone(),
            fuzzer: make_config(0).variant.to_string(),
            crashes: hub.crashes().records().into_iter().cloned().collect(),
            union_coverage: hub.union_coverage(),
            executions: outcomes.iter().map(|o| o.executions).sum(),
            mean_series: mean_series(&shard_series, total_us, 48),
            union_series: hub.series().clone(),
            fault_totals: fleet_fault_totals(&shards),
            lint_totals: fleet_lint_totals(&shards),
            store_totals,
            net_totals: baseline_net,
            shards: outcomes,
            stats,
            rounds_completed,
            clock_us,
            snapshot: snapshot_text,
            finished: !killed && rounds_completed == total_rounds,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simdevice::catalog;
    use simdevice::faults::{FaultProfile, FaultRates};

    fn quick_fleet(sync: bool, kill_after_rounds: Option<usize>) -> Fleet {
        Fleet::new(FleetConfig {
            shards: 2,
            hours: 0.2,
            sync_interval_hours: 0.05,
            sync,
            hub_capacity: 256,
            kill_after_rounds,
            flap_limit: 2,
            checkpoint_interval_rounds: 1,
            threads: 0,
        })
    }

    /// Everything that must be identical between two runs of the same
    /// `(seed, shard count, fault profile)` campaign.
    fn fingerprint(r: &FleetResult) -> (usize, u64, u64, usize, String) {
        (
            r.union_coverage,
            r.executions,
            r.fault_totals.total(),
            r.crashes.len(),
            r.snapshot.clone(),
        )
    }

    #[test]
    fn fleet_campaign_completes_and_aggregates() {
        let result = quick_fleet(true, None).run(&catalog::device_a1(), FuzzerConfig::droidfuzz);
        assert_eq!(result.device_id, "A1");
        assert_eq!(result.fuzzer, "DroidFuzz");
        assert_eq!(result.shards.len(), 2);
        assert!(result.finished);
        assert_eq!(result.rounds_completed, 4);
        assert!(result.executions > 0);
        assert!(result.union_coverage > 0);
        // The union dominates every single shard.
        for shard in &result.shards {
            assert!(result.union_coverage as f64 >= shard.final_coverage);
        }
        assert!(!result.mean_series.is_empty());
        assert_eq!(result.union_series.len(), 4, "one union sample per round");
        assert!(result.stats.sync_rounds == 4);
        assert!(result.stats.seeds_published > 0);
        assert!(result.stats.seeds_pulled > 0, "synced shards exchange seeds");
        assert!(result.snapshot.starts_with(SNAPSHOT_HEADER));
        // The default (reliable) profile injects nothing and never
        // restarts a shard.
        assert_eq!(result.fault_totals.total(), 0);
        assert_eq!(result.stats.shard_restarts, 0);
        assert_eq!(result.stats.shard_quarantines, 0);
    }

    #[test]
    fn hostile_fleet_is_deterministic_and_completes() {
        let spec = catalog::device_a1();
        let mk = |seed| FuzzerConfig::droidfuzz(seed).with_fault_profile(FaultProfile::Hostile);
        let a = quick_fleet(true, None).run(&spec, mk);
        let b = quick_fleet(true, None).run(&spec, mk);
        assert!(a.finished, "a hostile campaign still runs to full length");
        assert!(a.fault_totals.injected > 0, "the hostile profile injects faults");
        assert!(a.union_coverage > 0, "progress despite the faults");
        assert_eq!(
            fingerprint(&a),
            fingerprint(&b),
            "same (seed, shards, fault profile) must replay identically"
        );
        // The final snapshot carries the campaign's exact fault totals.
        let snap = FleetSnapshot::parse(&a.snapshot).expect("snapshot parses");
        assert_eq!(snap.fault_totals, a.fault_totals);
    }

    #[test]
    fn fault_counters_round_trip_through_kill_and_resume() {
        let spec = catalog::device_a1();
        let mk = |seed| FuzzerConfig::droidfuzz(seed).with_fault_profile(FaultProfile::Flaky);
        let killed = quick_fleet(true, Some(2)).run(&spec, mk);
        assert!(!killed.finished);
        assert!(killed.fault_totals.injected > 0, "flaky faults landed before the kill");
        let resumed = quick_fleet(true, None)
            .resume(&spec, mk, &killed.snapshot)
            .expect("snapshot parses");
        assert!(resumed.finished);
        // The pre-kill counters are the resume's baseline; the resumed
        // rounds only add to them.
        assert!(resumed.fault_totals.injected >= killed.fault_totals.injected);
        assert!(resumed.fault_totals.total() >= killed.fault_totals.total());
        let snap = FleetSnapshot::parse(&resumed.snapshot).expect("snapshot parses");
        assert_eq!(snap.fault_totals, resumed.fault_totals);
        // Lint counters cross the kill the same way (baseline + new
        // rounds), whether or not the gate ever fired.
        assert!(resumed.lint_totals.total() >= killed.lint_totals.total());
        assert_eq!(snap.lint_totals, resumed.lint_totals);
    }

    #[test]
    fn vanishing_devices_restart_then_quarantine() {
        // Every execution attempt vanishes the device permanently, so
        // each shard loses its device every round it is allowed to run.
        let rates = FaultRates { vanish: 1.0, ..FaultRates::for_profile(FaultProfile::Reliable) };
        let mk = move |seed| FuzzerConfig::droidfuzz(seed).with_fault_rates(rates);
        let fleet = Fleet::new(FleetConfig {
            shards: 2,
            hours: 0.2,
            sync_interval_hours: 0.05,
            sync: true,
            hub_capacity: 256,
            kill_after_rounds: None,
            flap_limit: 1,
            checkpoint_interval_rounds: 1,
            threads: 0,
        });
        let result = fleet.run(&catalog::device_a1(), mk);
        assert!(result.finished, "a fleet of vanishing devices still completes");
        assert!(result.stats.shard_restarts >= 2, "every shard restarts at least once");
        assert!(result.stats.shard_quarantines >= 2, "flapping shards are benched");
        assert!(result.fault_totals.device_lost >= 2);
        for shard in &result.shards {
            assert!(shard.restarts >= 1, "shard {} never restarted", shard.shard);
            assert!(shard.faults.device_lost >= 1);
        }
        // The snapshot still reflects the full fleet clock.
        assert_eq!(result.clock_us, (0.2 * HOUR_US as f64) as u64);
    }

    #[test]
    fn unsynced_fleet_exchanges_no_seeds() {
        let result = quick_fleet(false, None).run(&catalog::device_a1(), FuzzerConfig::droidfuzz);
        assert!(result.finished);
        assert_eq!(result.stats.seeds_pulled, 0);
        assert!(result.stats.seeds_published > 0, "the hub still aggregates for snapshots");
        assert!(result.union_coverage > 0);
    }

    #[test]
    fn kill_leaves_a_resumable_snapshot() {
        let fleet = quick_fleet(true, Some(2));
        let spec = catalog::device_a1();
        let killed = fleet.run(&spec, FuzzerConfig::droidfuzz);
        assert!(!killed.finished);
        assert_eq!(killed.rounds_completed, 2);

        let resumed = quick_fleet(true, None)
            .resume(&spec, FuzzerConfig::droidfuzz, &killed.snapshot)
            .expect("snapshot parses");
        assert!(resumed.finished);
        assert_eq!(resumed.rounds_completed, 4);
        assert_eq!(resumed.clock_us, (0.2 * HOUR_US as f64) as u64);
        // The union coverage can only grow across the kill.
        assert!(resumed.union_coverage >= killed.union_coverage);
        // Shards were primed from the snapshot corpus.
        assert!(resumed.stats.shards.iter().any(|s| s.restored_seeds > 0));
        // The union series carries the pre-kill samples forward.
        assert_eq!(resumed.union_series.len(), 4);
    }

    #[test]
    fn checkpoint_cadence_skips_intermediate_serializations() {
        let spec = catalog::device_a1();
        let mut cfg = quick_fleet(true, None).config().clone();
        cfg.checkpoint_interval_rounds = 3;
        let result = Fleet::new(cfg).run(&spec, FuzzerConfig::droidfuzz);
        assert!(result.finished);
        // 4 rounds, cadence 3: rounds 1 and 2 skip, round 3 checkpoints,
        // round 4 checkpoints because it is the last.
        assert_eq!(result.stats.snapshots_skipped, 2);
        assert_eq!(result.store_totals.snapshots_skipped, 2);
        // The final snapshot is still current (last round checkpoints).
        let snap = FleetSnapshot::parse(&result.snapshot).expect("snapshot parses");
        assert_eq!(snap.round, 4);
        // Semantic state matches an every-round-checkpoint run.
        let every = quick_fleet(true, None).run(&spec, FuzzerConfig::droidfuzz);
        assert_eq!(result.union_coverage, every.union_coverage);
        assert_eq!(result.executions, every.executions);
        assert_eq!(result.crashes.len(), every.crashes.len());
    }

    #[test]
    fn durable_campaign_killed_midway_resumes_from_disk() {
        use crate::store::SimMedium;
        let spec = catalog::device_a1();
        let medium = SimMedium::new();
        let killed = quick_fleet(true, Some(2))
            .run_durable(&spec, FuzzerConfig::droidfuzz, medium.clone())
            .expect("fresh durable campaign starts");
        assert!(!killed.finished);
        assert!(killed.store_totals.journal_records > 0);
        assert!(killed.store_totals.snapshots_written > 0);

        let (resumed, report) = quick_fleet(true, None)
            .resume_durable(&spec, FuzzerConfig::droidfuzz, medium.clone())
            .expect("disk state recovers");
        assert!(resumed.finished);
        assert_eq!(resumed.rounds_completed, 4);
        assert!(resumed.union_coverage >= killed.union_coverage);
        assert!(resumed.fault_totals.total() >= killed.fault_totals.total());
        assert!(report.replayed_records > 0 || report.base_generation.is_some());
        assert!(resumed.store_totals.recoveries >= 1, "recovery counted in totals");

        // The resumed campaign's disk state recovers clean in turn.
        let end = crate::store::RecoveryManager::new(medium).recover().expect("final state");
        assert_eq!(end.snapshot.round, 4);

        // Zero loss: everything the killed run reported is in the
        // resumed run's final state.
        for crash in &killed.crashes {
            assert!(resumed.crashes.iter().any(|c| c.title == crash.title));
        }
    }

    #[test]
    fn durable_run_refuses_an_occupied_store() {
        use crate::store::SimMedium;
        let spec = catalog::device_a1();
        let medium = SimMedium::new();
        quick_fleet(true, Some(1))
            .run_durable(&spec, FuzzerConfig::droidfuzz, medium.clone())
            .expect("first campaign starts");
        assert!(
            quick_fleet(true, None)
                .run_durable(&spec, FuzzerConfig::droidfuzz, medium)
                .is_err(),
            "a fresh run must not clobber resumable state"
        );
    }

    #[test]
    fn resume_rejects_garbage() {
        let fleet = quick_fleet(true, None);
        assert!(fleet
            .resume(&catalog::device_a1(), FuzzerConfig::droidfuzz, "not a snapshot")
            .is_err());
    }
}
