//! Fleet-side durability: mirrors the hub's state onto a
//! [`StorageMedium`] through the [`store`](crate::store) layer.
//!
//! The orchestrator drives a [`FleetPersist`] sink from its own thread:
//! after every sync round it hands over the hub so new seeds, relation
//! edges, coverage blocks, crashes, series samples, and counter totals
//! are appended to the write-ahead journal; at every checkpoint it hands
//! over the freshly captured [`FleetSnapshot`] so the journal is
//! compacted into a new snapshot generation. [`FleetStore`] is the real
//! implementation; tests can substitute their own sink.
//!
//! Durability is *best-effort by design*: every storage failure is
//! counted into [`StoreCounters::io_errors`] and the campaign keeps
//! fuzzing — a full disk degrades persistence, it never kills the fleet.

use super::hub::CorpusHub;
use super::snapshot::{crash_fields, FleetSnapshot};
use crate::crashes::dedup_key;
use crate::net::NetCounters;
use crate::store::journal::{journal_name, parse_journal_name, Journal};
use crate::store::recovery::{Recovered, FLEET_SECTION};
use crate::store::snapshot_store::{parse_snapshot_name, SnapshotStore};
use crate::store::{FleetDelta, StorageMedium, StoreCounters, StoreError};
use crate::supervisor::FaultCounters;
use droidfuzz_analysis::LintCounters;
use fuzzlang::desc::DescTable;
use std::collections::{BTreeMap, BTreeSet};

/// Snapshot generations the ring keeps by default — enough to survive a
/// corrupt newest generation plus its predecessor.
pub const DEFAULT_KEEP: usize = 3;

/// The orchestrator's durability sink. All methods are infallible on
/// purpose: implementations absorb storage errors into their counters so
/// a failing disk can never abort a campaign.
pub trait FleetPersist {
    /// Called once before the first round, after any snapshot restore,
    /// so the sink can prime its diff mirrors from the hub (restored
    /// seeds must not be re-journaled).
    fn on_start(&mut self, hub: &CorpusHub, table: &DescTable);

    /// Called after every completed sync round with the hub and the
    /// campaign-cumulative counter totals (baseline + this run, the same
    /// values a snapshot would carry).
    #[allow(clippy::too_many_arguments)] // one positional slot per counter family
    fn on_round(
        &mut self,
        hub: &CorpusHub,
        table: &DescTable,
        round: usize,
        clock_us: u64,
        fault_totals: &FaultCounters,
        lint_totals: &LintCounters,
        net_totals: &NetCounters,
    );

    /// Called with every captured snapshot (checkpoint cadence, final
    /// round, and kill) so the journal can be compacted.
    fn on_checkpoint(&mut self, snapshot: &FleetSnapshot);

    /// Durability counters accumulated by this sink this run.
    fn counters(&self) -> StoreCounters;
}

/// Tolerant parse of a relation-graph export into
/// `(learns, (from, to) → weight string)` — the diff mirror the journal
/// writer compares rounds against.
fn parse_relations(export: &str) -> (u64, BTreeMap<(String, String), String>) {
    let mut learns = 0u64;
    let mut edges = BTreeMap::new();
    for line in export.lines() {
        if let Some(header) = line.strip_prefix("# relation-graph ") {
            if let Some(n) = header.split("learns=").nth(1).and_then(|v| v.trim().parse().ok()) {
                learns = n;
            }
            continue;
        }
        if let Some(rest) = line.strip_prefix("edge ") {
            let mut fields = rest.split('\t');
            if let (Some(from), Some(to), Some(weight)) =
                (fields.next(), fields.next(), fields.next())
            {
                edges.insert((from.to_owned(), to.to_owned()), weight.to_owned());
            }
        }
    }
    (learns, edges)
}

/// The durable [`FleetPersist`] implementation: a write-ahead journal of
/// per-round hub deltas, compacted into a checksummed snapshot
/// generation at every checkpoint, on any [`StorageMedium`].
#[derive(Debug)]
pub struct FleetStore<M: StorageMedium + Clone> {
    medium: M,
    snapshots: SnapshotStore<M>,
    journal: Journal<M>,
    /// Current journal base generation.
    gen: u64,
    counters: StoreCounters,
    /// Pre-kill totals from the resumed snapshot (fresh runs: zero);
    /// journaled `store` deltas carry `baseline + counters`.
    baseline: StoreCounters,
    // Diff mirrors: what the journal already reflects.
    seed_cursor: u64,
    learns: u64,
    edges: BTreeMap<(String, String), String>,
    blocks: BTreeSet<u64>,
    /// `dedup key → rendered crash fields` — a change in any field
    /// re-journals the record (upsert semantics on replay).
    crashes: BTreeMap<String, String>,
    series_len: usize,
    faults: Option<FaultCounters>,
    lint: Option<LintCounters>,
    net: Option<NetCounters>,
}

impl<M: StorageMedium + Clone> FleetStore<M> {
    /// Starts durable state for a *fresh* campaign: refuses a medium that
    /// already holds campaign files (resume instead), then opens the
    /// from-empty journal (`journal-0.wal`).
    pub fn create(medium: M, keep: usize) -> Result<Self, StoreError> {
        let occupied = medium.list()?.into_iter().any(|name| {
            parse_snapshot_name(&name).is_some() || parse_journal_name(&name).is_some()
        });
        if occupied {
            return Err(StoreError::Io(
                "store already holds campaign state; resume instead of overwriting".to_owned(),
            ));
        }
        let journal = Journal::create(medium.clone(), 0)?;
        Ok(Self {
            snapshots: SnapshotStore::new(medium.clone(), keep),
            medium,
            journal,
            gen: 0,
            counters: StoreCounters::default(),
            baseline: StoreCounters::default(),
            seed_cursor: 0,
            learns: 0,
            edges: BTreeMap::new(),
            blocks: BTreeSet::new(),
            crashes: BTreeMap::new(),
            series_len: 0,
            faults: None,
            lint: None,
            net: None,
        })
    }

    /// Re-attaches durable state after a recovery. The recovered state is
    /// immediately *sealed* into a fresh snapshot generation with a clean
    /// journal — appends never continue behind a possibly-torn tail.
    pub fn resume(medium: M, keep: usize, recovered: &Recovered) -> Result<Self, StoreError> {
        let mut snapshots = SnapshotStore::new(medium.clone(), keep);
        let newest_snapshot = snapshots.newest()?.unwrap_or(0);
        let newest_journal = medium
            .list()?
            .into_iter()
            .filter_map(|n| parse_journal_name(&n))
            .max()
            .unwrap_or(0);
        let gen = newest_snapshot.max(newest_journal) + 1;

        let text = recovered.snapshot.to_text();
        snapshots.write(gen, &[(FLEET_SECTION, text.as_bytes())])?;
        let journal = Journal::create(medium.clone(), gen)?;
        let mut counters = recovered.report.counters;
        counters.snapshots_written += 1;
        counters.compactions += 1;
        let mut store = Self {
            snapshots,
            medium,
            journal,
            gen,
            counters,
            baseline: recovered.snapshot.store_totals,
            seed_cursor: 0,
            learns: 0,
            edges: BTreeMap::new(),
            blocks: BTreeSet::new(),
            crashes: BTreeMap::new(),
            series_len: 0,
            faults: None,
            lint: None,
            net: None,
        };
        store.prune();
        Ok(store)
    }

    /// The journal's current base generation.
    pub fn generation(&self) -> u64 {
        self.gen
    }

    fn append(&mut self, delta: &FleetDelta) {
        let payload = delta.encode();
        match self.journal.append(&payload) {
            Ok(_) => {
                self.counters.journal_records += 1;
                self.counters.journal_bytes += payload.len() as u64;
            }
            Err(_) => self.counters.io_errors += 1,
        }
    }

    /// Prunes the snapshot ring and drops the journals of pruned
    /// generations (a journal without its base snapshot is dead weight).
    fn prune(&mut self) {
        match self.snapshots.prune() {
            Ok(pruned) => {
                for gen in pruned {
                    if self.medium.remove(&journal_name(gen)).is_err() {
                        self.counters.io_errors += 1;
                    }
                }
            }
            Err(_) => self.counters.io_errors += 1,
        }
        // Journals older than the oldest kept snapshot (e.g. the
        // pre-first-checkpoint journal-0) can never be replayed again.
        let Ok(Some(oldest)) = self.snapshots.generations().map(|g| g.first().copied()) else {
            return;
        };
        let Ok(names) = self.medium.list() else {
            self.counters.io_errors += 1;
            return;
        };
        for name in names {
            if let Some(gen) = crate::store::journal::parse_journal_name(&name) {
                if gen < oldest && self.medium.remove(&name).is_err() {
                    self.counters.io_errors += 1;
                }
            }
        }
    }
}

impl<M: StorageMedium + Clone> FleetPersist for FleetStore<M> {
    fn on_start(&mut self, hub: &CorpusHub, table: &DescTable) {
        // Prime every mirror from the (possibly snapshot-restored) hub:
        // the seal/initial state is already durable, only changes from
        // here on need journaling.
        self.seed_cursor = hub.tip();
        let export = hub.relations().map(|g| g.export(table)).unwrap_or_default();
        (self.learns, self.edges) = parse_relations(&export);
        self.blocks = hub.coverage_blocks().iter().map(|b| b.0).collect();
        self.crashes = hub
            .crashes()
            .records()
            .into_iter()
            .map(|r| (dedup_key(&r.title), crash_fields(r)))
            .collect();
        self.series_len = hub.series().points().len();
    }

    fn on_round(
        &mut self,
        hub: &CorpusHub,
        table: &DescTable,
        round: usize,
        clock_us: u64,
        fault_totals: &FaultCounters,
        lint_totals: &LintCounters,
        net_totals: &NetCounters,
    ) {
        let fresh_seeds: Vec<(usize, String)> = hub
            .seeds_since(self.seed_cursor)
            .map(|s| (s.signals, s.body.clone()))
            .collect();
        self.seed_cursor = hub.tip();
        for (signals, body) in fresh_seeds {
            self.append(&FleetDelta::Seed { signals, body });
        }

        let export = hub.relations().map(|g| g.export(table)).unwrap_or_default();
        let (learns, edges) = parse_relations(&export);
        if learns != self.learns {
            self.append(&FleetDelta::Learns(learns));
        }
        let dropped: Vec<(String, String)> =
            self.edges.keys().filter(|k| !edges.contains_key(*k)).cloned().collect();
        for (from, to) in dropped {
            self.append(&FleetDelta::EdgeDel { from: from.clone(), to: to.clone() });
        }
        let changed: Vec<((String, String), String)> = edges
            .iter()
            .filter(|(k, w)| self.edges.get(*k) != Some(w))
            .map(|(k, w)| (k.clone(), w.clone()))
            .collect();
        for ((from, to), weight) in changed {
            self.append(&FleetDelta::Edge { from, to, weight });
        }
        self.learns = learns;
        self.edges = edges;

        let fresh_blocks: Vec<u64> = hub
            .coverage_blocks()
            .iter()
            .map(|b| b.0)
            .filter(|b| !self.blocks.contains(b))
            .collect();
        if !fresh_blocks.is_empty() {
            self.blocks.extend(fresh_blocks.iter().copied());
            self.append(&FleetDelta::Blocks(fresh_blocks));
        }

        let changed_crashes: Vec<crate::crashes::CrashRecord> = hub
            .crashes()
            .records()
            .into_iter()
            .filter(|r| self.crashes.get(&dedup_key(&r.title)) != Some(&crash_fields(r)))
            .cloned()
            .collect();
        for record in changed_crashes {
            self.crashes.insert(dedup_key(&record.title), crash_fields(&record));
            self.append(&FleetDelta::Crash(record));
        }

        let samples: Vec<(u64, f64)> =
            hub.series().points().iter().skip(self.series_len).copied().collect();
        self.series_len = hub.series().points().len();
        for (t, v) in samples {
            self.append(&FleetDelta::Sample { t, v });
        }

        if self.faults.as_ref() != Some(fault_totals) {
            self.faults = Some(*fault_totals);
            self.append(&FleetDelta::Faults(*fault_totals));
        }
        if self.lint.as_ref() != Some(lint_totals) {
            self.lint = Some(*lint_totals);
            self.append(&FleetDelta::Lint(*lint_totals));
        }
        if self.net.as_ref() != Some(net_totals) {
            self.net = Some(*net_totals);
            self.append(&FleetDelta::Net(*net_totals));
        }
        // Durability counters, campaign-cumulative like the snapshot's
        // `# section store` (they trail by the bytes of this very record,
        // which is fine: the next checkpoint squares them up).
        let mut store_totals = self.baseline;
        store_totals.absorb(&self.counters);
        self.append(&FleetDelta::Store(store_totals));
        self.append(&FleetDelta::Round { round, clock_us });
    }

    fn on_checkpoint(&mut self, snapshot: &FleetSnapshot) {
        let next = self.gen + 1;
        let text = snapshot.to_text();
        if self.snapshots.write(next, &[(FLEET_SECTION, text.as_bytes())]).is_err() {
            self.counters.io_errors += 1;
            return;
        }
        self.counters.snapshots_written += 1;
        match Journal::create(self.medium.clone(), next) {
            Ok(journal) => {
                self.journal = journal;
                self.gen = next;
                self.counters.compactions += 1;
            }
            // The new generation's snapshot exists but its journal could
            // not be opened: keep appending to the old chain (recovery
            // still finds a consistent state either way).
            Err(_) => self.counters.io_errors += 1,
        }
        self.prune();
    }

    fn counters(&self) -> StoreCounters {
        self.counters
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{MediumFault, RecoveryManager, SimMedium};

    fn hub_with_state() -> CorpusHub {
        let mut hub = CorpusHub::new(64);
        hub.publish_corpus(0, "# seed 0 signals=5\nr0 = openat$/dev/video0()\n\n");
        hub.publish_coverage([simkernel::coverage::Block(0x10), simkernel::coverage::Block(0x20)]);
        hub.record_sample(1_000);
        hub
    }

    fn table() -> DescTable {
        let mut t = DescTable::new();
        t.add(fuzzlang::desc::CallDesc::syscall_open("/dev/video0"));
        t
    }

    #[test]
    fn create_refuses_an_occupied_medium() {
        let medium = SimMedium::new();
        FleetStore::create(medium.clone(), 2).unwrap();
        assert!(FleetStore::create(medium, 2).is_err());
    }

    #[test]
    fn rounds_journal_only_the_diff() {
        let medium = SimMedium::new();
        let mut store = FleetStore::create(medium.clone(), 2).unwrap();
        let t = table();
        let mut hub = CorpusHub::new(64);
        store.on_start(&hub, &t);

        hub.publish_corpus(0, "# seed 0 signals=5\nr0 = openat$/dev/video0()\n\n");
        hub.publish_coverage([simkernel::coverage::Block(0x10)]);
        hub.record_sample(1_000);
        store.on_round(&hub, &t, 1, 1_000, &FaultCounters::default(), &LintCounters::default(), &NetCounters::default());
        let after_first = store.counters().journal_records;
        // seed + blocks + sample + faults + lint + net + store + round = 8
        assert_eq!(after_first, 8);

        // Nothing changed: only the store totals and round marker append.
        store.on_round(&hub, &t, 2, 2_000, &FaultCounters::default(), &LintCounters::default(), &NetCounters::default());
        assert_eq!(store.counters().journal_records, after_first + 2);
    }

    #[test]
    fn checkpoint_rotates_generation_and_prunes() {
        let medium = SimMedium::new();
        let mut store = FleetStore::create(medium.clone(), 2).unwrap();
        let t = table();
        let hub = hub_with_state();
        store.on_start(&hub, &t);
        for round in 1..=4u64 {
            let snap = FleetSnapshot::capture(
                &hub,
                &t,
                round as usize,
                round * 1_000,
                FaultCounters::default(),
                LintCounters::default(),
                store.counters(),
                NetCounters::default(),
            );
            store.on_checkpoint(&snap);
            assert_eq!(store.generation(), round);
        }
        assert_eq!(store.counters().snapshots_written, 4);
        assert_eq!(store.counters().compactions, 4);
        // Ring of 2: generations 3 and 4 survive; journals of pruned
        // generations are gone with them.
        let names = medium.list().unwrap();
        assert!(names.contains(&"snapshot-3.dfs".to_owned()));
        assert!(names.contains(&"snapshot-4.dfs".to_owned()));
        assert!(!names.contains(&"snapshot-1.dfs".to_owned()));
        assert!(!names.contains(&"journal-1.wal".to_owned()));
        assert!(names.contains(&"journal-4.wal".to_owned()));
    }

    #[test]
    fn journaled_rounds_recover_without_a_checkpoint() {
        let medium = SimMedium::new();
        let mut store = FleetStore::create(medium.clone(), 2).unwrap();
        let t = table();
        let mut hub = CorpusHub::new(64);
        store.on_start(&hub, &t);
        hub.publish_corpus(0, "# seed 0 signals=5\nr0 = openat$/dev/video0()\n\n");
        hub.publish_coverage([simkernel::coverage::Block(0x42)]);
        hub.record_sample(9_000);
        store.on_round(&hub, &t, 1, 9_000, &FaultCounters::default(), &LintCounters::default(), &NetCounters::default());

        let recovered = RecoveryManager::new(medium).recover().unwrap();
        assert_eq!(recovered.snapshot.round, 1);
        assert_eq!(recovered.snapshot.clock_us, 9_000);
        assert!(recovered.snapshot.corpus_text.contains("r0 = openat$/dev/video0()"));
        assert_eq!(recovered.snapshot.coverage, vec![0x42]);
    }

    #[test]
    fn storage_failures_degrade_to_io_error_counters() {
        let medium = SimMedium::new();
        let mut store = FleetStore::create(medium.clone(), 2).unwrap();
        let t = table();
        let hub = hub_with_state();
        store.on_start(&hub, &t);
        // Exhaust the byte budget: every subsequent write/append fails
        // with NoSpace, but nothing panics and the campaign would go on.
        medium.push_fault(MediumFault::NoSpace { after_bytes: 0 });
        let mut full_hub = hub_with_state();
        full_hub.publish_coverage([simkernel::coverage::Block(0x99)]);
        full_hub.record_sample(2_000);
        store.on_round(&full_hub, &t, 1, 2_000, &FaultCounters::default(), &LintCounters::default(), &NetCounters::default());
        let snap = FleetSnapshot::capture(
            &full_hub,
            &t,
            1,
            2_000,
            FaultCounters::default(),
            LintCounters::default(),
            store.counters(),
            NetCounters::default(),
        );
        store.on_checkpoint(&snap);
        assert!(store.counters().io_errors > 0);
        assert_eq!(store.counters().snapshots_written, 0);
    }

    #[test]
    fn resume_seals_a_fresh_generation() {
        let medium = SimMedium::new();
        let mut store = FleetStore::create(medium.clone(), 3).unwrap();
        let t = table();
        let hub = hub_with_state();
        store.on_start(&CorpusHub::new(64), &t);
        store.on_round(&hub, &t, 1, 1_000, &FaultCounters::default(), &LintCounters::default(), &NetCounters::default());
        drop(store);

        let recovered = RecoveryManager::new(medium.clone()).recover().unwrap();
        let resumed = FleetStore::resume(medium.clone(), 3, &recovered).unwrap();
        assert_eq!(resumed.generation(), 1, "sealed past journal-0");
        assert!(resumed.counters().recoveries >= 1);
        let names = medium.list().unwrap();
        assert!(names.contains(&"snapshot-1.dfs".to_owned()));
        assert!(names.contains(&"journal-1.wal".to_owned()));
        // And the seal itself recovers clean.
        let again = RecoveryManager::new(medium).recover().unwrap();
        assert_eq!(again.snapshot.round, 1);
        assert_eq!(again.snapshot.clock_us, 1_000);
    }
}
