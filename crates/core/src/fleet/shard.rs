//! One fleet shard: a [`FuzzingEngine`] plus the bookkeeping that ties it
//! to the hub — a pull cursor, the clock offset carried over a resume,
//! and an [`EventBus`] handle for telemetry.
//!
//! Shard slices run on worker threads; everything that touches the hub
//! ([`publish`](Shard::publish), [`pull`](Shard::pull)) runs on the
//! orchestrator thread, sequentially in shard order, which is what makes
//! a whole fleet campaign deterministic for a fixed seed.

use super::events::{EventBus, FleetEvent};
use super::hub::CorpusHub;
use crate::engine::FuzzingEngine;

/// A fleet shard.
#[derive(Debug)]
pub struct Shard {
    /// Shard index (also the engine's seed lane).
    pub id: usize,
    engine: FuzzingEngine,
    /// Hub pull cursor: seeds with `seq >= cursor` are news to us.
    cursor: u64,
    bus: EventBus,
    /// Fleet virtual time that elapsed before this process (resume).
    clock_offset_us: u64,
}

impl Shard {
    /// Wraps a freshly booted engine.
    pub fn new(id: usize, engine: FuzzingEngine, bus: EventBus, clock_offset_us: u64) -> Self {
        Self { id, engine, cursor: 0, bus, clock_offset_us }
    }

    /// Primes the shard from the hub at campaign start: imports the whole
    /// hub corpus, merges the hub relation graph, and fast-forwards the
    /// pull cursor past everything just taken. Emits `ShardStarted`.
    /// Returns the number of seeds restored.
    pub fn restore_from_hub(&mut self, hub: &CorpusHub) -> usize {
        let (text, cursor, _) = hub.pull_corpus(self.id, self.cursor);
        let (accepted, _) = self.engine.import_corpus(&text);
        self.cursor = cursor;
        if let Some(graph) = hub.relations() {
            self.engine.merge_relations(graph);
        }
        self.bus.emit(FleetEvent::ShardStarted { shard: self.id, restored_seeds: accepted });
        accepted
    }

    /// Runs the engine until its local clock reaches `local_target_us`,
    /// then emits a heartbeat. Safe to call from a worker thread; the
    /// shard owns everything it touches.
    pub fn run_slice(&mut self, local_target_us: u64, round: usize) {
        self.engine.run_until(local_target_us);
        self.bus.emit(FleetEvent::Heartbeat {
            shard: self.id,
            round,
            clock_us: self.global_clock_us(),
            executions: self.engine.executions(),
            corpus_len: self.engine.corpus().len(),
            coverage: self.engine.kernel_coverage(),
            crashes: self.engine.crash_db().len(),
        });
    }

    /// Publishes this shard's corpus, relation graph, and observed kernel
    /// blocks to the hub. Returns seeds newly accepted by the hub.
    /// (Crashes sync separately, fleet-wide, via
    /// [`CorpusHub::sync_crashes`].)
    pub fn publish(&mut self, hub: &mut CorpusHub) -> usize {
        let accepted = hub.publish_corpus(self.id, &self.engine.export_corpus());
        hub.publish_relations(self.engine.relation_graph());
        hub.publish_coverage(self.engine.observed_blocks());
        accepted
    }

    /// Pulls peers' seeds published since the last pull and merges the
    /// hub relation graph. Returns seeds accepted into the engine corpus.
    pub fn pull(&mut self, hub: &CorpusHub) -> usize {
        let (text, cursor, delivered) = hub.pull_corpus(self.id, self.cursor);
        self.cursor = cursor;
        let mut accepted = 0;
        if delivered > 0 {
            accepted = self.engine.import_corpus(&text).0;
        }
        if let Some(graph) = hub.relations() {
            self.engine.merge_relations(graph);
        }
        accepted
    }

    /// Emits the final `ShardFinished` event.
    pub fn finish(&self) {
        self.bus.emit(FleetEvent::ShardFinished {
            shard: self.id,
            clock_us: self.global_clock_us(),
            executions: self.engine.executions(),
            coverage: self.engine.kernel_coverage(),
            crashes: self.engine.crash_db().len(),
        });
    }

    /// The shard's position on the fleet clock (resume offset + local).
    pub fn global_clock_us(&self) -> u64 {
        self.clock_offset_us + self.engine.virtual_time_us()
    }

    /// The wrapped engine.
    pub fn engine(&self) -> &FuzzingEngine {
        &self.engine
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FuzzerConfig;
    use simdevice::catalog;

    #[test]
    fn publish_then_pull_moves_seeds_between_shards() {
        let (bus, _rx) = EventBus::new();
        let spec = catalog::device_a1();
        let mut a = Shard::new(
            0,
            FuzzingEngine::new(spec.clone().boot(), FuzzerConfig::droidfuzz(1)),
            bus.clone(),
            0,
        );
        let mut b = Shard::new(
            1,
            FuzzingEngine::new(spec.clone().boot(), FuzzerConfig::droidfuzz(2)),
            bus.clone(),
            0,
        );
        let mut hub = CorpusHub::new(512);
        a.run_slice(0, 0); // no-op slice, just exercises the heartbeat path
        a.engine.run_iterations(150);
        assert!(!a.engine().corpus().is_empty());
        let published = a.publish(&mut hub);
        assert!(published > 0);
        let before = b.engine().corpus().len();
        let pulled = b.pull(&hub);
        assert!(pulled > 0, "peer seeds should import cleanly");
        assert_eq!(b.engine().corpus().len(), before + pulled);
        // A second pull with nothing new delivers nothing.
        assert_eq!(b.pull(&hub), 0);
        // The publisher never pulls its own seeds back.
        assert_eq!(a.pull(&hub), 0);
    }

    #[test]
    fn relations_propagate_through_the_hub() {
        let (bus, _rx) = EventBus::new();
        let spec = catalog::device_a1();
        let mut a = Shard::new(
            0,
            FuzzingEngine::new(spec.clone().boot(), FuzzerConfig::droidfuzz(3)),
            bus.clone(),
            0,
        );
        let mut b = Shard::new(
            1,
            FuzzingEngine::new(spec.clone().boot(), FuzzerConfig::droidfuzz(4)),
            bus.clone(),
            0,
        );
        a.engine.run_iterations(400);
        assert!(a.engine().relation_graph().edge_count() > 0);
        let mut hub = CorpusHub::new(512);
        a.publish(&mut hub);
        let before = b.engine().relation_graph().edge_count();
        b.pull(&hub);
        assert!(
            b.engine().relation_graph().edge_count() >= before,
            "merging the hub graph never loses edges"
        );
        assert!(b.engine().relation_graph().edge_count() > 0);
    }
}
