//! One fleet shard: a [`FuzzingEngine`] plus the bookkeeping that ties it
//! to the hub — a pull cursor, the clock offset carried over a resume,
//! and an [`EventBus`] handle for telemetry.
//!
//! Shard slices run on worker threads; everything that touches the hub
//! ([`publish`](Shard::publish), [`pull`](Shard::pull)) runs on the
//! orchestrator thread, sequentially in shard order, which is what makes
//! a whole fleet campaign deterministic for a fixed seed.

use super::events::{EventBus, FleetEvent};
use super::hub::CorpusHub;
use crate::engine::FuzzingEngine;
use crate::relation::RelationGraph;
use crate::supervisor::FaultCounters;
use droidfuzz_analysis::LintCounters;
use simkernel::coverage::Block;

/// One shard's batched round traffic: everything the shard wants the hub
/// to see, assembled on the worker thread at the end of a slice
/// ([`Shard::prepare_update`]) and applied on the orchestrator thread in
/// shard-id order ([`CorpusHub::apply_update`]). Deltas, not dumps: only
/// seeds admitted, blocks first observed, and (when dirty) the relation
/// graph since the shard's last update.
#[derive(Debug)]
pub struct ShardUpdate {
    /// Publishing shard.
    pub shard: usize,
    /// Seeds admitted since the last update, in corpus interchange text.
    pub corpus_delta: String,
    /// Kernel blocks first observed since the last update.
    pub new_blocks: Vec<Block>,
    /// The shard's relation graph, cloned only when its revision moved
    /// since the last update.
    pub relations: Option<RelationGraph>,
}

/// A fleet shard.
#[derive(Debug)]
pub struct Shard {
    /// Shard index (also the engine's seed lane).
    pub id: usize,
    engine: FuzzingEngine,
    /// Hub pull cursor: seeds with `seq >= cursor` are news to us.
    cursor: u64,
    bus: EventBus,
    /// Fleet virtual time that elapsed before this engine booted: the
    /// resume offset, plus any slices this shard skipped (restart after a
    /// lost device, quarantine rounds).
    clock_offset_us: u64,
    /// Executions retired with previous engines (lost-device restarts).
    retired_executions: u64,
    /// Fault counters retired with previous engines.
    retired_faults: FaultCounters,
    /// Lint-gate counters retired with previous engines.
    retired_lint: LintCounters,
    /// Lost-device restarts performed on this shard.
    restarts: u32,
    /// Device losses since the shard last completed a healthy slice.
    consecutive_losses: u32,
    /// Times the shard has been quarantined for flapping.
    quarantines: u32,
    /// First round the shard may run again after a quarantine.
    quarantined_until: usize,
    /// Corpus admission sequence already covered by a published update.
    corpus_pub_seq: u64,
    /// Coverage-log length already covered by a published update.
    blocks_pub: usize,
    /// Relation-graph revision already covered by a published update.
    relations_pub_rev: u64,
}

impl Shard {
    /// Wraps a freshly booted engine.
    pub fn new(id: usize, engine: FuzzingEngine, bus: EventBus, clock_offset_us: u64) -> Self {
        Self {
            id,
            engine,
            cursor: 0,
            bus,
            clock_offset_us,
            retired_executions: 0,
            retired_faults: FaultCounters::default(),
            retired_lint: LintCounters::default(),
            restarts: 0,
            consecutive_losses: 0,
            quarantines: 0,
            quarantined_until: 0,
            corpus_pub_seq: 0,
            blocks_pub: 0,
            relations_pub_rev: 0,
        }
    }

    /// Primes the shard from the hub at campaign start: imports the whole
    /// hub corpus, merges the hub relation graph, and fast-forwards the
    /// pull cursor past everything just taken. Emits `ShardStarted`.
    /// Returns the number of seeds restored.
    pub fn restore_from_hub(&mut self, hub: &CorpusHub) -> usize {
        let (text, cursor, _) = hub.pull_corpus(self.id, self.cursor);
        self.apply_restore(&text, cursor, hub.relations())
    }

    /// The hub-delivery half of [`restore_from_hub`](Self::restore_from_hub),
    /// split out so a remote worker can apply a hub's answer received
    /// over the wire with byte-identical effect: imports `text`
    /// unconditionally, advances the pull cursor to `cursor`, merges
    /// `graph` when present, and emits `ShardStarted`.
    pub fn apply_restore(
        &mut self,
        text: &str,
        cursor: u64,
        graph: Option<&RelationGraph>,
    ) -> usize {
        let (accepted, _) = self.engine.import_corpus(text);
        self.cursor = cursor;
        if let Some(graph) = graph {
            self.engine.merge_relations(graph);
        }
        self.mark_published();
        self.bus.emit(FleetEvent::ShardStarted { shard: self.id, restored_seeds: accepted });
        accepted
    }

    /// Runs the engine until the shard's position on the *fleet* clock
    /// reaches `global_target_us` (the shard subtracts its own offset),
    /// then emits a heartbeat. Safe to call from a worker thread; the
    /// shard owns everything it touches.
    pub fn run_slice(&mut self, global_target_us: u64, round: usize) {
        let local_target_us = global_target_us.saturating_sub(self.clock_offset_us);
        self.engine.run_until(local_target_us);
        self.bus.emit(FleetEvent::Heartbeat {
            shard: self.id,
            round,
            clock_us: self.global_clock_us(),
            executions: self.total_executions(),
            corpus_len: self.engine.corpus().len(),
            coverage: self.engine.kernel_coverage(),
            crashes: self.engine.crash_db().len(),
        });
    }

    /// Re-primes the shard with the *entire* hub corpus — including the
    /// seeds this shard itself published before losing its device, which
    /// an ordinary [`pull`](Self::pull) would skip as own-origin — plus
    /// the hub relation graph. This is the lost-device restart path: the
    /// replacement engine inherits everything the fleet knows. Emits
    /// `ShardStarted`; returns the seeds restored.
    pub fn restore_all_from_hub(&mut self, hub: &CorpusHub) -> usize {
        self.apply_full_restore(&hub.corpus_text(), hub.tip(), hub.relations())
    }

    /// The delivery half of [`restore_all_from_hub`](Self::restore_all_from_hub)
    /// for remote workers: `text` must be the hub's *entire* live corpus
    /// and `cursor` its tip.
    pub fn apply_full_restore(
        &mut self,
        text: &str,
        cursor: u64,
        graph: Option<&RelationGraph>,
    ) -> usize {
        let (accepted, _) = self.engine.import_corpus(text);
        self.cursor = cursor;
        if let Some(graph) = graph {
            self.engine.merge_relations(graph);
        }
        self.mark_published();
        self.bus.emit(FleetEvent::ShardStarted { shard: self.id, restored_seeds: accepted });
        accepted
    }

    /// Skips a quarantined slice: the shard does not run, but its clock
    /// offset absorbs the slice so it rejoins the fleet clock without a
    /// giant catch-up slice afterwards.
    pub fn skip_slice(&mut self, slice_us: u64) {
        self.clock_offset_us += slice_us;
    }

    /// Retires the current (lost-device) engine into the shard's
    /// accumulators and installs a replacement booted at fleet time
    /// `clock_offset_us`. Follow with
    /// [`restore_all_from_hub`](Self::restore_all_from_hub) to re-prime
    /// the fresh engine with the whole hub corpus — nothing the old
    /// engine published is lost.
    pub fn replace_engine(&mut self, engine: FuzzingEngine, clock_offset_us: u64) {
        self.retired_executions += self.engine.executions();
        self.retired_faults.absorb(&self.engine.fault_counters());
        self.retired_lint.absorb(&self.engine.lint_counters());
        self.engine = engine;
        self.cursor = 0;
        self.corpus_pub_seq = 0;
        self.blocks_pub = 0;
        self.relations_pub_rev = 0;
        self.clock_offset_us = clock_offset_us;
        self.restarts += 1;
        self.consecutive_losses += 1;
    }

    /// Records a healthy (device survived) slice, resetting the flap
    /// streak that drives quarantine.
    pub fn note_healthy(&mut self) {
        self.consecutive_losses = 0;
    }

    /// Device losses since the last healthy slice.
    pub fn consecutive_losses(&self) -> u32 {
        self.consecutive_losses
    }

    /// Benches the shard until `round`: [`is_quarantined`] stays true for
    /// every earlier round. Bumps the quarantine count (which the fleet
    /// uses to double successive benchings).
    ///
    /// [`is_quarantined`]: Self::is_quarantined
    pub fn quarantine_until(&mut self, round: usize) {
        self.quarantined_until = self.quarantined_until.max(round);
        self.quarantines += 1;
    }

    /// Whether the shard sits out `round`.
    pub fn is_quarantined(&self, round: usize) -> bool {
        round < self.quarantined_until
    }

    /// Lost-device restarts performed on this shard.
    pub fn restarts(&self) -> u32 {
        self.restarts
    }

    /// Times this shard has been quarantined for flapping.
    pub fn quarantines(&self) -> u32 {
        self.quarantines
    }

    /// Executions across every engine this shard has owned (this run).
    pub fn total_executions(&self) -> u64 {
        self.retired_executions + self.engine.executions()
    }

    /// Fault counters across every engine this shard has owned.
    pub fn fault_totals(&self) -> FaultCounters {
        let mut totals = self.retired_faults;
        totals.absorb(&self.engine.fault_counters());
        totals
    }

    /// Lint-gate counters across every engine this shard has owned.
    pub fn lint_totals(&self) -> LintCounters {
        let mut totals = self.retired_lint;
        totals.absorb(&self.engine.lint_counters());
        totals
    }

    /// Publishes this shard's corpus, relation graph, and observed kernel
    /// blocks to the hub. Returns seeds newly accepted by the hub.
    /// (Crashes sync separately, fleet-wide, via
    /// [`CorpusHub::sync_crashes`].)
    pub fn publish(&mut self, hub: &mut CorpusHub) -> usize {
        let accepted = hub.publish_corpus(self.id, &self.engine.export_corpus());
        hub.publish_relations(self.engine.relation_graph());
        hub.publish_coverage(self.engine.observed_blocks());
        self.mark_published();
        accepted
    }

    /// Assembles this shard's batched hub traffic since the last update
    /// (or full [`publish`](Self::publish)): the corpus delta by admission
    /// sequence, the newly observed kernel blocks, and — only when the
    /// graph's revision moved — a relation-graph clone. Runs on the worker
    /// thread at the end of a slice, so the orchestrator's sequential sync
    /// section only applies pre-built messages.
    pub fn prepare_update(&mut self) -> ShardUpdate {
        let corpus_delta = self.engine.export_corpus_since(self.corpus_pub_seq);
        self.corpus_pub_seq = self.engine.corpus_seq();
        let new_blocks = self.engine.observed_blocks_since(self.blocks_pub).to_vec();
        self.blocks_pub = self.engine.observed_blocks_len();
        let rev = self.engine.relation_graph().revision();
        let relations = if rev != self.relations_pub_rev {
            self.relations_pub_rev = rev;
            Some(self.engine.relation_graph().clone())
        } else {
            None
        };
        ShardUpdate { shard: self.id, corpus_delta, new_blocks, relations }
    }

    /// Fast-forwards the update cursors to the engine's current state —
    /// after a full publish or a hub import, nothing current is pending.
    fn mark_published(&mut self) {
        self.corpus_pub_seq = self.engine.corpus_seq();
        self.blocks_pub = self.engine.observed_blocks_len();
        self.relations_pub_rev = self.engine.relation_graph().revision();
    }

    /// Pulls peers' seeds published since the last pull and merges the
    /// hub relation graph. Returns seeds accepted into the engine corpus.
    pub fn pull(&mut self, hub: &CorpusHub) -> usize {
        let (text, cursor, delivered) = hub.pull_corpus(self.id, self.cursor);
        self.apply_pull(&text, cursor, delivered, hub.relations())
    }

    /// The delivery half of [`pull`](Self::pull) for remote workers:
    /// applies a hub pull answer received over the wire. Unlike
    /// [`apply_restore`](Self::apply_restore), the corpus import is
    /// gated on `delivered > 0` — exactly mirroring the local path, so
    /// distributed and local campaigns stay bit-identical.
    pub fn apply_pull(
        &mut self,
        text: &str,
        cursor: u64,
        delivered: usize,
        graph: Option<&RelationGraph>,
    ) -> usize {
        self.cursor = cursor;
        let mut accepted = 0;
        if delivered > 0 {
            accepted = self.engine.import_corpus(text).0;
        }
        if let Some(graph) = graph {
            self.engine.merge_relations(graph);
        }
        // Everything just imported came *from* the hub; pushing it back
        // next round would be pure dedup traffic.
        self.mark_published();
        accepted
    }

    /// Emits the final `ShardFinished` event.
    pub fn finish(&self) {
        self.bus.emit(FleetEvent::ShardFinished {
            shard: self.id,
            clock_us: self.global_clock_us(),
            executions: self.total_executions(),
            coverage: self.engine.kernel_coverage(),
            crashes: self.engine.crash_db().len(),
            faults: self.fault_totals(),
            lint: self.lint_totals(),
            restarts: self.restarts,
        });
    }

    /// The shard's position on the fleet clock (offset + engine local).
    pub fn global_clock_us(&self) -> u64 {
        self.clock_offset_us + self.engine.virtual_time_us()
    }

    /// Fleet time at which the current engine booted (resume offset plus
    /// skipped/restarted slices).
    pub fn clock_offset_us(&self) -> u64 {
        self.clock_offset_us
    }

    /// The shard's hub pull cursor (seeds with `seq >= cursor` are news).
    pub fn cursor(&self) -> u64 {
        self.cursor
    }

    /// The wrapped engine.
    pub fn engine(&self) -> &FuzzingEngine {
        &self.engine
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FuzzerConfig;
    use simdevice::catalog;

    #[test]
    fn publish_then_pull_moves_seeds_between_shards() {
        let (bus, _rx) = EventBus::new();
        let spec = catalog::device_a1();
        let mut a = Shard::new(
            0,
            FuzzingEngine::new(spec.clone().boot(), FuzzerConfig::droidfuzz(1)),
            bus.clone(),
            0,
        );
        let mut b = Shard::new(
            1,
            FuzzingEngine::new(spec.clone().boot(), FuzzerConfig::droidfuzz(2)),
            bus.clone(),
            0,
        );
        let mut hub = CorpusHub::new(512);
        a.run_slice(0, 0); // no-op slice, just exercises the heartbeat path
        a.engine.run_iterations(150);
        assert!(!a.engine().corpus().is_empty());
        let published = a.publish(&mut hub);
        assert!(published > 0);
        let before = b.engine().corpus().len();
        let pulled = b.pull(&hub);
        assert!(pulled > 0, "peer seeds should import cleanly");
        assert_eq!(b.engine().corpus().len(), before + pulled);
        // A second pull with nothing new delivers nothing.
        assert_eq!(b.pull(&hub), 0);
        // The publisher never pulls its own seeds back.
        assert_eq!(a.pull(&hub), 0);
    }

    #[test]
    fn replace_engine_retires_counters_and_reprimes_from_hub() {
        let (bus, _rx) = EventBus::new();
        let spec = catalog::device_a1();
        let mut shard = Shard::new(
            0,
            FuzzingEngine::new(spec.clone().boot(), FuzzerConfig::droidfuzz(5)),
            bus.clone(),
            0,
        );
        shard.engine.run_iterations(150);
        let execs = shard.engine().executions();
        assert!(execs > 0);
        let mut hub = CorpusHub::new(512);
        assert!(shard.publish(&mut hub) > 0);
        let replacement = FuzzingEngine::new(spec.clone().boot(), FuzzerConfig::droidfuzz(7));
        shard.replace_engine(replacement, 5_000_000);
        assert_eq!(shard.restarts(), 1);
        assert_eq!(shard.consecutive_losses(), 1);
        assert_eq!(shard.total_executions(), execs, "retired executions survive the swap");
        assert_eq!(shard.engine().executions(), 0);
        assert_eq!(shard.global_clock_us(), 5_000_000);
        // The fresh engine re-primes with everything the old one
        // published — including its own seeds, which a plain pull skips.
        assert_eq!(shard.pull(&hub), 0, "a pull cannot recover own-origin seeds");
        assert!(shard.restore_all_from_hub(&hub) > 0, "hub seeds flow back into the replacement");
        shard.note_healthy();
        assert_eq!(shard.consecutive_losses(), 0);
    }

    #[test]
    fn quarantine_benches_exact_rounds_and_skip_slices_keep_the_clock() {
        let (bus, _rx) = EventBus::new();
        let spec = catalog::device_a1();
        let mut shard = Shard::new(
            0,
            FuzzingEngine::new(spec.boot(), FuzzerConfig::droidfuzz(9)),
            bus.clone(),
            0,
        );
        assert!(!shard.is_quarantined(0));
        shard.quarantine_until(3);
        assert_eq!(shard.quarantines(), 1);
        assert!(shard.is_quarantined(2));
        assert!(!shard.is_quarantined(3));
        shard.skip_slice(1_000);
        shard.skip_slice(2_000);
        assert_eq!(shard.clock_offset_us(), 3_000);
        assert_eq!(shard.global_clock_us(), 3_000, "skipped time counts on the fleet clock");
    }

    #[test]
    fn relations_propagate_through_the_hub() {
        let (bus, _rx) = EventBus::new();
        let spec = catalog::device_a1();
        let mut a = Shard::new(
            0,
            FuzzingEngine::new(spec.clone().boot(), FuzzerConfig::droidfuzz(3)),
            bus.clone(),
            0,
        );
        let mut b = Shard::new(
            1,
            FuzzingEngine::new(spec.clone().boot(), FuzzerConfig::droidfuzz(4)),
            bus.clone(),
            0,
        );
        a.engine.run_iterations(400);
        assert!(a.engine().relation_graph().edge_count() > 0);
        let mut hub = CorpusHub::new(512);
        a.publish(&mut hub);
        let before = b.engine().relation_graph().edge_count();
        b.pull(&hub);
        assert!(
            b.engine().relation_graph().edge_count() >= before,
            "merging the hub graph never loses edges"
        );
        assert!(b.engine().relation_graph().edge_count() > 0);
    }
}
