//! Fleet checkpoint/resume: serializes the hub's persistent data — live
//! corpus, merged relation graph, union coverage and its time series, and
//! the deduplicated crash database — into one line-oriented text snapshot
//! that can be written to disk mid-campaign and restored after a kill.
//!
//! Layout (sections in fixed order; the corpus goes last because its body
//! is free-form program text):
//!
//! ```text
//! # droidfuzz-fleet-snapshot v1 round=<n> clock_us=<t>
//! # section relations
//! <RelationGraph::export text>
//! # section coverage
//! block <hex>
//! # section series
//! sample <time_us> <value>
//! # section crashes
//! crash <count>\t<first_seen_us>\t<kind>\t<component>\t<title>\t<repro|->
//! # section faults
//! fault <counter> <value>
//! # section lint
//! lint <counter> <value>
//! # section store
//! store <counter> <value>
//! # section net
//! net <counter> <value>
//! # section corpus
//! <Corpus::export text>
//! ```
//!
//! Parsing is tolerant the same way corpus import is: malformed lines are
//! counted and skipped, never fatal, so a truncated snapshot restores
//! everything it still carries.

use super::hub::CorpusHub;
use crate::crashes::CrashRecord;
use crate::net::NetCounters;
use crate::store::StoreCounters;
use crate::supervisor::FaultCounters;
use droidfuzz_analysis::LintCounters;
use fuzzlang::desc::DescTable;
use simkernel::coverage::Block;
use simkernel::report::{BugKind, Component};

/// Snapshot format magic + version, the required first-line prefix.
pub const SNAPSHOT_HEADER: &str = "# droidfuzz-fleet-snapshot v1";

/// A parsed (or captured) fleet snapshot.
#[derive(Debug, Clone, Default)]
pub struct FleetSnapshot {
    /// Sync rounds completed when the snapshot was taken.
    pub round: usize,
    /// Fleet virtual clock at the snapshot, µs.
    pub clock_us: u64,
    /// [`RelationGraph::export`] text (empty when no shard learned).
    ///
    /// [`RelationGraph::export`]: crate::relation::RelationGraph::export
    pub relations_text: String,
    /// Union coverage block ids.
    pub coverage: Vec<u64>,
    /// Union-coverage-over-time samples.
    pub series: Vec<(u64, f64)>,
    /// Deduplicated fleet crashes.
    pub crashes: Vec<CrashRecord>,
    /// Fault/recovery counters accumulated over the whole campaign
    /// (including pre-kill rounds); a resume treats these as its
    /// baseline.
    pub fault_totals: FaultCounters,
    /// Lint-gate counters accumulated over the whole campaign; a resume
    /// treats these as its baseline, like `fault_totals`.
    pub lint_totals: LintCounters,
    /// Durability counters accumulated over the whole campaign; a resume
    /// treats these as its baseline, like `fault_totals`.
    pub store_totals: StoreCounters,
    /// Wire-layer counters accumulated over the whole campaign; a resume
    /// treats these as its baseline, like `fault_totals`. All-zero for a
    /// purely local campaign.
    pub net_totals: NetCounters,
    /// [`Corpus::export`]-format text of the hub's live seeds.
    ///
    /// [`Corpus::export`]: crate::corpus::Corpus::export
    pub corpus_text: String,
    /// Malformed lines skipped during [`parse`](Self::parse) (0 for a
    /// freshly captured snapshot). Store recovery propagates this count
    /// into its [`RecoveryReport`](crate::store::RecoveryReport).
    pub malformed_lines: usize,
}

fn kind_tag(kind: BugKind) -> &'static str {
    match kind {
        BugKind::Warning => "warning",
        BugKind::Bug => "bug",
        BugKind::KasanUseAfterFree => "kasan-uaf",
        BugKind::KasanInvalidAccess => "kasan-invalid",
        BugKind::SoftLockup => "soft-lockup",
        BugKind::Panic => "panic",
        BugKind::NativeCrash => "native-crash",
    }
}

fn parse_kind(tag: &str) -> Option<BugKind> {
    Some(match tag {
        "warning" => BugKind::Warning,
        "bug" => BugKind::Bug,
        "kasan-uaf" => BugKind::KasanUseAfterFree,
        "kasan-invalid" => BugKind::KasanInvalidAccess,
        "soft-lockup" => BugKind::SoftLockup,
        "panic" => BugKind::Panic,
        "native-crash" => BugKind::NativeCrash,
        _ => return None,
    })
}

fn component_tag(component: Component) -> &'static str {
    match component {
        Component::KernelDriver => "kernel-driver",
        Component::KernelSubsystem => "kernel-subsystem",
        Component::Hal => "hal",
    }
}

fn parse_component(tag: &str) -> Option<Component> {
    Some(match tag {
        "kernel-driver" => Component::KernelDriver,
        "kernel-subsystem" => Component::KernelSubsystem,
        "hal" => Component::Hal,
        _ => return None,
    })
}

/// Escapes a field so it fits on one tab-separated line.
pub(crate) fn escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            other => out.push(other),
        }
    }
    out
}

pub(crate) fn unescape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut chars = text.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('t') => out.push('\t'),
            Some('\\') => out.push('\\'),
            Some(other) => out.push(other),
            None => out.push('\\'),
        }
    }
    out
}

impl FleetSnapshot {
    /// Captures the hub's state. `table` resolves relation-edge names;
    /// `round`/`clock_us` stamp the fleet's position for resume;
    /// `fault_totals` carries the campaign's cumulative fault/recovery
    /// counters across a kill.
    #[allow(clippy::too_many_arguments)] // one positional slot per snapshot section
    pub fn capture(
        hub: &CorpusHub,
        table: &DescTable,
        round: usize,
        clock_us: u64,
        fault_totals: FaultCounters,
        lint_totals: LintCounters,
        store_totals: StoreCounters,
        net_totals: NetCounters,
    ) -> Self {
        Self {
            round,
            clock_us,
            relations_text: hub.relations().map(|g| g.export(table)).unwrap_or_default(),
            coverage: hub.coverage_blocks().iter().map(|b| b.0).collect(),
            series: hub.series().points().to_vec(),
            crashes: hub.crashes().records().into_iter().cloned().collect(),
            fault_totals,
            lint_totals,
            store_totals,
            net_totals,
            corpus_text: hub.corpus_text(),
            malformed_lines: 0,
        }
    }

    /// Serializes to snapshot text. `parse` → `to_text` is byte-identical
    /// for a clean snapshot.
    pub fn to_text(&self) -> String {
        let mut out =
            format!("{SNAPSHOT_HEADER} round={} clock_us={}\n", self.round, self.clock_us);
        out.push_str("# section relations\n");
        out.push_str(&self.relations_text);
        out.push_str("# section coverage\n");
        for block in &self.coverage {
            out.push_str(&format!("block {block:x}\n"));
        }
        out.push_str("# section series\n");
        for &(t, v) in &self.series {
            out.push_str(&format!("sample {t} {v}\n"));
        }
        out.push_str("# section crashes\n");
        for crash in &self.crashes {
            out.push_str(&format!("crash {}\n", crash_fields(crash)));
        }
        out.push_str("# section faults\n");
        for (key, value) in self.fault_totals.entries() {
            out.push_str(&format!("fault {key} {value}\n"));
        }
        out.push_str("# section lint\n");
        for (key, value) in self.lint_totals.entries() {
            out.push_str(&format!("lint {key} {value}\n"));
        }
        out.push_str("# section store\n");
        for (key, value) in self.store_totals.entries() {
            out.push_str(&format!("store {key} {value}\n"));
        }
        out.push_str("# section net\n");
        for (key, value) in self.net_totals.entries() {
            out.push_str(&format!("net {key} {value}\n"));
        }
        out.push_str("# section corpus\n");
        out.push_str(&self.corpus_text);
        out
    }

    /// Parses snapshot text. Fails only on a missing/foreign header;
    /// malformed section lines are skipped and counted in
    /// `malformed_lines`.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut lines = text.lines();
        let header = lines.next().unwrap_or_default();
        if !header.starts_with(SNAPSHOT_HEADER) {
            return Err(format!("not a fleet snapshot (expected `{SNAPSHOT_HEADER} ...`)"));
        }
        let mut snap = FleetSnapshot::default();
        for field in header.split_whitespace() {
            if let Some(v) = field.strip_prefix("round=") {
                snap.round = v.parse().map_err(|_| "bad round in header".to_owned())?;
            } else if let Some(v) = field.strip_prefix("clock_us=") {
                snap.clock_us = v.parse().map_err(|_| "bad clock_us in header".to_owned())?;
            }
        }
        #[derive(PartialEq)]
        enum Section {
            None,
            Relations,
            Coverage,
            Series,
            Crashes,
            Faults,
            Lint,
            Store,
            Net,
            Corpus,
        }
        let mut section = Section::None;
        for line in lines {
            if let Some(name) = line.strip_prefix("# section ") {
                section = match name.trim() {
                    "relations" => Section::Relations,
                    "coverage" => Section::Coverage,
                    "series" => Section::Series,
                    "crashes" => Section::Crashes,
                    "faults" => Section::Faults,
                    "lint" => Section::Lint,
                    "store" => Section::Store,
                    "net" => Section::Net,
                    "corpus" => Section::Corpus,
                    _ => {
                        snap.malformed_lines += 1;
                        Section::None
                    }
                };
                continue;
            }
            match section {
                // Relations and corpus keep their verbatim text; their own
                // importers do the per-line validation.
                Section::Relations => {
                    snap.relations_text.push_str(line);
                    snap.relations_text.push('\n');
                }
                Section::Corpus => {
                    snap.corpus_text.push_str(line);
                    snap.corpus_text.push('\n');
                }
                Section::Coverage => {
                    match line.strip_prefix("block ").and_then(|v| u64::from_str_radix(v, 16).ok())
                    {
                        Some(block) => snap.coverage.push(block),
                        None => snap.malformed_lines += 1,
                    }
                }
                Section::Series => {
                    let parsed = line.strip_prefix("sample ").and_then(|rest| {
                        let (t, v) = rest.split_once(' ')?;
                        let v: f64 = v.parse().ok()?;
                        v.is_finite().then_some((t.parse::<u64>().ok()?, v))
                    });
                    // A timestamp that runs backwards is corrupt input the
                    // same way a malformed line is: skip it, so the series
                    // restores monotonic (`Series::push_monotonic` would
                    // refuse it downstream anyway).
                    match parsed {
                        Some((t, _)) if snap.series.last().is_some_and(|&(lt, _)| lt > t) => {
                            snap.malformed_lines += 1;
                        }
                        Some(point) => snap.series.push(point),
                        None => snap.malformed_lines += 1,
                    }
                }
                Section::Crashes => match parse_crash_line(line) {
                    Some(record) => snap.crashes.push(record),
                    None => snap.malformed_lines += 1,
                },
                Section::Faults => {
                    let applied = line
                        .strip_prefix("fault ")
                        .and_then(|rest| rest.split_once(' '))
                        .and_then(|(key, v)| Some((key, v.trim().parse::<u64>().ok()?)))
                        .is_some_and(|(key, v)| snap.fault_totals.set(key, v));
                    if !applied {
                        snap.malformed_lines += 1;
                    }
                }
                Section::Lint => {
                    let applied = line
                        .strip_prefix("lint ")
                        .and_then(|rest| rest.split_once(' '))
                        .and_then(|(key, v)| Some((key, v.trim().parse::<u64>().ok()?)))
                        .is_some_and(|(key, v)| snap.lint_totals.set(key, v));
                    if !applied {
                        snap.malformed_lines += 1;
                    }
                }
                Section::Store => {
                    let applied = line
                        .strip_prefix("store ")
                        .and_then(|rest| rest.split_once(' '))
                        .and_then(|(key, v)| Some((key, v.trim().parse::<u64>().ok()?)))
                        .is_some_and(|(key, v)| snap.store_totals.set(key, v));
                    if !applied {
                        snap.malformed_lines += 1;
                    }
                }
                Section::Net => {
                    let applied = line
                        .strip_prefix("net ")
                        .and_then(|rest| rest.split_once(' '))
                        .and_then(|(key, v)| Some((key, v.trim().parse::<u64>().ok()?)))
                        .is_some_and(|(key, v)| snap.net_totals.set(key, v));
                    if !applied {
                        snap.malformed_lines += 1;
                    }
                }
                Section::None => {
                    if !line.trim().is_empty() {
                        snap.malformed_lines += 1;
                    }
                }
            }
        }
        Ok(snap)
    }

    /// Installs the snapshot's state into a fresh hub. The relation graph
    /// needs a vocabulary, so it is rebuilt by the caller (the fleet has
    /// the engines' [`DescTable`]) — this restores everything else.
    pub fn restore_into(&self, hub: &mut CorpusHub) {
        hub.publish_corpus(super::hub::HUB_ORIGIN, &self.corpus_text);
        hub.set_baseline_crashes(&self.crashes);
        hub.publish_coverage(self.coverage.iter().map(|&b| Block(b)));
        hub.restore_series(&self.series);
    }
}

/// The six tab-separated fields of a crash line (everything after the
/// `crash ` keyword) — shared between the snapshot's crashes section and
/// the journal's `crash` delta so both round-trip through
/// [`parse_crash_line`].
pub(crate) fn crash_fields(crash: &CrashRecord) -> String {
    format!(
        "{}\t{}\t{}\t{}\t{}\t{}",
        crash.count,
        crash.first_seen_us,
        kind_tag(crash.kind),
        component_tag(crash.component),
        escape(&crash.title),
        crash.repro.as_deref().map_or_else(|| "-".to_owned(), escape),
    )
}

pub(crate) fn parse_crash_line(line: &str) -> Option<CrashRecord> {
    let rest = line.strip_prefix("crash ")?;
    let fields: Vec<&str> = rest.splitn(6, '\t').collect();
    if fields.len() != 6 {
        return None;
    }
    let repro = match fields[5] {
        "-" => None,
        escaped => Some(unescape(escaped)),
    };
    Some(CrashRecord {
        count: fields[0].parse().ok()?,
        first_seen_us: fields[1].parse().ok()?,
        kind: parse_kind(fields[2])?,
        component: parse_component(fields[3])?,
        title: unescape(fields[4]),
        repro,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_snapshot() -> FleetSnapshot {
        FleetSnapshot {
            round: 2,
            clock_us: 1_800_000_000,
            relations_text: "# relation-graph learns=3\nedge a\tb\t0.5\n".to_owned(),
            coverage: vec![0x10, 0x2f],
            series: vec![(900_000_000, 1.0), (1_800_000_000, 2.0)],
            crashes: vec![CrashRecord {
                title: "WARNING in v4l_querycap".to_owned(),
                kind: BugKind::Warning,
                component: Component::KernelDriver,
                count: 3,
                first_seen_us: 42,
                repro: Some("r0 = openat$/dev/video0()\n".to_owned()),
            }],
            fault_totals: FaultCounters {
                injected: 12,
                link_drops: 5,
                transient_retries: 4,
                hangs: 2,
                device_lost: 1,
                reprovisions: 1,
                ..Default::default()
            },
            lint_totals: LintCounters { rejected: 4, repaired: 9, absint_rejected: 2, absint_repaired: 6 },
            store_totals: StoreCounters {
                journal_records: 31,
                snapshots_written: 2,
                snapshots_skipped: 5,
                ..Default::default()
            },
            net_totals: NetCounters {
                frames_sent: 40,
                frames_received: 38,
                dup_frames: 2,
                reconnects: 1,
                sessions: 2,
                ..Default::default()
            },
            corpus_text: "# seed 0 signals=7\nr0 = openat$/dev/video0()\n\n".to_owned(),
            malformed_lines: 0,
        }
    }

    #[test]
    fn text_roundtrip_is_byte_identical() {
        let snap = sample_snapshot();
        let text = snap.to_text();
        let parsed = FleetSnapshot::parse(&text).expect("clean snapshot parses");
        assert_eq!(parsed.malformed_lines, 0);
        assert_eq!(parsed.to_text(), text);
        assert_eq!(parsed.round, 2);
        assert_eq!(parsed.clock_us, 1_800_000_000);
        assert_eq!(parsed.coverage, vec![0x10, 0x2f]);
        assert_eq!(parsed.series, vec![(900_000_000, 1.0), (1_800_000_000, 2.0)]);
        assert_eq!(parsed.crashes[0].title, "WARNING in v4l_querycap");
        assert_eq!(parsed.crashes[0].repro.as_deref(), Some("r0 = openat$/dev/video0()\n"));
        assert_eq!(parsed.fault_totals, snap.fault_totals, "fault counters round-trip");
        assert_eq!(parsed.fault_totals.injected, 12);
        assert_eq!(parsed.lint_totals, snap.lint_totals, "lint counters round-trip");
        assert_eq!(parsed.lint_totals.repaired, 9);
        assert_eq!(parsed.store_totals, snap.store_totals, "store counters round-trip");
        assert_eq!(parsed.store_totals.journal_records, 31);
        assert_eq!(parsed.net_totals, snap.net_totals, "net counters round-trip");
        assert_eq!(parsed.net_totals.frames_sent, 40);
    }

    #[test]
    fn parse_rejects_foreign_text() {
        assert!(FleetSnapshot::parse("").is_err());
        assert!(FleetSnapshot::parse("# seed 0 signals=1\nr0 = x()\n").is_err());
    }

    #[test]
    fn parse_survives_malformed_lines() {
        let mut text = sample_snapshot().to_text();
        text.push_str("# section coverage\nblock nothex\nblock 3e\n");
        text.push_str("# section series\nsample garbage\nsample 10 NaN\n");
        text.push_str("# section crashes\ncrash truncated\n");
        text.push_str("# section faults\nfault no_such_counter 3\nfault hangs notanumber\n");
        text.push_str("# section lint\nlint no_such_counter 3\nlint repaired notanumber\n");
        text.push_str("# section store\nstore no_such_counter 3\nstore recoveries notanumber\n");
        text.push_str("# section net\nnet no_such_counter 3\nnet dup_frames notanumber\n");
        let parsed = FleetSnapshot::parse(&text).expect("tolerant parse");
        assert_eq!(parsed.malformed_lines, 12);
        assert!(parsed.coverage.contains(&0x3e), "good lines after bad ones still land");
        assert_eq!(parsed.crashes.len(), 1);
        assert_eq!(parsed.fault_totals.hangs, 2, "bad fault lines leave good counters alone");
        assert_eq!(parsed.lint_totals.repaired, 9, "bad lint lines leave good counters alone");
        assert_eq!(parsed.store_totals.journal_records, 31, "bad store lines too");
        assert_eq!(parsed.net_totals.dup_frames, 2, "bad net lines too");
    }

    #[test]
    fn parse_rejects_time_travelling_samples() {
        let mut snap = sample_snapshot();
        snap.series = vec![(100, 1.0), (50, 9.0), (200, 2.0)];
        let parsed = FleetSnapshot::parse(&snap.to_text()).expect("tolerant parse");
        assert_eq!(parsed.series, vec![(100, 1.0), (200, 2.0)], "backwards sample dropped");
        assert_eq!(parsed.malformed_lines, 1);
    }

    #[test]
    fn truncated_snapshot_restores_prefix() {
        let full = sample_snapshot().to_text();
        // Cut mid-way through the crashes section.
        let cut = full.find("# section crashes").unwrap() + "# section crashes\ncrash 3".len();
        let parsed = FleetSnapshot::parse(&full[..cut]).expect("prefix parses");
        assert_eq!(parsed.coverage.len(), 2);
        assert_eq!(parsed.series.len(), 2);
        assert_eq!(parsed.crashes.len(), 0, "the torn crash line is dropped");
        assert_eq!(parsed.malformed_lines, 1);
    }

    #[test]
    fn escape_roundtrips_control_characters() {
        let nasty = "title with\ttab and\nnewline and \\backslash";
        assert_eq!(unescape(&escape(nasty)), nasty);
        assert!(!escape(nasty).contains('\n'));
        assert!(!escape(nasty).contains('\t'));
    }

    #[test]
    fn restore_into_rebuilds_hub_state() {
        let snap = sample_snapshot();
        let mut hub = CorpusHub::new(64);
        snap.restore_into(&mut hub);
        assert_eq!(hub.len(), 1);
        assert_eq!(hub.union_coverage(), 2);
        assert_eq!(hub.crashes().len(), 1);
        assert_eq!(hub.series().points().len(), 2);
        // Restored seeds are visible to every shard.
        assert_eq!(hub.pull_corpus(0, 0).2, 1);
    }
}
