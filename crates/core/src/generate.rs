//! Kernel-user relational payload generation (§IV-C).
//!
//! A payload starts from a *base invocation* sampled by vertex weight,
//! then extends along learned relation edges (each taken with probability
//! equal to its weight; the walk may stop with the residual probability).
//! Producer calls for unresolved resource arguments are inserted as
//! prefixes by [`fuzzlang::gen::append_call`]. Without a relation graph
//! (the `DF-NoRel` ablation and the syzkaller baseline) generation falls
//! back to randomized dependency generation.

use crate::relation::RelationGraph;
use fuzzlang::desc::DescTable;
use fuzzlang::gen::append_call;
use fuzzlang::prog::Prog;
use rand::Rng;

/// Generates one payload by walking the relation graph.
pub fn relational_generate<R: Rng>(
    table: &DescTable,
    graph: &RelationGraph,
    max_calls: usize,
    rng: &mut R,
) -> Prog {
    let mut prog = Prog::new();
    let mut current = graph.sample_base(rng);
    let _ = append_call(&mut prog, table, current, rng);
    let mut stalls = 0;
    while prog.len() < max_calls && stalls < 8 {
        match graph.sample_next(current, rng) {
            Some(next) => {
                if append_call(&mut prog, table, next, rng).is_none() {
                    stalls += 1;
                    continue;
                }
                current = next;
            }
            None => {
                // The walk stopped; restart from a fresh base so the
                // payload still uses its full budget (deep driver state
                // needs long in-process sequences).
                current = graph.sample_base(rng);
                if append_call(&mut prog, table, current, rng).is_none() {
                    stalls += 1;
                }
            }
        }
    }
    prog
}

/// Randomized dependency generation (used when relations are disabled).
pub fn random_generate<R: Rng>(table: &DescTable, max_calls: usize, rng: &mut R) -> Prog {
    fuzzlang::gen::generate(table, max_calls.max(1), rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fuzzlang::desc::{ArgDesc, CallDesc, CallKind, DescId, SyscallTemplate};
    use fuzzlang::types::TypeDesc;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn table() -> DescTable {
        let mut t = DescTable::new();
        t.add(CallDesc::syscall_open("/dev/x")); // 0
        t.add(CallDesc::new(
            "ioctl$A",
            CallKind::Syscall(SyscallTemplate::Ioctl { request: 1 }),
            vec![ArgDesc::new("fd", TypeDesc::Resource { kind: "fd:/dev/x".into() })],
            None,
        )); // 1
        t.add(CallDesc::new(
            "ioctl$B",
            CallKind::Syscall(SyscallTemplate::Ioctl { request: 2 }),
            vec![ArgDesc::new("fd", TypeDesc::Resource { kind: "fd:/dev/x".into() })],
            None,
        )); // 2
        t
    }

    #[test]
    fn relational_walk_follows_learned_chain() {
        let t = table();
        let mut g = RelationGraph::new(&t);
        g.learn(DescId(1), DescId(2)); // A → B with weight 1
        let mut rng = StdRng::seed_from_u64(1);
        let mut chains = 0;
        for _ in 0..100 {
            let prog = relational_generate(&t, &g, 6, &mut rng);
            assert_eq!(prog.validate(&t), Ok(()));
            let names: Vec<&str> = prog
                .calls
                .iter()
                .map(|c| t.get(c.desc).name.as_str())
                .collect();
            if let Some(pos) = names.iter().position(|&n| n == "ioctl$A") {
                if names.get(pos + 1) == Some(&"ioctl$B") {
                    chains += 1;
                }
            }
        }
        assert!(chains > 20, "learned A→B chains should appear often, got {chains}");
    }

    #[test]
    fn relational_generation_valid_without_edges() {
        let t = table();
        let g = RelationGraph::new(&t);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..50 {
            let prog = relational_generate(&t, &g, 4, &mut rng);
            assert!(!prog.is_empty());
            assert_eq!(prog.validate(&t), Ok(()));
        }
    }

    #[test]
    fn generation_respects_max_calls_approximately() {
        let t = table();
        let g = RelationGraph::new(&t);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            let prog = relational_generate(&t, &g, 5, &mut rng);
            // producer insertion may add a couple of calls past the cap
            assert!(prog.len() <= 8, "len {}", prog.len());
        }
    }
}
