//! # droidfuzz — proprietary driver fuzzing for embedded Android devices
//!
//! A from-scratch Rust reproduction of **DroidFuzz** (DAC 2025): a fuzzer
//! that jointly tests the proprietary drivers of embedded Android devices
//! across the kernel/HAL boundary. The three techniques of the paper map
//! to three modules:
//!
//! 1. **Pre-testing HAL driver probing** (§IV-B) → [`probe`]: enumerate
//!    HAL services through the service manager, trial every method from a
//!    Poke-app stand-in while eBPF-style trace hooks record the resulting
//!    Binder/kernel activity, and derive typed interface descriptions plus
//!    normalized-occurrence weights.
//! 2. **Kernel-user relational payload generation** (§IV-C) →
//!    [`relation`] + [`generate`]: a weighted directed relation graph over
//!    {syscalls} ∪ {HAL interfaces}, learned from minimized
//!    coverage-increasing programs via Eq. 1, decayed periodically, and
//!    sampled to build call sequences with automatic producer insertion.
//! 3. **Cross-boundary execution state feedback** (§IV-D) → [`feedback`]:
//!    kcov kernel coverage merged with *directional* HAL syscall
//!    invocation coverage, specialized through a lookup table compiled at
//!    initialization.
//!
//! The remaining modules implement the fuzzing harness of §IV-A
//! ([`engine`], [`exec`], [`daemon`] — with [`supervisor`] wrapping every
//! execution in a watchdog/retry/recovery layer against injected device
//! faults, and [`fleet`] scaling the daemon to sharded multi-engine
//! campaigns with corpus/relation sync, checkpoint/resume, self-healing
//! shard restarts, and a metrics bus — checkpoints made crash-safe on
//! disk by the [`store`] layer's checksummed snapshots, write-ahead
//! journal, and torn-write recovery), corpus and crash management
//! ([`corpus`], [`crashes`], [`minimize`]), the evaluation baselines
//! ([`baselines`]: syzkaller-like and Difuze-like fuzzers plus the
//! DroidFuzz-D / ablation configurations in [`config`]), and the
//! statistics of §V ([`stats`], including the Mann-Whitney U test).
//! Every program-producing path (generation, mutation, minimization,
//! corpus import, snapshot restore) runs behind the static-analysis gate
//! of the re-exported [`analysis`] crate, which lints, auto-repairs, and
//! counts defective programs before they reach the device.
//!
//! ```no_run
//! use droidfuzz::config::FuzzerConfig;
//! use droidfuzz::engine::FuzzingEngine;
//! use simdevice::catalog;
//!
//! let device = catalog::device_a1().boot();
//! let mut engine = FuzzingEngine::new(device, FuzzerConfig::droidfuzz(1));
//! engine.run_for_virtual_hours(1.0);
//! println!("coverage: {}", engine.kernel_coverage());
//! for crash in engine.crash_db().records() {
//!     println!("bug: {}", crash.title);
//! }
//! ```

pub mod arena;
pub mod baselines;
pub mod config;
pub mod corpus;
pub mod crashes;
pub mod daemon;
pub mod descs;
pub mod engine;
pub mod exec;
pub mod feedback;
pub mod fleet;
pub mod generate;
pub mod minimize;
pub mod net;
pub mod probe;
pub mod relation;
pub mod report;
pub mod stats;
pub mod store;
pub mod supervisor;

pub use config::FuzzerConfig;
pub use droidfuzz_analysis as analysis;
pub use engine::FuzzingEngine;
pub use supervisor::{FailureClass, FaultCounters, SupervisedRun, Supervisor, SupervisorConfig};
