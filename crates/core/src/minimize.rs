//! Test-case minimization: "when a new coverage is detected, we *minimize*
//! the call to the bare bones API and system calls, ensuring that only the
//! most essential invocations that trigger the same execution behavior are
//! exercised" (§IV-C). Minimized programs both seed the corpus and define
//! the adjacency pairs the relation graph learns from.
//!
//! The minimizer replays one candidate per oracle call, so candidate
//! construction is its hot loop. [`MinimizeScratch`] keeps the working
//! program, the candidate, a ref-remap table, and a pool of recycled call
//! slots across candidates (and across minimizations), so a warm scratch
//! builds every candidate without touching the allocator.

use fuzzlang::prog::{ArgValue, Call, Prog};

/// Reusable buffers for [`minimize_with`]. One scratch serves any number
/// of minimizations; it only grows until it has seen the largest program.
#[derive(Debug, Default)]
pub struct MinimizeScratch {
    current: Prog,
    candidate: Prog,
    /// Old call index → new index (`usize::MAX` = removed by the cascade).
    remap: Vec<usize>,
    /// Recycled `Call` slots the candidate shrank away.
    spare: Vec<Call>,
    cold_allocs: u64,
}

impl MinimizeScratch {
    /// Creates an empty scratch.
    pub fn new() -> Self {
        Self::default()
    }

    /// How many call slots were freshly allocated because the recycle pool
    /// was empty. Stays flat across warm runs — the minimizer's
    /// no-per-candidate-allocation invariant.
    pub fn cold_allocs(&self) -> u64 {
        self.cold_allocs
    }

    /// Rebuilds `self.candidate` as `self.current` minus the call at
    /// `removed`, cascading removal of (transitive) dependents and
    /// remapping surviving `Ref`s — exactly [`Prog::remove_call`]'s
    /// semantics, but writing into recycled buffers.
    fn build_candidate(&mut self, removed: usize) {
        let n = self.current.calls.len();
        self.remap.clear();
        self.remap.resize(n, usize::MAX);
        let mut next = 0;
        for i in 0..n {
            let call = &self.current.calls[i];
            // A call is dead if it is the removal target or references a
            // dead call; survivors before `i` already have a remap entry,
            // so `MAX` identifies dead predecessors.
            let dead = i == removed
                || call
                    .args
                    .iter()
                    .any(|a| matches!(a, ArgValue::Ref(t) if self.remap[*t] == usize::MAX));
            if dead {
                continue;
            }
            self.remap[i] = next;
            if next < self.candidate.calls.len() {
                self.candidate.calls[next].assign_from(call);
            } else {
                let slot = match self.spare.pop() {
                    Some(mut slot) => {
                        slot.assign_from(call);
                        slot
                    }
                    None => {
                        self.cold_allocs += 1;
                        call.clone()
                    }
                };
                self.candidate.calls.push(slot);
            }
            for arg in &mut self.candidate.calls[next].args {
                if let ArgValue::Ref(t) = arg {
                    *t = self.remap[*t];
                }
            }
            next += 1;
        }
        self.spare.extend(self.candidate.calls.drain(next..));
    }
}

/// Greedily removes calls (latest first) while `still_interesting`
/// continues to hold; each removal cascades dependents exactly like
/// [`Prog::remove_call`]. Returns the minimized program and how many
/// oracle invocations were spent. Identical results to [`minimize`], but
/// all intermediate programs live in `scratch`.
pub fn minimize_with<F>(
    prog: &Prog,
    scratch: &mut MinimizeScratch,
    mut still_interesting: F,
) -> (Prog, usize)
where
    F: FnMut(&Prog) -> bool,
{
    scratch.current.assign_from(prog);
    let mut checks = 0;
    let mut idx = scratch.current.len();
    while idx > 0 {
        idx -= 1;
        if idx >= scratch.current.len() {
            idx = scratch.current.len();
            continue;
        }
        scratch.build_candidate(idx);
        if scratch.candidate.is_empty() {
            continue;
        }
        checks += 1;
        if still_interesting(&scratch.candidate) {
            std::mem::swap(&mut scratch.current, &mut scratch.candidate);
            // Indices shifted; restart the cursor from the (new) end of
            // the shortened program region we have not yet examined.
            if idx > scratch.current.len() {
                idx = scratch.current.len();
            }
        }
    }
    (scratch.current.clone(), checks)
}

/// [`minimize_with`] against a throwaway scratch — the convenience form
/// for one-off minimizations.
pub fn minimize<F>(prog: &Prog, still_interesting: F) -> (Prog, usize)
where
    F: FnMut(&Prog) -> bool,
{
    minimize_with(prog, &mut MinimizeScratch::new(), still_interesting)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fuzzlang::desc::{ArgDesc, CallDesc, CallKind, DescTable, SyscallTemplate};
    use fuzzlang::prog::{ArgValue, Call};
    use fuzzlang::types::TypeDesc;

    fn table() -> DescTable {
        let mut t = DescTable::new();
        t.add(CallDesc::syscall_open("/dev/x")); // 0
        t.add(CallDesc::new(
            "ioctl$A",
            CallKind::Syscall(SyscallTemplate::Ioctl { request: 1 }),
            vec![ArgDesc::new("fd", TypeDesc::Resource { kind: "fd:/dev/x".into() })],
            None,
        )); // 1
        t.add(CallDesc::new(
            "ioctl$B",
            CallKind::Syscall(SyscallTemplate::Ioctl { request: 2 }),
            vec![ArgDesc::new("fd", TypeDesc::Resource { kind: "fd:/dev/x".into() })],
            None,
        )); // 2
        t
    }

    /// open, A, A, B, A — where the "behavior" is `open followed by B`.
    fn noisy_prog() -> Prog {
        use fuzzlang::desc::DescId;
        Prog {
            calls: vec![
                Call { desc: DescId(0), args: vec![] },
                Call { desc: DescId(1), args: vec![ArgValue::Ref(0)] },
                Call { desc: DescId(1), args: vec![ArgValue::Ref(0)] },
                Call { desc: DescId(2), args: vec![ArgValue::Ref(0)] },
                Call { desc: DescId(1), args: vec![ArgValue::Ref(0)] },
            ],
        }
    }

    #[test]
    fn minimize_strips_noise_keeping_essential_pair() {
        let t = table();
        let prog = noisy_prog();
        let oracle = |p: &Prog| {
            let names: Vec<&str> = p.calls.iter().map(|c| t.get(c.desc).name.as_str()).collect();
            names.contains(&"openat$/dev/x") && names.contains(&"ioctl$B")
        };
        let (minimized, checks) = minimize(&prog, oracle);
        assert_eq!(minimized.len(), 2, "open + B survive: {minimized:?}");
        assert!(checks > 0);
        assert_eq!(minimized.validate(&t), Ok(()));
    }

    #[test]
    fn minimize_keeps_everything_when_all_essential() {
        let prog = noisy_prog();
        let original = prog.clone();
        let (minimized, _) = minimize(&prog, |p| *p == original);
        assert_eq!(minimized.len(), original.len());
    }

    #[test]
    fn minimize_never_produces_invalid_program() {
        let t = table();
        let prog = noisy_prog();
        let (minimized, _) = minimize(&prog, |p| {
            assert_eq!(p.validate(&t), Ok(()), "oracle sees only valid programs");
            p.len() >= 2
        });
        assert_eq!(minimized.validate(&t), Ok(()));
    }

    /// The scratch-built candidates must be indistinguishable from the
    /// clone-and-`remove_call` reference: same oracle inputs, same result.
    #[test]
    fn minimize_with_matches_remove_call_reference() {
        let t = table();
        let prog = noisy_prog();
        type Minimizer<'a> = &'a dyn Fn(&Prog, &mut dyn FnMut(&Prog) -> bool) -> (Prog, usize);
        let run = |f: Minimizer| {
            let mut seen: Vec<Prog> = Vec::new();
            let mut oracle = |p: &Prog| {
                seen.push(p.clone());
                let names: Vec<&str> =
                    p.calls.iter().map(|c| t.get(c.desc).name.as_str()).collect();
                names.contains(&"ioctl$B")
            };
            let out = f(&prog, &mut oracle);
            (out, seen)
        };
        let (got, got_seen) = run(&|p, o| minimize_with(p, &mut MinimizeScratch::new(), o));
        let (want, want_seen) = run(&|p, o| {
            // Reference: the historical clone-per-candidate construction.
            let mut current = p.clone();
            let mut checks = 0;
            let mut idx = current.len();
            while idx > 0 {
                idx -= 1;
                if idx >= current.len() {
                    idx = current.len();
                    continue;
                }
                let mut candidate = current.clone();
                candidate.remove_call(idx);
                if candidate.is_empty() {
                    continue;
                }
                checks += 1;
                if o(&candidate) {
                    current = candidate;
                    if idx > current.len() {
                        idx = current.len();
                    }
                }
            }
            (current, checks)
        });
        assert_eq!(got, want);
        assert_eq!(got_seen, want_seen, "oracle saw identical candidate sequences");
    }

    #[test]
    fn warm_scratch_builds_candidates_without_allocating() {
        let t = table();
        let prog = noisy_prog();
        let mut scratch = MinimizeScratch::new();
        let oracle = |p: &Prog| {
            let names: Vec<&str> = p.calls.iter().map(|c| t.get(c.desc).name.as_str()).collect();
            names.contains(&"openat$/dev/x") && names.contains(&"ioctl$B")
        };
        let (first, _) = minimize_with(&prog, &mut scratch, oracle);
        let after_warmup = scratch.cold_allocs();
        for _ in 0..5 {
            let (again, _) = minimize_with(&prog, &mut scratch, oracle);
            assert_eq!(again, first);
        }
        assert_eq!(
            scratch.cold_allocs(),
            after_warmup,
            "no per-candidate call-slot allocation once the scratch is warm"
        );
    }
}
