//! Test-case minimization: "when a new coverage is detected, we *minimize*
//! the call to the bare bones API and system calls, ensuring that only the
//! most essential invocations that trigger the same execution behavior are
//! exercised" (§IV-C). Minimized programs both seed the corpus and define
//! the adjacency pairs the relation graph learns from.

use fuzzlang::prog::Prog;

/// Greedily removes calls (latest first) while `still_interesting`
/// continues to hold; each removal cascades dependents via
/// [`Prog::remove_call`]. Returns the minimized program and how many
/// oracle invocations were spent.
pub fn minimize<F>(prog: &Prog, mut still_interesting: F) -> (Prog, usize)
where
    F: FnMut(&Prog) -> bool,
{
    let mut current = prog.clone();
    let mut checks = 0;
    let mut idx = current.len();
    while idx > 0 {
        idx -= 1;
        if idx >= current.len() {
            idx = current.len();
            continue;
        }
        let mut candidate = current.clone();
        candidate.remove_call(idx);
        if candidate.is_empty() {
            continue;
        }
        checks += 1;
        if still_interesting(&candidate) {
            current = candidate;
            // Indices shifted; restart the cursor from the (new) end of
            // the shortened program region we have not yet examined.
            if idx > current.len() {
                idx = current.len();
            }
        }
    }
    (current, checks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fuzzlang::desc::{ArgDesc, CallDesc, CallKind, DescTable, SyscallTemplate};
    use fuzzlang::prog::{ArgValue, Call};
    use fuzzlang::types::TypeDesc;

    fn table() -> DescTable {
        let mut t = DescTable::new();
        t.add(CallDesc::syscall_open("/dev/x")); // 0
        t.add(CallDesc::new(
            "ioctl$A",
            CallKind::Syscall(SyscallTemplate::Ioctl { request: 1 }),
            vec![ArgDesc::new("fd", TypeDesc::Resource { kind: "fd:/dev/x".into() })],
            None,
        )); // 1
        t.add(CallDesc::new(
            "ioctl$B",
            CallKind::Syscall(SyscallTemplate::Ioctl { request: 2 }),
            vec![ArgDesc::new("fd", TypeDesc::Resource { kind: "fd:/dev/x".into() })],
            None,
        )); // 2
        t
    }

    /// open, A, A, B, A — where the "behavior" is `open followed by B`.
    fn noisy_prog() -> Prog {
        use fuzzlang::desc::DescId;
        Prog {
            calls: vec![
                Call { desc: DescId(0), args: vec![] },
                Call { desc: DescId(1), args: vec![ArgValue::Ref(0)] },
                Call { desc: DescId(1), args: vec![ArgValue::Ref(0)] },
                Call { desc: DescId(2), args: vec![ArgValue::Ref(0)] },
                Call { desc: DescId(1), args: vec![ArgValue::Ref(0)] },
            ],
        }
    }

    #[test]
    fn minimize_strips_noise_keeping_essential_pair() {
        let t = table();
        let prog = noisy_prog();
        let oracle = |p: &Prog| {
            let names: Vec<&str> = p.calls.iter().map(|c| t.get(c.desc).name.as_str()).collect();
            names.contains(&"openat$/dev/x") && names.contains(&"ioctl$B")
        };
        let (minimized, checks) = minimize(&prog, oracle);
        assert_eq!(minimized.len(), 2, "open + B survive: {minimized:?}");
        assert!(checks > 0);
        assert_eq!(minimized.validate(&t), Ok(()));
    }

    #[test]
    fn minimize_keeps_everything_when_all_essential() {
        let prog = noisy_prog();
        let original = prog.clone();
        let (minimized, _) = minimize(&prog, |p| *p == original);
        assert_eq!(minimized.len(), original.len());
    }

    #[test]
    fn minimize_never_produces_invalid_program() {
        let t = table();
        let prog = noisy_prog();
        let (minimized, _) = minimize(&prog, |p| {
            assert_eq!(p.validate(&t), Ok(()), "oracle sees only valid programs");
            p.len() >= 2
        });
        assert_eq!(minimized.validate(&t), Ok(()));
    }
}
