//! The worker runtime: N local shards against a remote hub.
//!
//! [`WorkerRuntime::run`] is [`Fleet::launch`]'s shard loop with the
//! hub on the far side of a [`Connector`]: the worker boots its engines
//! from the [`CampaignSpec`] the hub hands back in `HelloAck`, runs
//! each sync slice on its own scoped thread pool, and replaces the
//! orchestrator's in-process hub calls with their wire twins —
//! `prepare_update` → `PushUpdate`, `pull` → `PullRequest`/
//! [`Shard::apply_pull`], `restore_all_from_hub` → a `full` pull +
//! [`Shard::apply_full_restore`]. Relation graphs arrive
//! revision-gated (the hub resends its export only when the graph
//! actually changed) and are cached; the cache is merged on *every*
//! pull, exactly as local shards merge `hub.relations()` every round,
//! so the distributed campaign stays bit-identical.
//!
//! The supervisor's backoff/quarantine taxonomy extends to the link:
//! any send/recv failure retires the connection, and the worker
//! re-dials with capped exponential backoff, reclaiming its shard
//! range with `Hello { claim }`. Every protocol step is then replayed
//! from its first unacknowledged message — safe because the hub
//! deduplicates pushes and round reports, and pulls are pure reads.
//!
//! [`Fleet::launch`]: crate::fleet::Fleet
//! [`Shard::apply_pull`]: crate::fleet::Shard::apply_pull
//! [`Shard::apply_full_restore`]: crate::fleet::Shard::apply_full_restore

use std::thread;
use std::time::Duration;

use simdevice::catalog;
use simdevice::FirmwareSpec;

use super::codec::{CampaignSpec, Message, WireShardStats, WireUpdate, PROTOCOL_VERSION};
use super::transport::{Channel, Connector};
use super::{NetCounters, NetError};
use crate::engine::{FuzzingEngine, HOUR_US};
use crate::fleet::{EventBus, FleetEvent, FleetStats, Shard, ShardUpdate};
use crate::relation::RelationGraph;

/// Worker knobs — everything else comes from the hub's campaign spec.
#[derive(Debug, Clone)]
pub struct WorkerConfig {
    /// Local shards to run (the hub assigns the global id range).
    pub shards: usize,
    /// Worker threads per slice: `0` = one per shard, otherwise clamped
    /// to `[1, shards]`. Any value is bit-identical (same contract as
    /// [`FleetConfig::threads`]).
    ///
    /// [`FleetConfig::threads`]: crate::fleet::FleetConfig::threads
    pub threads: usize,
    /// Worker name, for the hub's diagnostics.
    pub name: String,
    /// Reconnect attempts before the campaign is abandoned.
    pub max_link_retries: u32,
}

impl Default for WorkerConfig {
    fn default() -> Self {
        Self { shards: 1, threads: 0, name: "worker".into(), max_link_retries: 10 }
    }
}

/// Campaign outcome from one worker's perspective.
#[derive(Debug, Clone)]
pub struct WorkerResult {
    /// First global shard id this worker ran.
    pub base_shard: usize,
    /// Local shard count.
    pub shards: usize,
    /// Sync rounds this worker completed (including pre-resume).
    pub rounds_completed: usize,
    /// Executions across this worker's shards (this run).
    pub executions: u64,
    /// Whether the hub declared the campaign complete (`false` after a
    /// kill-after-rounds stop).
    pub finished: bool,
    /// Metrics drained from the worker-local event bus (indexed by
    /// *global* shard id; remote shards stay zeroed).
    pub stats: FleetStats,
    /// This worker's wire counters (also reported to the hub with
    /// every `RoundDone`).
    pub net_totals: NetCounters,
}

/// The hub connection with reconnect/replay semantics.
struct Link {
    connector: Box<dyn Connector>,
    channel: Option<Channel>,
    /// Counters of retired (failed) channels plus link bookkeeping.
    retired: NetCounters,
    name: String,
    shards: usize,
    /// Set after the first `HelloAck`; re-sent as `claim` on reconnect.
    base_shard: Option<usize>,
    max_link_retries: u32,
}

impl Link {
    /// Current cumulative wire counters (retired + live channel).
    fn counters(&self) -> NetCounters {
        let mut totals = self.retired;
        if let Some(ch) = &self.channel {
            totals.absorb(&ch.counters());
        }
        totals
    }

    fn retire_channel(&mut self) {
        if let Some(ch) = self.channel.take() {
            self.retired.absorb(&ch.counters());
        }
    }

    /// One dial + handshake attempt. On success the channel is live and
    /// the campaign spec is returned.
    fn handshake(&mut self) -> Result<CampaignSpec, NetError> {
        let transport = self.connector.connect()?;
        let mut ch = Channel::new(transport);
        let hello = Message::Hello {
            version: PROTOCOL_VERSION,
            worker: self.name.clone(),
            shards: self.shards,
            claim: self.base_shard,
        };
        let outcome = ch.send(&hello).and_then(|()| ch.recv());
        let result = match outcome {
            Ok(Message::HelloAck { version, base_shard, campaign }) => {
                if version != PROTOCOL_VERSION {
                    Err(NetError::Version { ours: PROTOCOL_VERSION, theirs: version })
                } else if self.base_shard.is_some_and(|claimed| claimed != base_shard) {
                    Err(NetError::Protocol(format!(
                        "hub reassigned base shard {base_shard}, claimed {:?}",
                        self.base_shard
                    )))
                } else {
                    self.base_shard = Some(base_shard);
                    Ok(campaign)
                }
            }
            Ok(Message::Bye { reason }) => Err(NetError::Protocol(format!("hub refused: {reason}"))),
            Ok(other) => {
                Err(NetError::Protocol(format!("expected hello-ack, got {other:?}")))
            }
            Err(e) => Err(e),
        };
        match result {
            Ok(campaign) => {
                self.channel = Some(ch);
                Ok(campaign)
            }
            Err(e) => {
                self.retired.absorb(&ch.counters());
                Err(e)
            }
        }
    }

    /// Re-dials with capped exponential backoff until the handshake
    /// lands or the retry budget is spent. Returns the (re-confirmed)
    /// campaign spec.
    fn reconnect(&mut self) -> Result<CampaignSpec, NetError> {
        self.retire_channel();
        let mut delay = Duration::from_millis(10);
        let mut last = NetError::Closed;
        for _ in 0..self.max_link_retries.max(1) {
            self.retired.link_retries += 1;
            match self.handshake() {
                Ok(campaign) => {
                    self.retired.reconnects += 1;
                    return Ok(campaign);
                }
                Err(e) => last = e,
            }
            thread::sleep(delay);
            delay = (delay * 2).min(Duration::from_millis(500));
        }
        Err(NetError::Io(format!(
            "reconnect failed after {} retries: {last}",
            self.max_link_retries.max(1)
        )))
    }

    /// Sends `msg` and awaits the answer `expect` recognizes,
    /// transparently reconnecting and replaying on any link failure
    /// (the hub deduplicates pushes and round reports; pulls are pure
    /// reads). Residual messages from a reconnect replay — e.g. a
    /// second `RoundAck` when the round-done raced the fleet-wide
    /// barrier broadcast — are counted as duplicates and skipped.
    fn request_where(
        &mut self,
        msg: &Message,
        expect: impl Fn(&Message) -> bool,
    ) -> Result<Message, NetError> {
        'attempt: loop {
            if self.channel.is_none() {
                self.reconnect()?;
            }
            let ch = self.channel.as_mut().expect("just reconnected");
            if ch.send(msg).is_err() {
                self.retire_channel();
                continue 'attempt;
            }
            loop {
                match self.channel.as_mut().expect("live channel").recv() {
                    Ok(response) if expect(&response) => return Ok(response),
                    Ok(Message::Bye { reason }) => {
                        self.retire_channel();
                        return Err(NetError::Protocol(format!("hub closed session: {reason}")));
                    }
                    Ok(_replay_residue) => {
                        self.retired.dup_frames += 1;
                    }
                    Err(_) => {
                        self.retire_channel();
                        continue 'attempt;
                    }
                }
            }
        }
    }

    /// Fire-and-forget close; the campaign is already complete.
    fn bye(&mut self, reason: &str) {
        if let Some(ch) = self.channel.as_mut() {
            let _ = ch.send(&Message::Bye { reason: reason.into() });
        }
        self.retire_channel();
    }
}

/// Runs this host's slice of a distributed campaign against a hub.
pub struct WorkerRuntime {
    cfg: WorkerConfig,
}

impl WorkerRuntime {
    /// A runtime for `cfg` (shard count clamped to at least 1).
    pub fn new(cfg: WorkerConfig) -> Self {
        let shards = cfg.shards.max(1);
        Self { cfg: WorkerConfig { shards, ..cfg } }
    }

    /// Connects, claims a shard range, and runs the campaign to the
    /// hub's `RoundAck { continue_campaign: false }`.
    pub fn run(&self, connector: Box<dyn Connector>) -> Result<WorkerResult, NetError> {
        let mut link = Link {
            connector,
            channel: None,
            retired: NetCounters::default(),
            name: self.cfg.name.clone(),
            shards: self.cfg.shards,
            base_shard: None,
            max_link_retries: self.cfg.max_link_retries,
        };
        let campaign = match link.handshake() {
            Ok(campaign) => campaign,
            // The very first dial also deserves the backoff loop (a hub
            // still binding its socket), but a refusal is final.
            Err(e @ (NetError::Protocol(_) | NetError::Version { .. })) => return Err(e),
            Err(_) => link.reconnect()?,
        };
        let base_shard = link.base_shard.expect("handshake sets base");
        let spec = catalog::by_id(&campaign.device).ok_or_else(|| {
            NetError::Protocol(format!("hub campaign names unknown device {:?}", campaign.device))
        })?;
        if campaign.engine_config(0).is_none() {
            return Err(NetError::Protocol(format!(
                "hub campaign names unknown variant {:?}",
                campaign.variant
            )));
        }
        self.run_campaign(&mut link, &campaign, &spec, base_shard)
    }

    fn run_campaign(
        &self,
        link: &mut Link,
        campaign: &CampaignSpec,
        spec: &FirmwareSpec,
        base_shard: usize,
    ) -> Result<WorkerResult, NetError> {
        let total_us = (campaign.hours * HOUR_US as f64) as u64;
        let interval_us = ((campaign.sync_interval_hours * HOUR_US as f64) as u64).max(1);
        let total_rounds = (total_us.div_ceil(interval_us) as usize).max(1);
        let start_round = campaign.start_round.min(total_rounds);
        let clock_offset_us = campaign.clock_us.min(total_us);

        let local = self.cfg.shards;
        let (bus, rx) = EventBus::new();
        let workers = if self.cfg.threads == 0 {
            local
        } else {
            self.cfg.threads.clamp(1, local)
        };
        let chunk_len = local.div_ceil(workers);

        // Boot engines on the worker pool, exactly like the local
        // orchestrator: global shard `g` gets engine seed `g + 1`.
        let local_ids: Vec<usize> = (0..local).collect();
        let engines: Vec<FuzzingEngine> = thread::scope(|scope| {
            let handles: Vec<_> = local_ids
                .chunks(chunk_len)
                .map(|ids| {
                    let spec = spec.clone();
                    scope.spawn(move || {
                        ids.iter()
                            .map(|&i| {
                                let g = (base_shard + i) as u64;
                                let config =
                                    campaign.engine_config(g + 1).expect("variant validated");
                                FuzzingEngine::new(spec.clone().boot(), config)
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles.into_iter().flat_map(|h| h.join().expect("shard boot")).collect()
        });
        let mut shards: Vec<Shard> = engines
            .into_iter()
            .enumerate()
            .map(|(i, engine)| Shard::new(base_shard + i, engine, bus.clone(), clock_offset_us))
            .collect();
        let table = shards[0].engine().desc_table().clone();

        // The hub relation graph, rebuilt whenever the hub resends its
        // (revision-gated) export and merged on every pull — the same
        // graph value local shards see in `hub.relations()`.
        let mut hub_graph: Option<RelationGraph> = None;
        let mut restored = vec![0usize; local];
        let mut pulled = vec![0u64; local];
        let mut heartbeats = vec![0u64; local];

        // Initial restore: what `restore_from_hub` does locally, over
        // the wire. On a fresh campaign the hub is empty and this is a
        // no-op import; on resume it delivers the snapshot corpus.
        if campaign.sync {
            for i in 0..local {
                let (text, cursor, _delivered) = self.pull(
                    link,
                    start_round,
                    base_shard + i,
                    shards[i].cursor(),
                    false,
                    &mut hub_graph,
                    &table,
                )?;
                restored[i] += shards[i].apply_restore(&text, cursor, hub_graph.as_ref());
            }
        } else {
            for shard in &shards {
                bus.emit(FleetEvent::ShardStarted { shard: shard.id, restored_seeds: 0 });
            }
        }

        let mut rounds_completed = start_round;
        let mut clock_us = clock_offset_us;
        let mut finished = false;

        for round in start_round..total_rounds {
            let global_target = (interval_us * (round as u64 + 1)).min(total_us);
            let slice_us = global_target.saturating_sub(clock_us);
            for (i, shard) in shards.iter().enumerate() {
                if !shard.is_quarantined(round) {
                    heartbeats[i] += 1;
                }
            }

            // Fuzz the slice on contiguous chunks, one scoped thread
            // each; chunks join in order so updates come back in
            // shard-id order.
            let updates: Vec<ShardUpdate> = thread::scope(|scope| {
                let handles: Vec<_> = shards
                    .chunks_mut(chunk_len)
                    .map(|chunk| {
                        scope.spawn(move || {
                            let mut updates = Vec::with_capacity(chunk.len());
                            for shard in chunk {
                                if shard.is_quarantined(round) {
                                    shard.skip_slice(slice_us);
                                } else {
                                    shard.run_slice(global_target, round);
                                }
                                updates.push(shard.prepare_update());
                            }
                            updates
                        })
                    })
                    .collect();
                handles.into_iter().flat_map(|h| h.join().expect("shard worker")).collect()
            });

            // Push every shard's update; the hub applies them in global
            // shard-id order once all fleet shards have reported.
            for (i, update) in updates.into_iter().enumerate() {
                let wire = WireUpdate {
                    shard: update.shard,
                    corpus_delta: update.corpus_delta,
                    new_blocks: update.new_blocks.iter().map(|b| b.0).collect(),
                    relations_text: update.relations.as_ref().map(|g| g.export(&table)),
                    crashes: shards[i]
                        .engine()
                        .crash_db()
                        .records()
                        .into_iter()
                        .cloned()
                        .collect(),
                };
                self.push(link, round, wire)?;
            }

            // Pull the peers' seeds published this round (barrier
            // `round + 1`: the hub answers once the round is applied).
            if campaign.sync {
                for i in 0..local {
                    let (text, cursor, delivered) = self.pull(
                        link,
                        round + 1,
                        base_shard + i,
                        shards[i].cursor(),
                        false,
                        &mut hub_graph,
                        &table,
                    )?;
                    pulled[i] += shards[i].apply_pull(
                        &text,
                        cursor,
                        delivered as usize,
                        hub_graph.as_ref(),
                    ) as u64;
                }
            }

            // Self-heal, mirroring the local supervisor taxonomy: a
            // lost device restarts from the full hub corpus; a flapping
            // shard is quarantined for an exponential window.
            for (i, shard) in shards.iter_mut().enumerate() {
                if shard.is_quarantined(round) {
                    continue;
                }
                if !shard.engine().device_lost() {
                    shard.note_healthy();
                    continue;
                }
                let g = (base_shard + i) as u64;
                let restarts = u64::from(shard.restarts()) + 1;
                let config = campaign
                    .engine_config(g + 1 + restarts * 1009)
                    .expect("variant validated");
                let engine = FuzzingEngine::new(spec.clone().boot(), config);
                shard.replace_engine(engine, global_target);
                bus.emit(FleetEvent::ShardRestarted {
                    shard: base_shard + i,
                    round,
                    restarts: shard.restarts(),
                });
                let (text, cursor, _) = self.pull(
                    link,
                    round + 1,
                    base_shard + i,
                    0,
                    true,
                    &mut hub_graph,
                    &table,
                )?;
                shard.apply_full_restore(&text, cursor, hub_graph.as_ref());
                if shard.consecutive_losses() >= campaign.flap_limit.max(1) {
                    let window = 1usize << shard.quarantines().min(8);
                    let until = round + 1 + window;
                    shard.quarantine_until(until);
                    bus.emit(FleetEvent::ShardQuarantined {
                        shard: base_shard + i,
                        round,
                        until_round: until,
                    });
                }
            }

            rounds_completed = round + 1;
            clock_us = global_target;

            // Sync barrier: report telemetry, wait for the fleet-wide
            // ack, and learn whether the campaign goes on.
            let stats: Vec<WireShardStats> = shards
                .iter()
                .enumerate()
                .map(|(i, shard)| WireShardStats {
                    shard: shard.id,
                    heartbeats: heartbeats[i],
                    executions: shard.total_executions(),
                    clock_us: shard.global_clock_us(),
                    corpus_len: shard.engine().corpus().len(),
                    coverage: shard.engine().kernel_coverage(),
                    crashes: shard.engine().crash_db().len(),
                    restored_seeds: restored[i],
                    restarts: shard.restarts(),
                    quarantines: shard.quarantines(),
                    pulled: pulled[i],
                    faults: shard.fault_totals(),
                    lint: shard.lint_totals(),
                })
                .collect();
            let net = link.counters();
            let done = Message::RoundDone { round, stats, net };
            let ack = link.request_where(&done, |m| {
                matches!(m, Message::RoundAck { round: acked, .. } if *acked == round)
            })?;
            let Message::RoundAck { continue_campaign, .. } = ack else { unreachable!() };
            if !continue_campaign {
                finished = rounds_completed == total_rounds;
                break;
            }
        }

        for shard in &shards {
            shard.finish();
        }
        link.bye("campaign complete");
        let net_totals = link.counters();
        let mut stats = FleetStats::drain(&rx, campaign.shards);
        stats.net_totals = net_totals;
        Ok(WorkerResult {
            base_shard,
            shards: local,
            rounds_completed,
            executions: shards.iter().map(Shard::total_executions).sum(),
            finished,
            stats,
            net_totals,
        })
    }

    /// One push step: replayed through reconnects until acknowledged.
    fn push(&self, link: &mut Link, round: usize, wire: WireUpdate) -> Result<(), NetError> {
        let shard = wire.shard;
        let msg = Message::PushUpdate { round, update: wire };
        link.request_where(&msg, |m| {
            matches!(m, Message::PushAck { round: r, shard: s, .. } if *r == round && *s == shard)
        })?;
        Ok(())
    }

    /// One pull step: updates the cached hub relation graph when the
    /// hub sent a fresh export, then hands back the corpus answer.
    #[allow(clippy::too_many_arguments)]
    fn pull(
        &self,
        link: &mut Link,
        barrier: usize,
        shard: usize,
        cursor: u64,
        full: bool,
        hub_graph: &mut Option<RelationGraph>,
        table: &fuzzlang::desc::DescTable,
    ) -> Result<(String, u64, u64), NetError> {
        let msg = Message::PullRequest { barrier, shard, cursor, full };
        let response = link.request_where(&msg, |m| {
            matches!(
                m,
                Message::PullResponse { barrier: b, shard: s, .. } if *b == barrier && *s == shard
            )
        })?;
        let Message::PullResponse { corpus_text, cursor, delivered, relations_text, .. } =
            response
        else {
            unreachable!()
        };
        if let Some(text) = relations_text {
            let mut graph = RelationGraph::new(table);
            graph.import(&text, table);
            *hub_graph = Some(graph);
        }
        Ok((corpus_text, cursor, delivered))
    }
}
