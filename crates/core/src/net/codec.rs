//! The wire codec: length-prefixed, CRC-framed messages.
//!
//! Frames reuse the write-ahead journal's record framing byte for byte
//! (`rec <seq> <len> <crc32 hex>\n<payload>\n`, [`crate::store::crc32`])
//! so a captured stream is auditable by `droidfuzz-lint` with the same
//! machinery that audits WALs. A stream capture file is
//! [`NET_STREAM_HEADER`] followed by frames with strictly sequential
//! per-connection sequence numbers:
//!
//! ```text
//! # droidfuzz-net stream v1
//! rec 0 24 1a2b3c4d
//! msg hello
//! version 1
//! ...
//! ```
//!
//! Message payloads are line-oriented `key value` text (first line
//! `msg <kind>`), with embedded strings escaped exactly like snapshot
//! fields. Unknown keys are tolerated on decode (forward compatibility);
//! missing required keys, bad numbers, torn frames, oversized lengths,
//! and checksum mismatches each surface as their own typed
//! [`NetError`] and feed their own [`NetCounters`] key.
//!
//! [`NetCounters`]: super::NetCounters

use super::NetError;
use crate::config::FuzzerConfig;
use crate::crashes::CrashRecord;
use crate::fleet::snapshot::{crash_fields, escape, parse_crash_line, unescape};
use crate::store::crc32;
use crate::supervisor::FaultCounters;
use droidfuzz_analysis::LintCounters;

/// First line of a captured net stream (one direction of one
/// connection) — what `droidfuzz-lint` keys its audit on.
pub const NET_STREAM_HEADER: &str = "# droidfuzz-net stream v1";

/// Protocol version carried in `Hello`/`HelloAck`. Peers with different
/// versions refuse the session with [`NetError::Version`].
pub const PROTOCOL_VERSION: u32 = 1;

/// Upper bound on a frame's declared payload length. A header declaring
/// more is rejected before any allocation ([`NetError::Oversized`]).
pub const MAX_FRAME_LEN: usize = 16 * 1024 * 1024;

/// Everything a worker needs to run its slice of the campaign
/// bit-identically to the hub's local `--threads` path: the firmware
/// target, the engine-config recipe, and the fleet clock position.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSpec {
    /// Table I device id (`A1`, `E`, ...).
    pub device: String,
    /// Fuzzer variant label (`droidfuzz`, `norel`, ...).
    pub variant: String,
    /// Base campaign seed; shard `i` boots with `seed + i + 1`.
    pub seed: u64,
    /// Campaign length in virtual hours.
    pub hours: f64,
    /// Virtual hours between sync rounds.
    pub sync_interval_hours: f64,
    /// Whether shards pull peer seeds from the hub.
    pub sync: bool,
    /// Total shard count across all workers.
    pub shards: usize,
    /// Hub live-seed capacity (workers mirror it locally).
    pub hub_capacity: usize,
    /// Consecutive device losses before quarantine.
    pub flap_limit: u32,
    /// Round the campaign (re)starts from (resume support).
    pub start_round: usize,
    /// Fleet clock at `start_round`, µs.
    pub clock_us: u64,
}

impl CampaignSpec {
    /// The engine config for absolute engine seed `s` — the same recipe
    /// the CLI's variant table uses. `None` for an unknown variant.
    pub fn engine_config(&self, s: u64) -> Option<FuzzerConfig> {
        variant_config(&self.variant, self.seed.wrapping_add(s))
    }
}

/// The CLI's variant table as a reusable lookup: the config behind a
/// variant label, or `None` for an unknown label.
pub fn variant_config(variant: &str, seed: u64) -> Option<FuzzerConfig> {
    Some(match variant {
        "droidfuzz" => FuzzerConfig::droidfuzz(seed),
        "norel" => FuzzerConfig::droidfuzz_norel(seed),
        "nohcov" => FuzzerConfig::droidfuzz_nohcov(seed),
        "droidfuzz-d" => FuzzerConfig::droidfuzz_d(seed),
        "syzkaller" => FuzzerConfig::syzkaller(seed),
        "difuze" => FuzzerConfig::difuze(seed),
        _ => return None,
    })
}

/// A [`crate::fleet::ShardUpdate`] in wire form: relations travel as
/// export text (rebuilt against the receiver's [`DescTable`]) and the
/// shard's full crash-record list rides along so the hub can run crash
/// sync exactly like the local orchestrator.
///
/// [`DescTable`]: fuzzlang::desc::DescTable
#[derive(Debug, Clone, PartialEq, Default)]
pub struct WireUpdate {
    /// Global shard id.
    pub shard: usize,
    /// Corpus delta since the shard's publish cursor.
    pub corpus_delta: String,
    /// Newly observed coverage block ids.
    pub new_blocks: Vec<u64>,
    /// Relation-graph export text, present only when the shard's graph
    /// revision moved since its last publish.
    pub relations_text: Option<String>,
    /// The shard's full deduplicated crash list (stable
    /// first-seen order).
    pub crashes: Vec<CrashRecord>,
}

/// Cumulative per-shard telemetry reported at each sync barrier — the
/// wire form of [`crate::fleet::ShardStats`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct WireShardStats {
    /// Global shard id.
    pub shard: usize,
    /// Heartbeats (slices) the shard has run.
    pub heartbeats: u64,
    /// Test cases executed.
    pub executions: u64,
    /// Shard-local virtual clock, µs.
    pub clock_us: u64,
    /// Seeds in the shard corpus.
    pub corpus_len: usize,
    /// Distinct kernel blocks observed.
    pub coverage: usize,
    /// Distinct crashes in the shard database.
    pub crashes: usize,
    /// Seeds restored from the hub at start.
    pub restored_seeds: usize,
    /// Lost-device restarts performed.
    pub restarts: u32,
    /// Flap quarantines imposed.
    pub quarantines: u32,
    /// Seeds pulled from the hub this round.
    pub pulled: u64,
    /// Cumulative fault/recovery counters.
    pub faults: FaultCounters,
    /// Cumulative lint-gate counters.
    pub lint: LintCounters,
}

/// One protocol message.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Worker → hub: session open. `claim` resumes a previous shard
    /// range after a reconnect.
    Hello {
        /// Speaker's protocol version.
        version: u32,
        /// Worker name (diagnostics only).
        worker: String,
        /// Local shard count the worker wants to run.
        shards: usize,
        /// Base shard id to re-claim after a reconnect.
        claim: Option<usize>,
    },
    /// Hub → worker: session accepted; here is your shard range and the
    /// campaign to run.
    HelloAck {
        /// Hub's protocol version.
        version: u32,
        /// First global shard id assigned to this worker.
        base_shard: usize,
        /// The campaign the worker must run.
        campaign: CampaignSpec,
    },
    /// Worker → hub: one shard's batched update for a sync round.
    PushUpdate {
        /// Sync round the update belongs to.
        round: usize,
        /// The update.
        update: WireUpdate,
    },
    /// Hub → worker: the push was received (and possibly detected as a
    /// reconnect replay).
    PushAck {
        /// Echoed round.
        round: usize,
        /// Echoed shard id.
        shard: usize,
        /// Whether this was a replay of an already-applied push.
        duplicate: bool,
    },
    /// Worker → hub: a shard's seq-cursor pull. Answered once the hub
    /// has applied `barrier` rounds; `full` requests the entire live
    /// corpus (lost-device restore).
    PullRequest {
        /// Rounds the hub must have applied before answering.
        barrier: usize,
        /// Global shard id pulling.
        shard: usize,
        /// The shard's hub-seq cursor.
        cursor: u64,
        /// Whether to send the full live corpus instead of the delta.
        full: bool,
    },
    /// Hub → worker: the pull answer.
    PullResponse {
        /// Echoed barrier.
        barrier: usize,
        /// Echoed shard id.
        shard: usize,
        /// Seed text (delta or full corpus).
        corpus_text: String,
        /// New cursor for the shard.
        cursor: u64,
        /// Seeds delivered in `corpus_text`.
        delivered: u64,
        /// Hub relation-graph export, present only when its revision
        /// moved since this session last received it.
        relations_text: Option<String>,
    },
    /// Worker → hub: all local shards finished the round (pushes acked,
    /// pulls applied); telemetry attached.
    RoundDone {
        /// The round.
        round: usize,
        /// Per-shard cumulative telemetry.
        stats: Vec<WireShardStats>,
        /// The worker's wire counters (absorbed into hub totals).
        net: super::NetCounters,
    },
    /// Hub → worker: the round is finalized fleet-wide; proceed.
    RoundAck {
        /// The finalized round.
        round: usize,
        /// `false` when the campaign is over (or killed) — drain and
        /// disconnect.
        continue_campaign: bool,
    },
    /// Reconnect probe (never timer-driven: frame counts stay
    /// deterministic).
    Heartbeat {
        /// Last round the sender completed.
        round: usize,
    },
    /// Clean session close.
    Bye {
        /// Human-readable reason.
        reason: String,
    },
}

// ---------------------------------------------------------------------
// Frame layer
// ---------------------------------------------------------------------

/// Frames `payload` as connection frame `seq` (journal record framing).
pub fn encode_frame(seq: u64, payload: &[u8]) -> Vec<u8> {
    let mut frame =
        format!("rec {seq} {} {:08x}\n", payload.len(), crc32(payload)).into_bytes();
    frame.extend_from_slice(payload);
    frame.push(b'\n');
    frame
}

/// Parses a frame header line (without the newline).
pub(crate) fn parse_frame_header(line: &str) -> Option<(u64, usize, u32)> {
    let mut parts = line.split(' ');
    if parts.next() != Some("rec") {
        return None;
    }
    let seq = parts.next()?.parse().ok()?;
    let len = parts.next()?.parse().ok()?;
    let crc = u32::from_str_radix(parts.next()?, 16).ok()?;
    if parts.next().is_some() {
        return None;
    }
    Some((seq, len, crc))
}

/// Validates one frame at the start of `bytes` and returns
/// `(seq, payload, bytes consumed)`. The sequence number is returned,
/// not checked — duplicate/ordering policy belongs to the session
/// layer.
pub fn decode_frame(bytes: &[u8]) -> Result<(u64, Vec<u8>, usize), NetError> {
    let line_end = bytes
        .iter()
        .position(|&b| b == b'\n')
        .ok_or_else(|| NetError::Truncated("frame header".into()))?;
    let line = std::str::from_utf8(&bytes[..line_end])
        .map_err(|_| NetError::Garbage("non-utf8 frame header".into()))?;
    let (seq, len, crc) = parse_frame_header(line)
        .ok_or_else(|| NetError::Garbage(format!("bad frame header {line:?}")))?;
    if len > MAX_FRAME_LEN {
        return Err(NetError::Oversized(len as u64));
    }
    let payload_start = line_end + 1;
    if payload_start + len + 1 > bytes.len() {
        return Err(NetError::Truncated(format!(
            "payload: declared {len}, have {}",
            bytes.len().saturating_sub(payload_start)
        )));
    }
    let payload = &bytes[payload_start..payload_start + len];
    let found = crc32(payload);
    if found != crc {
        return Err(NetError::Crc { expected: crc, found });
    }
    if bytes[payload_start + len] != b'\n' {
        return Err(NetError::Garbage("missing frame terminator".into()));
    }
    Ok((seq, payload.to_vec(), payload_start + len + 1))
}

// ---------------------------------------------------------------------
// Message layer
// ---------------------------------------------------------------------

fn opt_field(value: Option<&str>) -> String {
    value.map_or_else(|| "-".to_owned(), escape)
}

fn parse_opt_field(value: &str) -> Option<String> {
    (value != "-").then(|| unescape(value))
}

fn encode_counter_line<'a>(
    out: &mut String,
    keyword: &str,
    entries: impl IntoIterator<Item = (&'a str, u64)>,
) {
    out.push_str(keyword);
    for (key, value) in entries {
        out.push_str(&format!(" {key}={value}"));
    }
    out.push('\n');
}

fn decode_counter_tokens(rest: &str, mut set: impl FnMut(&str, u64) -> bool) -> Option<()> {
    for token in rest.split(' ') {
        if token.is_empty() {
            continue;
        }
        let (key, value) = token.split_once('=')?;
        let value: u64 = value.parse().ok()?;
        let _ = set(key, value);
    }
    Some(())
}

fn encode_stat_line(out: &mut String, s: &WireShardStats) {
    out.push_str(&format!(
        "stat shard={} heartbeats={} execs={} clock={} corpus={} coverage={} \
         crashes={} restored={} restarts={} quarantines={} pulled={}",
        s.shard,
        s.heartbeats,
        s.executions,
        s.clock_us,
        s.corpus_len,
        s.coverage,
        s.crashes,
        s.restored_seeds,
        s.restarts,
        s.quarantines,
        s.pulled,
    ));
    for (key, value) in s.faults.entries() {
        out.push_str(&format!(" f.{key}={value}"));
    }
    for (key, value) in s.lint.entries() {
        out.push_str(&format!(" l.{key}={value}"));
    }
    out.push('\n');
}

fn decode_stat_line(rest: &str) -> Option<WireShardStats> {
    let mut s = WireShardStats::default();
    decode_counter_tokens(rest, |key, value| {
        if let Some(fault_key) = key.strip_prefix("f.") {
            return s.faults.set(fault_key, value);
        }
        if let Some(lint_key) = key.strip_prefix("l.") {
            return s.lint.set(lint_key, value);
        }
        match key {
            "shard" => s.shard = value as usize,
            "heartbeats" => s.heartbeats = value,
            "execs" => s.executions = value,
            "clock" => s.clock_us = value,
            "corpus" => s.corpus_len = value as usize,
            "coverage" => s.coverage = value as usize,
            "crashes" => s.crashes = value as usize,
            "restored" => s.restored_seeds = value as usize,
            "restarts" => s.restarts = value as u32,
            "quarantines" => s.quarantines = value as u32,
            "pulled" => s.pulled = value,
            _ => return false,
        }
        true
    })?;
    Some(s)
}

/// Serializes a message to its line-oriented payload text.
pub fn encode_message(msg: &Message) -> String {
    let mut out = String::new();
    match msg {
        Message::Hello { version, worker, shards, claim } => {
            out.push_str("msg hello\n");
            out.push_str(&format!("version {version}\n"));
            out.push_str(&format!("worker {}\n", escape(worker)));
            out.push_str(&format!("shards {shards}\n"));
            out.push_str(&format!(
                "claim {}\n",
                claim.map_or_else(|| "-".to_owned(), |c| c.to_string())
            ));
        }
        Message::HelloAck { version, base_shard, campaign } => {
            out.push_str("msg hello-ack\n");
            out.push_str(&format!("version {version}\n"));
            out.push_str(&format!("base-shard {base_shard}\n"));
            out.push_str(&format!("device {}\n", escape(&campaign.device)));
            out.push_str(&format!("variant {}\n", escape(&campaign.variant)));
            out.push_str(&format!("seed {}\n", campaign.seed));
            out.push_str(&format!("hours {}\n", campaign.hours));
            out.push_str(&format!("sync-interval {}\n", campaign.sync_interval_hours));
            out.push_str(&format!("sync {}\n", u8::from(campaign.sync)));
            out.push_str(&format!("shards {}\n", campaign.shards));
            out.push_str(&format!("hub-capacity {}\n", campaign.hub_capacity));
            out.push_str(&format!("flap-limit {}\n", campaign.flap_limit));
            out.push_str(&format!("start-round {}\n", campaign.start_round));
            out.push_str(&format!("clock-us {}\n", campaign.clock_us));
        }
        Message::PushUpdate { round, update } => {
            out.push_str("msg push\n");
            out.push_str(&format!("round {round}\n"));
            out.push_str(&format!("shard {}\n", update.shard));
            out.push_str(&format!("corpus {}\n", escape(&update.corpus_delta)));
            out.push_str("blocks");
            for block in &update.new_blocks {
                out.push_str(&format!(" {block:x}"));
            }
            out.push('\n');
            out.push_str(&format!(
                "relations {}\n",
                opt_field(update.relations_text.as_deref())
            ));
            for crash in &update.crashes {
                out.push_str(&format!("crash {}\n", crash_fields(crash)));
            }
        }
        Message::PushAck { round, shard, duplicate } => {
            out.push_str("msg push-ack\n");
            out.push_str(&format!("round {round}\n"));
            out.push_str(&format!("shard {shard}\n"));
            out.push_str(&format!("duplicate {}\n", u8::from(*duplicate)));
        }
        Message::PullRequest { barrier, shard, cursor, full } => {
            out.push_str("msg pull\n");
            out.push_str(&format!("barrier {barrier}\n"));
            out.push_str(&format!("shard {shard}\n"));
            out.push_str(&format!("cursor {cursor}\n"));
            out.push_str(&format!("full {}\n", u8::from(*full)));
        }
        Message::PullResponse { barrier, shard, corpus_text, cursor, delivered, relations_text } => {
            out.push_str("msg pull-resp\n");
            out.push_str(&format!("barrier {barrier}\n"));
            out.push_str(&format!("shard {shard}\n"));
            out.push_str(&format!("cursor {cursor}\n"));
            out.push_str(&format!("delivered {delivered}\n"));
            out.push_str(&format!("relations {}\n", opt_field(relations_text.as_deref())));
            out.push_str(&format!("corpus {}\n", escape(corpus_text)));
        }
        Message::RoundDone { round, stats, net } => {
            out.push_str("msg round-done\n");
            out.push_str(&format!("round {round}\n"));
            encode_counter_line(&mut out, "net", net.entries());
            for s in stats {
                encode_stat_line(&mut out, s);
            }
        }
        Message::RoundAck { round, continue_campaign } => {
            out.push_str("msg round-ack\n");
            out.push_str(&format!("round {round}\n"));
            out.push_str(&format!("continue {}\n", u8::from(*continue_campaign)));
        }
        Message::Heartbeat { round } => {
            out.push_str("msg heartbeat\n");
            out.push_str(&format!("round {round}\n"));
        }
        Message::Bye { reason } => {
            out.push_str("msg bye\n");
            out.push_str(&format!("reason {}\n", escape(reason)));
        }
    }
    out
}

/// Key/value view over a message payload: `fields` holds the last value
/// per key, `crashes`/`stats` the repeated lines in order.
struct Lines<'a> {
    fields: std::collections::BTreeMap<&'a str, &'a str>,
    crashes: Vec<CrashRecord>,
    stats: Vec<WireShardStats>,
    net: super::NetCounters,
}

impl<'a> Lines<'a> {
    fn parse(body: impl Iterator<Item = &'a str>) -> Result<Self, NetError> {
        let mut lines = Lines {
            fields: std::collections::BTreeMap::new(),
            crashes: Vec::new(),
            stats: Vec::new(),
            net: super::NetCounters::default(),
        };
        for line in body {
            if line.is_empty() {
                continue;
            }
            let (key, value) = line.split_once(' ').unwrap_or((line, ""));
            match key {
                "crash" => {
                    let record = parse_crash_line(line)
                        .ok_or_else(|| NetError::Garbage(format!("bad crash line {line:?}")))?;
                    lines.crashes.push(record);
                }
                "stat" => {
                    let stat = decode_stat_line(value)
                        .ok_or_else(|| NetError::Garbage(format!("bad stat line {line:?}")))?;
                    lines.stats.push(stat);
                }
                "net" => {
                    decode_counter_tokens(value, |k, v| lines.net.set(k, v))
                        .ok_or_else(|| NetError::Garbage(format!("bad net line {line:?}")))?;
                }
                _ => {
                    lines.fields.insert(key, value);
                }
            }
        }
        Ok(lines)
    }

    fn str_field(&self, key: &str) -> Result<String, NetError> {
        self.fields
            .get(key)
            .map(|v| unescape(v))
            .ok_or_else(|| NetError::Garbage(format!("missing field {key}")))
    }

    fn num<T: std::str::FromStr>(&self, key: &str) -> Result<T, NetError> {
        self.fields
            .get(key)
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| NetError::Garbage(format!("missing/bad numeric field {key}")))
    }

    fn float(&self, key: &str) -> Result<f64, NetError> {
        let value: f64 = self.num(key)?;
        if value.is_finite() {
            Ok(value)
        } else {
            Err(NetError::Garbage(format!("non-finite field {key}")))
        }
    }

    fn flag(&self, key: &str) -> Result<bool, NetError> {
        Ok(self.num::<u8>(key)? != 0)
    }

    fn opt_str_field(&self, key: &str) -> Result<Option<String>, NetError> {
        self.fields
            .get(key)
            .map(|v| parse_opt_field(v))
            .ok_or_else(|| NetError::Garbage(format!("missing field {key}")))
    }
}

/// Parses a message payload. Every malformation is a typed
/// [`NetError::Garbage`]; unknown `key value` lines are tolerated.
pub fn decode_message(text: &str) -> Result<Message, NetError> {
    let mut lines = text.lines();
    let kind = lines
        .next()
        .and_then(|first| first.strip_prefix("msg "))
        .ok_or_else(|| NetError::Garbage("payload does not start with `msg `".into()))?
        .to_owned();
    let body = Lines::parse(lines)?;
    match kind.as_str() {
        "hello" => Ok(Message::Hello {
            version: body.num("version")?,
            worker: body.str_field("worker")?,
            shards: body.num("shards")?,
            claim: match body.fields.get("claim") {
                None | Some(&"-") => None,
                Some(v) => Some(v.parse().map_err(|_| {
                    NetError::Garbage("bad claim field".into())
                })?),
            },
        }),
        "hello-ack" => Ok(Message::HelloAck {
            version: body.num("version")?,
            base_shard: body.num("base-shard")?,
            campaign: CampaignSpec {
                device: body.str_field("device")?,
                variant: body.str_field("variant")?,
                seed: body.num("seed")?,
                hours: body.float("hours")?,
                sync_interval_hours: body.float("sync-interval")?,
                sync: body.flag("sync")?,
                shards: body.num("shards")?,
                hub_capacity: body.num("hub-capacity")?,
                flap_limit: body.num("flap-limit")?,
                start_round: body.num("start-round")?,
                clock_us: body.num("clock-us")?,
            },
        }),
        "push" => {
            let mut blocks = Vec::new();
            for token in body.fields.get("blocks").copied().unwrap_or("").split(' ') {
                if token.is_empty() {
                    continue;
                }
                blocks.push(u64::from_str_radix(token, 16).map_err(|_| {
                    NetError::Garbage(format!("bad block id {token:?}"))
                })?);
            }
            Ok(Message::PushUpdate {
                round: body.num("round")?,
                update: WireUpdate {
                    shard: body.num("shard")?,
                    corpus_delta: body.str_field("corpus")?,
                    new_blocks: blocks,
                    relations_text: body.opt_str_field("relations")?,
                    crashes: body.crashes,
                },
            })
        }
        "push-ack" => Ok(Message::PushAck {
            round: body.num("round")?,
            shard: body.num("shard")?,
            duplicate: body.flag("duplicate")?,
        }),
        "pull" => Ok(Message::PullRequest {
            barrier: body.num("barrier")?,
            shard: body.num("shard")?,
            cursor: body.num("cursor")?,
            full: body.flag("full")?,
        }),
        "pull-resp" => Ok(Message::PullResponse {
            barrier: body.num("barrier")?,
            shard: body.num("shard")?,
            corpus_text: body.str_field("corpus")?,
            cursor: body.num("cursor")?,
            delivered: body.num("delivered")?,
            relations_text: body.opt_str_field("relations")?,
        }),
        "round-done" => Ok(Message::RoundDone {
            round: body.num("round")?,
            stats: body.stats,
            net: body.net,
        }),
        "round-ack" => Ok(Message::RoundAck {
            round: body.num("round")?,
            continue_campaign: body.flag("continue")?,
        }),
        "heartbeat" => Ok(Message::Heartbeat { round: body.num("round")? }),
        "bye" => Ok(Message::Bye { reason: body.str_field("reason")? }),
        other => Err(NetError::Garbage(format!("unknown message kind {other:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkernel::report::{BugKind, Component};

    fn round_trip(msg: Message) {
        let text = encode_message(&msg);
        assert_eq!(decode_message(&text).as_ref(), Ok(&msg), "{text:?}");
        // And through the frame layer.
        let frame = encode_frame(3, text.as_bytes());
        let (seq, payload, consumed) = decode_frame(&frame).unwrap();
        assert_eq!(seq, 3);
        assert_eq!(consumed, frame.len());
        assert_eq!(decode_message(std::str::from_utf8(&payload).unwrap()), Ok(msg));
    }

    fn sample_campaign() -> CampaignSpec {
        CampaignSpec {
            device: "E".into(),
            variant: "droidfuzz".into(),
            seed: 41,
            hours: 0.15,
            sync_interval_hours: 0.05,
            sync: true,
            shards: 4,
            hub_capacity: 256,
            flap_limit: 2,
            start_round: 1,
            clock_us: 180_000_000,
        }
    }

    #[test]
    fn every_message_round_trips() {
        round_trip(Message::Hello {
            version: PROTOCOL_VERSION,
            worker: "bench\thost\n2".into(),
            shards: 2,
            claim: None,
        });
        round_trip(Message::Hello {
            version: PROTOCOL_VERSION,
            worker: "w".into(),
            shards: 2,
            claim: Some(2),
        });
        round_trip(Message::HelloAck {
            version: PROTOCOL_VERSION,
            base_shard: 2,
            campaign: sample_campaign(),
        });
        round_trip(Message::PushUpdate {
            round: 4,
            update: WireUpdate {
                shard: 3,
                corpus_delta: "# seed 1 signals=2\nr0 = openat$/dev/video0()\n".into(),
                new_blocks: vec![0x10, 0xff43, 0],
                relations_text: Some("# relation-graph v1\nedge a\tb\t0.5\n".into()),
                crashes: vec![CrashRecord {
                    title: "KASAN: uaf\tin v4l".into(),
                    kind: BugKind::KasanUseAfterFree,
                    component: Component::KernelDriver,
                    count: 2,
                    first_seen_us: 99,
                    repro: Some("r0 = openat$/dev/video0()\n".into()),
                }],
            },
        });
        round_trip(Message::PushAck { round: 4, shard: 3, duplicate: true });
        round_trip(Message::PullRequest { barrier: 5, shard: 1, cursor: 17, full: false });
        round_trip(Message::PullResponse {
            barrier: 5,
            shard: 1,
            corpus_text: "# seed 3 signals=1\nr0 = x()\n".into(),
            cursor: 20,
            delivered: 3,
            relations_text: None,
        });
        round_trip(Message::RoundDone {
            round: 5,
            stats: vec![WireShardStats {
                shard: 1,
                heartbeats: 6,
                executions: 1234,
                clock_us: 180_000_000,
                corpus_len: 12,
                coverage: 340,
                crashes: 1,
                restored_seeds: 3,
                restarts: 1,
                quarantines: 1,
                pulled: 4,
                faults: crate::supervisor::FaultCounters {
                    injected: 7,
                    device_lost: 1,
                    ..Default::default()
                },
                lint: droidfuzz_analysis::LintCounters {
                    rejected: 2,
                    repaired: 5,
                    absint_rejected: 1,
                    absint_repaired: 3,
                },
            }],
            net: crate::net::NetCounters { frames_sent: 9, ..Default::default() },
        });
        round_trip(Message::RoundAck { round: 5, continue_campaign: false });
        round_trip(Message::Heartbeat { round: 7 });
        round_trip(Message::Bye { reason: "campaign complete".into() });
    }

    #[test]
    fn campaign_float_fields_round_trip_exactly() {
        for hours in [0.15, 0.05, 1.0 / 3.0, 144.0, 1e-9] {
            let campaign = CampaignSpec { hours, sync_interval_hours: hours / 3.0, ..sample_campaign() };
            let msg = Message::HelloAck {
                version: 1,
                base_shard: 0,
                campaign: campaign.clone(),
            };
            match decode_message(&encode_message(&msg)).unwrap() {
                Message::HelloAck { campaign: decoded, .. } => {
                    assert_eq!(decoded.hours.to_bits(), campaign.hours.to_bits());
                    assert_eq!(
                        decoded.sync_interval_hours.to_bits(),
                        campaign.sync_interval_hours.to_bits()
                    );
                }
                other => panic!("wrong decode: {other:?}"),
            }
        }
    }

    #[test]
    fn malformed_frames_get_typed_errors() {
        let good = encode_frame(0, b"msg heartbeat\nround 1\n");
        // Truncated: cut anywhere strictly inside the frame.
        for cut in 1..good.len() {
            let err = decode_frame(&good[..cut]).unwrap_err();
            assert!(
                matches!(err, NetError::Truncated(_) | NetError::Crc { .. } | NetError::Garbage(_)),
                "cut={cut}: {err}"
            );
        }
        // Garbage header.
        assert!(matches!(
            decode_frame(b"not a frame\nxx\n"),
            Err(NetError::Garbage(_))
        ));
        // Oversized declared length.
        let huge = format!("rec 0 {} 00000000\n", MAX_FRAME_LEN + 1);
        assert!(matches!(
            decode_frame(huge.as_bytes()),
            Err(NetError::Oversized(_))
        ));
        // Bit flip in the payload.
        let mut flipped = good.clone();
        let payload_at = good.iter().position(|&b| b == b'\n').unwrap() + 3;
        flipped[payload_at] ^= 0x20;
        assert!(matches!(decode_frame(&flipped), Err(NetError::Crc { .. })));
        // Non-utf8 header bytes.
        assert!(matches!(
            decode_frame(&[0xFF, 0xFE, b'\n', b'\n']),
            Err(NetError::Garbage(_))
        ));
    }

    #[test]
    fn garbage_messages_get_typed_errors() {
        for bad in [
            "",
            "hello\nversion 1\n",
            "msg frobnicate\n",
            "msg hello\nversion x\n",
            "msg push\nround 1\nshard 0\ncorpus x\nblocks zz\nrelations -\n",
            "msg push\nround 1\nshard 0\ncorpus x\nblocks\nrelations -\ncrash bad\n",
            "msg round-done\nround 1\nstat shard=x\n",
            "msg hello-ack\nversion 1\nbase-shard 0\ndevice E\nvariant v\nseed 1\nhours inf\n",
        ] {
            assert!(
                matches!(decode_message(bad), Err(NetError::Garbage(_))),
                "{bad:?} decoded"
            );
        }
    }

    #[test]
    fn unknown_fields_are_tolerated() {
        let text = "msg heartbeat\nround 9\nfrom-the-future yes\n";
        assert_eq!(decode_message(text), Ok(Message::Heartbeat { round: 9 }));
    }

    #[test]
    fn variant_table_matches_the_cli() {
        for v in ["droidfuzz", "norel", "nohcov", "droidfuzz-d", "syzkaller", "difuze"] {
            assert!(variant_config(v, 1).is_some(), "{v} missing");
        }
        assert!(variant_config("chaos", 1).is_none());
    }
}
