//! Distributed fleet: networked corpus hub, wire codec, and worker
//! runtime.
//!
//! PR 5's batched, self-contained [`ShardUpdate`] deltas plus the store
//! layer's checksummed framing were a wire protocol waiting to happen —
//! this module is that protocol. It splits the single-host fleet into
//! one authoritative hub and N worker hosts, the architecture the
//! paper's scale-out discussion (§VII) points at:
//!
//! 1. [`codec`] — a length-prefixed, CRC-framed message set
//!    ([`Message`]): `Hello`/`HelloAck` version negotiation,
//!    `PushUpdate` carrying a wire-encoded [`ShardUpdate`],
//!    `PullRequest`/`PullResponse` seq-cursor corpus + revision-gated
//!    relation deltas, `RoundDone`/`RoundAck` sync barriers,
//!    `Heartbeat`, and `Bye`. Frames reuse the journal's
//!    `rec <seq> <len> <crc32>` framing so `droidfuzz-lint` audits
//!    captured streams with the same machinery it uses on WALs.
//! 2. [`transport`] — a [`Transport`] trait with a real TCP
//!    implementation (`std::net`) and a deterministic in-process
//!    loopback fault-injectable through [`simdevice::faults`]
//!    profiles (truncated/corrupted/duplicated frames, stalls,
//!    disconnects), so distributed tests run hermetically.
//! 3. [`server`] — a [`HubServer`] owning the [`CorpusHub`] behind a
//!    session layer: per-worker seq cursors, pushes applied in
//!    shard-id order at sync barriers (a fixed-seed distributed
//!    campaign is bit-identical to the local `--threads` path),
//!    reconnect/resume from the last acknowledged round, backpressure
//!    via bounded per-session queues, and the durable store wired in.
//! 4. [`client`] — a [`WorkerRuntime`] running N local shards against
//!    a remote hub, with the supervisor's backoff/quarantine taxonomy
//!    extended to link faults (capped exponential reconnect backoff).
//!
//! Determinism contract: the hub buffers each round's pushes by shard
//! id and applies them in ascending order once all shards have
//! reported; crash records are rebuilt into per-shard databases and
//! synced in shard order; workers merge the hub's relation graph from
//! a cached copy every pull exactly as local shards do. No message is
//! timer-driven (heartbeats fire only as reconnect probes), so frame
//! counts — and the `net` counters — are reproducible run-to-run on a
//! reliable link.
//!
//! [`ShardUpdate`]: crate::fleet::ShardUpdate
//! [`CorpusHub`]: crate::fleet::CorpusHub
//! [`simdevice::faults`]: simdevice::FaultProfile

pub mod client;
pub mod codec;
pub mod server;
pub mod transport;

pub use client::{WorkerConfig, WorkerResult, WorkerRuntime};
pub use codec::{
    decode_frame, decode_message, encode_frame, encode_message, variant_config, CampaignSpec,
    Message, WireShardStats, WireUpdate, MAX_FRAME_LEN, NET_STREAM_HEADER, PROTOCOL_VERSION,
};
pub use server::{HubResult, HubServer, ServeConfig};
pub use transport::{
    loopback_pair, Channel, ChannelReceiver, ChannelSender, Connector, FrameSink, FrameSource,
    Listener, LoopbackConnector, LoopbackListener, LoopbackTransport, TcpConnector,
    TcpHubListener, TcpTransport, Transport,
};

use std::fmt;

/// Errors surfaced by the wire layer. Malformed input is *typed*: the
/// decoder distinguishes truncation from oversize from checksum failure
/// from plain garbage, and each feeds its own [`NetCounters`] key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// The peer closed the connection (clean or mid-frame).
    Closed,
    /// A frame ended before its declared length (torn tail).
    Truncated(String),
    /// A frame declared a length above [`MAX_FRAME_LEN`].
    Oversized(u64),
    /// A frame's payload failed its CRC-32 check.
    Crc { expected: u32, found: u32 },
    /// Bytes that parse as neither a frame header nor a message.
    Garbage(String),
    /// The peer speaks an incompatible protocol version.
    Version { ours: u32, theirs: u32 },
    /// A well-formed message that violates the session protocol
    /// (wrong message for the session state, bad shard id, stale seq).
    Protocol(String),
    /// An underlying socket/channel failure.
    Io(String),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Closed => write!(f, "connection closed"),
            NetError::Truncated(what) => write!(f, "truncated frame: {what}"),
            NetError::Oversized(len) => {
                write!(f, "oversized frame: {len} bytes (max {MAX_FRAME_LEN})")
            }
            NetError::Crc { expected, found } => {
                write!(f, "frame crc mismatch: expected {expected:08x}, found {found:08x}")
            }
            NetError::Garbage(what) => write!(f, "garbage frame: {what}"),
            NetError::Version { ours, theirs } => {
                write!(f, "protocol version mismatch: ours v{ours}, theirs v{theirs}")
            }
            NetError::Protocol(what) => write!(f, "protocol violation: {what}"),
            NetError::Io(e) => write!(f, "link i/o error: {e}"),
        }
    }
}

impl std::error::Error for NetError {}

/// Wire-layer counters, carried across a kill/resume through the
/// snapshot's `# section net` exactly like the fault, lint, and store
/// counters. Per-session counters are absorbed into the hub's totals;
/// sums are order-independent, so reliable-link distributed runs
/// reproduce them bit-for-bit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetCounters {
    /// Frames written to a transport.
    pub frames_sent: u64,
    /// Frames successfully decoded from a transport.
    pub frames_received: u64,
    /// Payload bytes sent (before framing).
    pub bytes_sent: u64,
    /// Payload bytes received (after validation).
    pub bytes_received: u64,
    /// Frames rejected as garbage or failing CRC.
    pub malformed_frames: u64,
    /// Frames rejected as truncated.
    pub truncated_frames: u64,
    /// Frames rejected for declaring an oversized length.
    pub oversized_frames: u64,
    /// Duplicate frames/messages detected and dropped (replays after a
    /// reconnect, duplicated deliveries on a faulty link).
    pub dup_frames: u64,
    /// Link-level retries (reconnect attempts, resent messages).
    pub link_retries: u64,
    /// Successful reconnects after a link loss.
    pub reconnects: u64,
    /// Worker sessions accepted by the hub.
    pub sessions: u64,
}

impl NetCounters {
    /// Adds `other` into `self` (baseline + this-run aggregation).
    pub fn absorb(&mut self, other: &NetCounters) {
        for (mine, theirs) in
            self.entries_mut().into_iter().zip(other.entries().map(|(_, v)| v))
        {
            *mine.1 += theirs;
        }
    }

    /// All counters as `(key, value)` pairs in a fixed order — the
    /// snapshot wire format.
    pub fn entries(&self) -> [(&'static str, u64); 11] {
        [
            ("frames_sent", self.frames_sent),
            ("frames_received", self.frames_received),
            ("bytes_sent", self.bytes_sent),
            ("bytes_received", self.bytes_received),
            ("malformed_frames", self.malformed_frames),
            ("truncated_frames", self.truncated_frames),
            ("oversized_frames", self.oversized_frames),
            ("dup_frames", self.dup_frames),
            ("link_retries", self.link_retries),
            ("reconnects", self.reconnects),
            ("sessions", self.sessions),
        ]
    }

    fn entries_mut(&mut self) -> [(&'static str, &mut u64); 11] {
        [
            ("frames_sent", &mut self.frames_sent),
            ("frames_received", &mut self.frames_received),
            ("bytes_sent", &mut self.bytes_sent),
            ("bytes_received", &mut self.bytes_received),
            ("malformed_frames", &mut self.malformed_frames),
            ("truncated_frames", &mut self.truncated_frames),
            ("oversized_frames", &mut self.oversized_frames),
            ("dup_frames", &mut self.dup_frames),
            ("link_retries", &mut self.link_retries),
            ("reconnects", &mut self.reconnects),
            ("sessions", &mut self.sessions),
        ]
    }

    /// Sets a counter by its [`entries`](Self::entries) key; `false`
    /// for an unknown key.
    pub fn set(&mut self, key: &str, value: u64) -> bool {
        for (name, slot) in self.entries_mut() {
            if name == key {
                *slot = value;
                return true;
            }
        }
        false
    }

    /// Sum of all counters (quick "anything happened?" check).
    pub fn total(&self) -> u64 {
        self.entries().iter().map(|(_, v)| v).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_round_trip_entries_and_absorb() {
        let mut a = NetCounters { frames_sent: 3, dup_frames: 7, ..Default::default() };
        let b = NetCounters { frames_sent: 2, reconnects: 1, ..Default::default() };
        a.absorb(&b);
        assert_eq!(a.frames_sent, 5);
        assert_eq!(a.reconnects, 1);
        assert_eq!(a.total(), 5 + 7 + 1);
        assert!(a.set("sessions", 9));
        assert!(!a.set("no_such_counter", 1));
        assert_eq!(a.sessions, 9);
        assert_eq!(a.entries().len(), 11);
    }

    #[test]
    fn errors_render_their_taxonomy() {
        assert!(NetError::Oversized(1 << 40).to_string().contains("oversized"));
        assert!(NetError::Crc { expected: 1, found: 2 }.to_string().contains("crc"));
        assert!(NetError::Truncated("tail".into()).to_string().contains("truncated"));
        assert!(
            NetError::Version { ours: 1, theirs: 2 }.to_string().contains("version mismatch")
        );
    }
}
