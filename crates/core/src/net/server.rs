//! The hub server: the authoritative [`CorpusHub`] behind a session
//! layer.
//!
//! The server owns no engines. Workers run the shards; the hub buffers
//! each round's [`PushUpdate`]s keyed by shard id and applies them in
//! ascending shard order once *every* shard has reported — exactly the
//! sequential sync section of [`Fleet::launch`] — so a fixed-seed
//! distributed campaign reproduces the local `--threads` path
//! bit-for-bit (the snapshot differs only in its `net` counter lines).
//! Pull requests carry a *barrier* (how many rounds the hub must have
//! applied before answering); requests arriving early are parked and
//! answered the moment the barrier round lands. `RoundDone` messages
//! drive the persistence cadence: `on_round`, checkpoint interval,
//! kill-after-rounds — all copied verbatim from the local orchestrator.
//!
//! Reconnects are cheap because every mutating message is idempotent at
//! the session layer: a replayed push for an applied round (or an
//! already-buffered shard) is acknowledged as a duplicate, a replayed
//! `RoundDone` just re-sends the `RoundAck`, and pulls are pure reads.
//! A worker that lost its link reclaims its shard range with
//! `Hello { claim }` and resumes from its first unacknowledged step.
//!
//! [`PushUpdate`]: super::Message::PushUpdate
//! [`Fleet::launch`]: crate::fleet::Fleet

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, Sender, SyncSender, TrySendError};
use std::sync::{mpsc, Arc};
use std::thread;
use std::time::Duration;

use fuzzlang::desc::DescTable;
use simdevice::catalog;
use simkernel::coverage::Block;

use super::codec::{
    encode_frame, encode_message, CampaignSpec, Message, WireShardStats, WireUpdate,
    PROTOCOL_VERSION,
};
use super::transport::{ChannelReceiver, Listener, Transport};
use super::{NetCounters, NetError};
use crate::crashes::{CrashDb, CrashRecord};
use crate::engine::{FuzzingEngine, HOUR_US};
use crate::fleet::{
    CorpusHub, FleetConfig, FleetPersist, FleetSnapshot, FleetStats, ShardStats, ShardUpdate,
};
use crate::relation::RelationGraph;
use crate::store::StoreCounters;
use crate::supervisor::FaultCounters;
use droidfuzz_analysis::LintCounters;

/// How long the hub waits for *any* session event before declaring the
/// campaign stuck (no workers, all workers dead and not reconnecting).
const IDLE_TIMEOUT: Duration = Duration::from_secs(120);

/// Bounded per-session outbound queue, in frames. A worker that stops
/// draining its socket hits this bound and is disconnected
/// (backpressure as session death — it can reconnect and resume).
const SESSION_QUEUE: usize = 64;

/// What the hub serves: a fleet campaign (the same knobs as the local
/// orchestrator) on a named catalog device and variant.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Campaign shape. `threads` is ignored — workers choose their own
    /// thread counts; determinism is per-shard, not per-thread.
    pub fleet: FleetConfig,
    /// Table I device id (`A1`, `E`, ...).
    pub device: String,
    /// Variant label (`droidfuzz`, `syzkaller`, ...).
    pub variant: String,
    /// Base campaign seed; global shard `i` boots with `seed + i + 1`.
    pub seed: u64,
}

/// Campaign outcome from the hub's perspective — the distributed
/// counterpart of [`crate::fleet::FleetResult`] (the hub has no engines,
/// so per-shard series live on the workers).
#[derive(Debug, Clone)]
pub struct HubResult {
    /// Table I device id.
    pub device_id: String,
    /// Variant label.
    pub fuzzer: String,
    /// Fleet-deduplicated crashes (includes any snapshot baseline).
    pub crashes: Vec<CrashRecord>,
    /// Distinct kernel blocks observed fleet-wide.
    pub union_coverage: usize,
    /// Executions across all shards (worker-reported).
    pub executions: u64,
    /// Sync rounds completed over the campaign (including pre-resume).
    pub rounds_completed: usize,
    /// Fleet virtual clock reached, µs.
    pub clock_us: u64,
    /// Snapshot text as of the last checkpoint; feed to a resumed
    /// `--serve` (or a local [`Fleet::resume`]) to continue.
    ///
    /// [`Fleet::resume`]: crate::fleet::Fleet::resume
    pub snapshot: String,
    /// Whether the campaign ran to its full length.
    pub finished: bool,
    /// Worker slots that served shards.
    pub workers: usize,
    /// Fleet-wide telemetry assembled from worker round reports.
    pub stats: FleetStats,
    /// Fault/recovery counters over the whole campaign (with baseline).
    pub fault_totals: FaultCounters,
    /// Lint-gate counters over the whole campaign (with baseline).
    pub lint_totals: LintCounters,
    /// Durability counters over the whole campaign (with baseline).
    pub store_totals: StoreCounters,
    /// Wire counters over the whole campaign: hub sessions + hub
    /// protocol accounting + worker-reported link counters.
    pub net_totals: NetCounters,
}

/// One live connection.
struct Session {
    alive: bool,
    out: Option<SyncSender<Vec<u8>>>,
    next_tx_seq: u64,
    tx: NetCounters,
    rx: NetCounters,
    slot: Option<usize>,
    /// Hub relation-graph revision this session last received; gates
    /// re-sending the (large) export on every pull.
    relations_rev_sent: u64,
}

/// One worker's shard range — survives session death for reconnects.
struct Slot {
    base_shard: usize,
    shards: usize,
    session: Option<usize>,
    /// Highest round this slot has reported `RoundDone` for.
    done_round: Option<usize>,
    /// Latest cumulative per-shard telemetry.
    stats: BTreeMap<usize, WireShardStats>,
    /// Latest cumulative worker-side wire counters.
    net: NetCounters,
}

/// What reader threads feed the core loop.
enum Event {
    Connected(Box<dyn Transport>),
    Msg { session: usize, msg: Message, rx: NetCounters },
    Gone { session: usize, rx: NetCounters },
}

/// A parked pull waiting for its barrier round to be applied.
struct ParkedPull {
    session: usize,
    barrier: usize,
    shard: usize,
    cursor: u64,
    full: bool,
}

/// The hub: accepts worker sessions, sequences their pushes into the
/// [`CorpusHub`], and runs the campaign's persistence cadence.
pub struct HubServer {
    cfg: ServeConfig,
}

impl HubServer {
    /// A hub for `cfg`. Validation (device, variant) happens in
    /// [`serve`](Self::serve) where errors have a transport to fail.
    pub fn new(cfg: ServeConfig) -> Self {
        Self { cfg }
    }

    /// Runs the campaign to completion (or kill) over `listener`,
    /// blocking the calling thread. `resume` continues a checkpointed
    /// campaign; `persist` receives the same `on_start`/`on_round`/
    /// `on_checkpoint` cadence as a local [`Fleet`] run.
    ///
    /// [`Fleet`]: crate::fleet::Fleet
    pub fn serve<'a, L: Listener + 'static>(
        &'a self,
        listener: L,
        persist: Option<&'a mut dyn FleetPersist>,
        resume: Option<&FleetSnapshot>,
    ) -> Result<HubResult, NetError> {
        let spec = catalog::by_id(&self.cfg.device)
            .ok_or_else(|| NetError::Protocol(format!("unknown device {:?}", self.cfg.device)))?;
        let campaign = CampaignSpec {
            device: self.cfg.device.clone(),
            variant: self.cfg.variant.clone(),
            seed: self.cfg.seed,
            hours: self.cfg.fleet.hours,
            sync_interval_hours: self.cfg.fleet.sync_interval_hours,
            sync: self.cfg.fleet.sync,
            shards: self.cfg.fleet.shards.max(1),
            hub_capacity: self.cfg.fleet.hub_capacity,
            flap_limit: self.cfg.fleet.flap_limit,
            start_round: 0,
            clock_us: 0,
        };
        let probe_cfg = campaign
            .engine_config(0)
            .ok_or_else(|| NetError::Protocol(format!("unknown variant {:?}", self.cfg.variant)))?;
        // One probe engine, booted once: the campaign's interface table
        // (needed to rebuild relation graphs from wire text) and the
        // reporting label. Seed-independent, like `Fleet::resume_durable`'s
        // recovery probe.
        let probe = FuzzingEngine::new(spec.clone().boot(), probe_cfg.clone());
        let table = probe.desc_table().clone();
        drop(probe);

        let total_us = (campaign.hours * HOUR_US as f64) as u64;
        let interval_us = ((campaign.sync_interval_hours * HOUR_US as f64) as u64).max(1);
        let total_rounds = (total_us.div_ceil(interval_us) as usize).max(1);
        let start_round = resume.map_or(0, |s| s.round.min(total_rounds));
        let clock_offset_us = resume.map_or(0, |s| s.clock_us.min(total_us));
        let campaign =
            CampaignSpec { start_round, clock_us: clock_offset_us, ..campaign };

        let mut hub = CorpusHub::new(campaign.hub_capacity);
        if let Some(snap) = resume {
            snap.restore_into(&mut hub);
            if !snap.relations_text.is_empty() {
                let mut graph = RelationGraph::new(&table);
                graph.import(&snap.relations_text, &table);
                hub.set_relations(graph);
            }
        }

        let (events_tx, events_rx) = mpsc::channel::<Event>();
        let stop = Arc::new(AtomicBool::new(false));
        let accept = spawn_accept_thread(listener, events_tx.clone(), Arc::clone(&stop));

        let mut core = HubCore {
            cfg: &self.cfg,
            campaign,
            table,
            fuzzer: probe_cfg.variant.to_string(),
            device_id: spec.meta.id.clone(),
            total_us,
            interval_us,
            total_rounds,
            start_round,
            hub,
            sessions: Vec::new(),
            slots: Vec::new(),
            pending: BTreeMap::new(),
            parked_pulls: Vec::new(),
            crash_lists: BTreeMap::new(),
            applied_next: start_round,
            finalized_next: start_round,
            rounds_completed: start_round,
            clock_us: clock_offset_us,
            snapshot_text: resume.map_or_else(String::new, FleetSnapshot::to_text),
            snapshots_skipped: 0,
            seeds_published: 0,
            seeds_pulled: 0,
            killed: false,
            done: false,
            baseline_faults: resume.map_or_else(FaultCounters::default, |s| s.fault_totals),
            baseline_lint: resume.map_or_else(LintCounters::default, |s| s.lint_totals),
            baseline_store: resume.map_or_else(StoreCounters::default, |s| s.store_totals),
            baseline_net: resume.map_or_else(NetCounters::default, |s| s.net_totals),
            retired_net: NetCounters::default(),
            hub_net: NetCounters::default(),
            final_net: None,
            events_tx,
            persist,
        };
        if let Some(sink) = core.persist.as_deref_mut() {
            sink.on_start(&core.hub, &core.table);
        }

        let outcome = core.run(&events_rx);
        stop.store(true, Ordering::SeqCst);
        // Unblock and retire the reader/writer threads: dropping the
        // session senders flushes queued frames and closes the links.
        for session in &mut core.sessions {
            session.out = None;
        }
        let _ = accept.join();
        outcome?;
        Ok(core.into_result())
    }
}

/// Polls the listener until told to stop, handing every fresh transport
/// to the core loop.
fn spawn_accept_thread<L: Listener + 'static>(
    mut listener: L,
    events: Sender<Event>,
    stop: Arc<AtomicBool>,
) -> thread::JoinHandle<()> {
    thread::spawn(move || {
        while !stop.load(Ordering::SeqCst) {
            match listener.accept() {
                Ok(Some(transport)) => {
                    if events.send(Event::Connected(transport)).is_err() {
                        break;
                    }
                }
                Ok(None) => {}
                Err(_) => break,
            }
        }
    })
}

struct HubCore<'a> {
    cfg: &'a ServeConfig,
    campaign: CampaignSpec,
    table: DescTable,
    fuzzer: String,
    device_id: String,
    total_us: u64,
    interval_us: u64,
    total_rounds: usize,
    start_round: usize,
    hub: CorpusHub,
    sessions: Vec<Session>,
    slots: Vec<Slot>,
    /// Buffered pushes: round → shard → update.
    pending: BTreeMap<usize, BTreeMap<usize, WireUpdate>>,
    parked_pulls: Vec<ParkedPull>,
    /// Latest full crash list per shard (pushes carry the whole list,
    /// so rebuilds mirror the local engine-sourced `sync_crashes`).
    crash_lists: BTreeMap<usize, Vec<CrashRecord>>,
    /// Next round to apply (all rounds below are in the hub).
    applied_next: usize,
    /// Next round to finalize (persist + `RoundAck`).
    finalized_next: usize,
    rounds_completed: usize,
    clock_us: u64,
    snapshot_text: String,
    snapshots_skipped: u64,
    seeds_published: usize,
    seeds_pulled: usize,
    killed: bool,
    done: bool,
    baseline_faults: FaultCounters,
    baseline_lint: LintCounters,
    baseline_store: StoreCounters,
    baseline_net: NetCounters,
    /// Counters of sessions that have died (absorbed at death).
    retired_net: NetCounters,
    /// Hub-level protocol accounting: sessions accepted, duplicate
    /// messages suppressed above the frame layer.
    hub_net: NetCounters,
    /// Net totals frozen at the last finalized round — what the final
    /// snapshot carried, kept deterministic by excluding drain traffic.
    final_net: Option<NetCounters>,
    events_tx: Sender<Event>,
    persist: Option<&'a mut dyn FleetPersist>,
}

impl HubCore<'_> {
    fn run(&mut self, events: &Receiver<Event>) -> Result<(), NetError> {
        while !self.done {
            let event = events
                .recv_timeout(IDLE_TIMEOUT)
                .map_err(|_| NetError::Io("hub idle timeout: no worker activity".into()))?;
            match event {
                Event::Connected(transport) => self.on_connected(transport),
                Event::Msg { session, msg, rx } => {
                    if let Some(s) = self.sessions.get_mut(session) {
                        s.rx = rx;
                    }
                    self.on_message(session, msg);
                }
                Event::Gone { session, rx } => {
                    if let Some(s) = self.sessions.get_mut(session) {
                        s.rx = rx;
                    }
                    self.drop_session(session);
                }
            }
        }
        Ok(())
    }

    fn on_connected(&mut self, transport: Box<dyn Transport>) {
        let id = self.sessions.len();
        let (sink, source) = transport.split();
        let (out_tx, out_rx) = mpsc::sync_channel::<Vec<u8>>(SESSION_QUEUE);
        thread::spawn(move || {
            let mut sink = sink;
            while let Ok(frame) = out_rx.recv() {
                if sink.send_frame(&frame).is_err() {
                    break;
                }
            }
        });
        let events = self.events_tx.clone();
        thread::spawn(move || {
            let mut rx = ChannelReceiver::new(source);
            loop {
                match rx.recv() {
                    Ok(msg) => {
                        let event = Event::Msg { session: id, msg, rx: rx.counters };
                        if events.send(event).is_err() {
                            return;
                        }
                    }
                    Err(_) => {
                        let _ = events.send(Event::Gone { session: id, rx: rx.counters });
                        return;
                    }
                }
            }
        });
        self.sessions.push(Session {
            alive: true,
            out: Some(out_tx),
            next_tx_seq: 0,
            tx: NetCounters::default(),
            rx: NetCounters::default(),
            slot: None,
            relations_rev_sent: 0,
        });
    }

    /// Frames, counts, and queues one message; a full or closed queue
    /// kills the session (backpressure policy).
    fn enqueue(&mut self, session: usize, msg: &Message) {
        let Some(s) = self.sessions.get_mut(session) else { return };
        if !s.alive {
            return;
        }
        let payload = encode_message(msg);
        let frame = encode_frame(s.next_tx_seq, payload.as_bytes());
        let sent = match s.out.as_ref() {
            Some(out) => match out.try_send(frame) {
                Ok(()) => true,
                Err(TrySendError::Full(_) | TrySendError::Disconnected(_)) => false,
            },
            None => false,
        };
        if sent {
            s.next_tx_seq += 1;
            s.tx.frames_sent += 1;
            s.tx.bytes_sent += payload.len() as u64;
        } else {
            self.drop_session(session);
        }
    }

    fn drop_session(&mut self, session: usize) {
        let Some(s) = self.sessions.get_mut(session) else { return };
        if !s.alive {
            return;
        }
        s.alive = false;
        s.out = None;
        self.retired_net.absorb(&s.tx);
        self.retired_net.absorb(&s.rx);
        if let Some(slot) = s.slot.take() {
            self.slots[slot].session = None;
        }
        self.parked_pulls.retain(|p| p.session != session);
    }

    fn on_message(&mut self, session: usize, msg: Message) {
        match msg {
            Message::Hello { version, worker, shards, claim } => {
                self.on_hello(session, version, &worker, shards, claim);
            }
            Message::PushUpdate { round, update } => self.on_push(session, round, update),
            Message::PullRequest { barrier, shard, cursor, full } => {
                let pull = ParkedPull { session, barrier, shard, cursor, full };
                if pull.barrier <= self.applied_next {
                    self.answer_pull(pull);
                } else {
                    self.parked_pulls.push(pull);
                }
            }
            Message::RoundDone { round, stats, net } => {
                self.on_round_done(session, round, stats, net);
            }
            Message::Heartbeat { .. } => {}
            Message::Bye { .. } => self.drop_session(session),
            // Hub-to-worker messages arriving at the hub are protocol
            // violations; the session is not recoverable.
            Message::HelloAck { .. }
            | Message::PushAck { .. }
            | Message::PullResponse { .. }
            | Message::RoundAck { .. } => {
                self.enqueue(session, &Message::Bye { reason: "unexpected message".into() });
                self.drop_session(session);
            }
        }
    }

    fn on_hello(
        &mut self,
        session: usize,
        version: u32,
        worker: &str,
        shards: usize,
        claim: Option<usize>,
    ) {
        if version != PROTOCOL_VERSION {
            let reason = format!(
                "protocol version mismatch: hub v{PROTOCOL_VERSION}, worker {worker} v{version}"
            );
            self.enqueue(session, &Message::Bye { reason });
            self.drop_session(session);
            return;
        }
        let slot_idx = if let Some(base) = claim {
            // Reconnect: rebind the slot that owns this shard range.
            let found = self
                .slots
                .iter()
                .position(|slot| slot.base_shard == base && slot.shards == shards);
            let Some(idx) = found else {
                let reason = format!("unknown claim: base shard {base} x{shards}");
                self.enqueue(session, &Message::Bye { reason });
                self.drop_session(session);
                return;
            };
            // A stale session may still hold the slot (the hub has not
            // yet seen its death); the reconnect supersedes it.
            if let Some(old) = self.slots[idx].session.take() {
                self.drop_session(old);
            }
            idx
        } else {
            let assigned: usize = self.slots.iter().map(|s| s.shards).sum();
            let remaining = self.campaign.shards.saturating_sub(assigned);
            if shards == 0 || shards > remaining {
                let reason =
                    format!("no shard slots: requested {shards}, {remaining} remaining");
                self.enqueue(session, &Message::Bye { reason });
                self.drop_session(session);
                return;
            }
            self.slots.push(Slot {
                base_shard: assigned,
                shards,
                session: None,
                done_round: None,
                stats: BTreeMap::new(),
                net: NetCounters::default(),
            });
            self.slots.len() - 1
        };
        self.slots[slot_idx].session = Some(session);
        if let Some(s) = self.sessions.get_mut(session) {
            s.slot = Some(slot_idx);
        }
        self.hub_net.sessions += 1;
        let ack = Message::HelloAck {
            version: PROTOCOL_VERSION,
            base_shard: self.slots[slot_idx].base_shard,
            campaign: self.campaign.clone(),
        };
        self.enqueue(session, &ack);
    }

    fn on_push(&mut self, session: usize, round: usize, update: WireUpdate) {
        let shard = update.shard;
        if self.session_shard_invalid(session, shard) {
            return;
        }
        let duplicate = round < self.applied_next
            || self.pending.get(&round).is_some_and(|r| r.contains_key(&shard));
        if duplicate {
            self.hub_net.dup_frames += 1;
        } else {
            self.pending.entry(round).or_default().insert(shard, update);
        }
        self.enqueue(session, &Message::PushAck { round, shard, duplicate });
        self.apply_ready_rounds();
    }

    fn session_shard_invalid(&mut self, session: usize, shard: usize) -> bool {
        let ok = self
            .sessions
            .get(session)
            .and_then(|s| s.slot)
            .map(|i| &self.slots[i])
            .is_some_and(|slot| (slot.base_shard..slot.base_shard + slot.shards).contains(&shard));
        if !ok {
            self.enqueue(session, &Message::Bye { reason: format!("shard {shard} not yours") });
            self.drop_session(session);
        }
        !ok
    }

    /// Applies every fully-reported round in order, then releases any
    /// pulls whose barrier just landed.
    fn apply_ready_rounds(&mut self) {
        while self
            .pending
            .get(&self.applied_next)
            .is_some_and(|r| r.len() == self.campaign.shards)
        {
            let round = self.applied_next;
            let updates = self.pending.remove(&round).expect("checked above");
            // Shard-id order (BTreeMap iteration), exactly the local
            // sequential sync section.
            for (shard, wire) in updates {
                self.crash_lists.insert(shard, wire.crashes.clone());
                let update = ShardUpdate {
                    shard,
                    corpus_delta: wire.corpus_delta,
                    new_blocks: wire.new_blocks.into_iter().map(Block).collect(),
                    relations: wire.relations_text.map(|text| {
                        let mut graph = RelationGraph::new(&self.table);
                        graph.import(&text, &self.table);
                        graph
                    }),
                };
                self.seeds_published += self.hub.apply_update(&update);
            }
            let dbs: Vec<CrashDb> = (0..self.campaign.shards)
                .map(|shard| {
                    let mut db = CrashDb::new();
                    for record in self.crash_lists.get(&shard).map_or(&[][..], Vec::as_slice) {
                        db.merge_record(record);
                    }
                    db
                })
                .collect();
            self.hub.sync_crashes(dbs.iter());
            self.hub.record_sample(self.global_target(round));
            self.applied_next = round + 1;
        }
        let ready: Vec<ParkedPull> = {
            let applied = self.applied_next;
            let (ready, waiting) =
                std::mem::take(&mut self.parked_pulls).into_iter().partition(|p| p.barrier <= applied);
            self.parked_pulls = waiting;
            ready
        };
        for pull in ready {
            self.answer_pull(pull);
        }
    }

    fn answer_pull(&mut self, pull: ParkedPull) {
        if self.session_shard_invalid(pull.session, pull.shard) {
            return;
        }
        let (corpus_text, cursor, delivered) = if pull.full {
            (self.hub.corpus_text(), self.hub.tip(), self.hub.len() as u64)
        } else {
            let (text, cursor, count) = self.hub.pull_corpus(pull.shard, pull.cursor);
            (text, cursor, count as u64)
        };
        self.seeds_pulled += delivered as usize;
        let rev = self.hub.relations().map_or(0, RelationGraph::revision);
        let sent_rev = self.sessions[pull.session].relations_rev_sent;
        let relations_text = if rev > sent_rev {
            self.sessions[pull.session].relations_rev_sent = rev;
            self.hub.relations().map(|g| g.export(&self.table))
        } else {
            None
        };
        let response = Message::PullResponse {
            barrier: pull.barrier,
            shard: pull.shard,
            corpus_text,
            cursor,
            delivered,
            relations_text,
        };
        self.enqueue(pull.session, &response);
    }

    fn on_round_done(
        &mut self,
        session: usize,
        round: usize,
        stats: Vec<WireShardStats>,
        net: NetCounters,
    ) {
        let Some(slot_idx) = self.sessions.get(session).and_then(|s| s.slot) else {
            self.drop_session(session);
            return;
        };
        let slot = &mut self.slots[slot_idx];
        if slot.done_round.is_some_and(|done| done >= round) {
            // Reconnect replay of a finalized round: just re-ack it.
            self.hub_net.dup_frames += 1;
            let (_, continue_campaign) = self.round_fate(round);
            self.enqueue(session, &Message::RoundAck { round, continue_campaign });
            return;
        }
        for stat in stats {
            slot.stats.insert(stat.shard, stat);
        }
        slot.net = net;
        slot.done_round = Some(round);
        self.finalize_ready_rounds();
    }

    /// `(is_kill, continue_campaign)` for a finalized round — a pure
    /// function so replayed `RoundDone`s get byte-identical re-acks.
    fn round_fate(&self, round: usize) -> (bool, bool) {
        let rounds_this_run = (round + 1) - self.start_round;
        let is_kill = self.cfg.fleet.kill_after_rounds == Some(rounds_this_run);
        let is_last = round + 1 == self.total_rounds;
        (is_kill, !(is_kill || is_last))
    }

    fn finalize_ready_rounds(&mut self) {
        loop {
            let round = self.finalized_next;
            let assigned: usize = self.slots.iter().map(|s| s.shards).sum();
            let all_done = assigned == self.campaign.shards
                && !self.slots.is_empty()
                && self.slots.iter().all(|s| s.done_round.is_some_and(|d| d >= round));
            if round >= self.applied_next || !all_done {
                return;
            }
            self.finalize_round(round);
            self.finalized_next = round + 1;
            if self.done {
                return;
            }
        }
    }

    fn finalize_round(&mut self, round: usize) {
        self.rounds_completed = round + 1;
        self.clock_us = self.global_target(round);
        let fault_totals = self.fleet_fault_totals();
        let lint_totals = self.fleet_lint_totals();
        let baseline_net = self.baseline_net;
        if let Some(sink) = self.persist.as_deref_mut() {
            sink.on_round(
                &self.hub,
                &self.table,
                self.rounds_completed,
                self.clock_us,
                &fault_totals,
                &lint_totals,
                &baseline_net,
            );
        }

        // Checkpoint cadence copied from the local orchestrator; the
        // snapshot's net section carries the live wire totals, frozen
        // *before* the round-acks go out so the value is deterministic.
        let rounds_this_run = self.rounds_completed - self.start_round;
        let (is_kill, continue_campaign) = self.round_fate(round);
        let is_last = self.rounds_completed == self.total_rounds;
        let checkpoint_interval = self.cfg.fleet.checkpoint_interval_rounds.max(1);
        let net_now = self.net_totals_now();
        if is_kill || is_last || rounds_this_run.is_multiple_of(checkpoint_interval) {
            let mut store_totals = self.baseline_store;
            if let Some(sink) = self.persist.as_deref() {
                store_totals.absorb(&sink.counters());
            }
            store_totals.snapshots_skipped += self.snapshots_skipped;
            let snap = FleetSnapshot::capture(
                &self.hub,
                &self.table,
                self.rounds_completed,
                self.clock_us,
                fault_totals,
                lint_totals,
                store_totals,
                net_now,
            );
            self.snapshot_text = snap.to_text();
            if let Some(sink) = self.persist.as_deref_mut() {
                sink.on_checkpoint(&snap);
            }
        } else {
            self.snapshots_skipped += 1;
        }

        let live: Vec<usize> =
            self.sessions.iter().enumerate().filter(|(_, s)| s.alive).map(|(i, _)| i).collect();
        for session in live {
            self.enqueue(session, &Message::RoundAck { round, continue_campaign });
        }
        if !continue_campaign {
            self.killed = is_kill;
            self.final_net = Some(net_now);
            self.done = true;
        }
    }

    fn global_target(&self, round: usize) -> u64 {
        (self.interval_us * (round as u64 + 1)).min(self.total_us)
    }

    fn fleet_fault_totals(&self) -> FaultCounters {
        let mut totals = self.baseline_faults;
        for slot in &self.slots {
            for stat in slot.stats.values() {
                totals.absorb(&stat.faults);
            }
        }
        totals
    }

    fn fleet_lint_totals(&self) -> LintCounters {
        let mut totals = self.baseline_lint;
        for slot in &self.slots {
            for stat in slot.stats.values() {
                totals.absorb(&stat.lint);
            }
        }
        totals
    }

    /// Current fleet-wide wire totals: resume baseline, dead-session
    /// counters, live-session counters, worker-reported counters, and
    /// the hub's own protocol accounting.
    fn net_totals_now(&self) -> NetCounters {
        let mut totals = self.baseline_net;
        totals.absorb(&self.retired_net);
        for session in self.sessions.iter().filter(|s| s.alive) {
            totals.absorb(&session.tx);
            totals.absorb(&session.rx);
        }
        for slot in &self.slots {
            totals.absorb(&slot.net);
        }
        totals.absorb(&self.hub_net);
        totals
    }

    fn into_result(self) -> HubResult {
        let net_totals = self.final_net.unwrap_or_else(|| self.net_totals_now());
        let mut shard_stats: Vec<ShardStats> = (0..self.campaign.shards)
            .map(|shard| ShardStats { shard, ..ShardStats::default() })
            .collect();
        for slot in &self.slots {
            for (shard, w) in &slot.stats {
                if let Some(s) = shard_stats.get_mut(*shard) {
                    *s = ShardStats {
                        shard: *shard,
                        heartbeats: w.heartbeats as usize,
                        executions: w.executions,
                        clock_us: w.clock_us,
                        corpus_len: w.corpus_len,
                        coverage: w.coverage,
                        crashes: w.crashes,
                        restored_seeds: w.restored_seeds,
                        faults: w.faults,
                        lint: w.lint,
                        restarts: w.restarts,
                        quarantines: w.quarantines,
                    };
                }
            }
        }
        let executions = shard_stats.iter().map(|s| s.executions).sum();
        let shard_restarts = shard_stats.iter().map(|s| u64::from(s.restarts)).sum();
        let shard_quarantines = shard_stats.iter().map(|s| u64::from(s.quarantines)).sum();
        let mut store_totals = self.baseline_store;
        if let Some(sink) = self.persist.as_deref() {
            store_totals.absorb(&sink.counters());
        }
        store_totals.snapshots_skipped += self.snapshots_skipped;
        let stats = FleetStats {
            sync_rounds: self.rounds_completed - self.start_round,
            seeds_published: self.seeds_published,
            seeds_pulled: self.seeds_pulled,
            hub_seeds: self.hub.len(),
            hub_edges: self.hub.relations().map_or(0, RelationGraph::edge_count),
            union_coverage: self.hub.union_coverage(),
            workers: self.slots.len(),
            fault_totals: self.fleet_fault_totals(),
            lint_totals: self.fleet_lint_totals(),
            shard_restarts,
            shard_quarantines,
            snapshots_skipped: self.snapshots_skipped,
            net_totals,
            events: 0,
            shards: shard_stats,
        };
        HubResult {
            device_id: self.device_id,
            fuzzer: self.fuzzer,
            crashes: self.hub.crashes().records().into_iter().cloned().collect(),
            union_coverage: self.hub.union_coverage(),
            executions,
            rounds_completed: self.rounds_completed,
            clock_us: self.clock_us,
            snapshot: self.snapshot_text,
            finished: !self.killed && self.rounds_completed == self.total_rounds,
            workers: stats.workers,
            fault_totals: stats.fault_totals,
            lint_totals: stats.lint_totals,
            store_totals,
            net_totals,
            stats,
        }
    }
}
