//! Frame transports: real TCP and a deterministic in-process loopback.
//!
//! A [`Transport`] moves whole *frames* (the [`super::codec`] byte
//! framing); validation happens above it in [`Channel`], so a faulty
//! link that truncates or corrupts a frame in flight is caught by the
//! same decoder that rejects hostile input. Each transport splits into
//! an independent [`FrameSink`]/[`FrameSource`] pair so the hub can run
//! one reader and one writer thread per session without locking. The
//! loopback transport injects link faults through [`simdevice`]'s
//! seeded [`LinkFaultPlan`] — truncated, corrupted, and duplicated
//! frames, stalls, and disconnects — drawn per frame on the sending
//! side, so a fixed `(seed, profile)` replays the same hostile link
//! run-to-run.

use super::codec::{
    decode_frame, decode_message, encode_frame, encode_message, Message, NET_STREAM_HEADER,
};
use super::{NetCounters, NetError};
use simdevice::{FaultProfile, LinkFault, LinkFaultPlan, LinkFaultRates};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::time::Duration;

/// Generous ceiling on a blocking receive — a safety net against a hung
/// peer, far above anything a healthy session waits.
pub const RECV_TIMEOUT: Duration = Duration::from_secs(120);

/// Write half of a link: accepts whole framed messages.
pub trait FrameSink: Send {
    /// Writes one framed message.
    fn send_frame(&mut self, frame: &[u8]) -> Result<(), NetError>;
}

/// Read half of a link. `recv_frame` returns the raw bytes of one frame
/// *as delivered* — possibly truncated or corrupted on a faulty link;
/// the caller validates via [`decode_frame`].
pub trait FrameSource: Send {
    /// Blocks for the next frame.
    fn recv_frame(&mut self) -> Result<Vec<u8>, NetError>;
}

/// One bidirectional frame pipe, splittable into its two halves.
pub trait Transport: FrameSink + FrameSource {
    /// Tears the transport into independently owned halves (the hub's
    /// per-session reader/writer threads).
    fn split(self: Box<Self>) -> (Box<dyn FrameSink>, Box<dyn FrameSource>);
}

/// Recipe for (re)establishing a connection to the hub — the worker's
/// reconnect path hands this to its link supervisor.
pub trait Connector: Send {
    /// Opens a fresh connection.
    fn connect(&mut self) -> Result<Box<dyn Transport>, NetError>;
}

/// Accept side of a hub endpoint.
pub trait Listener: Send {
    /// Polls for the next inbound connection; `Ok(None)` after a short
    /// poll interval with nothing pending.
    fn accept(&mut self) -> Result<Option<Box<dyn Transport>>, NetError>;
}

fn io_err(e: std::io::Error) -> NetError {
    NetError::Io(e.to_string())
}

// ---------------------------------------------------------------------
// TCP
// ---------------------------------------------------------------------

struct TcpSink {
    writer: TcpStream,
}

impl FrameSink for TcpSink {
    fn send_frame(&mut self, frame: &[u8]) -> Result<(), NetError> {
        self.writer.write_all(frame).map_err(io_err)?;
        self.writer.flush().map_err(io_err)
    }
}

struct TcpSource {
    reader: BufReader<TcpStream>,
    header_seen: bool,
}

impl TcpSource {
    fn read_line_bytes(&mut self) -> Result<Vec<u8>, NetError> {
        let mut line = Vec::new();
        match self.reader.read_until(b'\n', &mut line) {
            Ok(0) => Err(NetError::Closed),
            Ok(_) => Ok(line),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                Err(NetError::Io("receive timed out".into()))
            }
            Err(e) => Err(io_err(e)),
        }
    }
}

impl FrameSource for TcpSource {
    fn recv_frame(&mut self) -> Result<Vec<u8>, NetError> {
        if !self.header_seen {
            let line = self.read_line_bytes()?;
            if line.strip_suffix(b"\n") != Some(NET_STREAM_HEADER.as_bytes()) {
                return Err(NetError::Garbage("peer did not send a net-stream header".into()));
            }
            self.header_seen = true;
        }
        let mut frame = self.read_line_bytes()?;
        let Some((_, len, _)) = std::str::from_utf8(&frame)
            .ok()
            .map(str::trim_end)
            .and_then(super::codec::parse_frame_header)
        else {
            // Unparseable header: hand the line up so the decoder
            // reports it as garbage.
            return Ok(frame);
        };
        if len > super::codec::MAX_FRAME_LEN {
            // Refuse to read (or allocate) the declared body; the
            // decoder turns this header into a typed Oversized error.
            return Ok(frame);
        }
        let mut payload = vec![0u8; len + 1];
        let mut filled = 0;
        while filled < payload.len() {
            match self.reader.read(&mut payload[filled..]) {
                Ok(0) => break,
                Ok(n) => filled += n,
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    return Err(NetError::Io("receive timed out".into()))
                }
                Err(e) => return Err(io_err(e)),
            }
        }
        frame.extend_from_slice(&payload[..filled]);
        Ok(frame)
    }
}

/// A [`Transport`] over a [`TcpStream`]. Each side opens its outgoing
/// byte stream with [`NET_STREAM_HEADER`], so a raw capture of one
/// direction is exactly a `droidfuzz-lint`-auditable net-stream file.
pub struct TcpTransport {
    sink: TcpSink,
    source: TcpSource,
}

impl TcpTransport {
    /// Wraps a connected stream, writing the stream header.
    pub fn new(stream: TcpStream) -> Result<Self, NetError> {
        stream.set_read_timeout(Some(RECV_TIMEOUT)).map_err(io_err)?;
        stream.set_nodelay(true).map_err(io_err)?;
        let mut writer = stream.try_clone().map_err(io_err)?;
        writer.write_all(format!("{NET_STREAM_HEADER}\n").as_bytes()).map_err(io_err)?;
        Ok(Self {
            sink: TcpSink { writer },
            source: TcpSource { reader: BufReader::new(stream), header_seen: false },
        })
    }
}

impl FrameSink for TcpTransport {
    fn send_frame(&mut self, frame: &[u8]) -> Result<(), NetError> {
        self.sink.send_frame(frame)
    }
}

impl FrameSource for TcpTransport {
    fn recv_frame(&mut self) -> Result<Vec<u8>, NetError> {
        self.source.recv_frame()
    }
}

impl Transport for TcpTransport {
    fn split(self: Box<Self>) -> (Box<dyn FrameSink>, Box<dyn FrameSource>) {
        (Box::new(self.sink), Box::new(self.source))
    }
}

/// Reconnectable TCP dialer.
pub struct TcpConnector {
    addr: String,
}

impl TcpConnector {
    /// A connector for `addr` (`host:port`).
    pub fn new(addr: impl Into<String>) -> Self {
        Self { addr: addr.into() }
    }
}

impl Connector for TcpConnector {
    fn connect(&mut self) -> Result<Box<dyn Transport>, NetError> {
        let addr = self
            .addr
            .to_socket_addrs()
            .map_err(io_err)?
            .next()
            .ok_or_else(|| NetError::Io(format!("no address for {}", self.addr)))?;
        let stream =
            TcpStream::connect_timeout(&addr, Duration::from_secs(10)).map_err(io_err)?;
        Ok(Box::new(TcpTransport::new(stream)?))
    }
}

/// Accept side of a TCP hub endpoint (non-blocking poll).
pub struct TcpHubListener {
    listener: std::net::TcpListener,
}

impl TcpHubListener {
    /// Binds `addr` and returns the listener plus the bound address
    /// (useful with port 0).
    pub fn bind(addr: &str) -> Result<(Self, std::net::SocketAddr), NetError> {
        let listener = std::net::TcpListener::bind(addr).map_err(io_err)?;
        listener.set_nonblocking(true).map_err(io_err)?;
        let local = listener.local_addr().map_err(io_err)?;
        Ok((Self { listener }, local))
    }
}

impl Listener for TcpHubListener {
    fn accept(&mut self) -> Result<Option<Box<dyn Transport>>, NetError> {
        match self.listener.accept() {
            Ok((stream, _)) => {
                stream.set_nonblocking(false).map_err(io_err)?;
                Ok(Some(Box::new(TcpTransport::new(stream)?)))
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
                Ok(None)
            }
            Err(e) => Err(io_err(e)),
        }
    }
}

// ---------------------------------------------------------------------
// In-process loopback
// ---------------------------------------------------------------------

struct LoopbackSink {
    tx: Option<Sender<Vec<u8>>>,
    closed: Arc<AtomicBool>,
    faults: LinkFaultPlan,
    /// Link faults injected on this end's sends (telemetry for tests).
    injected: u64,
}

impl FrameSink for LoopbackSink {
    fn send_frame(&mut self, frame: &[u8]) -> Result<(), NetError> {
        if self.closed.load(Ordering::SeqCst) {
            return Err(NetError::Closed);
        }
        let Some(tx) = &self.tx else { return Err(NetError::Closed) };
        let fault = self.faults.draw();
        if fault.is_some() {
            self.injected += 1;
        }
        let deliver =
            |tx: &Sender<Vec<u8>>, bytes: Vec<u8>| tx.send(bytes).map_err(|_| NetError::Closed);
        match fault {
            None | Some(LinkFault::Stall) => deliver(tx, frame.to_vec()),
            Some(LinkFault::TruncatedFrame) => {
                let keep = self.faults.pick_index(frame.len());
                deliver(tx, frame[..keep].to_vec())
            }
            Some(LinkFault::CorruptFrame) => {
                let mut bytes = frame.to_vec();
                if !bytes.is_empty() {
                    let at = self.faults.pick_index(bytes.len());
                    bytes[at] ^= 0x20;
                }
                deliver(tx, bytes)
            }
            Some(LinkFault::DuplicateFrame) => {
                deliver(tx, frame.to_vec())?;
                deliver(tx, frame.to_vec())
            }
            Some(LinkFault::Disconnect) => {
                self.closed.store(true, Ordering::SeqCst);
                self.tx = None;
                Err(NetError::Closed)
            }
        }
    }
}

struct LoopbackSource {
    rx: Receiver<Vec<u8>>,
    closed: Arc<AtomicBool>,
}

impl FrameSource for LoopbackSource {
    fn recv_frame(&mut self) -> Result<Vec<u8>, NetError> {
        loop {
            if self.closed.load(Ordering::SeqCst) {
                // Drain anything already in flight before reporting the
                // close, so a disconnect never un-delivers a frame.
                return match self.rx.try_recv() {
                    Ok(frame) => Ok(frame),
                    Err(_) => Err(NetError::Closed),
                };
            }
            match self.rx.recv_timeout(Duration::from_millis(50)) {
                Ok(frame) => return Ok(frame),
                Err(RecvTimeoutError::Timeout) => continue,
                Err(RecvTimeoutError::Disconnected) => return Err(NetError::Closed),
            }
        }
    }
}

/// One end of an in-process link. Link faults are drawn per *sent*
/// frame from this end's [`LinkFaultPlan`], so each direction of each
/// connection replays its own deterministic hostile schedule.
pub struct LoopbackTransport {
    sink: LoopbackSink,
    source: LoopbackSource,
}

impl LoopbackTransport {
    /// Link faults this end has injected into its sends.
    pub fn injected_faults(&self) -> u64 {
        self.sink.injected
    }
}

impl FrameSink for LoopbackTransport {
    fn send_frame(&mut self, frame: &[u8]) -> Result<(), NetError> {
        self.sink.send_frame(frame)
    }
}

impl FrameSource for LoopbackTransport {
    fn recv_frame(&mut self) -> Result<Vec<u8>, NetError> {
        self.source.recv_frame()
    }
}

impl Transport for LoopbackTransport {
    fn split(self: Box<Self>) -> (Box<dyn FrameSink>, Box<dyn FrameSource>) {
        (Box::new(self.sink), Box::new(self.source))
    }
}

/// A connected pair of loopback transports: `(a, b)` where frames sent
/// on `a` arrive at `b` and vice versa. `a_faults`/`b_faults` corrupt
/// the respective end's *outgoing* frames. A disconnect fault on either
/// end closes the whole link, both directions.
pub fn loopback_pair(
    a_faults: LinkFaultPlan,
    b_faults: LinkFaultPlan,
) -> (LoopbackTransport, LoopbackTransport) {
    let (a_tx, b_rx) = channel();
    let (b_tx, a_rx) = channel();
    let closed = Arc::new(AtomicBool::new(false));
    (
        LoopbackTransport {
            sink: LoopbackSink {
                tx: Some(a_tx),
                closed: closed.clone(),
                faults: a_faults,
                injected: 0,
            },
            source: LoopbackSource { rx: a_rx, closed: closed.clone() },
        },
        LoopbackTransport {
            sink: LoopbackSink {
                tx: Some(b_tx),
                closed: closed.clone(),
                faults: b_faults,
                injected: 0,
            },
            source: LoopbackSource { rx: b_rx, closed },
        },
    )
}

/// Hub-side accept queue for loopback connections.
pub struct LoopbackListener {
    rx: Receiver<Box<dyn Transport>>,
}

impl Listener for LoopbackListener {
    fn accept(&mut self) -> Result<Option<Box<dyn Transport>>, NetError> {
        match self.rx.recv_timeout(Duration::from_millis(10)) {
            Ok(t) => Ok(Some(t)),
            Err(RecvTimeoutError::Timeout) => Ok(None),
            Err(RecvTimeoutError::Disconnected) => Err(NetError::Closed),
        }
    }
}

/// Worker-side dialer for loopback connections. Every `connect` builds
/// a fresh fault-planned pair — connection `k` draws its two directions
/// from seeds `(seed, 2k)` and `(seed, 2k+1)`, so reconnects under a
/// hostile profile stay deterministic.
pub struct LoopbackConnector {
    accept_tx: Sender<Box<dyn Transport>>,
    rates: LinkFaultRates,
    seed: u64,
    connections: u64,
}

impl LoopbackConnector {
    /// A `(connector, listener)` pair modelling one worker's route to
    /// the hub over a link with `profile` faults.
    pub fn new(profile: FaultProfile, seed: u64) -> (Self, LoopbackListener) {
        Self::with_rates(LinkFaultRates::for_profile(profile), seed)
    }

    /// Like [`new`](Self::new) with explicit fault rates — tests use
    /// this to force specific link behaviour (e.g. a guaranteed
    /// mid-campaign disconnect).
    pub fn with_rates(rates: LinkFaultRates, seed: u64) -> (Self, LoopbackListener) {
        let (accept_tx, rx) = channel();
        (Self { accept_tx, rates, seed, connections: 0 }, LoopbackListener { rx })
    }

    /// A second dialer feeding the same listener (another worker on the
    /// same hub) with its own fault-seed stream.
    pub fn sibling(&self, seed: u64) -> Self {
        Self { accept_tx: self.accept_tx.clone(), rates: self.rates, seed, connections: 0 }
    }

    /// Same-listener dialer with different fault rates (e.g. one flaky
    /// worker in an otherwise reliable fleet).
    pub fn sibling_with_rates(&self, rates: LinkFaultRates, seed: u64) -> Self {
        Self { accept_tx: self.accept_tx.clone(), rates, seed, connections: 0 }
    }
}

impl Connector for LoopbackConnector {
    fn connect(&mut self) -> Result<Box<dyn Transport>, NetError> {
        let k = self.connections;
        self.connections += 1;
        let worker_plan =
            LinkFaultPlan::with_rates(self.rates, self.seed.wrapping_add(2 * k));
        let hub_plan =
            LinkFaultPlan::with_rates(self.rates, self.seed.wrapping_add(2 * k + 1));
        let (worker_end, hub_end) = loopback_pair(worker_plan, hub_plan);
        self.accept_tx
            .send(Box::new(hub_end))
            .map_err(|_| NetError::Io("hub accept queue closed".into()))?;
        Ok(Box::new(worker_end))
    }
}

// ---------------------------------------------------------------------
// Session channel
// ---------------------------------------------------------------------

/// Validated send half: frames and sequence-numbers outgoing messages.
pub struct ChannelSender {
    sink: Box<dyn FrameSink>,
    next_seq: u64,
    /// Wire counters accumulated by this half.
    pub counters: NetCounters,
}

impl ChannelSender {
    /// A sender over a raw sink (fresh connection: sequences restart
    /// at 0).
    pub fn new(sink: Box<dyn FrameSink>) -> Self {
        Self { sink, next_seq: 0, counters: NetCounters::default() }
    }

    /// Frames and sends one message.
    pub fn send(&mut self, msg: &Message) -> Result<(), NetError> {
        let text = encode_message(msg);
        self.send_encoded(text.as_bytes())
    }

    /// Sends an already-encoded payload (the hub pre-encodes responses
    /// once and counts them centrally).
    pub fn send_encoded(&mut self, payload: &[u8]) -> Result<(), NetError> {
        let frame = encode_frame(self.next_seq, payload);
        self.sink.send_frame(&frame)?;
        self.next_seq += 1;
        self.counters.frames_sent += 1;
        self.counters.bytes_sent += payload.len() as u64;
        Ok(())
    }
}

/// Validated receive half: per-connection sequence checking, typed
/// malformed-frame accounting, and duplicate-frame suppression (a frame
/// with an already-consumed seq — a faulty link's duplicate delivery —
/// is counted and skipped, never redelivered).
pub struct ChannelReceiver {
    source: Box<dyn FrameSource>,
    next_seq: u64,
    /// Wire counters accumulated by this half.
    pub counters: NetCounters,
}

impl ChannelReceiver {
    /// A receiver over a raw source (fresh connection: sequences
    /// restart at 0).
    pub fn new(source: Box<dyn FrameSource>) -> Self {
        Self { source, next_seq: 0, counters: NetCounters::default() }
    }

    /// Receives and validates the next message. Any error other than a
    /// suppressed duplicate means the link can no longer be trusted —
    /// callers drop the connection and (workers) reconnect.
    pub fn recv(&mut self) -> Result<Message, NetError> {
        loop {
            let bytes = self.source.recv_frame()?;
            let (seq, payload) = match decode_frame(&bytes) {
                Ok((seq, payload, _)) => (seq, payload),
                Err(e @ NetError::Truncated(_)) => {
                    self.counters.truncated_frames += 1;
                    return Err(e);
                }
                Err(e @ NetError::Oversized(_)) => {
                    self.counters.oversized_frames += 1;
                    return Err(e);
                }
                Err(e) => {
                    self.counters.malformed_frames += 1;
                    return Err(e);
                }
            };
            if seq < self.next_seq {
                self.counters.dup_frames += 1;
                continue;
            }
            if seq > self.next_seq {
                return Err(NetError::Protocol(format!(
                    "frame seq jumped to {seq}, expected {}",
                    self.next_seq
                )));
            }
            self.next_seq += 1;
            self.counters.frames_received += 1;
            self.counters.bytes_received += payload.len() as u64;
            let Ok(text) = std::str::from_utf8(&payload) else {
                self.counters.malformed_frames += 1;
                return Err(NetError::Garbage("non-utf8 payload".into()));
            };
            match decode_message(text) {
                Ok(msg) => return Ok(msg),
                Err(e) => {
                    self.counters.malformed_frames += 1;
                    return Err(e);
                }
            }
        }
    }
}

/// A validated message channel over a [`Transport`]: both halves of a
/// fresh connection (sequence numbers restart at 0).
pub struct Channel {
    /// Send half.
    pub tx: ChannelSender,
    /// Receive half.
    pub rx: ChannelReceiver,
}

impl Channel {
    /// Wraps a fresh connection.
    pub fn new(transport: Box<dyn Transport>) -> Self {
        let (sink, source) = transport.split();
        Self {
            tx: ChannelSender { sink, next_seq: 0, counters: NetCounters::default() },
            rx: ChannelReceiver { source, next_seq: 0, counters: NetCounters::default() },
        }
    }

    /// Frames and sends one message.
    pub fn send(&mut self, msg: &Message) -> Result<(), NetError> {
        self.tx.send(msg)
    }

    /// Receives and validates the next message.
    pub fn recv(&mut self) -> Result<Message, NetError> {
        self.rx.recv()
    }

    /// Merged counters of both halves.
    pub fn counters(&self) -> NetCounters {
        let mut total = self.tx.counters;
        total.absorb(&self.rx.counters);
        total
    }

    /// Tears the channel into its independently owned halves.
    pub fn split(self) -> (ChannelSender, ChannelReceiver) {
        (self.tx, self.rx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simdevice::LinkFaultRates;

    fn reliable_pair() -> (LoopbackTransport, LoopbackTransport) {
        loopback_pair(
            LinkFaultPlan::for_profile(FaultProfile::Reliable, 1),
            LinkFaultPlan::for_profile(FaultProfile::Reliable, 2),
        )
    }

    #[test]
    fn loopback_round_trips_messages() {
        let (a, b) = reliable_pair();
        let (mut a, mut b) = (Channel::new(Box::new(a)), Channel::new(Box::new(b)));
        a.send(&Message::Heartbeat { round: 3 }).unwrap();
        a.send(&Message::Bye { reason: "done".into() }).unwrap();
        assert_eq!(b.recv(), Ok(Message::Heartbeat { round: 3 }));
        assert_eq!(b.recv(), Ok(Message::Bye { reason: "done".into() }));
        b.send(&Message::RoundAck { round: 3, continue_campaign: true }).unwrap();
        assert_eq!(a.recv(), Ok(Message::RoundAck { round: 3, continue_campaign: true }));
        assert_eq!(a.counters().frames_sent, 2);
        assert_eq!(b.counters().frames_received, 2);
        assert_eq!(b.counters().dup_frames, 0);
    }

    #[test]
    fn duplicated_frames_are_suppressed() {
        let rates = LinkFaultRates {
            duplicate: 1.0,
            ..LinkFaultRates::for_profile(FaultProfile::Reliable)
        };
        let (a, b) = loopback_pair(
            LinkFaultPlan::with_rates(rates, 7),
            LinkFaultPlan::for_profile(FaultProfile::Reliable, 8),
        );
        let (mut a, mut b) = (Channel::new(Box::new(a)), Channel::new(Box::new(b)));
        a.send(&Message::Heartbeat { round: 1 }).unwrap();
        a.send(&Message::Heartbeat { round: 2 }).unwrap();
        assert_eq!(b.recv(), Ok(Message::Heartbeat { round: 1 }));
        // The second recv skips the duplicate of frame 0 before
        // delivering frame 1; frame 1's duplicate stays queued.
        assert_eq!(b.recv(), Ok(Message::Heartbeat { round: 2 }));
        assert_eq!(b.counters().dup_frames, 1);
        assert_eq!(b.counters().frames_received, 2);
    }

    #[test]
    fn corrupted_frames_surface_as_typed_errors() {
        let rates = LinkFaultRates {
            corrupt: 1.0,
            ..LinkFaultRates::for_profile(FaultProfile::Reliable)
        };
        let (a, b) = loopback_pair(
            LinkFaultPlan::with_rates(rates, 7),
            LinkFaultPlan::for_profile(FaultProfile::Reliable, 8),
        );
        let (mut a, mut b) = (Channel::new(Box::new(a)), Channel::new(Box::new(b)));
        a.send(&Message::Heartbeat { round: 1 }).unwrap();
        let err = b.recv().unwrap_err();
        assert!(
            matches!(err, NetError::Crc { .. } | NetError::Garbage(_) | NetError::Truncated(_)),
            "{err}"
        );
        let c = b.counters();
        assert_eq!(c.malformed_frames + c.truncated_frames, 1);
    }

    #[test]
    fn disconnect_faults_close_both_directions() {
        let rates = LinkFaultRates {
            disconnect: 1.0,
            ..LinkFaultRates::for_profile(FaultProfile::Reliable)
        };
        let (a, b) = loopback_pair(
            LinkFaultPlan::with_rates(rates, 7),
            LinkFaultPlan::for_profile(FaultProfile::Reliable, 8),
        );
        let (mut a, mut b) = (Channel::new(Box::new(a)), Channel::new(Box::new(b)));
        assert_eq!(a.send(&Message::Heartbeat { round: 1 }), Err(NetError::Closed));
        assert_eq!(b.recv(), Err(NetError::Closed));
        assert_eq!(a.send(&Message::Heartbeat { round: 2 }), Err(NetError::Closed));
    }

    #[test]
    fn seq_jump_is_a_protocol_error() {
        let (a, b) = reliable_pair();
        let (mut sink, _source) = (Box::new(a) as Box<dyn Transport>).split();
        sink.send_frame(&encode_frame(5, b"msg heartbeat\nround 1\n")).unwrap();
        let mut b = Channel::new(Box::new(b));
        assert!(matches!(b.recv(), Err(NetError::Protocol(_))));
    }

    #[test]
    fn tcp_transport_round_trips_and_reconnects() {
        let (mut listener, addr) = TcpHubListener::bind("127.0.0.1:0").unwrap();
        let mut connector = TcpConnector::new(addr.to_string());
        for round in 0..2usize {
            let client = std::thread::spawn({
                let addr = addr.to_string();
                move || {
                    let mut c = Channel::new(TcpConnector::new(addr).connect().unwrap());
                    c.send(&Message::Heartbeat { round }).unwrap();
                    c.recv().unwrap()
                }
            });
            let transport = loop {
                if let Some(t) = listener.accept().unwrap() {
                    break t;
                }
            };
            let mut server = Channel::new(transport);
            assert_eq!(server.recv(), Ok(Message::Heartbeat { round }));
            server.send(&Message::RoundAck { round, continue_campaign: true }).unwrap();
            assert_eq!(
                client.join().unwrap(),
                Message::RoundAck { round, continue_campaign: true }
            );
        }
        // The connector type itself dials too.
        let client = std::thread::spawn(move || {
            let mut c = Channel::new(connector.connect().unwrap());
            c.send(&Message::Bye { reason: "x".into() }).unwrap();
        });
        let transport = loop {
            if let Some(t) = listener.accept().unwrap() {
                break t;
            }
        };
        let mut server = Channel::new(transport);
        assert_eq!(server.recv(), Ok(Message::Bye { reason: "x".into() }));
        client.join().unwrap();
    }
}
