//! Pre-testing HAL driver probing (§IV-B).
//!
//! The "poke and probe" pass: enumerate the running HAL services through
//! the service manager (`lshal` stand-in), then — per service — have the
//! Poke-app stand-in trial every reflected method with benign marshaled
//! parameters while an eBPF-style trace session records the Binder-induced
//! kernel activity. From the observations we derive:
//!
//! * typed argument descriptions (integer trials reveal accepted values),
//! * which methods produce *handles* consumable by sibling methods,
//! * per-interface **weights** from normalized kernel-activity occurrence.
//!
//! The device is rebooted afterwards so testing starts from pristine
//! state.

use fuzzlang::desc::{ArgDesc, CallDesc, CallKind, DescTable};
use fuzzlang::types::{ResourceKind, TypeDesc};
use simbinder::{ArgKind, Parcel, Transaction, TransactionError};
use simdevice::Device;
use simkernel::trace::TraceFilter;

/// Trial values for integer arguments. Zero is deliberately excluded —
/// the probe must not feed obviously degenerate values into stateful
/// drivers before testing starts (it is the fuzzer's job to do that,
/// against a device it is allowed to crash).
const INT_TRIALS: [i32; 5] = [1, 2, 3, 4, 8];

/// One probed HAL method.
#[derive(Debug, Clone)]
pub struct ProbedMethod {
    /// Binder service descriptor.
    pub service: String,
    /// Short interface name (e.g. `IComposer`).
    pub interface: String,
    /// Method name.
    pub method: String,
    /// Transaction code.
    pub code: u32,
    /// Derived argument types.
    pub args: Vec<TypeDesc>,
    /// Whether the reply carried a value usable as a handle.
    pub produces_handle: bool,
    /// Kernel syscall events observed across this method's trials.
    pub kernel_events: usize,
    /// Vertex weight: `1 + 2 × normalized occurrence`, i.e. in (1, 3] —
    /// deliberately above the syscall descriptions' default weight of 1.
    pub weight: f64,
}

/// The probing pass output.
#[derive(Debug, Clone, Default)]
pub struct ProbeReport {
    /// All probed methods across all services.
    pub methods: Vec<ProbedMethod>,
    /// Services enumerated.
    pub services: usize,
}

impl ProbeReport {
    /// Total interfaces (methods) extracted.
    pub fn interface_count(&self) -> usize {
        self.methods.len()
    }
}

fn short_interface(descriptor: &str) -> String {
    descriptor
        .split("::")
        .nth(1)
        .and_then(|s| s.split('/').next())
        .unwrap_or(descriptor)
        .to_owned()
}

fn default_value(kind: ArgKind, parcel: &mut Parcel) {
    match kind {
        ArgKind::Int32 => {
            parcel.write_i32(1);
        }
        ArgKind::Int64 => {
            parcel.write_i64(1);
        }
        ArgKind::String16 => {
            parcel.write_string16("probe");
        }
        ArgKind::Blob => {
            parcel.write_blob(vec![0u8; 8]);
        }
        ArgKind::FileDescriptor => {
            parcel.write_fd(0);
        }
        ArgKind::Handle => {
            parcel.write_i32(1);
        }
    }
}

fn build_parcel(kinds: &[ArgKind], overrides: &[(usize, i32)]) -> Parcel {
    let mut parcel = Parcel::new();
    for (i, &kind) in kinds.iter().enumerate() {
        if let Some(&(_, v)) = overrides.iter().find(|(idx, _)| *idx == i) {
            match kind {
                ArgKind::Int64 => {
                    parcel.write_i64(i64::from(v));
                }
                _ => {
                    parcel.write_i32(v);
                }
            }
        } else {
            default_value(kind, &mut parcel);
        }
    }
    parcel
}

/// Whether a transaction outcome indicates the *marshaling* was accepted
/// (the value may still be rejected by state checks — that is fine, the
/// shape is what probing learns).
fn marshaling_accepted(result: &Result<Parcel, TransactionError>) -> bool {
    !matches!(
        result,
        Err(TransactionError::BadParcel(_)) | Err(TransactionError::UnknownCode(_))
    )
}

/// Runs the probing pass against `device`. The device is rebooted before
/// returning so fuzzing starts from clean state.
pub fn probe_device(device: &mut Device) -> ProbeReport {
    let descriptors: Vec<String> = device
        .service_manager()
        .list()
        .into_iter()
        .map(str::to_owned)
        .collect();
    let mut report = ProbeReport { methods: Vec::new(), services: descriptors.len() };

    for descriptor in descriptors {
        let Some(tag) = device.hal_tag(&descriptor) else { continue };
        let Some(info) = device.service_manager().get(&descriptor).cloned() else { continue };
        let interface = short_interface(&descriptor);
        for method in &info.methods {
            let trace = device.kernel().attach_trace(TraceFilter::HalTag(tag));
            // Default trial.
            let default_result = device.transact(
                &descriptor,
                Transaction::new(method.code, build_parcel(&method.args, &[])),
            );
            let produces_handle = matches!(&default_result, Ok(p) if !p.is_empty());
            // Per-int-argument value trials.
            let mut arg_types = Vec::with_capacity(method.args.len());
            for (i, &kind) in method.args.iter().enumerate() {
                let ty = match kind {
                    ArgKind::Int32 => {
                        let mut accepted = Vec::new();
                        for &v in &INT_TRIALS {
                            let r = device.transact(
                                &descriptor,
                                Transaction::new(method.code, build_parcel(&method.args, &[(i, v)])),
                            );
                            if marshaling_accepted(&r) {
                                accepted.push(v as u64);
                            }
                        }
                        if accepted.is_empty() || accepted.len() == INT_TRIALS.len() {
                            // No discrimination observed: keep a small
                            // range plus the boundary values the trials
                            // deliberately avoided.
                            TypeDesc::Choice {
                                values: vec![0, 1, 2, 3, 4, 8, 16, 64, 255],
                            }
                        } else {
                            let mut values = accepted;
                            values.push(0);
                            values.push(255);
                            TypeDesc::Choice { values }
                        }
                    }
                    ArgKind::Int64 => TypeDesc::Int { min: 0, max: 1 << 36 },
                    ArgKind::String16 => TypeDesc::Str {
                        choices: vec!["probe".into(), "default".into(), String::new()],
                    },
                    ArgKind::Blob => TypeDesc::Buffer { min_len: 0, max_len: 512 },
                    ArgKind::FileDescriptor => TypeDesc::Int { min: 0, max: 64 },
                    ArgKind::Handle => TypeDesc::Resource {
                        kind: ResourceKind::new(format!("hal:{interface}:out")),
                    },
                };
                arg_types.push(ty);
            }
            let events = device.kernel().trace_drain(trace);
            device.kernel().detach_trace(trace);
            report.methods.push(ProbedMethod {
                service: descriptor.clone(),
                interface: interface.clone(),
                method: method.name.clone(),
                code: method.code,
                args: arg_types,
                produces_handle,
                kernel_events: events.len(),
                weight: 0.0,
            });
        }
    }
    // Normalized occurrence: methods that touch the kernel more often are
    // weighted higher as base invocations. HAL interfaces are the point of
    // the whole exercise (they are the only road into proprietary
    // drivers), so their weights sit *above* the syscall descriptions'
    // default weight of 1.0.
    let max_events = report.methods.iter().map(|m| m.kernel_events).max().unwrap_or(0);
    for m in &mut report.methods {
        let norm = (1.0 + m.kernel_events as f64) / (1.0 + max_events as f64);
        m.weight = 1.0 + 2.0 * norm;
    }
    // Leave the device pristine for the fuzzing campaign.
    device.reboot();
    report
}

/// Converts the probe report into HAL call descriptions and adds them to
/// `table` (used by DroidFuzz; baselines skip this).
pub fn add_hal_descs(table: &mut DescTable, report: &ProbeReport) {
    for m in &report.methods {
        let args = m
            .args
            .iter()
            .enumerate()
            .map(|(i, ty)| ArgDesc::new(&format!("a{i}"), ty.clone()))
            .collect();
        let produces = m
            .produces_handle
            .then(|| ResourceKind::new(format!("hal:{}:out", m.interface)));
        table.add(
            CallDesc::new(
                format!("hal${}${}", m.interface, m.method),
                CallKind::Hal { service: m.service.clone(), code: m.code },
                args,
                produces,
            )
            .with_weight(m.weight),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simdevice::catalog;

    #[test]
    fn probe_extracts_all_service_methods() {
        let mut device = catalog::device_a1().boot();
        let expected: usize = device
            .service_manager()
            .list()
            .iter()
            .map(|d| device.service_manager().get(d).unwrap().methods.len())
            .sum();
        let report = probe_device(&mut device);
        assert_eq!(report.interface_count(), expected);
        assert!(report.services >= 8, "A1 ships many services");
    }

    #[test]
    fn probe_does_not_trigger_any_armed_bug() {
        for spec in catalog::all_devices() {
            let id = spec.meta.id.clone();
            let mut device = spec.boot();
            let _ = probe_device(&mut device);
            // probe_device reboots, which clears pending reports — so
            // check *before* reboot via a fresh probe-like check: reboot
            // already happened, but a fatal bug would have wedged the
            // kernel mid-probe and the crash list would persist in HAL…
            // Instead assert the strongest observable: after the pass the
            // device reports no bugs and is not wedged.
            assert!(device.take_bug_reports().is_empty(), "device {id} dirty after probe");
            assert!(!device.is_wedged(), "device {id} wedged by probing");
            assert_eq!(device.boot_count(), 2, "probe must end with a reboot");
        }
    }

    #[test]
    fn probe_survives_a_wedged_device() {
        // Degradation seam: the device wedges (spontaneous hang, no bug
        // report) *before* probing. Every trial syscall fails with EIO,
        // but the pass must still complete, extract the full method list
        // from the service manager, and leave the device usable — the
        // closing reboot clears the wedge.
        let mut device = catalog::device_a1().boot();
        let expected: usize = device
            .service_manager()
            .list()
            .iter()
            .map(|d| device.service_manager().get(d).unwrap().methods.len())
            .sum();
        device.force_wedge();
        assert!(device.is_wedged());
        let report = probe_device(&mut device);
        assert_eq!(report.interface_count(), expected);
        assert!(!device.is_wedged(), "the closing reboot clears the wedge");
        assert!(device.take_bug_reports().is_empty());
    }

    #[test]
    fn weights_reflect_kernel_activity() {
        let mut device = catalog::device_a1().boot();
        let report = probe_device(&mut device);
        let max = report.methods.iter().map(|m| m.weight).fold(0.0, f64::max);
        let min = report.methods.iter().map(|m| m.weight).fold(f64::MAX, f64::min);
        assert!((max - 3.0).abs() < 1e-9, "heaviest method gets weight 3");
        assert!(min > 1.0 && min < max, "weights sit above syscalls and discriminate");
    }

    #[test]
    fn handle_producers_detected_for_composer() {
        let mut device = catalog::device_a1().boot();
        let report = probe_device(&mut device);
        let create_layer = report
            .methods
            .iter()
            .find(|m| m.method == "createLayer")
            .expect("composer probed");
        assert!(create_layer.produces_handle);
        let set_buffer = report
            .methods
            .iter()
            .find(|m| m.method == "setLayerBuffer")
            .expect("composer probed");
        assert!(matches!(
            set_buffer.args[0],
            TypeDesc::Resource { ref kind } if kind.0 == "hal:IComposer:out"
        ));
    }

    #[test]
    fn descs_from_probe_are_generable() {
        use rand::SeedableRng;
        let mut device = catalog::device_a2().boot();
        let mut table = crate::descs::build_syscall_table(device.kernel());
        let report = probe_device(&mut device);
        add_hal_descs(&mut table, &report);
        assert!(!table.hal_ids().is_empty());
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let prog = fuzzlang::gen::generate(&table, 6, &mut rng);
            assert_eq!(prog.validate(&table), Ok(()));
        }
    }

    #[test]
    fn int_trials_learn_accepted_choices() {
        let mut device = catalog::device_a2().boot();
        let report = probe_device(&mut device);
        // media createComponent accepts codecs 1..=4; trials should learn
        // a Choice containing those plus boundary probes.
        let create = report
            .methods
            .iter()
            .find(|m| m.method == "createComponent")
            .expect("media probed");
        match &create.args[0] {
            TypeDesc::Choice { values } => {
                assert!(values.contains(&1) && values.contains(&4));
                assert!(!values.contains(&8), "8 was rejected by the codec check");
            }
            other => panic!("expected learned choice, got {other:?}"),
        }
    }
}
