//! The relation graph of §IV-C.
//!
//! `G_rel = (V, E)` with `V = {syscalls} ∪ {HAL interfaces}`, each vertex
//! carrying a fixed weight (its probability mass as the *base invocation*
//! during generation), and directed weighted edges expressing learned
//! dependencies. Edge insertion follows Eq. 1:
//!
//! ```text
//! w(a,b) = 1 − Σ_{x≠a} w(x,b) / 2
//! ```
//!
//! with the other in-edges of `b` halved — so the in-weights of every
//! vertex always sum to exactly 1 once it has any. Periodic decay
//! multiplies all edge weights by a factor < 1 to escape local optima.

use fuzzlang::desc::{DescId, DescTable};
use rand::Rng;
use std::collections::BTreeMap;

/// The relation graph.
#[derive(Debug, Clone)]
pub struct RelationGraph {
    vertex_weight: Vec<f64>,
    /// `out[a][b] = w(a,b)`.
    out: BTreeMap<usize, BTreeMap<usize, f64>>,
    edge_count: usize,
    learn_events: u64,
}

impl RelationGraph {
    /// Initializes the graph from a description table: all vertices with
    /// their description weights, and `E = ∅`.
    pub fn new(table: &DescTable) -> Self {
        let vertex_weight = table.iter().map(|(_, d)| d.weight.max(1e-6)).collect();
        Self { vertex_weight, out: BTreeMap::new(), edge_count: 0, learn_events: 0 }
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.vertex_weight.len()
    }

    /// Number of directed edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Times [`learn`](Self::learn) has been called.
    pub fn learn_events(&self) -> u64 {
        self.learn_events
    }

    /// Current weight of edge `a → b`, if present.
    pub fn edge_weight(&self, a: DescId, b: DescId) -> Option<f64> {
        self.out.get(&a.0).and_then(|m| m.get(&b.0)).copied()
    }

    /// Records the learned dependency `a → b` per Eq. 1: existing
    /// in-edges of `b` are halved and the new (or refreshed) edge takes
    /// the remaining mass, so `Σ_x w(x,b) = 1`.
    pub fn learn(&mut self, a: DescId, b: DescId) {
        if a == b {
            return;
        }
        self.learn_events += 1;
        // Halve all other in-edges of b and sum their (halved) weights.
        let mut sum_others = 0.0;
        for (&from, targets) in &mut self.out {
            if from == a.0 {
                continue;
            }
            if let Some(w) = targets.get_mut(&b.0) {
                *w /= 2.0;
                sum_others += *w;
            }
        }
        let entry = self.out.entry(a.0).or_default();
        let new_weight = (1.0 - sum_others).max(0.0);
        if entry.insert(b.0, new_weight).is_none() {
            self.edge_count += 1;
        }
    }

    /// Multiplies all edge weights by `factor` (< 1), dropping edges that
    /// fall below a floor — the periodic diversity reduction of §IV-C.
    pub fn decay(&mut self, factor: f64) {
        const FLOOR: f64 = 1e-4;
        for targets in self.out.values_mut() {
            targets.retain(|_, w| {
                *w *= factor;
                *w >= FLOOR
            });
        }
        self.out.retain(|_, t| !t.is_empty());
        self.edge_count = self.out.values().map(BTreeMap::len).sum();
    }

    /// Samples a base invocation by vertex weight.
    pub fn sample_base<R: Rng>(&self, rng: &mut R) -> DescId {
        let total: f64 = self.vertex_weight.iter().sum();
        let mut x = rng.gen_range(0.0..total.max(f64::MIN_POSITIVE));
        for (i, &w) in self.vertex_weight.iter().enumerate() {
            if x < w {
                return DescId(i);
            }
            x -= w;
        }
        DescId(self.vertex_weight.len().saturating_sub(1))
    }

    /// Walks one step from `from`: picks a successor with probability
    /// equal to its edge weight (the walk may stop — return `None` — with
    /// the residual probability `1 − Σ w`).
    pub fn sample_next<R: Rng>(&self, from: DescId, rng: &mut R) -> Option<DescId> {
        let targets = self.out.get(&from.0)?;
        let mut x = rng.gen_range(0.0..1.0f64);
        for (&to, &w) in targets {
            if x < w {
                return Some(DescId(to));
            }
            x -= w;
        }
        None
    }

    /// All out-edges of `from`, for diagnostics and the relation-explorer
    /// example.
    pub fn successors(&self, from: DescId) -> Vec<(DescId, f64)> {
        self.out
            .get(&from.0)
            .map(|m| m.iter().map(|(&to, &w)| (DescId(to), w)).collect())
            .unwrap_or_default()
    }

    /// The `count` heaviest edges, descending, as `(from, to, weight)`.
    pub fn top_edges(&self, count: usize) -> Vec<(DescId, DescId, f64)> {
        let mut edges: Vec<(DescId, DescId, f64)> = self
            .out
            .iter()
            .flat_map(|(&a, m)| m.iter().map(move |(&b, &w)| (DescId(a), DescId(b), w)))
            .collect();
        edges.sort_by(|x, y| y.2.total_cmp(&x.2));
        edges.truncate(count);
        edges
    }

    /// Sum of in-edge weights of `b` (1.0 for any vertex that has been a
    /// learn target and has not decayed — the Eq. 1 invariant).
    pub fn in_weight_sum(&self, b: DescId) -> f64 {
        self.out.values().filter_map(|m| m.get(&b.0)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fuzzlang::desc::{CallDesc, CallKind};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn table(n: usize) -> DescTable {
        let mut t = DescTable::new();
        for i in 0..n {
            t.add(CallDesc::new(
                format!("call{i}"),
                CallKind::Hal { service: "s".into(), code: i as u32 },
                vec![],
                None,
            ));
        }
        t
    }

    #[test]
    fn eq1_first_edge_gets_full_weight() {
        let t = table(3);
        let mut g = RelationGraph::new(&t);
        g.learn(DescId(0), DescId(2));
        assert_eq!(g.edge_weight(DescId(0), DescId(2)), Some(1.0));
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn eq1_in_weights_always_sum_to_one() {
        let t = table(5);
        let mut g = RelationGraph::new(&t);
        g.learn(DescId(0), DescId(4));
        g.learn(DescId(1), DescId(4));
        g.learn(DescId(2), DescId(4));
        let sum = g.in_weight_sum(DescId(4));
        assert!((sum - 1.0).abs() < 1e-9, "in-weights sum to {sum}");
        // Latest learner holds the majority of the mass.
        let w2 = g.edge_weight(DescId(2), DescId(4)).unwrap();
        let w1 = g.edge_weight(DescId(1), DescId(4)).unwrap();
        let w0 = g.edge_weight(DescId(0), DescId(4)).unwrap();
        // After (0→4), (1→4), (2→4): w = 0.25, 0.25, 0.5 per Eq. 1.
        assert!(w2 > w1 && w1 >= w0);
        assert!((w2 - 0.5).abs() < 1e-9);
    }

    #[test]
    fn relearning_same_edge_restores_dominance() {
        let t = table(4);
        let mut g = RelationGraph::new(&t);
        g.learn(DescId(0), DescId(3));
        g.learn(DescId(1), DescId(3));
        g.learn(DescId(0), DescId(3));
        let w0 = g.edge_weight(DescId(0), DescId(3)).unwrap();
        let w1 = g.edge_weight(DescId(1), DescId(3)).unwrap();
        assert!(w0 > w1);
        assert!((g.in_weight_sum(DescId(3)) - 1.0).abs() < 1e-9);
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn self_edges_ignored() {
        let t = table(2);
        let mut g = RelationGraph::new(&t);
        g.learn(DescId(1), DescId(1));
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn decay_shrinks_and_prunes() {
        let t = table(3);
        let mut g = RelationGraph::new(&t);
        g.learn(DescId(0), DescId(1));
        g.decay(0.5);
        assert_eq!(g.edge_weight(DescId(0), DescId(1)), Some(0.5));
        for _ in 0..20 {
            g.decay(0.5);
        }
        assert_eq!(g.edge_count(), 0, "tiny edges are pruned");
    }

    #[test]
    fn sample_base_respects_vertex_weights() {
        let mut t = DescTable::new();
        t.add(
            CallDesc::new("rare", CallKind::Hal { service: "s".into(), code: 0 }, vec![], None)
                .with_weight(0.01),
        );
        t.add(
            CallDesc::new("hot", CallKind::Hal { service: "s".into(), code: 1 }, vec![], None)
                .with_weight(10.0),
        );
        let g = RelationGraph::new(&t);
        let mut rng = StdRng::seed_from_u64(5);
        let hot = (0..1000).filter(|_| g.sample_base(&mut rng) == DescId(1)).count();
        assert!(hot > 950, "hot vertex should dominate, got {hot}");
    }

    #[test]
    fn sample_next_follows_edges_or_stops() {
        let t = table(3);
        let mut g = RelationGraph::new(&t);
        g.learn(DescId(0), DescId(1));
        g.decay(0.6); // w = 0.6: both outcomes possible
        let mut rng = StdRng::seed_from_u64(6);
        let mut hits = 0;
        let mut stops = 0;
        for _ in 0..1000 {
            match g.sample_next(DescId(0), &mut rng) {
                Some(DescId(1)) => hits += 1,
                None => stops += 1,
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(hits > 500 && stops > 300, "hits={hits} stops={stops}");
        assert_eq!(g.sample_next(DescId(2), &mut rng), None);
    }

    #[test]
    fn top_edges_sorted_descending() {
        let t = table(4);
        let mut g = RelationGraph::new(&t);
        g.learn(DescId(0), DescId(1));
        g.learn(DescId(2), DescId(1));
        g.learn(DescId(0), DescId(3));
        let top = g.top_edges(10);
        assert_eq!(top.len(), 3);
        assert!(top[0].2 >= top[1].2 && top[1].2 >= top[2].2);
    }
}
