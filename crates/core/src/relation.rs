//! The relation graph of §IV-C.
//!
//! `G_rel = (V, E)` with `V = {syscalls} ∪ {HAL interfaces}`, each vertex
//! carrying a fixed weight (its probability mass as the *base invocation*
//! during generation), and directed weighted edges expressing learned
//! dependencies. Edge insertion follows Eq. 1:
//!
//! ```text
//! w(a,b) = 1 − Σ_{x≠a} w(x,b) / 2
//! ```
//!
//! with the other in-edges of `b` halved — so the in-weights of every
//! vertex always sum to exactly 1 once it has any. Periodic decay
//! multiplies all edge weights by a factor < 1 to escape local optima.

use fuzzlang::desc::{DescId, DescTable};
use rand::Rng;
use std::collections::BTreeMap;

/// The relation graph.
#[derive(Debug, Clone)]
pub struct RelationGraph {
    vertex_weight: Vec<f64>,
    /// `out[a][b] = w(a,b)`.
    out: BTreeMap<usize, BTreeMap<usize, f64>>,
    edge_count: usize,
    learn_events: u64,
    /// Bumped on every mutation: fleet shards compare it against their
    /// last-published value to skip cloning an unchanged graph at sync.
    revision: u64,
}

impl RelationGraph {
    /// Initializes the graph from a description table: all vertices with
    /// their description weights, and `E = ∅`.
    pub fn new(table: &DescTable) -> Self {
        let vertex_weight = table.iter().map(|(_, d)| d.weight.max(1e-6)).collect();
        Self { vertex_weight, out: BTreeMap::new(), edge_count: 0, learn_events: 0, revision: 0 }
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.vertex_weight.len()
    }

    /// Number of directed edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Times [`learn`](Self::learn) has been called.
    pub fn learn_events(&self) -> u64 {
        self.learn_events
    }

    /// Mutation counter: changes iff the graph may have changed. Cheap
    /// dirtiness check for batched fleet sync; not part of any snapshot.
    pub fn revision(&self) -> u64 {
        self.revision
    }

    /// Current weight of edge `a → b`, if present.
    pub fn edge_weight(&self, a: DescId, b: DescId) -> Option<f64> {
        self.out.get(&a.0).and_then(|m| m.get(&b.0)).copied()
    }

    /// Records the learned dependency `a → b` per Eq. 1: existing
    /// in-edges of `b` are halved and the new (or refreshed) edge takes
    /// the remaining mass, so `Σ_x w(x,b) = 1`.
    pub fn learn(&mut self, a: DescId, b: DescId) {
        if a == b {
            return;
        }
        self.learn_events += 1;
        self.revision += 1;
        // Halve all other in-edges of b and sum their (halved) weights.
        let mut sum_others = 0.0;
        for (&from, targets) in &mut self.out {
            if from == a.0 {
                continue;
            }
            if let Some(w) = targets.get_mut(&b.0) {
                *w /= 2.0;
                sum_others += *w;
            }
        }
        let entry = self.out.entry(a.0).or_default();
        let new_weight = (1.0 - sum_others).max(0.0);
        if entry.insert(b.0, new_weight).is_none() {
            self.edge_count += 1;
        }
    }

    /// Seeds the graph with static priors before the first execution
    /// (DroidFuzz-S): for each target, its `k` statically-implied sources
    /// split half the probability mass (`0.5 / k` each), leaving the
    /// other half as stop-residual for runtime learning to claim. Edges
    /// that already exist are left untouched, so seeding an
    /// already-warmed graph is a no-op for those pairs, and `learn`'s
    /// halving keeps the Eq. 1 invariant (Σ ≤ 1) intact afterwards.
    /// No learn events are recorded — priors are not observations.
    pub fn seed_prior(&mut self, pairs: &[(DescId, DescId)]) {
        if pairs.is_empty() {
            return;
        }
        self.revision += 1;
        let mut by_target: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for (a, b) in pairs {
            if a != b {
                by_target.entry(b.0).or_default().push(a.0);
            }
        }
        for (b, sources) in by_target {
            let existing: f64 = self.out.values().filter_map(|m| m.get(&b)).sum();
            let budget = (0.5 - existing).max(0.0);
            if budget <= 0.0 {
                continue;
            }
            let fresh: Vec<usize> = sources
                .iter()
                .copied()
                .filter(|a| self.out.get(a).is_none_or(|m| !m.contains_key(&b)))
                .collect();
            if fresh.is_empty() {
                continue;
            }
            let w = budget / fresh.len() as f64;
            for a in fresh {
                if self.out.entry(a).or_default().insert(b, w).is_none() {
                    self.edge_count += 1;
                }
            }
        }
    }

    /// Multiplies all edge weights by `factor` (< 1), dropping edges that
    /// fall below a floor — the periodic diversity reduction of §IV-C.
    pub fn decay(&mut self, factor: f64) {
        const FLOOR: f64 = 1e-4;
        self.revision += 1;
        for targets in self.out.values_mut() {
            targets.retain(|_, w| {
                *w *= factor;
                *w >= FLOOR
            });
        }
        self.out.retain(|_, t| !t.is_empty());
        self.edge_count = self.out.values().map(BTreeMap::len).sum();
    }

    /// Samples a base invocation by vertex weight.
    pub fn sample_base<R: Rng>(&self, rng: &mut R) -> DescId {
        let total: f64 = self.vertex_weight.iter().sum();
        let mut x = rng.gen_range(0.0..total.max(f64::MIN_POSITIVE));
        for (i, &w) in self.vertex_weight.iter().enumerate() {
            if x < w {
                return DescId(i);
            }
            x -= w;
        }
        DescId(self.vertex_weight.len().saturating_sub(1))
    }

    /// Walks one step from `from`: picks a successor with probability
    /// equal to its edge weight (the walk may stop — return `None` — with
    /// the residual probability `1 − Σ w`).
    pub fn sample_next<R: Rng>(&self, from: DescId, rng: &mut R) -> Option<DescId> {
        let targets = self.out.get(&from.0)?;
        let mut x = rng.gen_range(0.0..1.0f64);
        for (&to, &w) in targets {
            if x < w {
                return Some(DescId(to));
            }
            x -= w;
        }
        None
    }

    /// All out-edges of `from`, for diagnostics and the relation-explorer
    /// example.
    pub fn successors(&self, from: DescId) -> Vec<(DescId, f64)> {
        self.out
            .get(&from.0)
            .map(|m| m.iter().map(|(&to, &w)| (DescId(to), w)).collect())
            .unwrap_or_default()
    }

    /// The `count` heaviest edges, descending, as `(from, to, weight)`.
    pub fn top_edges(&self, count: usize) -> Vec<(DescId, DescId, f64)> {
        let mut edges: Vec<(DescId, DescId, f64)> = self
            .out
            .iter()
            .flat_map(|(&a, m)| m.iter().map(move |(&b, &w)| (DescId(a), DescId(b), w)))
            .collect();
        edges.sort_by(|x, y| y.2.total_cmp(&x.2));
        edges.truncate(count);
        edges
    }

    /// Sum of in-edge weights of `b` (1.0 for any vertex that has been a
    /// learn target and has not decayed — the Eq. 1 invariant).
    pub fn in_weight_sum(&self, b: DescId) -> f64 {
        self.out.values().filter_map(|m| m.get(&b.0)).sum()
    }

    /// Serializes the learned edges in a line-oriented text format keyed
    /// by call-description *names* (stable across engine restarts, unlike
    /// raw indices), the daemon's persistent representation:
    ///
    /// ```text
    /// # relation-graph learns=N
    /// edge <from>\t<to>\t<weight>
    /// ```
    ///
    /// Weights print with Rust's shortest-roundtrip float formatting, so
    /// export → import → export is byte-identical.
    pub fn export(&self, table: &DescTable) -> String {
        let mut out = format!("# relation-graph learns={}\n", self.learn_events);
        for (&a, targets) in &self.out {
            for (&b, &w) in targets {
                out.push_str(&format!(
                    "edge {}\t{}\t{w}\n",
                    table.get(DescId(a)).name,
                    table.get(DescId(b)).name,
                ));
            }
        }
        out
    }

    /// Restores edges from an [`export`](Self::export) dump, resolving
    /// names against `table`. Malformed lines and edges naming calls
    /// absent from the current vocabulary are skipped; returns
    /// `(accepted, rejected)`.
    ///
    /// Parsing is staged: nothing touches the graph until the whole text
    /// has been scanned, so a line that fails mid-import cannot leave a
    /// partially-applied record behind. Only after staging are the
    /// accepted edges inserted and every target's in-weights renormalized
    /// so they remain a valid distribution (Σ ≤ 1, the Eq. 1 invariant).
    pub fn import(&mut self, text: &str, table: &DescTable) -> (usize, usize) {
        let mut accepted = 0;
        let mut rejected = 0;
        let mut staged: Vec<(DescId, DescId, f64)> = Vec::new();
        let mut learns = 0u64;
        for line in text.lines() {
            let line = line.trim_end();
            if line.is_empty() {
                continue;
            }
            if let Some(header) = line.strip_prefix("# relation-graph ") {
                if let Some(n) = header
                    .split("learns=")
                    .nth(1)
                    .and_then(|v| v.trim().parse::<u64>().ok())
                {
                    learns = learns.max(n);
                }
                continue;
            }
            if line.starts_with('#') {
                continue;
            }
            let parsed = line.strip_prefix("edge ").and_then(|rest| {
                let mut fields = rest.split('\t');
                let a = table.id_of(fields.next()?)?;
                let b = table.id_of(fields.next()?)?;
                let w: f64 = fields.next()?.parse().ok()?;
                (w.is_finite() && w >= 0.0).then_some((a, b, w))
            });
            match parsed {
                Some(edge) => {
                    staged.push(edge);
                    accepted += 1;
                }
                None => rejected += 1,
            }
        }
        self.learn_events = self.learn_events.max(learns);
        self.revision += 1;
        for (a, b, w) in staged {
            if self.out.entry(a.0).or_default().insert(b.0, w).is_none() {
                self.edge_count += 1;
            }
        }
        self.normalize_in_weights();
        (accepted, rejected)
    }

    /// Merges a peer's learned edges into this graph (fleet relation
    /// sync). Peer weights are added source-wise per target, then each
    /// target's in-weights are rescaled so their sum equals the larger of
    /// the two graphs' original in-weight sums (capped at 1) — keeping
    /// every in-edge set a valid distribution per Eq. 1 while preserving
    /// the residual stop probability decay has earned.
    ///
    /// Both graphs must be built over the same description table (fleet
    /// shards share one device model and config).
    pub fn merge_from(&mut self, peer: &RelationGraph) {
        self.revision += 1;
        assert_eq!(
            self.vertex_count(),
            peer.vertex_count(),
            "relation graphs from different vocabularies cannot merge"
        );
        // Collect per-target in-weight sums on both sides first.
        let mut target_sum_self: BTreeMap<usize, f64> = BTreeMap::new();
        for targets in self.out.values() {
            for (&b, &w) in targets {
                *target_sum_self.entry(b).or_default() += w;
            }
        }
        let mut target_sum_peer: BTreeMap<usize, f64> = BTreeMap::new();
        for targets in peer.out.values() {
            for (&b, &w) in targets {
                *target_sum_peer.entry(b).or_default() += w;
            }
        }
        for (&a, targets) in &peer.out {
            for (&b, &w) in targets {
                let entry = self.out.entry(a).or_default();
                match entry.get_mut(&b) {
                    Some(existing) => *existing += w,
                    None => {
                        entry.insert(b, w);
                        self.edge_count += 1;
                    }
                }
            }
        }
        // Rescale each touched target back to a valid distribution.
        let targets: std::collections::BTreeSet<usize> = target_sum_self
            .keys()
            .chain(target_sum_peer.keys())
            .copied()
            .collect();
        for b in targets {
            let combined: f64 = self.out.values().filter_map(|m| m.get(&b)).sum();
            let goal = target_sum_self
                .get(&b)
                .copied()
                .unwrap_or(0.0)
                .max(target_sum_peer.get(&b).copied().unwrap_or(0.0))
                .min(1.0);
            if combined > 0.0 && (combined - goal).abs() > f64::EPSILON {
                let scale = goal / combined;
                for targets in self.out.values_mut() {
                    if let Some(w) = targets.get_mut(&b) {
                        *w *= scale;
                    }
                }
            }
        }
        self.learn_events += peer.learn_events;
    }

    /// Caps every vertex's in-weight sum at 1 (used after importing raw
    /// weights from text, which an adversarial snapshot could inflate).
    fn normalize_in_weights(&mut self) {
        let mut sums: BTreeMap<usize, f64> = BTreeMap::new();
        for targets in self.out.values() {
            for (&b, &w) in targets {
                *sums.entry(b).or_default() += w;
            }
        }
        for (b, sum) in sums {
            // Tolerance keeps clean re-imports byte-identical: float
            // addition of a learn-produced distribution may land a hair
            // above 1 without being adversarial.
            if sum > 1.0 + 1e-9 {
                let scale = 1.0 / sum;
                for targets in self.out.values_mut() {
                    if let Some(w) = targets.get_mut(&b) {
                        *w *= scale;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fuzzlang::desc::{CallDesc, CallKind};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn table(n: usize) -> DescTable {
        let mut t = DescTable::new();
        for i in 0..n {
            t.add(CallDesc::new(
                format!("call{i}"),
                CallKind::Hal { service: "s".into(), code: i as u32 },
                vec![],
                None,
            ));
        }
        t
    }

    #[test]
    fn eq1_first_edge_gets_full_weight() {
        let t = table(3);
        let mut g = RelationGraph::new(&t);
        g.learn(DescId(0), DescId(2));
        assert_eq!(g.edge_weight(DescId(0), DescId(2)), Some(1.0));
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn eq1_in_weights_always_sum_to_one() {
        let t = table(5);
        let mut g = RelationGraph::new(&t);
        g.learn(DescId(0), DescId(4));
        g.learn(DescId(1), DescId(4));
        g.learn(DescId(2), DescId(4));
        let sum = g.in_weight_sum(DescId(4));
        assert!((sum - 1.0).abs() < 1e-9, "in-weights sum to {sum}");
        // Latest learner holds the majority of the mass.
        let w2 = g.edge_weight(DescId(2), DescId(4)).unwrap();
        let w1 = g.edge_weight(DescId(1), DescId(4)).unwrap();
        let w0 = g.edge_weight(DescId(0), DescId(4)).unwrap();
        // After (0→4), (1→4), (2→4): w = 0.25, 0.25, 0.5 per Eq. 1.
        assert!(w2 > w1 && w1 >= w0);
        assert!((w2 - 0.5).abs() < 1e-9);
    }

    #[test]
    fn relearning_same_edge_restores_dominance() {
        let t = table(4);
        let mut g = RelationGraph::new(&t);
        g.learn(DescId(0), DescId(3));
        g.learn(DescId(1), DescId(3));
        g.learn(DescId(0), DescId(3));
        let w0 = g.edge_weight(DescId(0), DescId(3)).unwrap();
        let w1 = g.edge_weight(DescId(1), DescId(3)).unwrap();
        assert!(w0 > w1);
        assert!((g.in_weight_sum(DescId(3)) - 1.0).abs() < 1e-9);
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn self_edges_ignored() {
        let t = table(2);
        let mut g = RelationGraph::new(&t);
        g.learn(DescId(1), DescId(1));
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn decay_shrinks_and_prunes() {
        let t = table(3);
        let mut g = RelationGraph::new(&t);
        g.learn(DescId(0), DescId(1));
        g.decay(0.5);
        assert_eq!(g.edge_weight(DescId(0), DescId(1)), Some(0.5));
        for _ in 0..20 {
            g.decay(0.5);
        }
        assert_eq!(g.edge_count(), 0, "tiny edges are pruned");
    }

    #[test]
    fn sample_base_respects_vertex_weights() {
        let mut t = DescTable::new();
        t.add(
            CallDesc::new("rare", CallKind::Hal { service: "s".into(), code: 0 }, vec![], None)
                .with_weight(0.01),
        );
        t.add(
            CallDesc::new("hot", CallKind::Hal { service: "s".into(), code: 1 }, vec![], None)
                .with_weight(10.0),
        );
        let g = RelationGraph::new(&t);
        let mut rng = StdRng::seed_from_u64(5);
        let hot = (0..1000).filter(|_| g.sample_base(&mut rng) == DescId(1)).count();
        assert!(hot > 950, "hot vertex should dominate, got {hot}");
    }

    #[test]
    fn sample_next_follows_edges_or_stops() {
        let t = table(3);
        let mut g = RelationGraph::new(&t);
        g.learn(DescId(0), DescId(1));
        g.decay(0.6); // w = 0.6: both outcomes possible
        let mut rng = StdRng::seed_from_u64(6);
        let mut hits = 0;
        let mut stops = 0;
        for _ in 0..1000 {
            match g.sample_next(DescId(0), &mut rng) {
                Some(DescId(1)) => hits += 1,
                None => stops += 1,
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(hits > 500 && stops > 300, "hits={hits} stops={stops}");
        assert_eq!(g.sample_next(DescId(2), &mut rng), None);
    }

    #[test]
    fn export_import_roundtrip_is_byte_identical() {
        let t = table(5);
        let mut g = RelationGraph::new(&t);
        g.learn(DescId(0), DescId(4));
        g.learn(DescId(1), DescId(4));
        g.learn(DescId(2), DescId(3));
        g.decay(0.7);
        let text = g.export(&t);
        let mut restored = RelationGraph::new(&t);
        let (accepted, rejected) = restored.import(&text, &t);
        assert_eq!((accepted, rejected), (3, 0));
        assert_eq!(restored.edge_count(), 3);
        assert_eq!(restored.export(&t), text);
        assert_eq!(restored.learn_events(), g.learn_events());
    }

    #[test]
    fn import_skips_unknown_calls_and_garbage() {
        let t = table(3);
        let mut g = RelationGraph::new(&t);
        let text = "# relation-graph learns=4\n\
                    edge call0\tcall1\t0.5\n\
                    edge call0\tcall_gone\t0.5\n\
                    edge call2\tcall1\tNaN\n\
                    edge call2\tcall1\t-1.0\n\
                    not an edge line\n\
                    edge truncated\n";
        let (accepted, rejected) = g.import(text, &t);
        assert_eq!(accepted, 1);
        assert_eq!(rejected, 5);
        assert_eq!(g.edge_weight(DescId(0), DescId(1)), Some(0.5));
    }

    #[test]
    fn corrupt_import_preserves_eq1_per_auditor() {
        let t = table(4);
        let mut g = RelationGraph::new(&t);
        g.learn(DescId(0), DescId(3));
        g.learn(DescId(1), DescId(3));
        // Inflated weight, NaN, an overwrite of a learned edge, garbage —
        // after import the export must still audit clean for Eq. 1.
        let corrupt = "edge call2\tcall3\t250\n\
                       edge call2\tcall3\tNaN\n\
                       edge call0\tcall3\t0.9\n\
                       garbage line\n";
        let (accepted, rejected) = g.import(corrupt, &t);
        assert_eq!((accepted, rejected), (2, 2));
        let report = droidfuzz_analysis::audit_relations(&g.export(&t), &t);
        assert!(!report.has_errors(), "{:?}", report.diagnostics);
        assert!(g.in_weight_sum(DescId(3)) <= 1.0 + 1e-9);
    }

    #[test]
    fn import_caps_inflated_in_weights() {
        let t = table(3);
        let mut g = RelationGraph::new(&t);
        let text = "edge call0\tcall2\t0.9\nedge call1\tcall2\t0.9\n";
        g.import(text, &t);
        let sum = g.in_weight_sum(DescId(2));
        assert!((sum - 1.0).abs() < 1e-9, "inflated in-weights capped, got {sum}");
    }

    #[test]
    fn merge_keeps_in_weights_a_distribution() {
        let t = table(5);
        let mut a = RelationGraph::new(&t);
        a.learn(DescId(0), DescId(4));
        a.learn(DescId(1), DescId(4));
        let mut b = RelationGraph::new(&t);
        b.learn(DescId(2), DescId(4));
        b.learn(DescId(3), DescId(4));
        b.learn(DescId(0), DescId(1));
        a.merge_from(&b);
        let sum = a.in_weight_sum(DescId(4));
        assert!((sum - 1.0).abs() < 1e-9, "merged in-weights sum to {sum}");
        assert_eq!(a.in_weight_sum(DescId(1)), 1.0);
        // Every source that ever learned into 4 has surviving mass.
        for src in [0, 1, 2, 3] {
            assert!(a.edge_weight(DescId(src), DescId(4)).unwrap() > 0.0);
        }
        assert_eq!(a.learn_events(), 5);
    }

    #[test]
    fn merge_preserves_decay_residual() {
        let t = table(3);
        let mut a = RelationGraph::new(&t);
        a.learn(DescId(0), DescId(2));
        a.decay(0.5); // in-weight sum of 2 is now 0.5
        let mut b = RelationGraph::new(&t);
        b.learn(DescId(1), DescId(2));
        b.decay(0.4); // in-weight sum of 2 is 0.4
        a.merge_from(&b);
        let sum = a.in_weight_sum(DescId(2));
        assert!(
            (sum - 0.5).abs() < 1e-9,
            "merge keeps the larger decayed sum, got {sum}"
        );
    }

    #[test]
    fn seed_prior_splits_half_mass_and_keeps_eq1() {
        let t = table(5);
        let mut g = RelationGraph::new(&t);
        g.seed_prior(&[(DescId(0), DescId(4)), (DescId(1), DescId(4)), (DescId(2), DescId(3))]);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.learn_events(), 0, "priors are not observations");
        assert_eq!(g.edge_weight(DescId(0), DescId(4)), Some(0.25));
        assert_eq!(g.edge_weight(DescId(1), DescId(4)), Some(0.25));
        assert_eq!(g.edge_weight(DescId(2), DescId(3)), Some(0.5));
        // Runtime learning on top of priors keeps the Eq. 1 invariant.
        let mut warmed = g.clone();
        warmed.learn(DescId(2), DescId(4));
        assert!((warmed.in_weight_sum(DescId(4)) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn seed_prior_never_overwrites_learned_edges() {
        let t = table(4);
        let mut g = RelationGraph::new(&t);
        g.learn(DescId(0), DescId(3));
        let rev = g.revision();
        g.seed_prior(&[(DescId(0), DescId(3)), (DescId(1), DescId(3))]);
        assert_eq!(g.edge_weight(DescId(0), DescId(3)), Some(1.0), "learned edge untouched");
        assert_eq!(
            g.edge_weight(DescId(1), DescId(3)),
            None,
            "no budget left once learned mass covers the prior half"
        );
        assert!(g.revision() > rev);
        assert!(g.in_weight_sum(DescId(3)) <= 1.0 + 1e-9);
        // Self-pairs are ignored, empty seeding is a no-op.
        let rev = g.revision();
        g.seed_prior(&[(DescId(2), DescId(2))]);
        g.seed_prior(&[]);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.revision(), rev + 1);
    }

    #[test]
    fn seeded_graph_exports_audit_clean() {
        let t = table(4);
        let mut g = RelationGraph::new(&t);
        g.seed_prior(&[(DescId(0), DescId(2)), (DescId(1), DescId(2)), (DescId(0), DescId(3))]);
        let report = droidfuzz_analysis::audit_relations(&g.export(&t), &t);
        assert!(!report.has_errors(), "{:?}", report.diagnostics);
    }

    #[test]
    fn top_edges_sorted_descending() {
        let t = table(4);
        let mut g = RelationGraph::new(&t);
        g.learn(DescId(0), DescId(1));
        g.learn(DescId(2), DescId(1));
        g.learn(DescId(0), DescId(3));
        let top = g.top_edges(10);
        assert_eq!(top.len(), 3);
        assert!(top[0].2 >= top[1].2 && top[1].2 >= top[2].2);
    }
}
