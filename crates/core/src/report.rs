//! Plain-text rendering of tables and coverage series for the experiment
//! harness binaries (one per paper table/figure).

use crate::stats::Series;

/// Renders rows as an aligned ASCII table with a header rule.
pub fn ascii_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let render_row = |cells: &[String]| -> String {
        let mut line = String::from("|");
        let empty = String::new();
        for (i, &width) in widths.iter().enumerate().take(cols) {
            let cell = cells.get(i).unwrap_or(&empty);
            line.push_str(&format!(" {cell:<width$} |"));
        }
        line
    };
    let rule: String = {
        let mut r = String::from("+");
        for w in &widths {
            r.push_str(&"-".repeat(w + 2));
            r.push('+');
        }
        r
    };
    let mut out = String::new();
    out.push_str(&rule);
    out.push('\n');
    out.push_str(&render_row(
        &headers.iter().map(|s| (*s).to_owned()).collect::<Vec<_>>(),
    ));
    out.push('\n');
    out.push_str(&rule);
    out.push('\n');
    for row in rows {
        out.push_str(&render_row(row));
        out.push('\n');
    }
    out.push_str(&rule);
    out.push('\n');
    out
}

/// Renders several named series as a shared-axis ASCII line chart
/// (time on x, value on y), for figure regeneration in a terminal.
pub fn ascii_chart(title: &str, series: &[(&str, &Series)], width: usize, height: usize) -> String {
    let mut out = format!("{title}\n");
    let max_v = series
        .iter()
        .flat_map(|(_, s)| s.points().iter().map(|&(_, v)| v))
        .fold(0.0f64, f64::max)
        .max(1.0);
    let max_t = series
        .iter()
        .flat_map(|(_, s)| s.points().iter().map(|&(t, _)| t))
        .max()
        .unwrap_or(1)
        .max(1);
    let marks = ['#', '*', '+', 'o', 'x', '@'];
    let mut grid = vec![vec![' '; width]; height];
    for (si, (_, s)) in series.iter().enumerate() {
        let mark = marks[si % marks.len()];
        for (col, t) in (1..=width as u64).map(|c| max_t * c / width as u64).enumerate() {
            let v = s.value_at(t);
            let row = ((v / max_v) * (height as f64 - 1.0)).round() as usize;
            let row = height - 1 - row.min(height - 1);
            grid[row][col] = mark;
        }
    }
    for (i, row) in grid.iter().enumerate() {
        let label = if i == 0 {
            format!("{max_v:>9.0} ")
        } else if i == height - 1 {
            format!("{:>9.0} ", 0.0)
        } else {
            " ".repeat(10)
        };
        out.push_str(&label);
        out.push('|');
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&" ".repeat(10));
    out.push('+');
    out.push_str(&"-".repeat(width));
    out.push('\n');
    let hours = max_t as f64 / 3_600_000_000.0;
    out.push_str(&format!("{:>10}0h{}{:.0}h\n", "", " ".repeat(width.saturating_sub(5)), hours));
    for (si, (name, _)) in series.iter().enumerate() {
        out.push_str(&format!("  {} = {name}\n", marks[si % marks.len()]));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_and_frames() {
        let table = ascii_table(
            &["ID", "Device"],
            &[
                vec!["A1".into(), "Phone Dev Board".into()],
                vec!["B".into(), "Pi 5".into()],
            ],
        );
        assert!(table.contains("| A1 | Phone Dev Board |"));
        assert!(table.contains("| B  | Pi 5            |"));
        assert!(table.starts_with('+'));
    }

    #[test]
    fn chart_renders_marks_for_each_series() {
        let mut a = Series::new();
        a.push(3_600_000_000, 10.0);
        let mut b = Series::new();
        b.push(3_600_000_000, 5.0);
        let chart = ascii_chart("cov", &[("one", &a), ("two", &b)], 20, 8);
        assert!(chart.contains('#'));
        assert!(chart.contains('*'));
        assert!(chart.contains("one"));
        assert!(chart.contains("two"));
    }
}
