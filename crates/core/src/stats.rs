//! Campaign statistics: coverage-over-time series, aggregation across
//! repeated runs, and the Mann-Whitney U test the paper uses for
//! significance (§V-A).

/// A sampled `(virtual time µs, value)` series, e.g. kernel coverage over
/// a campaign.
#[derive(Debug, Clone, Default)]
pub struct Series {
    points: Vec<(u64, f64)>,
}

impl Series {
    /// Creates an empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a sample (time must be non-decreasing).
    pub fn push(&mut self, time_us: u64, value: f64) {
        debug_assert!(self.points.last().is_none_or(|&(t, _)| t <= time_us));
        self.points.push((time_us, value));
    }

    /// Appends a sample only if it keeps the series non-decreasing in
    /// time; returns whether it was accepted. Restore paths feed this
    /// with samples from external text (fleet snapshots), where an
    /// out-of-order timestamp is corrupt input to reject, not a
    /// programming error to assert on.
    pub fn push_monotonic(&mut self, time_us: u64, value: f64) -> bool {
        if self.points.last().is_some_and(|&(t, _)| t > time_us) {
            return false;
        }
        self.points.push((time_us, value));
        true
    }

    /// The samples.
    pub fn points(&self) -> &[(u64, f64)] {
        &self.points
    }

    /// Last value (0 when empty).
    pub fn last_value(&self) -> f64 {
        self.points.last().map_or(0.0, |&(_, v)| v)
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Value at `time_us` (step interpolation; 0 before the first sample).
    pub fn value_at(&self, time_us: u64) -> f64 {
        match self.points.partition_point(|&(t, _)| t <= time_us) {
            0 => 0.0,
            n => self.points[n - 1].1,
        }
    }

    /// Resamples onto `ticks` evenly spaced timestamps over `[0, end_us]`.
    pub fn resample(&self, end_us: u64, ticks: usize) -> Vec<(u64, f64)> {
        (1..=ticks)
            .map(|i| {
                let t = end_us * i as u64 / ticks as u64;
                (t, self.value_at(t))
            })
            .collect()
    }
}

/// Pointwise mean of several series resampled onto a common grid.
pub fn mean_series(series: &[Series], end_us: u64, ticks: usize) -> Series {
    let mut out = Series::new();
    if series.is_empty() {
        return out;
    }
    for i in 1..=ticks {
        let t = end_us * i as u64 / ticks as u64;
        let mean = series.iter().map(|s| s.value_at(t)).sum::<f64>() / series.len() as f64;
        out.push(t, mean);
    }
    out
}

/// Two-sided Mann-Whitney U test via the normal approximation with tie
/// correction. Returns `(u_statistic, p_value)`.
///
/// The paper uses this to assess statistical significance across its ten
/// repetitions; p < 0.05 is the conventional threshold.
pub fn mann_whitney_u(a: &[f64], b: &[f64]) -> (f64, f64) {
    let n1 = a.len() as f64;
    let n2 = b.len() as f64;
    if a.is_empty() || b.is_empty() {
        return (0.0, 1.0);
    }
    // Rank the pooled sample, averaging ranks of ties.
    let mut pooled: Vec<(f64, usize)> = a
        .iter()
        .map(|&v| (v, 0usize))
        .chain(b.iter().map(|&v| (v, 1usize)))
        .collect();
    pooled.sort_by(|x, y| x.0.total_cmp(&y.0));
    let n = pooled.len();
    let mut ranks = vec![0.0f64; n];
    let mut tie_term = 0.0;
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && pooled[j + 1].0 == pooled[i].0 {
            j += 1;
        }
        let avg_rank = (i + j + 2) as f64 / 2.0;
        for r in ranks.iter_mut().take(j + 1).skip(i) {
            *r = avg_rank;
        }
        let t = (j - i + 1) as f64;
        tie_term += t * t * t - t;
        i = j + 1;
    }
    let r1: f64 = pooled
        .iter()
        .zip(&ranks)
        .filter(|((_, group), _)| *group == 0)
        .map(|(_, &r)| r)
        .sum();
    let u1 = r1 - n1 * (n1 + 1.0) / 2.0;
    let u2 = n1 * n2 - u1;
    let u = u1.min(u2);
    // Normal approximation with tie-corrected variance.
    let mu = n1 * n2 / 2.0;
    let n_total = n1 + n2;
    let sigma2 = n1 * n2 / 12.0 * ((n_total + 1.0) - tie_term / (n_total * (n_total - 1.0)));
    if sigma2 <= 0.0 {
        return (u, 1.0);
    }
    let z = (u - mu).abs() / sigma2.sqrt();
    let p = 2.0 * (1.0 - phi(z));
    (u, p.clamp(0.0, 1.0))
}

/// Standard normal CDF via the Abramowitz–Stegun erf approximation.
fn phi(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

fn erf(x: f64) -> f64 {
    // Abramowitz & Stegun 7.1.26, |error| ≤ 1.5e-7.
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let y = 1.0
        - (((((1.061_405_429 * t - 1.453_152_027) * t) + 1.421_413_741) * t - 0.284_496_736)
            * t
            + 0.254_829_592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Basic descriptive statistics.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Sample standard deviation.
pub fn stddev(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    (values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / (values.len() - 1) as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_step_interpolation() {
        let mut s = Series::new();
        s.push(10, 1.0);
        s.push(20, 5.0);
        assert_eq!(s.value_at(5), 0.0);
        assert_eq!(s.value_at(10), 1.0);
        assert_eq!(s.value_at(15), 1.0);
        assert_eq!(s.value_at(25), 5.0);
        assert_eq!(s.last_value(), 5.0);
    }

    #[test]
    fn push_monotonic_rejects_time_travel() {
        let mut s = Series::new();
        assert!(s.push_monotonic(10, 1.0));
        assert!(s.push_monotonic(10, 2.0), "equal timestamps are fine");
        assert!(!s.push_monotonic(5, 3.0), "going backwards is rejected");
        assert!(s.push_monotonic(20, 4.0));
        assert_eq!(s.len(), 3);
        assert_eq!(s.last_value(), 4.0);
    }

    #[test]
    fn resample_produces_requested_grid() {
        let mut s = Series::new();
        s.push(50, 2.0);
        let grid = s.resample(100, 4);
        assert_eq!(grid.len(), 4);
        assert_eq!(grid[0], (25, 0.0));
        assert_eq!(grid[1], (50, 2.0));
        assert_eq!(grid[3], (100, 2.0));
    }

    #[test]
    fn mean_series_averages_pointwise() {
        let mut a = Series::new();
        a.push(10, 2.0);
        let mut b = Series::new();
        b.push(10, 4.0);
        let m = mean_series(&[a, b], 20, 2);
        assert_eq!(m.points(), &[(10, 3.0), (20, 3.0)]);
    }

    #[test]
    fn mann_whitney_separated_groups_significant() {
        let a = [100.0, 101.0, 99.0, 102.0, 98.0, 103.0, 100.5, 101.5, 99.5, 100.2];
        let b = [110.0, 111.0, 109.0, 112.0, 108.0, 113.0, 110.5, 111.5, 109.5, 110.2];
        let (_, p) = mann_whitney_u(&a, &b);
        assert!(p < 0.01, "clearly separated groups: p = {p}");
    }

    #[test]
    fn mann_whitney_identical_groups_not_significant() {
        let a = [5.0, 6.0, 7.0, 8.0, 9.0];
        let b = [5.0, 6.0, 7.0, 8.0, 9.0];
        let (_, p) = mann_whitney_u(&a, &b);
        assert!(p > 0.9, "identical groups: p = {p}");
    }

    #[test]
    fn mann_whitney_small_overlap() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0];
        let b = [3.0, 4.0, 5.0, 6.0, 7.0];
        let (_, p) = mann_whitney_u(&a, &b);
        assert!(p > 0.05 && p < 0.8, "overlapping groups: p = {p}");
    }

    #[test]
    fn descriptive_stats() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert!((stddev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]) - 2.138).abs() < 0.01);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(stddev(&[1.0]), 0.0);
    }
}
