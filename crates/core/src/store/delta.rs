//! The journal's delta vocabulary: one [`FleetDelta`] per journal record.
//!
//! Each delta is a single-line, human-readable payload (the frame around
//! it carries length + CRC, so the payload needs no escaping of its own —
//! but seed bodies are escaped anyway so a record stays one line for
//! `grep`/`droidfuzz-lint`). The encode/decode pair lives here so the
//! writer ([`FleetStore`]) and the reader ([`RecoveryManager`]) cannot
//! drift apart.
//!
//! Counter deltas (`faults`, `lint`, `store`) carry *absolute* cumulative
//! totals, and `edge` carries the absolute current weight — replaying a
//! record twice, or replaying a prefix, can therefore never double-count.
//!
//! [`FleetStore`]: crate::fleet::persist::FleetStore
//! [`RecoveryManager`]: super::recovery::RecoveryManager

use super::StoreCounters;
use crate::crashes::CrashRecord;
use crate::fleet::snapshot::{crash_fields, escape, parse_crash_line, unescape};
use crate::net::NetCounters;
use crate::supervisor::FaultCounters;
use droidfuzz_analysis::LintCounters;

/// One fleet state change, as journaled between checkpoints.
#[derive(Debug, Clone, PartialEq)]
pub enum FleetDelta {
    /// The hub admitted a new seed.
    Seed {
        /// Admission score the publishing shard reported.
        signals: usize,
        /// Program lines (`r<n> = call(...)`), newline-terminated.
        body: String,
    },
    /// A relation edge now has this weight (upsert; the weight string is
    /// kept verbatim so replay round-trips the export bytes).
    Edge {
        /// Source call name.
        from: String,
        /// Target call name.
        to: String,
        /// Weight, in the export's shortest-roundtrip float form.
        weight: String,
    },
    /// A relation edge was pruned (decay floor).
    EdgeDel {
        /// Source call name.
        from: String,
        /// Target call name.
        to: String,
    },
    /// Cumulative learn-event count of the merged graph.
    Learns(u64),
    /// A crash record reached this state (upsert by dedup title).
    Crash(CrashRecord),
    /// Kernel blocks newly added to the union coverage.
    Blocks(Vec<u64>),
    /// A union-coverage series sample was recorded.
    Sample {
        /// Fleet clock, µs.
        t: u64,
        /// Union coverage at that time.
        v: f64,
    },
    /// Cumulative fleet fault/recovery counters (absolute).
    Faults(FaultCounters),
    /// Cumulative lint-gate counters (absolute).
    Lint(LintCounters),
    /// Cumulative durability counters (absolute).
    Store(StoreCounters),
    /// Cumulative wire-layer counters (absolute).
    Net(NetCounters),
    /// A sync round completed at this fleet clock.
    Round {
        /// Rounds completed (the value a resume starts from).
        round: usize,
        /// Fleet clock, µs.
        clock_us: u64,
    },
}

fn encode_counters<'a>(
    keyword: &str,
    entries: impl IntoIterator<Item = (&'a str, u64)>,
) -> String {
    let mut out = keyword.to_owned();
    for (key, value) in entries {
        out.push_str(&format!(" {key}={value}"));
    }
    out
}

/// Parses `k=v` tokens onto `set`; unknown keys are tolerated (forward
/// compatibility), malformed tokens fail the decode.
fn decode_counters(rest: &str, mut set: impl FnMut(&str, u64) -> bool) -> Option<()> {
    for token in rest.split(' ') {
        if token.is_empty() {
            continue;
        }
        let (key, value) = token.split_once('=')?;
        let value: u64 = value.parse().ok()?;
        let _ = set(key, value);
    }
    Some(())
}

impl FleetDelta {
    /// Serializes to the single-line journal payload.
    pub fn encode(&self) -> String {
        match self {
            FleetDelta::Seed { signals, body } => {
                format!("seed {signals}\t{}", escape(body))
            }
            FleetDelta::Edge { from, to, weight } => format!("edge {from}\t{to}\t{weight}"),
            FleetDelta::EdgeDel { from, to } => format!("edge-del {from}\t{to}"),
            FleetDelta::Learns(n) => format!("learns {n}"),
            FleetDelta::Crash(record) => format!("crash {}", crash_fields(record)),
            FleetDelta::Blocks(blocks) => {
                let mut out = "blocks".to_owned();
                for block in blocks {
                    out.push_str(&format!(" {block:x}"));
                }
                out
            }
            FleetDelta::Sample { t, v } => format!("sample {t} {v}"),
            FleetDelta::Faults(c) => encode_counters("faults", c.entries()),
            FleetDelta::Lint(c) => encode_counters("lint", c.entries()),
            FleetDelta::Store(c) => encode_counters("store", c.entries()),
            FleetDelta::Net(c) => encode_counters("net", c.entries()),
            FleetDelta::Round { round, clock_us } => format!("round {round} {clock_us}"),
        }
    }

    /// Parses a journal payload; `None` for anything this version does
    /// not understand (the replayer counts it as a malformed line).
    pub fn decode(payload: &str) -> Option<FleetDelta> {
        let (keyword, rest) = payload.split_once(' ').unwrap_or((payload, ""));
        match keyword {
            "seed" => {
                let (signals, body) = rest.split_once('\t')?;
                Some(FleetDelta::Seed {
                    signals: signals.parse().ok()?,
                    body: unescape(body),
                })
            }
            "edge" => {
                let mut fields = rest.split('\t');
                let (from, to, weight) =
                    (fields.next()?, fields.next()?, fields.next()?);
                if fields.next().is_some() {
                    return None;
                }
                let w: f64 = weight.parse().ok()?;
                (w.is_finite() && w >= 0.0).then(|| FleetDelta::Edge {
                    from: from.to_owned(),
                    to: to.to_owned(),
                    weight: weight.to_owned(),
                })
            }
            "edge-del" => {
                let (from, to) = rest.split_once('\t')?;
                Some(FleetDelta::EdgeDel { from: from.to_owned(), to: to.to_owned() })
            }
            "learns" => Some(FleetDelta::Learns(rest.parse().ok()?)),
            "crash" => Some(FleetDelta::Crash(parse_crash_line(payload)?)),
            "blocks" => {
                let mut blocks = Vec::new();
                for token in rest.split(' ') {
                    if token.is_empty() {
                        continue;
                    }
                    blocks.push(u64::from_str_radix(token, 16).ok()?);
                }
                Some(FleetDelta::Blocks(blocks))
            }
            "sample" => {
                let (t, v) = rest.split_once(' ')?;
                let v: f64 = v.parse().ok()?;
                v.is_finite()
                    .then_some(FleetDelta::Sample { t: t.parse().ok()?, v })
            }
            "faults" => {
                let mut c = FaultCounters::default();
                decode_counters(rest, |k, v| c.set(k, v))?;
                Some(FleetDelta::Faults(c))
            }
            "lint" => {
                let mut c = LintCounters::default();
                decode_counters(rest, |k, v| c.set(k, v))?;
                Some(FleetDelta::Lint(c))
            }
            "store" => {
                let mut c = StoreCounters::default();
                decode_counters(rest, |k, v| c.set(k, v))?;
                Some(FleetDelta::Store(c))
            }
            "net" => {
                let mut c = NetCounters::default();
                decode_counters(rest, |k, v| c.set(k, v))?;
                Some(FleetDelta::Net(c))
            }
            "round" => {
                let (round, clock_us) = rest.split_once(' ')?;
                Some(FleetDelta::Round {
                    round: round.parse().ok()?,
                    clock_us: clock_us.parse().ok()?,
                })
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkernel::report::{BugKind, Component};

    fn round_trip(delta: FleetDelta) {
        let line = delta.encode();
        assert!(!line.contains('\n'), "encoded delta must be one line: {line:?}");
        assert_eq!(FleetDelta::decode(&line).as_ref(), Some(&delta), "{line:?}");
    }

    #[test]
    fn every_variant_round_trips() {
        round_trip(FleetDelta::Seed {
            signals: 7,
            body: "r0 = openat$/dev/video0()\nr1 = ioctl(r0)\n".into(),
        });
        round_trip(FleetDelta::Edge {
            from: "openat$/dev/video0".into(),
            to: "ioctl$VIDIOC_QUERYCAP".into(),
            weight: "0.3333333333333333".into(),
        });
        round_trip(FleetDelta::EdgeDel { from: "a".into(), to: "b".into() });
        round_trip(FleetDelta::Learns(42));
        round_trip(FleetDelta::Blocks(vec![0x10, 0xff, 0x2f00]));
        round_trip(FleetDelta::Blocks(vec![]));
        round_trip(FleetDelta::Sample { t: 900_000_000, v: 123.0 });
        round_trip(FleetDelta::Faults(FaultCounters {
            injected: 3,
            hangs: 1,
            ..Default::default()
        }));
        round_trip(FleetDelta::Lint(LintCounters {
            rejected: 2,
            repaired: 5,
            absint_rejected: 1,
            absint_repaired: 3,
        }));
        round_trip(FleetDelta::Store(StoreCounters {
            journal_records: 9,
            recoveries: 1,
            ..Default::default()
        }));
        round_trip(FleetDelta::Net(NetCounters {
            frames_sent: 17,
            reconnects: 2,
            ..Default::default()
        }));
        round_trip(FleetDelta::Round { round: 12, clock_us: 3_600_000_000 });
    }

    #[test]
    fn crash_round_trips_with_nasty_title_and_repro() {
        let record = CrashRecord {
            title: "KASAN: use-after-free\tin v4l_qbuf".into(),
            kind: BugKind::KasanUseAfterFree,
            component: Component::KernelDriver,
            count: 4,
            first_seen_us: 1234,
            repro: Some("r0 = openat$/dev/video0()\n".into()),
        };
        round_trip(FleetDelta::Crash(record.clone()));
        let none_repro = CrashRecord { repro: None, ..record };
        round_trip(FleetDelta::Crash(none_repro));
    }

    #[test]
    fn garbage_and_future_records_decode_to_none() {
        for bad in [
            "",
            "frobnicate 12",
            "seed notanumber\tr0 = x()",
            "edge only-two\tfields",
            "edge a\tb\tNaN",
            "edge a\tb\t-1",
            "sample 5 notafloat",
            "blocks 12 zz",
            "faults injected=notanumber",
            "round 1",
            "crash too\tfew\tfields",
        ] {
            assert!(FleetDelta::decode(bad).is_none(), "{bad:?} decoded");
        }
    }

    #[test]
    fn counter_decode_tolerates_unknown_keys() {
        // A newer writer may add counters; an older reader keeps what it
        // knows rather than dropping the record.
        let delta = FleetDelta::decode("faults injected=3 from_the_future=9").unwrap();
        assert_eq!(
            delta,
            FleetDelta::Faults(FaultCounters { injected: 3, ..Default::default() })
        );
    }
}
