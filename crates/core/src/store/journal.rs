//! Append-only write-ahead journal of fleet deltas.
//!
//! `journal-<gen>.wal` holds every durable delta since snapshot
//! generation `gen` was written (`journal-0.wal` holds deltas since the
//! empty state). Each record is an independently checksummed frame:
//!
//! ```text
//! # droidfuzz-store journal v1 base=<gen>
//! rec <seq> <len> <crc32 hex>
//! <len payload bytes>
//! ...
//! ```
//!
//! Sequence numbers start at 0 and increment by 1, so a scan can tell a
//! torn tail from a spliced file. Scanning is *prefix-tolerant*: it
//! accepts every valid frame up to the first corruption, then reports
//! the dropped byte count — a torn final append costs exactly the
//! records that were never durable, never the whole journal.

use super::medium::StorageMedium;
use super::{crc32, StoreError};

/// First line of every journal file (before the `base=` field).
pub const JOURNAL_HEADER: &str = "# droidfuzz-store journal v1";

const JOURNAL_SUFFIX: &str = ".wal";
const JOURNAL_PREFIX: &str = "journal-";

/// File name of the journal based on snapshot generation `gen`
/// (`journal-<gen>.wal`).
pub fn journal_name(gen: u64) -> String {
    format!("{JOURNAL_PREFIX}{gen}{JOURNAL_SUFFIX}")
}

/// Inverse of [`journal_name`]; `None` for other files.
pub fn parse_journal_name(name: &str) -> Option<u64> {
    name.strip_prefix(JOURNAL_PREFIX)?
        .strip_suffix(JOURNAL_SUFFIX)?
        .parse()
        .ok()
}

/// One validated journal record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalRecord {
    /// Position in the journal (0-based, strictly sequential).
    pub seq: u64,
    /// The delta payload (the fleet's single-line delta format; the
    /// frame is length-prefixed, so embedded newlines are legal).
    pub payload: String,
}

/// Result of scanning a journal file: the valid prefix plus what was
/// lost after it.
#[derive(Debug, Clone, Default)]
pub struct JournalScan {
    /// Snapshot generation this journal's deltas apply on top of.
    pub base: u64,
    /// Every record up to the first corruption.
    pub records: Vec<JournalRecord>,
    /// Bytes from the first corrupt frame to end of file (0 when clean).
    pub dropped_bytes: u64,
    /// Whether the scan stopped early at a corrupt or torn frame.
    pub truncated: bool,
}

/// Validates journal `bytes` (named for generation `base`) and returns
/// the longest valid record prefix. A corrupt header drops the whole
/// file; a corrupt frame drops only the tail.
pub fn decode_journal(bytes: &[u8], base: u64) -> JournalScan {
    let mut scan = JournalScan { base, ..Default::default() };
    let header_end = match bytes.iter().position(|&b| b == b'\n') {
        Some(end) => end,
        None => {
            scan.dropped_bytes = bytes.len() as u64;
            scan.truncated = true;
            return scan;
        }
    };
    let header_ok = std::str::from_utf8(&bytes[..header_end])
        .ok()
        .and_then(|line| line.strip_prefix(JOURNAL_HEADER))
        .map(str::trim)
        .and_then(|rest| rest.strip_prefix("base="))
        .and_then(|v| v.parse::<u64>().ok())
        == Some(base);
    if !header_ok {
        scan.dropped_bytes = bytes.len() as u64;
        scan.truncated = true;
        return scan;
    }

    let mut pos = header_end + 1;
    while pos < bytes.len() {
        let frame_start = pos;
        let fail = |scan: &mut JournalScan| {
            scan.dropped_bytes = (bytes.len() - frame_start) as u64;
            scan.truncated = true;
        };
        let Some(line_end) = bytes[pos..].iter().position(|&b| b == b'\n').map(|e| pos + e)
        else {
            fail(&mut scan);
            return scan;
        };
        let Some((seq, len, crc)) = std::str::from_utf8(&bytes[pos..line_end])
            .ok()
            .and_then(parse_frame_line)
        else {
            fail(&mut scan);
            return scan;
        };
        let payload_start = line_end + 1;
        if seq != scan.records.len() as u64 || payload_start + len + 1 > bytes.len() {
            fail(&mut scan);
            return scan;
        }
        let payload = &bytes[payload_start..payload_start + len];
        if crc32(payload) != crc || bytes[payload_start + len] != b'\n' {
            fail(&mut scan);
            return scan;
        }
        let Ok(payload) = std::str::from_utf8(payload) else {
            fail(&mut scan);
            return scan;
        };
        scan.records.push(JournalRecord { seq, payload: payload.to_owned() });
        pos = payload_start + len + 1;
    }
    scan
}

fn parse_frame_line(line: &str) -> Option<(u64, usize, u32)> {
    let mut parts = line.split(' ');
    if parts.next() != Some("rec") {
        return None;
    }
    let seq = parts.next()?.parse().ok()?;
    let len = parts.next()?.parse().ok()?;
    let crc = u32::from_str_radix(parts.next()?, 16).ok()?;
    if parts.next().is_some() {
        return None;
    }
    Some((seq, len, crc))
}

/// An open journal being appended to.
#[derive(Debug, Clone)]
pub struct Journal<M: StorageMedium> {
    medium: M,
    base: u64,
    name: String,
    next_seq: u64,
}

impl<M: StorageMedium> Journal<M> {
    /// Creates (truncating any previous file) the journal for snapshot
    /// generation `base` and durably writes its header.
    pub fn create(mut medium: M, base: u64) -> Result<Self, StoreError> {
        let name = journal_name(base);
        medium.write(&name, format!("{JOURNAL_HEADER} base={base}\n").as_bytes())?;
        medium.sync(&name)?;
        Ok(Self { medium, base, name, next_seq: 0 })
    }

    /// The snapshot generation this journal applies on top of.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Sequence number the next [`append`](Self::append) will get.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Durably appends one delta record (frame + fsync) and returns its
    /// sequence number.
    pub fn append(&mut self, payload: &str) -> Result<u64, StoreError> {
        let seq = self.next_seq;
        let bytes = payload.as_bytes();
        let mut frame =
            format!("rec {seq} {} {:08x}\n", bytes.len(), crc32(bytes)).into_bytes();
        frame.extend_from_slice(bytes);
        frame.push(b'\n');
        self.medium.append(&self.name, &frame)?;
        self.medium.sync(&self.name)?;
        self.next_seq += 1;
        Ok(seq)
    }

    /// Scans the on-medium journal for generation `base`.
    /// [`StoreError::NotFound`] when the file does not exist.
    pub fn scan(medium: &M, base: u64) -> Result<JournalScan, StoreError> {
        let bytes = medium.read(&journal_name(base))?;
        Ok(decode_journal(&bytes, base))
    }
}

#[cfg(test)]
mod tests {
    use super::super::medium::{MediumFault, SimMedium, StorageMedium};
    use super::*;

    #[test]
    fn append_and_scan_round_trip() {
        let medium = SimMedium::new();
        let mut journal = Journal::create(medium.clone(), 3).unwrap();
        assert_eq!(journal.append("seed 2\tr0 = open()").unwrap(), 0);
        assert_eq!(journal.append("edge a\tb\t0.5").unwrap(), 1);
        let scan = Journal::scan(&medium, 3).unwrap();
        assert_eq!(scan.base, 3);
        assert!(!scan.truncated);
        assert_eq!(scan.dropped_bytes, 0);
        assert_eq!(
            scan.records,
            vec![
                JournalRecord { seq: 0, payload: "seed 2\tr0 = open()".into() },
                JournalRecord { seq: 1, payload: "edge a\tb\t0.5".into() },
            ]
        );
    }

    #[test]
    fn missing_journal_is_not_found() {
        assert!(matches!(
            Journal::scan(&SimMedium::new(), 0),
            Err(StoreError::NotFound(_))
        ));
    }

    #[test]
    fn torn_tail_keeps_the_durable_prefix() {
        let medium = SimMedium::new();
        let mut journal = Journal::create(medium.clone(), 0).unwrap();
        journal.append("learns 4").unwrap();
        // Tear the next append (op index: write=0, sync=1, append=2,
        // sync=3, append=4) so only half its frame lands.
        medium.push_fault(MediumFault::TornWrite { op: 4, keep: 7 });
        journal.append("crash title\t1").unwrap();
        let scan = Journal::scan(&medium, 0).unwrap();
        assert!(scan.truncated);
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.records[0].payload, "learns 4");
        assert_eq!(scan.dropped_bytes, 7);
    }

    #[test]
    fn every_prefix_of_a_journal_yields_a_record_prefix() {
        let medium = SimMedium::new();
        let mut journal = Journal::create(medium.clone(), 1).unwrap();
        let payloads = ["a", "bb\nwith newline", "ccc", ""];
        for p in payloads {
            journal.append(p).unwrap();
        }
        let full = medium.read(&journal_name(1)).unwrap();
        let mut seen = 0;
        for cut in 0..=full.len() {
            let scan = decode_journal(&full[..cut], 1);
            // Monotone: longer prefixes never lose records, and records
            // are always an exact prefix of what was appended.
            assert!(scan.records.len() >= seen, "cut={cut}");
            seen = seen.max(scan.records.len());
            for (i, rec) in scan.records.iter().enumerate() {
                assert_eq!(rec.payload, payloads[i], "cut={cut}");
            }
        }
        assert_eq!(seen, payloads.len());
    }

    #[test]
    fn bit_flip_in_payload_drops_the_tail() {
        let medium = SimMedium::new();
        let mut journal = Journal::create(medium.clone(), 0).unwrap();
        journal.append("first").unwrap();
        journal.append("second").unwrap();
        journal.append("third").unwrap();
        let clean = medium.read(&journal_name(0)).unwrap();
        // Flip a byte inside "second"'s payload.
        let offset = clean.windows(6).position(|w| w == b"second").unwrap();
        assert!(medium.corrupt(&journal_name(0), offset, 0x04));
        let scan = Journal::scan(&medium, 0).unwrap();
        assert!(scan.truncated);
        assert_eq!(scan.records.len(), 1);
        assert!(scan.dropped_bytes > 0);
    }

    #[test]
    fn spliced_sequence_numbers_are_rejected() {
        let medium = SimMedium::new();
        let mut journal = Journal::create(medium.clone(), 0).unwrap();
        journal.append("only").unwrap();
        // Forge a frame with seq 5 (skipping 1..4) and a valid CRC.
        let payload = b"forged";
        let frame = format!("rec 5 {} {:08x}\n", payload.len(), crc32(payload));
        let mut m = medium.clone();
        m.append(&journal_name(0), frame.as_bytes()).unwrap();
        m.append(&journal_name(0), payload).unwrap();
        m.append(&journal_name(0), b"\n").unwrap();
        let scan = Journal::scan(&medium, 0).unwrap();
        assert!(scan.truncated);
        assert_eq!(scan.records.len(), 1);
    }

    #[test]
    fn corrupt_header_drops_the_whole_file() {
        let medium = SimMedium::new();
        let mut journal = Journal::create(medium.clone(), 2).unwrap();
        journal.append("x").unwrap();
        assert!(medium.corrupt(&journal_name(2), 3, 0xFF));
        let scan = Journal::scan(&medium, 2).unwrap();
        assert!(scan.truncated);
        assert!(scan.records.is_empty());
        assert!(scan.dropped_bytes > 0);
    }
}
