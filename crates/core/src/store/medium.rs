//! Storage media: the file primitives the store builds on.
//!
//! [`StorageMedium`] is deliberately tiny — flat names, whole-file reads,
//! truncating writes, appends, fsync, rename, remove, list — because
//! everything above it (framing, atomicity, generations) is composed from
//! these primitives, and every primitive is a place the fault-injectable
//! [`SimMedium`] can misbehave deterministically.
//!
//! `SimMedium` keeps, besides the current durable contents, a linear
//! *effect log* of every durable mutation. Each effect has a cost in
//! sweep units (data bytes for writes/appends, 1 for metadata ops), so a
//! test can reconstruct the exact durable state "as of" a crash at any
//! unit offset with [`SimMedium::crash_at`] — including a torn final
//! write — and assert that recovery from that state holds its invariants.

use super::StoreError;
use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

/// The primitive file operations the store layers compose.
///
/// Names are flat (no directories); the medium owns its root. All writes
/// are durable only after [`sync`](Self::sync) on a real filesystem; the
/// sim medium tracks durability through its effect log instead.
pub trait StorageMedium {
    /// Reads a whole file.
    fn read(&self, name: &str) -> Result<Vec<u8>, StoreError>;
    /// Creates or truncates `name` with `data`.
    fn write(&mut self, name: &str, data: &[u8]) -> Result<(), StoreError>;
    /// Appends `data` to `name`, creating it if absent.
    fn append(&mut self, name: &str, data: &[u8]) -> Result<(), StoreError>;
    /// Flushes `name` to durable storage.
    fn sync(&mut self, name: &str) -> Result<(), StoreError>;
    /// Atomically renames `from` to `to` (the commit point of an atomic
    /// snapshot write).
    fn rename(&mut self, from: &str, to: &str) -> Result<(), StoreError>;
    /// Removes `name`; removing a missing file is not an error.
    fn remove(&mut self, name: &str) -> Result<(), StoreError>;
    /// All file names on the medium, sorted.
    fn list(&self) -> Result<Vec<String>, StoreError>;
    /// Whether `name` exists.
    fn exists(&self, name: &str) -> bool;
}

/// Real-filesystem backend rooted at a directory.
#[derive(Debug, Clone)]
pub struct FsMedium {
    root: PathBuf,
}

impl FsMedium {
    /// Opens (creating if needed) a medium rooted at `root`.
    pub fn new(root: impl Into<PathBuf>) -> Result<Self, StoreError> {
        let root = root.into();
        std::fs::create_dir_all(&root).map_err(io_err)?;
        Ok(Self { root })
    }

    /// The root directory.
    pub fn root(&self) -> &std::path::Path {
        &self.root
    }

    fn path(&self, name: &str) -> PathBuf {
        self.root.join(name)
    }
}

fn io_err(e: std::io::Error) -> StoreError {
    if e.raw_os_error() == Some(28) {
        // ENOSPC maps onto the same error the sim medium injects.
        StoreError::NoSpace
    } else {
        StoreError::Io(e.to_string())
    }
}

impl StorageMedium for FsMedium {
    fn read(&self, name: &str) -> Result<Vec<u8>, StoreError> {
        match std::fs::read(self.path(name)) {
            Ok(data) => Ok(data),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                Err(StoreError::NotFound(name.to_owned()))
            }
            Err(e) => Err(io_err(e)),
        }
    }

    fn write(&mut self, name: &str, data: &[u8]) -> Result<(), StoreError> {
        std::fs::write(self.path(name), data).map_err(io_err)
    }

    fn append(&mut self, name: &str, data: &[u8]) -> Result<(), StoreError> {
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.path(name))
            .map_err(io_err)?;
        file.write_all(data).map_err(io_err)
    }

    fn sync(&mut self, name: &str) -> Result<(), StoreError> {
        let file = std::fs::File::open(self.path(name)).map_err(io_err)?;
        file.sync_all().map_err(io_err)
    }

    fn rename(&mut self, from: &str, to: &str) -> Result<(), StoreError> {
        std::fs::rename(self.path(from), self.path(to)).map_err(io_err)?;
        // Durability of the rename itself: sync the directory when the
        // platform allows opening it (best effort elsewhere).
        if let Ok(dir) = std::fs::File::open(&self.root) {
            let _ = dir.sync_all();
        }
        Ok(())
    }

    fn remove(&mut self, name: &str) -> Result<(), StoreError> {
        match std::fs::remove_file(self.path(name)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(io_err(e)),
        }
    }

    fn list(&self) -> Result<Vec<String>, StoreError> {
        let mut names = Vec::new();
        for entry in std::fs::read_dir(&self.root).map_err(io_err)? {
            let entry = entry.map_err(io_err)?;
            if entry.file_type().map_err(io_err)?.is_file() {
                names.push(entry.file_name().to_string_lossy().into_owned());
            }
        }
        names.sort();
        Ok(names)
    }

    fn exists(&self, name: &str) -> bool {
        self.path(name).exists()
    }
}

/// One scripted misbehavior of the [`SimMedium`]. Faults trigger on the
/// medium's mutating-operation counter (every `write`/`append`/`sync`/
/// `rename`/`remove` call increments it, starting from 0), so a fixed
/// plan replays identically against a deterministic campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MediumFault {
    /// The write or append at operation `op` durably stores only its
    /// first `keep` bytes and still reports success — a torn write,
    /// detected only by checksum on the next read.
    TornWrite {
        /// Mutating-operation index the tear lands on.
        op: u64,
        /// Bytes of the operation's payload that become durable.
        keep: usize,
    },
    /// The sync at operation `op` leaves the file truncated to `keep`
    /// bytes — the tail pages never reached the platter.
    PartialSync {
        /// Mutating-operation index of the failing sync.
        op: u64,
        /// File length after the lost tail.
        keep: usize,
    },
    /// After the operation at `op`, the touched file's byte at `offset`
    /// is XOR-ed with `mask` — silent at-rest corruption.
    BitFlip {
        /// Mutating-operation index to corrupt after.
        op: u64,
        /// Byte offset within the touched file (out of range: no-op).
        offset: usize,
        /// XOR mask applied to the byte (0 flips nothing).
        mask: u8,
    },
    /// Writes and appends fail with [`StoreError::NoSpace`] once the
    /// medium's cumulative payload bytes exceed this budget.
    NoSpace {
        /// Total payload bytes accepted before the device is full.
        after_bytes: u64,
    },
    /// The rename at operation `op` silently never happens — the process
    /// crashed between writing the temp file and committing it.
    CrashBeforeRename {
        /// Mutating-operation index of the swallowed rename.
        op: u64,
    },
}

/// One durable mutation in the sim medium's effect log.
#[derive(Debug, Clone)]
enum Effect {
    /// Truncate-then-write of a whole file.
    Write { name: String, data: Vec<u8> },
    /// Append to a file.
    Append { name: String, data: Vec<u8> },
    /// Atomic rename.
    Rename { from: String, to: String },
    /// File removal.
    Remove { name: String },
    /// Truncation to a length (partial-sync fault).
    Truncate { name: String, len: usize },
    /// In-place byte corruption (bit-flip fault).
    Corrupt { name: String, offset: usize, mask: u8 },
}

impl Effect {
    /// Sweep-unit cost: payload bytes for data ops, 1 for metadata ops,
    /// 0 for corruption (it lands atomically with the op it follows).
    fn units(&self) -> u64 {
        match self {
            Effect::Write { data, .. } | Effect::Append { data, .. } => data.len() as u64,
            Effect::Rename { .. } | Effect::Remove { .. } | Effect::Truncate { .. } => 1,
            Effect::Corrupt { .. } => 0,
        }
    }

    /// Applies the first `keep` units of this effect to `files`.
    fn apply_prefix(&self, files: &mut BTreeMap<String, Vec<u8>>, keep: u64) {
        match self {
            Effect::Write { name, data } => {
                let k = (keep as usize).min(data.len());
                files.insert(name.clone(), data[..k].to_vec());
            }
            Effect::Append { name, data } => {
                let k = (keep as usize).min(data.len());
                files.entry(name.clone()).or_default().extend_from_slice(&data[..k]);
            }
            Effect::Rename { from, to } => {
                if keep >= 1 {
                    if let Some(data) = files.remove(from) {
                        files.insert(to.clone(), data);
                    }
                }
            }
            Effect::Remove { name } => {
                if keep >= 1 {
                    files.remove(name);
                }
            }
            Effect::Truncate { name, len } => {
                if keep >= 1 {
                    if let Some(data) = files.get_mut(name) {
                        data.truncate(*len);
                    }
                }
            }
            Effect::Corrupt { name, offset, mask } => {
                if let Some(data) = files.get_mut(name) {
                    if let Some(byte) = data.get_mut(*offset) {
                        *byte ^= mask;
                    }
                }
            }
        }
    }
}

#[derive(Debug, Default)]
struct SimState {
    files: BTreeMap<String, Vec<u8>>,
    log: Vec<Effect>,
    ops: u64,
    bytes_written: u64,
    plan: Vec<MediumFault>,
    fired: Vec<String>,
}

impl SimState {
    /// Applies `effect` to the live file map and logs it.
    fn commit(&mut self, effect: Effect) {
        effect.apply_prefix(&mut self.files, effect.units());
        self.log.push(effect);
    }

    fn take_fault(&mut self, matches: impl Fn(&MediumFault) -> bool) -> Option<MediumFault> {
        let i = self.plan.iter().position(matches)?;
        let fault = self.plan.remove(i);
        self.fired.push(format!("{fault:?} at op {}", self.ops));
        Some(fault)
    }

    fn no_space(&self, incoming: usize) -> bool {
        self.plan.iter().any(|f| match f {
            MediumFault::NoSpace { after_bytes } => {
                self.bytes_written + incoming as u64 > *after_bytes
            }
            _ => false,
        })
    }

    /// Bit-flip faults scheduled on the op that just ran.
    fn apply_bit_flips(&mut self, name: &str) {
        let op = self.ops;
        while let Some(MediumFault::BitFlip { offset, mask, .. }) = self.take_fault(|f| {
            matches!(f, MediumFault::BitFlip { op: o, .. } if *o == op)
        }) {
            self.commit(Effect::Corrupt { name: name.to_owned(), offset, mask });
        }
    }
}

/// Deterministic in-memory medium with scripted fault injection and a
/// crash-sweep effect log. Cloning yields another handle onto the same
/// storage (the store's snapshot and journal layers share one medium).
#[derive(Debug, Clone, Default)]
pub struct SimMedium {
    inner: Arc<Mutex<SimState>>,
}

impl SimMedium {
    /// An empty, fault-free medium.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty medium that will inject `plan` (consumed as faults fire).
    pub fn with_plan(plan: Vec<MediumFault>) -> Self {
        let medium = Self::new();
        medium.inner.lock().expect("sim medium lock").plan = plan;
        medium
    }

    /// Adds a fault to the plan of a live medium.
    pub fn push_fault(&self, fault: MediumFault) {
        self.inner.lock().expect("sim medium lock").plan.push(fault);
    }

    /// Mutating operations performed so far (fault plans index on this).
    pub fn ops(&self) -> u64 {
        self.inner.lock().expect("sim medium lock").ops
    }

    /// Total sweep units in the effect log — the exclusive upper bound
    /// for [`crash_at`](Self::crash_at).
    pub fn total_units(&self) -> u64 {
        self.inner.lock().expect("sim medium lock").log.iter().map(Effect::units).sum()
    }

    /// Human-readable record of every fault that fired.
    pub fn faults_fired(&self) -> Vec<String> {
        self.inner.lock().expect("sim medium lock").fired.clone()
    }

    /// Reconstructs the durable state as of a host crash after exactly
    /// `units` sweep units of the effect log — the effect straddling the
    /// boundary is applied as a torn prefix — and returns it as a fresh
    /// medium (empty log, no fault plan).
    pub fn crash_at(&self, units: u64) -> SimMedium {
        let state = self.inner.lock().expect("sim medium lock");
        let mut files = BTreeMap::new();
        let mut remaining = units;
        for effect in &state.log {
            let cost = effect.units();
            if remaining >= cost {
                effect.apply_prefix(&mut files, cost);
                remaining -= cost;
            } else {
                // A crash before the first unit of an effect leaves it
                // entirely unapplied (no empty file from a 0-byte tear).
                if remaining > 0 {
                    effect.apply_prefix(&mut files, remaining);
                }
                break;
            }
        }
        let crashed = SimMedium::new();
        crashed.inner.lock().expect("sim medium lock").files = files;
        crashed
    }

    /// Flips `mask` into byte `offset` of `name` right now (direct
    /// at-rest corruption for tests). Returns `false` if the file or
    /// offset does not exist.
    pub fn corrupt(&self, name: &str, offset: usize, mask: u8) -> bool {
        let mut state = self.inner.lock().expect("sim medium lock");
        let hit = state
            .files
            .get(name)
            .is_some_and(|data| offset < data.len());
        if hit {
            state.commit(Effect::Corrupt { name: name.to_owned(), offset, mask });
        }
        hit
    }
}

impl StorageMedium for SimMedium {
    fn read(&self, name: &str) -> Result<Vec<u8>, StoreError> {
        self.inner
            .lock()
            .expect("sim medium lock")
            .files
            .get(name)
            .cloned()
            .ok_or_else(|| StoreError::NotFound(name.to_owned()))
    }

    fn write(&mut self, name: &str, data: &[u8]) -> Result<(), StoreError> {
        let mut state = self.inner.lock().expect("sim medium lock");
        if state.no_space(data.len()) {
            state.ops += 1;
            return Err(StoreError::NoSpace);
        }
        let op = state.ops;
        let keep = match state
            .take_fault(|f| matches!(f, MediumFault::TornWrite { op: o, .. } if *o == op))
        {
            Some(MediumFault::TornWrite { keep, .. }) => keep.min(data.len()),
            _ => data.len(),
        };
        state.commit(Effect::Write { name: name.to_owned(), data: data[..keep].to_vec() });
        state.bytes_written += data.len() as u64;
        state.apply_bit_flips(name);
        state.ops += 1;
        Ok(())
    }

    fn append(&mut self, name: &str, data: &[u8]) -> Result<(), StoreError> {
        let mut state = self.inner.lock().expect("sim medium lock");
        if state.no_space(data.len()) {
            state.ops += 1;
            return Err(StoreError::NoSpace);
        }
        let op = state.ops;
        let keep = match state
            .take_fault(|f| matches!(f, MediumFault::TornWrite { op: o, .. } if *o == op))
        {
            Some(MediumFault::TornWrite { keep, .. }) => keep.min(data.len()),
            _ => data.len(),
        };
        state.commit(Effect::Append { name: name.to_owned(), data: data[..keep].to_vec() });
        state.bytes_written += data.len() as u64;
        state.apply_bit_flips(name);
        state.ops += 1;
        Ok(())
    }

    fn sync(&mut self, name: &str) -> Result<(), StoreError> {
        let mut state = self.inner.lock().expect("sim medium lock");
        let op = state.ops;
        if let Some(MediumFault::PartialSync { keep, .. }) = state
            .take_fault(|f| matches!(f, MediumFault::PartialSync { op: o, .. } if *o == op))
        {
            state.commit(Effect::Truncate { name: name.to_owned(), len: keep });
        }
        state.apply_bit_flips(name);
        state.ops += 1;
        Ok(())
    }

    fn rename(&mut self, from: &str, to: &str) -> Result<(), StoreError> {
        let mut state = self.inner.lock().expect("sim medium lock");
        let op = state.ops;
        let swallowed = state
            .take_fault(|f| matches!(f, MediumFault::CrashBeforeRename { op: o } if *o == op))
            .is_some();
        if !swallowed {
            if !state.files.contains_key(from) {
                state.ops += 1;
                return Err(StoreError::NotFound(from.to_owned()));
            }
            state.commit(Effect::Rename { from: from.to_owned(), to: to.to_owned() });
        }
        state.ops += 1;
        Ok(())
    }

    fn remove(&mut self, name: &str) -> Result<(), StoreError> {
        let mut state = self.inner.lock().expect("sim medium lock");
        if state.files.contains_key(name) {
            state.commit(Effect::Remove { name: name.to_owned() });
        }
        state.ops += 1;
        Ok(())
    }

    fn list(&self) -> Result<Vec<String>, StoreError> {
        Ok(self.inner.lock().expect("sim medium lock").files.keys().cloned().collect())
    }

    fn exists(&self, name: &str) -> bool {
        self.inner.lock().expect("sim medium lock").files.contains_key(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_basic_file_operations() {
        let mut m = SimMedium::new();
        m.write("a", b"hello").unwrap();
        m.append("a", b" world").unwrap();
        assert_eq!(m.read("a").unwrap(), b"hello world");
        m.rename("a", "b").unwrap();
        assert!(!m.exists("a"));
        assert_eq!(m.read("b").unwrap(), b"hello world");
        assert_eq!(m.list().unwrap(), vec!["b".to_owned()]);
        m.remove("b").unwrap();
        assert_eq!(m.read("b"), Err(StoreError::NotFound("b".into())));
        m.remove("b").unwrap(); // removing a missing file is fine
    }

    #[test]
    fn clones_share_storage() {
        let mut a = SimMedium::new();
        let b = a.clone();
        a.write("x", b"1").unwrap();
        assert_eq!(b.read("x").unwrap(), b"1");
    }

    #[test]
    fn torn_write_keeps_a_prefix_and_reports_success() {
        let mut m = SimMedium::with_plan(vec![MediumFault::TornWrite { op: 0, keep: 3 }]);
        m.write("a", b"hello").unwrap();
        assert_eq!(m.read("a").unwrap(), b"hel");
        assert_eq!(m.faults_fired().len(), 1);
    }

    #[test]
    fn partial_sync_truncates() {
        let mut m = SimMedium::with_plan(vec![MediumFault::PartialSync { op: 1, keep: 2 }]);
        m.write("a", b"hello").unwrap();
        m.sync("a").unwrap();
        assert_eq!(m.read("a").unwrap(), b"he");
    }

    #[test]
    fn bit_flip_corrupts_in_place() {
        let mut m = SimMedium::with_plan(vec![MediumFault::BitFlip { op: 0, offset: 1, mask: 0x20 }]);
        m.write("a", b"AB").unwrap();
        assert_eq!(m.read("a").unwrap(), b"Ab");
    }

    #[test]
    fn no_space_fails_writes_beyond_budget() {
        let mut m = SimMedium::with_plan(vec![MediumFault::NoSpace { after_bytes: 6 }]);
        m.write("a", b"1234").unwrap();
        assert_eq!(m.append("a", b"56789"), Err(StoreError::NoSpace));
        m.append("a", b"56").unwrap();
        assert_eq!(m.read("a").unwrap(), b"123456");
    }

    #[test]
    fn crash_before_rename_leaves_the_temp_file() {
        let mut m = SimMedium::with_plan(vec![MediumFault::CrashBeforeRename { op: 1 }]);
        m.write("a.tmp", b"data").unwrap();
        m.rename("a.tmp", "a").unwrap(); // swallowed
        assert!(m.exists("a.tmp"));
        assert!(!m.exists("a"));
    }

    #[test]
    fn crash_at_replays_the_effect_log_prefix() {
        let mut m = SimMedium::new();
        m.write("a", b"12345").unwrap(); // units 0..5
        m.append("a", b"678").unwrap(); // units 5..8
        m.rename("a", "b").unwrap(); // unit 8
        assert_eq!(m.total_units(), 9);
        assert_eq!(m.crash_at(0).read("a"), Err(StoreError::NotFound("a".into())));
        assert_eq!(m.crash_at(3).read("a").unwrap(), b"123");
        assert_eq!(m.crash_at(5).read("a").unwrap(), b"12345");
        assert_eq!(m.crash_at(7).read("a").unwrap(), b"1234567");
        // Crash before the rename committed: still the old name.
        assert_eq!(m.crash_at(8).read("a").unwrap(), b"12345678");
        assert!(!m.crash_at(8).exists("b"));
        assert_eq!(m.crash_at(9).read("b").unwrap(), b"12345678");
        // Past the end of the log is just the final state.
        assert_eq!(m.crash_at(1000).read("b").unwrap(), b"12345678");
    }

    #[test]
    fn fs_medium_round_trips() {
        let dir = std::env::temp_dir().join(format!("droidfuzz-store-test-{}", std::process::id()));
        let mut m = FsMedium::new(&dir).unwrap();
        m.write("snap", b"abc").unwrap();
        m.append("snap", b"def").unwrap();
        m.sync("snap").unwrap();
        assert_eq!(m.read("snap").unwrap(), b"abcdef");
        m.rename("snap", "snap2").unwrap();
        assert!(m.list().unwrap().contains(&"snap2".to_owned()));
        assert!(m.exists("snap2") && !m.exists("snap"));
        m.remove("snap2").unwrap();
        assert_eq!(m.read("snap2"), Err(StoreError::NotFound("snap2".into())));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
