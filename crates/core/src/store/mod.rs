//! Crash-safe durable state: the persistence layer under the fleet.
//!
//! The paper's headline campaigns run for 144 virtual hours with
//! reboot-on-bug (§V, Table II); the fleet survives *device* faults, but
//! before this module every durable artifact lived in a host-process
//! string that died with a `kill -9` of the daemon itself. `store` puts
//! the campaign's persistent data on disk behind three layers:
//!
//! 1. [`medium`] — a [`StorageMedium`] trait over the handful of file
//!    primitives the store needs, with a real [`FsMedium`] backend and a
//!    deterministic, fault-injectable [`SimMedium`] that models torn
//!    writes at byte N, partial fsyncs, bit flips, `ENOSPC`, and
//!    crash-before-rename — the substrate every recovery test sweeps.
//! 2. [`snapshot_store`] + [`journal`] — an atomic CRC-framed snapshot
//!    store (length-prefixed sections, per-section and whole-file
//!    checksums, write-temp-then-rename, a generation ring keeping the
//!    last K snapshots) and an append-only write-ahead journal of fleet
//!    deltas (seed admitted, relation edge update, crash found,
//!    fault/lint/store counters) compacted into a full snapshot at every
//!    checkpoint.
//! 3. [`recovery`] — a [`RecoveryManager`] with a stable taxonomy
//!    ([`RecoveryOutcome`]: `Clean` / `TailTruncated` / `CorruptSnapshot`
//!    / `Unrecoverable`) that loads the newest valid snapshot, replays
//!    the journal prefix up to the first corrupt record, and re-verifies
//!    the result through the `droidfuzz-analysis` auditors (the Eq. 1
//!    in-weight invariants must hold post-recovery).
//!
//! The fleet side of the wiring lives in
//! [`fleet::persist`](crate::fleet::persist): a [`FleetStore`] journals
//! hub deltas every sync round and rotates a snapshot generation at every
//! checkpoint.
//!
//! [`StorageMedium`]: medium::StorageMedium
//! [`FsMedium`]: medium::FsMedium
//! [`SimMedium`]: medium::SimMedium
//! [`RecoveryManager`]: recovery::RecoveryManager
//! [`RecoveryOutcome`]: recovery::RecoveryOutcome
//! [`FleetStore`]: crate::fleet::persist::FleetStore

pub mod delta;
pub mod journal;
pub mod medium;
pub mod recovery;
pub mod snapshot_store;

pub use delta::FleetDelta;
pub use journal::{
    decode_journal, journal_name, parse_journal_name, Journal, JournalRecord, JournalScan,
    JOURNAL_HEADER,
};
pub use medium::{FsMedium, MediumFault, SimMedium, StorageMedium};
pub use recovery::{
    Recovered, RecoveryManager, RecoveryOutcome, RecoveryReport, FLEET_SECTION,
};
pub use snapshot_store::{
    decode_snapshot, encode_snapshot, parse_snapshot_name, snapshot_name, SnapshotStore,
    STORE_SNAPSHOT_HEADER,
};

use std::fmt;

/// Errors surfaced by the storage layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The named file does not exist on the medium.
    NotFound(String),
    /// The medium is out of space (`ENOSPC` on a real filesystem, an
    /// exhausted byte budget on the sim medium).
    NoSpace,
    /// An underlying I/O failure.
    Io(String),
    /// A frame failed its length or checksum validation.
    Corrupt(String),
    /// Recovery exhausted every snapshot generation and journal without
    /// producing a state that passes the auditors.
    Unrecoverable(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::NotFound(path) => write!(f, "not found: {path}"),
            StoreError::NoSpace => write!(f, "no space left on storage medium"),
            StoreError::Io(e) => write!(f, "i/o error: {e}"),
            StoreError::Corrupt(e) => write!(f, "corrupt frame: {e}"),
            StoreError::Unrecoverable(e) => write!(f, "unrecoverable state: {e}"),
        }
    }
}

impl std::error::Error for StoreError {}

const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// IEEE CRC-32 over `data` — the checksum framing every snapshot section,
/// whole snapshot file, and journal record carries.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in data {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ u32::from(byte)) & 0xFF) as usize];
    }
    !crc
}

/// Durability/recovery counters, carried across a kill/resume through the
/// snapshot's `# section store` exactly like the fault and lint counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreCounters {
    /// Journal records appended.
    pub journal_records: u64,
    /// Journal payload bytes appended (before framing).
    pub journal_bytes: u64,
    /// Snapshot generations written.
    pub snapshots_written: u64,
    /// Journal compactions (rotations into a fresh generation).
    pub compactions: u64,
    /// Rounds that skipped re-serializing the full snapshot (checkpoint
    /// cadence in effect).
    pub snapshots_skipped: u64,
    /// Recoveries performed from on-disk state.
    pub recoveries: u64,
    /// Journal records replayed during recovery.
    pub replayed_records: u64,
    /// Journal bytes dropped after the first corrupt record.
    pub dropped_bytes: u64,
    /// Snapshot generations skipped over because they failed validation.
    pub fell_back_generations: u64,
    /// Malformed snapshot lines counted by the tolerant parser during
    /// recovery.
    pub malformed_lines: u64,
    /// Storage operations that failed (durability degraded, campaign
    /// continued).
    pub io_errors: u64,
}

impl StoreCounters {
    /// Adds `other` into `self` (baseline + this-run aggregation).
    pub fn absorb(&mut self, other: &StoreCounters) {
        for (mine, theirs) in
            self.entries_mut().into_iter().zip(other.entries().map(|(_, v)| v))
        {
            *mine.1 += theirs;
        }
    }

    /// All counters as `(key, value)` pairs in a fixed order — the
    /// snapshot wire format.
    pub fn entries(&self) -> [(&'static str, u64); 11] {
        [
            ("journal_records", self.journal_records),
            ("journal_bytes", self.journal_bytes),
            ("snapshots_written", self.snapshots_written),
            ("compactions", self.compactions),
            ("snapshots_skipped", self.snapshots_skipped),
            ("recoveries", self.recoveries),
            ("replayed_records", self.replayed_records),
            ("dropped_bytes", self.dropped_bytes),
            ("fell_back_generations", self.fell_back_generations),
            ("malformed_lines", self.malformed_lines),
            ("io_errors", self.io_errors),
        ]
    }

    fn entries_mut(&mut self) -> [(&'static str, &mut u64); 11] {
        [
            ("journal_records", &mut self.journal_records),
            ("journal_bytes", &mut self.journal_bytes),
            ("snapshots_written", &mut self.snapshots_written),
            ("compactions", &mut self.compactions),
            ("snapshots_skipped", &mut self.snapshots_skipped),
            ("recoveries", &mut self.recoveries),
            ("replayed_records", &mut self.replayed_records),
            ("dropped_bytes", &mut self.dropped_bytes),
            ("fell_back_generations", &mut self.fell_back_generations),
            ("malformed_lines", &mut self.malformed_lines),
            ("io_errors", &mut self.io_errors),
        ]
    }

    /// Sets a counter by its [`entries`](Self::entries) key; `false` for
    /// an unknown key.
    pub fn set(&mut self, key: &str, value: u64) -> bool {
        for (name, slot) in self.entries_mut() {
            if name == key {
                *slot = value;
                return true;
            }
        }
        false
    }

    /// Sum of all counters (quick "anything happened?" check).
    pub fn total(&self) -> u64 {
        self.entries().iter().map(|(_, v)| v).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn crc32_detects_single_bit_flips() {
        let data = b"# droidfuzz-store snapshot v1 gen=3 sections=2\n".to_vec();
        let clean = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), clean, "flip at {byte}:{bit} undetected");
            }
        }
    }

    #[test]
    fn counters_round_trip_entries_and_absorb() {
        let mut a = StoreCounters { journal_records: 3, dropped_bytes: 7, ..Default::default() };
        let b = StoreCounters { journal_records: 2, recoveries: 1, ..Default::default() };
        a.absorb(&b);
        assert_eq!(a.journal_records, 5);
        assert_eq!(a.recoveries, 1);
        assert_eq!(a.total(), 5 + 7 + 1);
        assert!(a.set("io_errors", 9));
        assert!(!a.set("no_such_counter", 1));
        assert_eq!(a.io_errors, 9);
        let keys: Vec<&str> = a.entries().iter().map(|(k, _)| *k).collect();
        assert_eq!(keys.len(), 11);
    }
}
