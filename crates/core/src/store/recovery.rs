//! Recovery: newest valid snapshot + journal prefix → a fleet snapshot.
//!
//! [`RecoveryManager::recover`] walks snapshot generations newest-first,
//! takes the first one whose framing and fleet text validate, then
//! replays the journal chain on top of it (`journal-<g>.wal`,
//! `journal-<g+1>.wal`, …) up to the first corrupt record. Every counter
//! delta is absolute and every edge/crash record an upsert, so replaying
//! a prefix always yields a state the fleet actually passed through —
//! never an invented one. When every snapshot generation is corrupt, the
//! from-empty journal (`journal-0.wal`) is the final fallback.
//!
//! The outcome taxonomy is stable and machine-matchable:
//!
//! * [`RecoveryOutcome::Clean`] — newest snapshot + whole journal.
//! * [`RecoveryOutcome::TailTruncated`] — a torn/corrupt journal tail was
//!   dropped; the prefix before it was replayed.
//! * [`RecoveryOutcome::CorruptSnapshot`] — one or more snapshot
//!   generations failed validation and recovery fell back to an older one
//!   (or to the from-empty journal).
//! * [`RecoveryOutcome::Unrecoverable`] — store files exist but no
//!   generation produced a usable state ([`recover`] surfaces this as
//!   [`StoreError::Unrecoverable`]).
//!
//! [`recover_verified`] additionally re-audits the recovered state
//! through the `droidfuzz-analysis` auditors and treats Error findings
//! (an Eq. 1 violation, unparseable seeds) like a corrupt snapshot,
//! falling back a generation.
//!
//! [`recover`]: RecoveryManager::recover
//! [`recover_verified`]: RecoveryManager::recover_verified

use super::delta::FleetDelta;
use super::journal::{parse_journal_name, Journal};
use super::medium::StorageMedium;
use super::snapshot_store::SnapshotStore;
use super::{StoreCounters, StoreError};
use crate::crashes::{dedup_key, CrashRecord};
use crate::fleet::snapshot::FleetSnapshot;
use droidfuzz_analysis::audit_snapshot;
use fuzzlang::desc::DescTable;
use std::collections::{BTreeMap, BTreeSet};

/// Name of the snapshot section holding the fleet snapshot text.
pub const FLEET_SECTION: &str = "fleet";

/// Stable classification of how a recovery went.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryOutcome {
    /// Newest snapshot was valid and the whole journal replayed.
    Clean,
    /// The journal had a torn or corrupt tail; the valid prefix was
    /// replayed and the tail dropped.
    TailTruncated {
        /// Records replayed before the corruption.
        replayed: u64,
        /// Bytes dropped from the first corrupt frame onward.
        dropped: u64,
    },
    /// One or more snapshot generations failed validation; recovery fell
    /// back this many generations (the from-empty journal counts as one).
    CorruptSnapshot {
        /// Generations skipped over.
        fell_back_generations: u64,
    },
    /// Store files exist but nothing produced a usable state.
    Unrecoverable,
}

impl std::fmt::Display for RecoveryOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoveryOutcome::Clean => write!(f, "clean"),
            RecoveryOutcome::TailTruncated { replayed, dropped } => {
                write!(f, "tail-truncated (replayed {replayed} records, dropped {dropped} bytes)")
            }
            RecoveryOutcome::CorruptSnapshot { fell_back_generations } => {
                write!(f, "corrupt-snapshot (fell back {fell_back_generations} generations)")
            }
            RecoveryOutcome::Unrecoverable => write!(f, "unrecoverable"),
        }
    }
}

/// What recovery did, in numbers — carried into the fleet's store
/// counters and printed by the CLI.
#[derive(Debug, Clone)]
pub struct RecoveryReport {
    /// The stable outcome classification.
    pub outcome: RecoveryOutcome,
    /// Snapshot generation the state was based on (`None`: replayed from
    /// the empty state via `journal-0.wal`).
    pub base_generation: Option<u64>,
    /// Journal records replayed on top of the base snapshot.
    pub replayed_records: u64,
    /// Journal bytes dropped after the first corrupt record.
    pub dropped_bytes: u64,
    /// Snapshot generations skipped because they failed validation.
    pub fell_back_generations: u64,
    /// Malformed lines counted by the tolerant parsers (base snapshot
    /// text + undecodable journal payloads).
    pub malformed_lines: u64,
    /// The same numbers as [`StoreCounters`], ready to absorb into a
    /// fleet's durability counters.
    pub counters: StoreCounters,
}

impl RecoveryReport {
    /// One human-readable summary line.
    pub fn describe(&self) -> String {
        format!(
            "recovery: {} base={} replayed={} dropped_bytes={} malformed={}",
            self.outcome,
            self.base_generation.map_or_else(|| "empty".to_owned(), |g| g.to_string()),
            self.replayed_records,
            self.dropped_bytes,
            self.malformed_lines,
        )
    }
}

/// A successful recovery: the reconstructed fleet snapshot plus the
/// report describing how it was obtained.
#[derive(Debug, Clone)]
pub struct Recovered {
    /// The recovered state, ready for `Fleet`'s resume path.
    pub snapshot: FleetSnapshot,
    /// How recovery got there.
    pub report: RecoveryReport,
}

/// Mutable replay target: the base snapshot exploded into the maps the
/// delta upserts operate on.
struct ReplayState {
    snap: FleetSnapshot,
    /// `(from, to) → weight string` (verbatim export formatting).
    edges: BTreeMap<(String, String), String>,
    learns: u64,
    blocks: BTreeSet<u64>,
    /// `dedup key → record` — matches `CrashDb`'s internal ordering, so
    /// the rebuilt crash list serializes in the same order a live capture
    /// would.
    crashes: BTreeMap<String, CrashRecord>,
    seed_count: usize,
    malformed: u64,
}

impl ReplayState {
    fn from_snapshot(mut snap: FleetSnapshot) -> Self {
        let mut edges = BTreeMap::new();
        let mut learns = 0u64;
        let mut malformed = 0u64;
        for line in std::mem::take(&mut snap.relations_text).lines() {
            let line = line.trim_end();
            if line.is_empty() {
                continue;
            }
            if let Some(header) = line.strip_prefix("# relation-graph ") {
                if let Some(n) =
                    header.split("learns=").nth(1).and_then(|v| v.trim().parse().ok())
                {
                    learns = learns.max(n);
                } else {
                    malformed += 1;
                }
                continue;
            }
            if line.starts_with('#') {
                continue;
            }
            let parsed = line.strip_prefix("edge ").and_then(|rest| {
                let mut fields = rest.split('\t');
                let (a, b, w) = (fields.next()?, fields.next()?, fields.next()?);
                let weight: f64 = w.parse().ok()?;
                (fields.next().is_none() && weight.is_finite() && weight >= 0.0)
                    .then(|| ((a.to_owned(), b.to_owned()), w.to_owned()))
            });
            match parsed {
                Some((key, weight)) => {
                    edges.insert(key, weight);
                }
                None => malformed += 1,
            }
        }
        let blocks = std::mem::take(&mut snap.coverage).into_iter().collect();
        let crashes = std::mem::take(&mut snap.crashes)
            .into_iter()
            .map(|r| (dedup_key(&r.title), r))
            .collect();
        let seed_count = snap.corpus_text.matches("# seed ").count();
        Self { snap, edges, learns, blocks, crashes, seed_count, malformed }
    }

    fn apply(&mut self, delta: FleetDelta) {
        match delta {
            FleetDelta::Seed { signals, body } => {
                self.snap
                    .corpus_text
                    .push_str(&format!("# seed {} signals={signals}\n{body}\n", self.seed_count));
                self.seed_count += 1;
            }
            FleetDelta::Edge { from, to, weight } => {
                self.edges.insert((from, to), weight);
            }
            FleetDelta::EdgeDel { from, to } => {
                self.edges.remove(&(from, to));
            }
            FleetDelta::Learns(n) => self.learns = self.learns.max(n),
            FleetDelta::Crash(record) => {
                self.crashes.insert(dedup_key(&record.title), record);
            }
            FleetDelta::Blocks(blocks) => self.blocks.extend(blocks),
            FleetDelta::Sample { t, v } => {
                // Series stay monotonic the same way `restore_series`
                // enforces downstream.
                if self.snap.series.last().is_none_or(|&(lt, _)| lt <= t) {
                    self.snap.series.push((t, v));
                } else {
                    self.malformed += 1;
                }
            }
            FleetDelta::Faults(c) => self.snap.fault_totals = c,
            FleetDelta::Lint(c) => self.snap.lint_totals = c,
            FleetDelta::Store(c) => self.snap.store_totals = c,
            FleetDelta::Net(c) => self.snap.net_totals = c,
            FleetDelta::Round { round, clock_us } => {
                self.snap.round = round;
                self.snap.clock_us = clock_us;
            }
        }
    }

    fn finish(mut self) -> (FleetSnapshot, u64) {
        if !self.edges.is_empty() || self.learns > 0 {
            let mut text = format!("# relation-graph learns={}\n", self.learns);
            for ((from, to), weight) in &self.edges {
                text.push_str(&format!("edge {from}\t{to}\t{weight}\n"));
            }
            self.snap.relations_text = text;
        }
        self.snap.coverage = self.blocks.into_iter().collect();
        self.snap.crashes = self.crashes.into_values().collect();
        (self.snap, self.malformed)
    }
}

/// Loads durable state back into a resumable [`FleetSnapshot`].
#[derive(Debug, Clone)]
pub struct RecoveryManager<M: StorageMedium + Clone> {
    medium: M,
}

impl<M: StorageMedium + Clone> RecoveryManager<M> {
    /// A manager over `medium`.
    pub fn new(medium: M) -> Self {
        Self { medium }
    }

    /// Recovers without re-auditing. [`StoreError::NotFound`] when the
    /// medium holds no store files at all (a fresh start, not a failure);
    /// [`StoreError::Unrecoverable`] when files exist but nothing usable
    /// survives validation.
    pub fn recover(&self) -> Result<Recovered, StoreError> {
        self.recover_impl(None)
    }

    /// Recovers and re-verifies the result through the
    /// `droidfuzz-analysis` auditors (snapshot framing, corpus seeds, and
    /// the Eq. 1 in-weight invariants via the nested relations audit). A
    /// generation whose recovered state carries Error findings is treated
    /// like a corrupt snapshot: recovery falls back to the next one.
    pub fn recover_verified(&self, table: &DescTable) -> Result<Recovered, StoreError> {
        self.recover_impl(Some(table))
    }

    fn recover_impl(&self, audit: Option<&DescTable>) -> Result<Recovered, StoreError> {
        let store = SnapshotStore::new(self.medium.clone(), usize::MAX);
        let snapshot_gens = store.generations()?;
        let journal_gens: BTreeSet<u64> =
            self.medium.list()?.iter().filter_map(|n| parse_journal_name(n)).collect();
        if snapshot_gens.is_empty() && journal_gens.is_empty() {
            return Err(StoreError::NotFound("no snapshot or journal files".to_owned()));
        }

        let mut fell_back = 0u64;
        // Newest snapshot first; the from-empty journal is the last
        // resort (`None`).
        let candidates =
            snapshot_gens.iter().rev().map(|&g| Some(g)).chain(std::iter::once(None));
        for base in candidates {
            let (base_snap, base_malformed) = match base {
                Some(gen) => match Self::load_base(&store, gen) {
                    Ok(snap) => {
                        let malformed = snap.malformed_lines as u64;
                        (snap, malformed)
                    }
                    Err(_) => {
                        fell_back += 1;
                        continue;
                    }
                },
                None => {
                    if !journal_gens.contains(&0) {
                        continue;
                    }
                    (FleetSnapshot::default(), 0)
                }
            };

            let mut state = ReplayState::from_snapshot(base_snap);
            let mut replayed = 0u64;
            let mut dropped = 0u64;
            let mut truncated = false;
            let mut gen = base.unwrap_or(0);
            loop {
                match Journal::scan(&self.medium, gen) {
                    Ok(scan) => {
                        for record in &scan.records {
                            match FleetDelta::decode(&record.payload) {
                                Some(delta) => state.apply(delta),
                                None => state.malformed += 1,
                            }
                            replayed += 1;
                        }
                        dropped += scan.dropped_bytes;
                        if scan.truncated {
                            truncated = true;
                            break;
                        }
                    }
                    // No journal for this generation: zero deltas since
                    // its snapshot. A later journal without this one
                    // would leave a hole, so the chain stops either way.
                    Err(StoreError::NotFound(_)) => break,
                    Err(e) => return Err(e),
                }
                gen += 1;
                if !journal_gens.contains(&gen) {
                    break;
                }
            }

            let (snapshot, replay_malformed) = state.finish();
            if let Some(table) = audit {
                if audit_snapshot(&snapshot.to_text(), table).has_errors() {
                    fell_back += 1;
                    continue;
                }
            }

            let malformed_lines = base_malformed + replay_malformed;
            let outcome = if fell_back > 0 {
                RecoveryOutcome::CorruptSnapshot { fell_back_generations: fell_back }
            } else if truncated || dropped > 0 {
                RecoveryOutcome::TailTruncated { replayed, dropped }
            } else {
                RecoveryOutcome::Clean
            };
            let counters = StoreCounters {
                recoveries: 1,
                replayed_records: replayed,
                dropped_bytes: dropped,
                fell_back_generations: fell_back,
                malformed_lines,
                ..Default::default()
            };
            return Ok(Recovered {
                snapshot,
                report: RecoveryReport {
                    outcome,
                    base_generation: base,
                    replayed_records: replayed,
                    dropped_bytes: dropped,
                    fell_back_generations: fell_back,
                    malformed_lines,
                    counters,
                },
            });
        }
        Err(StoreError::Unrecoverable(format!(
            "{} snapshot generation(s) and {} journal(s) present, none usable",
            snapshot_gens.len(),
            journal_gens.len()
        )))
    }

    fn load_base(
        store: &SnapshotStore<M>,
        gen: u64,
    ) -> Result<FleetSnapshot, StoreError> {
        let sections = store.read(gen)?;
        let fleet = sections
            .iter()
            .find(|(name, _)| name == FLEET_SECTION)
            .map(|(_, payload)| payload)
            .ok_or_else(|| {
                StoreError::Corrupt(format!("snapshot gen {gen}: no `{FLEET_SECTION}` section"))
            })?;
        let text = std::str::from_utf8(fleet)
            .map_err(|_| StoreError::Corrupt(format!("snapshot gen {gen}: non-utf8 fleet text")))?;
        FleetSnapshot::parse(text)
            .map_err(|e| StoreError::Corrupt(format!("snapshot gen {gen}: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::super::medium::SimMedium;
    use super::super::snapshot_store::encode_snapshot;
    use super::*;
    use crate::supervisor::FaultCounters;
    use simkernel::report::{BugKind, Component};

    fn base_snapshot() -> FleetSnapshot {
        FleetSnapshot {
            round: 2,
            clock_us: 1_000,
            relations_text: "# relation-graph learns=2\nedge a\tb\t0.5\nedge c\tb\t0.5\n".into(),
            coverage: vec![0x10, 0x20],
            series: vec![(500, 1.0), (1_000, 2.0)],
            crashes: vec![CrashRecord {
                title: "WARNING in foo".into(),
                kind: BugKind::Warning,
                component: Component::KernelDriver,
                count: 1,
                first_seen_us: 600,
                repro: None,
            }],
            corpus_text: "# seed 0 signals=3\nr0 = open()\n\n".into(),
            ..Default::default()
        }
    }

    fn write_gen(medium: &SimMedium, gen: u64, snap: &FleetSnapshot) {
        let mut m = medium.clone();
        let bytes = encode_snapshot(gen, &[(FLEET_SECTION, snap.to_text().as_bytes())]);
        m.write(&format!("snapshot-{gen}.dfs"), &bytes).unwrap();
    }

    fn journal_with(medium: &SimMedium, gen: u64, deltas: &[FleetDelta]) {
        let mut journal = Journal::create(medium.clone(), gen).unwrap();
        for d in deltas {
            journal.append(&d.encode()).unwrap();
        }
    }

    #[test]
    fn empty_medium_is_not_found() {
        assert!(matches!(
            RecoveryManager::new(SimMedium::new()).recover(),
            Err(StoreError::NotFound(_))
        ));
    }

    #[test]
    fn clean_recovery_replays_the_whole_journal() {
        let medium = SimMedium::new();
        write_gen(&medium, 1, &base_snapshot());
        journal_with(
            &medium,
            1,
            &[
                FleetDelta::Seed { signals: 9, body: "r0 = close()\n".into() },
                FleetDelta::Blocks(vec![0x30]),
                FleetDelta::Edge { from: "a".into(), to: "d".into(), weight: "1".into() },
                FleetDelta::Learns(3),
                FleetDelta::Sample { t: 1_500, v: 3.0 },
                FleetDelta::Round { round: 3, clock_us: 1_500 },
            ],
        );
        let recovered = RecoveryManager::new(medium).recover().unwrap();
        assert_eq!(recovered.report.outcome, RecoveryOutcome::Clean);
        assert_eq!(recovered.report.base_generation, Some(1));
        assert_eq!(recovered.report.replayed_records, 6);
        let snap = &recovered.snapshot;
        assert_eq!(snap.round, 3);
        assert_eq!(snap.clock_us, 1_500);
        assert_eq!(snap.coverage, vec![0x10, 0x20, 0x30]);
        assert_eq!(snap.series.len(), 3);
        assert!(snap.corpus_text.contains("r0 = close()"));
        assert!(snap.relations_text.contains("edge a\td\t1\n"));
        assert!(snap.relations_text.starts_with("# relation-graph learns=3\n"));
    }

    #[test]
    fn torn_journal_tail_truncates_not_fails() {
        let medium = SimMedium::new();
        write_gen(&medium, 1, &base_snapshot());
        journal_with(&medium, 1, &[FleetDelta::Learns(5), FleetDelta::Blocks(vec![0x40])]);
        // Corrupt the second record's payload in place.
        let raw = medium.read("journal-1.wal").unwrap();
        let offset = raw.windows(6).position(|w| w == b"blocks").unwrap();
        assert!(medium.corrupt("journal-1.wal", offset, 0x08));
        let recovered = RecoveryManager::new(medium).recover().unwrap();
        match recovered.report.outcome {
            RecoveryOutcome::TailTruncated { replayed, dropped } => {
                assert_eq!(replayed, 1);
                assert!(dropped > 0);
            }
            other => panic!("expected TailTruncated, got {other:?}"),
        }
        assert!(!recovered.snapshot.coverage.contains(&0x40));
    }

    #[test]
    fn corrupt_snapshot_falls_back_a_generation_and_chains_journals() {
        let medium = SimMedium::new();
        write_gen(&medium, 1, &base_snapshot());
        journal_with(&medium, 1, &[FleetDelta::Blocks(vec![0x30])]);
        // Generation 2 exists but is corrupt (bad file crc).
        let mut m = medium.clone();
        m.write("snapshot-2.dfs", b"# droidfuzz-store snapshot v1 gen=2 sections=0\nfile-crc 00000000\n")
            .unwrap();
        journal_with(&medium, 2, &[FleetDelta::Blocks(vec![0x50])]);
        let recovered = RecoveryManager::new(medium).recover().unwrap();
        assert_eq!(
            recovered.report.outcome,
            RecoveryOutcome::CorruptSnapshot { fell_back_generations: 1 }
        );
        assert_eq!(recovered.report.base_generation, Some(1));
        // The journal chain carries past the corrupt generation: deltas
        // from both journal-1 and journal-2 land.
        assert!(recovered.snapshot.coverage.contains(&0x30));
        assert!(recovered.snapshot.coverage.contains(&0x50));
    }

    #[test]
    fn all_generations_corrupt_falls_back_to_empty_plus_journal_zero() {
        let medium = SimMedium::new();
        journal_with(
            &medium,
            0,
            &[
                FleetDelta::Seed { signals: 1, body: "r0 = open()\n".into() },
                FleetDelta::Round { round: 1, clock_us: 700 },
            ],
        );
        let mut m = medium.clone();
        m.write("snapshot-1.dfs", b"garbage").unwrap();
        let recovered = RecoveryManager::new(medium).recover().unwrap();
        assert_eq!(
            recovered.report.outcome,
            RecoveryOutcome::CorruptSnapshot { fell_back_generations: 1 }
        );
        assert_eq!(recovered.report.base_generation, None);
        assert_eq!(recovered.snapshot.round, 1);
        assert!(recovered.snapshot.corpus_text.contains("r0 = open()"));
    }

    #[test]
    fn nothing_usable_is_unrecoverable() {
        let medium = SimMedium::new();
        let mut m = medium.clone();
        m.write("snapshot-3.dfs", b"garbage").unwrap();
        assert!(matches!(
            RecoveryManager::new(medium).recover(),
            Err(StoreError::Unrecoverable(_))
        ));
    }

    #[test]
    fn undecodable_records_count_as_malformed_not_fatal() {
        let medium = SimMedium::new();
        write_gen(&medium, 1, &base_snapshot());
        let mut journal = Journal::create(medium.clone(), 1).unwrap();
        journal.append("from-the-future 123").unwrap();
        journal.append(&FleetDelta::Learns(9).encode()).unwrap();
        let recovered = RecoveryManager::new(medium).recover().unwrap();
        assert_eq!(recovered.report.outcome, RecoveryOutcome::Clean);
        assert_eq!(recovered.report.malformed_lines, 1);
        assert!(recovered.snapshot.relations_text.starts_with("# relation-graph learns=9\n"));
    }

    #[test]
    fn replayed_crash_and_counter_upserts_are_absolute() {
        let medium = SimMedium::new();
        write_gen(&medium, 1, &base_snapshot());
        let crash = CrashRecord {
            title: "WARNING in foo".into(),
            kind: BugKind::Warning,
            component: Component::KernelDriver,
            count: 7,
            first_seen_us: 600,
            repro: Some("r0 = open()\n".into()),
        };
        let faults = FaultCounters { injected: 11, ..Default::default() };
        journal_with(
            &medium,
            1,
            &[
                FleetDelta::Crash(crash.clone()),
                FleetDelta::Crash(crash.clone()), // replayed twice: still count 7
                FleetDelta::Faults(faults),
                FleetDelta::Faults(faults),
            ],
        );
        let recovered = RecoveryManager::new(medium).recover().unwrap();
        assert_eq!(recovered.snapshot.crashes.len(), 1);
        assert_eq!(recovered.snapshot.crashes[0].count, 7);
        assert_eq!(recovered.snapshot.crashes[0].repro.as_deref(), Some("r0 = open()\n"));
        assert_eq!(recovered.snapshot.fault_totals.injected, 11);
    }
}
