//! Atomic, CRC-framed, generational snapshot files.
//!
//! A snapshot file packs named sections with length-prefixed, per-section
//! checksummed frames plus a whole-file checksum, so that a torn write,
//! bit flip, or truncation anywhere in the file is detected on read (and
//! reported as [`StoreError::Corrupt`], never as silently-wrong state):
//!
//! ```text
//! # droidfuzz-store snapshot v1 gen=<g> sections=<n>
//! section <name> <len> <crc32 hex>
//! <len payload bytes>
//! ... more sections ...
//! file-crc <crc32 hex>
//! ```
//!
//! `file-crc` covers every byte before its own line. Writes are atomic:
//! the file is assembled under a `.tmp` name, synced, then renamed onto
//! `snapshot-<gen>.dfs` — a crash at any point leaves either the previous
//! generation intact or a `.tmp` that recovery ignores. A generation ring
//! keeps the last K snapshots so a corrupt newest generation can fall
//! back to an older one.

use super::medium::StorageMedium;
use super::{crc32, StoreError};

/// First line of every snapshot file (before the `gen=`/`sections=`
/// fields).
pub const STORE_SNAPSHOT_HEADER: &str = "# droidfuzz-store snapshot v1";

const SNAPSHOT_SUFFIX: &str = ".dfs";
const SNAPSHOT_PREFIX: &str = "snapshot-";

/// File name of generation `gen` (`snapshot-<gen>.dfs`).
pub fn snapshot_name(gen: u64) -> String {
    format!("{SNAPSHOT_PREFIX}{gen}{SNAPSHOT_SUFFIX}")
}

/// Inverse of [`snapshot_name`]; `None` for other files (including
/// `.tmp` leftovers).
pub fn parse_snapshot_name(name: &str) -> Option<u64> {
    name.strip_prefix(SNAPSHOT_PREFIX)?
        .strip_suffix(SNAPSHOT_SUFFIX)?
        .parse()
        .ok()
}

/// Serializes `sections` into the framed snapshot byte format.
pub fn encode_snapshot(gen: u64, sections: &[(&str, &[u8])]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(
        format!("{STORE_SNAPSHOT_HEADER} gen={gen} sections={}\n", sections.len()).as_bytes(),
    );
    for (name, payload) in sections {
        out.extend_from_slice(
            format!("section {name} {} {:08x}\n", payload.len(), crc32(payload)).as_bytes(),
        );
        out.extend_from_slice(payload);
        out.push(b'\n');
    }
    let file_crc = crc32(&out);
    out.extend_from_slice(format!("file-crc {file_crc:08x}\n").as_bytes());
    out
}

/// A decoded section: `(name, payload)`.
pub type Section = (String, Vec<u8>);

/// Validates the framing of `bytes` and returns `(gen, sections)`. Any
/// length, checksum, or structure mismatch is [`StoreError::Corrupt`].
pub fn decode_snapshot(bytes: &[u8]) -> Result<(u64, Vec<Section>), StoreError> {
    let corrupt = |what: &str| StoreError::Corrupt(format!("snapshot: {what}"));
    // Peel the trailing `file-crc` line first: it covers everything else.
    let body_end = match bytes.len() {
        // "file-crc " + 8 hex + "\n" == 18 bytes.
        n if n >= 18 => n - 18,
        _ => return Err(corrupt("shorter than its file-crc trailer")),
    };
    let trailer = std::str::from_utf8(&bytes[body_end..])
        .map_err(|_| corrupt("non-utf8 file-crc trailer"))?;
    let claimed = trailer
        .strip_prefix("file-crc ")
        .and_then(|rest| rest.strip_suffix('\n'))
        .and_then(|hex| u32::from_str_radix(hex, 16).ok())
        .ok_or_else(|| corrupt("malformed file-crc trailer"))?;
    let body = &bytes[..body_end];
    if crc32(body) != claimed {
        return Err(corrupt("whole-file checksum mismatch"));
    }

    fn next_line(body: &[u8], pos: &mut usize, label: &str) -> Result<String, StoreError> {
        let rest = &body[*pos..];
        let end = rest
            .iter()
            .position(|&b| b == b'\n')
            .ok_or_else(|| StoreError::Corrupt(format!("snapshot: unterminated {label} line")))?;
        let line = std::str::from_utf8(&rest[..end])
            .map_err(|_| StoreError::Corrupt(format!("snapshot: non-utf8 {label} line")))?
            .to_owned();
        *pos += end + 1;
        Ok(line)
    }

    let mut pos = 0usize;
    let header = next_line(body, &mut pos, "header")?;
    let rest = header
        .strip_prefix(STORE_SNAPSHOT_HEADER)
        .ok_or_else(|| corrupt("bad header magic"))?;
    let mut gen = None;
    let mut count = None;
    for field in rest.split_whitespace() {
        if let Some(v) = field.strip_prefix("gen=") {
            gen = v.parse::<u64>().ok();
        } else if let Some(v) = field.strip_prefix("sections=") {
            count = v.parse::<usize>().ok();
        }
    }
    let gen = gen.ok_or_else(|| corrupt("header missing gen"))?;
    let count = count.ok_or_else(|| corrupt("header missing sections"))?;

    let mut sections = Vec::with_capacity(count);
    for _ in 0..count {
        let frame = next_line(body, &mut pos, "section frame")?;
        let mut parts = frame.split(' ');
        let (tag, name, len, crc) =
            (parts.next(), parts.next(), parts.next(), parts.next());
        if tag != Some("section") || parts.next().is_some() {
            return Err(corrupt("malformed section frame"));
        }
        let name = name.ok_or_else(|| corrupt("section frame missing name"))?.to_owned();
        let len: usize = len
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| corrupt("section frame missing length"))?;
        let crc: u32 = crc
            .and_then(|v| u32::from_str_radix(v, 16).ok())
            .ok_or_else(|| corrupt("section frame missing crc"))?;
        if pos + len + 1 > body.len() {
            return Err(corrupt("section payload overruns file"));
        }
        let payload = &body[pos..pos + len];
        if crc32(payload) != crc {
            return Err(StoreError::Corrupt(format!("snapshot: section {name} checksum mismatch")));
        }
        if body[pos + len] != b'\n' {
            return Err(corrupt("section payload not newline-terminated"));
        }
        pos += len + 1;
        sections.push((name, payload.to_vec()));
    }
    if pos != body.len() {
        return Err(corrupt("trailing bytes after last section"));
    }
    Ok((gen, sections))
}

/// Generational snapshot files on a [`StorageMedium`].
#[derive(Debug, Clone)]
pub struct SnapshotStore<M: StorageMedium> {
    medium: M,
    keep: usize,
}

impl<M: StorageMedium> SnapshotStore<M> {
    /// A store over `medium` whose ring keeps the newest `keep`
    /// generations (clamped to at least 1).
    pub fn new(medium: M, keep: usize) -> Self {
        Self { medium, keep: keep.max(1) }
    }

    /// The medium (shared with the journal layer in fleet wiring).
    pub fn medium(&self) -> &M {
        &self.medium
    }

    /// Atomically writes generation `gen`: temp file, sync, rename.
    pub fn write(&mut self, gen: u64, sections: &[(&str, &[u8])]) -> Result<(), StoreError> {
        let bytes = encode_snapshot(gen, sections);
        let tmp = format!("{}.tmp", snapshot_name(gen));
        self.medium.write(&tmp, &bytes)?;
        self.medium.sync(&tmp)?;
        self.medium.rename(&tmp, &snapshot_name(gen))
    }

    /// Reads and validates generation `gen`.
    pub fn read(&self, gen: u64) -> Result<Vec<Section>, StoreError> {
        let bytes = self.medium.read(&snapshot_name(gen))?;
        let (file_gen, sections) = decode_snapshot(&bytes)?;
        if file_gen != gen {
            return Err(StoreError::Corrupt(format!(
                "snapshot: file named gen {gen} claims gen {file_gen}"
            )));
        }
        Ok(sections)
    }

    /// All committed generations on the medium, ascending. `.tmp`
    /// leftovers from interrupted writes are not listed.
    pub fn generations(&self) -> Result<Vec<u64>, StoreError> {
        let mut gens: Vec<u64> =
            self.medium.list()?.iter().filter_map(|n| parse_snapshot_name(n)).collect();
        gens.sort_unstable();
        Ok(gens)
    }

    /// The newest committed generation, if any.
    pub fn newest(&self) -> Result<Option<u64>, StoreError> {
        Ok(self.generations()?.into_iter().next_back())
    }

    /// Removes generations beyond the ring size plus any `.tmp`
    /// leftovers; returns the pruned generations (ascending) so the
    /// caller can drop their journals too.
    pub fn prune(&mut self) -> Result<Vec<u64>, StoreError> {
        for name in self.medium.list()? {
            if name.starts_with(SNAPSHOT_PREFIX) && name.ends_with(".tmp") {
                self.medium.remove(&name)?;
            }
        }
        let gens = self.generations()?;
        let excess = gens.len().saturating_sub(self.keep);
        let pruned: Vec<u64> = gens[..excess].to_vec();
        for &gen in &pruned {
            self.medium.remove(&snapshot_name(gen))?;
        }
        Ok(pruned)
    }
}

#[cfg(test)]
mod tests {
    use super::super::medium::{MediumFault, SimMedium};
    use super::*;

    fn demo_sections() -> Vec<(&'static str, &'static [u8])> {
        vec![
            ("meta", b"round 12".as_slice()),
            ("fleet", b"# droidfuzz-fleet-snapshot v1 round=12 clock_us=0\n".as_slice()),
        ]
    }

    #[test]
    fn encode_decode_round_trip() {
        let bytes = encode_snapshot(7, &demo_sections());
        let (gen, sections) = decode_snapshot(&bytes).unwrap();
        assert_eq!(gen, 7);
        assert_eq!(sections.len(), 2);
        assert_eq!(sections[0], ("meta".to_owned(), b"round 12".to_vec()));
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let bytes = encode_snapshot(1, &demo_sections());
        for byte in 0..bytes.len() {
            let mut flipped = bytes.clone();
            flipped[byte] ^= 0x01;
            assert!(
                decode_snapshot(&flipped).is_err(),
                "bit flip at byte {byte} decoded successfully"
            );
        }
    }

    #[test]
    fn every_truncation_is_detected() {
        let bytes = encode_snapshot(1, &demo_sections());
        for len in 0..bytes.len() {
            assert!(
                decode_snapshot(&bytes[..len]).is_err(),
                "truncation to {len} bytes decoded successfully"
            );
        }
    }

    #[test]
    fn payloads_may_contain_newlines_and_frame_lookalikes() {
        let tricky = b"file-crc deadbeef\nsection fake 3 00000000\nxyz\n";
        let bytes = encode_snapshot(2, &[("tricky", tricky.as_slice())]);
        let (_, sections) = decode_snapshot(&bytes).unwrap();
        assert_eq!(sections[0].1, tricky);
    }

    #[test]
    fn store_writes_atomically_and_prunes_the_ring() {
        let mut store = SnapshotStore::new(SimMedium::new(), 2);
        for gen in 0..4 {
            store.write(gen, &demo_sections()).unwrap();
        }
        assert_eq!(store.generations().unwrap(), vec![0, 1, 2, 3]);
        assert_eq!(store.prune().unwrap(), vec![0, 1]);
        assert_eq!(store.generations().unwrap(), vec![2, 3]);
        assert_eq!(store.newest().unwrap(), Some(3));
        assert_eq!(store.read(3).unwrap().len(), 2);
    }

    #[test]
    fn crash_before_rename_preserves_previous_generation() {
        // Ops per write(): write tmp (0), sync tmp (1), rename (2) — the
        // second snapshot's rename is op 5.
        let medium = SimMedium::with_plan(vec![MediumFault::CrashBeforeRename { op: 5 }]);
        let mut store = SnapshotStore::new(medium, 3);
        store.write(0, &demo_sections()).unwrap();
        store.write(1, &demo_sections()).unwrap(); // commit swallowed
        assert_eq!(store.generations().unwrap(), vec![0]);
        assert!(store.read(0).is_ok());
        // The orphaned tmp is cleaned up by prune.
        assert!(store.medium().exists("snapshot-1.dfs.tmp"));
        store.prune().unwrap();
        assert!(!store.medium().exists("snapshot-1.dfs.tmp"));
    }

    #[test]
    fn torn_write_of_newest_generation_is_detected_not_misread() {
        // Tear the second snapshot's tmp write (op 3) mid-file; the
        // rename still commits the torn file.
        let medium = SimMedium::with_plan(vec![MediumFault::TornWrite { op: 3, keep: 20 }]);
        let mut store = SnapshotStore::new(medium, 3);
        store.write(0, &demo_sections()).unwrap();
        store.write(1, &demo_sections()).unwrap();
        assert!(matches!(store.read(1), Err(StoreError::Corrupt(_))));
        assert!(store.read(0).is_ok()); // fallback generation intact
    }

    #[test]
    fn mismatched_generation_in_header_is_corrupt() {
        let mut store = SnapshotStore::new(SimMedium::new(), 2);
        store.write(4, &demo_sections()).unwrap();
        let medium = store.medium().clone();
        let bytes = medium.read(&snapshot_name(4)).unwrap();
        let mut renamed = SimMedium::new();
        crate::store::StorageMedium::write(&mut renamed, &snapshot_name(9), &bytes).unwrap();
        let store2 = SnapshotStore::new(renamed, 2);
        assert!(matches!(store2.read(9), Err(StoreError::Corrupt(_))));
    }
}
