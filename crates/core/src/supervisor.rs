//! Supervised execution: a watchdog, retry, and recovery layer between
//! the engine and the device.
//!
//! The paper's campaigns run for 48 hours against physical embedded
//! devices, and real devices misbehave: ADB links drop, HAL services die
//! without a crash dump, executions hang, and whole devices wedge or
//! reboot on their own. The [`Supervisor`] wraps every
//! [`Broker::execute`] call and classifies what came back into a small
//! failure taxonomy:
//!
//! * [`FailureClass::Transient`] — the request never reached the device
//!   (ADB link drop). Retried with capped exponential backoff, charged to
//!   the virtual clock.
//! * [`FailureClass::DeviceLost`] — the device is silently unusable: it
//!   is wedged, or a HAL service is dead, *without* any bug report. (A
//!   fuzzer-found fatal bug always leaves a report; silence is how the
//!   supervisor tells a lost device from a found bug.) Recovery
//!   re-provisions the device — reboot, then a liveness probe of every
//!   HAL service — and retries; a device that stays dead is abandoned and
//!   its shard restarted by the fleet layer.
//! * [`FailureClass::Hang`] — the execution would exceed the watchdog
//!   budget. The call is aborted (the budget, not the full hang, is
//!   charged), the device rebooted, and the offending program struck;
//!   programs that hang repeatedly are quarantined from the corpus.
//! * [`FailureClass::Bug`] — the normal case: feedback plus bug reports
//!   delivered to the engine, which reboots per its own policy.
//!
//! Nothing host-side is ever lost to a fault: bug reports observed on
//! discarded attempts are salvaged into the [`SupervisedRun`], and
//! corpus / relation-graph / crash state live above this layer entirely.

use crate::exec::{Broker, ExecOutcome};
use crate::engine::{EXEC_SESSION_US, PER_CALL_US};
use fuzzlang::desc::DescTable;
use fuzzlang::prog::Prog;
use fuzzlang::text::format_prog;
use simdevice::adb::US_PER_SEC;
use simdevice::faults::{Fault, FaultPlan};
use simdevice::{AdbLink, Device};
use simkernel::report::BugReport;
use std::collections::{BTreeMap, BTreeSet};

/// Why a supervised execution did not complete normally.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FailureClass {
    /// The request never reached the device (link drop); retriable.
    Transient,
    /// The device is silently unusable (wedged or dead HAL, no report).
    DeviceLost,
    /// The execution exceeded the watchdog budget and was aborted.
    Hang,
    /// A bug report was delivered — the engine's normal reboot path.
    Bug,
}

/// Cumulative fault and recovery counters, exported through the fleet
/// snapshot so kill/resume round-trips them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Faults injected by the plan (all kinds).
    pub injected: u64,
    /// ADB link drops encountered.
    pub link_drops: u64,
    /// Feedback replies delivered truncated.
    pub truncated_replies: u64,
    /// Backoff-then-retry cycles performed.
    pub transient_retries: u64,
    /// Executions abandoned after exhausting retries.
    pub gave_up: u64,
    /// Executions aborted by the watchdog.
    pub hangs: u64,
    /// Programs quarantined for repeated hangs.
    pub quarantined_programs: u64,
    /// Silent device losses detected (wedge / dead HAL without report).
    pub device_lost: u64,
    /// Re-provision attempts (reboot + liveness probe) performed.
    pub reprovisions: u64,
    /// Spontaneous device reboots injected.
    pub spontaneous_reboots: u64,
}

impl FaultCounters {
    /// Adds `other` into `self` (fleet-level aggregation).
    pub fn absorb(&mut self, other: &FaultCounters) {
        for (mine, theirs) in self
            .entries_mut()
            .into_iter()
            .zip(other.entries().map(|(_, v)| v))
        {
            *mine.1 += theirs;
        }
    }

    /// All counters as `(key, value)` pairs in a fixed order — the
    /// snapshot wire format.
    pub fn entries(&self) -> [(&'static str, u64); 10] {
        [
            ("injected", self.injected),
            ("link_drops", self.link_drops),
            ("truncated_replies", self.truncated_replies),
            ("transient_retries", self.transient_retries),
            ("gave_up", self.gave_up),
            ("hangs", self.hangs),
            ("quarantined_programs", self.quarantined_programs),
            ("device_lost", self.device_lost),
            ("reprovisions", self.reprovisions),
            ("spontaneous_reboots", self.spontaneous_reboots),
        ]
    }

    fn entries_mut(&mut self) -> [(&'static str, &mut u64); 10] {
        [
            ("injected", &mut self.injected),
            ("link_drops", &mut self.link_drops),
            ("truncated_replies", &mut self.truncated_replies),
            ("transient_retries", &mut self.transient_retries),
            ("gave_up", &mut self.gave_up),
            ("hangs", &mut self.hangs),
            ("quarantined_programs", &mut self.quarantined_programs),
            ("device_lost", &mut self.device_lost),
            ("reprovisions", &mut self.reprovisions),
            ("spontaneous_reboots", &mut self.spontaneous_reboots),
        ]
    }

    /// Sets a counter by its [`entries`](Self::entries) key; `false` for
    /// an unknown key (tolerant snapshot parsing counts those as
    /// rejected lines).
    pub fn set(&mut self, key: &str, value: u64) -> bool {
        for (name, slot) in self.entries_mut() {
            if name == key {
                *slot = value;
                return true;
            }
        }
        false
    }

    /// Sum of all counters (quick "anything happened?" check).
    pub fn total(&self) -> u64 {
        self.entries().iter().map(|(_, v)| v).sum()
    }
}

/// Watchdog and recovery policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SupervisorConfig {
    /// Virtual budget per execution; hangs exceeding it are aborted.
    pub watchdog_budget_us: u64,
    /// Transient retries before an execution is abandoned.
    pub max_retries: u32,
    /// First backoff sleep (doubles per retry), virtual µs.
    pub backoff_base_us: u64,
    /// Backoff ceiling, virtual µs.
    pub backoff_cap_us: u64,
    /// Hang strikes before a program is quarantined.
    pub strike_limit: u32,
    /// Re-provision attempts before the device is declared gone.
    pub max_reprovisions: u32,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        Self {
            watchdog_budget_us: 30 * US_PER_SEC,
            max_retries: 3,
            backoff_base_us: US_PER_SEC / 2,
            backoff_cap_us: 8 * US_PER_SEC,
            strike_limit: 2,
            max_reprovisions: 3,
        }
    }
}

/// The result of one supervised execution.
#[derive(Debug, Default)]
pub struct SupervisedRun {
    /// Delivered feedback, absent when the execution was abandoned.
    pub outcome: Option<ExecOutcome>,
    /// Bug reports observed on attempts whose feedback was discarded
    /// (hang abort, silent loss) — crash state is never dropped.
    pub salvaged_bugs: Vec<BugReport>,
    /// Virtual µs to charge the engine clock for the whole episode.
    pub cost_us: u64,
    /// Device executions actually performed (0 when the link never came
    /// up; ≥ 2 when retries re-ran the program).
    pub attempts: u64,
    /// The failure class when no outcome was delivered.
    pub failure: Option<FailureClass>,
}

/// The supervised execution layer: wraps the broker with fault drawing,
/// a watchdog, retry/backoff, and device re-provisioning.
#[derive(Debug)]
pub struct Supervisor {
    plan: FaultPlan,
    cfg: SupervisorConfig,
    counters: FaultCounters,
    strikes: BTreeMap<String, u32>,
    quarantined: BTreeSet<String>,
    device_lost: bool,
}

impl Supervisor {
    /// Creates a supervisor drawing faults from `plan` under `cfg`.
    pub fn new(plan: FaultPlan, cfg: SupervisorConfig) -> Self {
        Self {
            plan,
            cfg,
            counters: FaultCounters::default(),
            strikes: BTreeMap::new(),
            quarantined: BTreeSet::new(),
            device_lost: false,
        }
    }

    /// Opens an execution batch: the broker installs its persistent trace
    /// session and keeps it (plus coverage marks and feedback scratch)
    /// across every [`supervise`](Self::supervise) call until
    /// [`end_batch`](Self::end_batch). The hoisted batch preamble is the
    /// device-lost check — a lost device fails the whole slice up front
    /// (`false`, nothing opened). Everything per-program is untouched:
    /// faults are still drawn per attempt and strikes/quarantine are still
    /// accounted per program, so any batch size is bit-identical to the
    /// per-program path.
    pub fn begin_batch(&mut self, broker: &mut Broker, device: &mut Device) -> bool {
        if self.device_lost {
            return false;
        }
        broker.begin_batch(device);
        true
    }

    /// Closes the current execution batch (no-op when none is open).
    pub fn end_batch(&mut self, broker: &mut Broker, device: &mut Device) {
        broker.end_batch(device);
    }

    /// Executes `prog` under supervision: draws a fault, applies it,
    /// runs the broker, and recovers per the failure taxonomy. The
    /// returned [`SupervisedRun`] carries the full virtual cost of the
    /// episode (including backoffs, reconnects, and recovery reboots).
    pub fn supervise(
        &mut self,
        broker: &mut Broker,
        device: &mut Device,
        adb: &mut AdbLink,
        table: &DescTable,
        prog: &Prog,
    ) -> SupervisedRun {
        let mut run = SupervisedRun::default();
        if self.device_lost {
            run.failure = Some(FailureClass::DeviceLost);
            return run;
        }
        let mut retries = 0u32;
        loop {
            let fault = self.plan.draw();
            if fault.is_some() {
                self.counters.injected += 1;
            }
            let mut hang_extra = None;
            match fault {
                Some(Fault::LinkDrop) => {
                    self.counters.link_drops += 1;
                    run.cost_us += adb.link_drop_cost();
                    if !self.backoff(&mut run, &mut retries) {
                        run.failure = Some(FailureClass::Transient);
                        return run;
                    }
                    continue;
                }
                Some(Fault::Vanish) => {
                    // The plan marks itself vanished; re-provisioning is
                    // doomed, but the supervisor pays for finding out.
                    self.counters.device_lost += 1;
                    if !self.reprovision(device, adb, &mut run)
                        || !self.backoff(&mut run, &mut retries)
                    {
                        run.failure = Some(FailureClass::DeviceLost);
                        return run;
                    }
                    continue;
                }
                Some(Fault::HalDeath) => {
                    let victims = device.hal_descriptors();
                    if !victims.is_empty() {
                        let victim = self.plan.pick_index(victims.len());
                        device.kill_hal_service(&victims[victim]);
                    }
                }
                Some(Fault::Wedge) => device.force_wedge(),
                Some(Fault::Reboot) => {
                    device.reboot();
                    run.cost_us += adb.reboot_cost();
                    self.counters.spontaneous_reboots += 1;
                }
                Some(Fault::Hang { extra_us }) => hang_extra = Some(extra_us),
                Some(Fault::TruncatedReply) | None => {}
            }

            let mut outcome = broker.execute(device, table, prog);
            run.attempts += 1;
            let exec_cost = EXEC_SESSION_US
                + adb.round_trip_cost(prog.wire_size(), outcome.calls_executed, outcome.reply_bytes)
                + outcome.calls_executed as u64 * PER_CALL_US;

            if let Some(extra) = hang_extra {
                if exec_cost.saturating_add(extra) >= self.cfg.watchdog_budget_us {
                    // Watchdog abort: charge the budget, not the hang;
                    // the feedback is never delivered, but any bug report
                    // that surfaced is salvaged.
                    run.cost_us += self.cfg.watchdog_budget_us;
                    self.counters.hangs += 1;
                    run.salvaged_bugs.append(&mut outcome.bugs);
                    broker.recycle(outcome);
                    device.reboot();
                    run.cost_us += adb.reboot_cost();
                    self.strike(prog, table);
                    run.failure = Some(FailureClass::Hang);
                    return run;
                }
                run.cost_us += exec_cost + extra;
            } else {
                run.cost_us += exec_cost;
            }

            if Self::silently_lost(device, &outcome) {
                self.counters.device_lost += 1;
                run.salvaged_bugs.append(&mut outcome.bugs);
                broker.recycle(outcome);
                if !self.reprovision(device, adb, &mut run)
                    || !self.backoff(&mut run, &mut retries)
                {
                    run.failure = Some(FailureClass::DeviceLost);
                    return run;
                }
                continue;
            }

            if fault == Some(Fault::TruncatedReply) {
                self.counters.truncated_replies += 1;
                Self::truncate_reply(adb, &mut outcome);
            }
            run.outcome = Some(outcome);
            return run;
        }
    }

    /// A device is *silently* lost when it is wedged or a HAL service is
    /// dead without any bug report. A found bug always reports; silence
    /// distinguishes "the hardware glitched" from "the fuzzer scored".
    fn silently_lost(device: &Device, outcome: &ExecOutcome) -> bool {
        outcome.bugs.is_empty()
            && (device.is_wedged()
                || device.hal_descriptors().iter().any(|d| !device.hal_alive(d)))
    }

    /// Drops the tail half of the feedback: the link died mid-pull.
    /// The out-of-band measurement channel (`observed_new_blocks`) is
    /// untouched — it models evaluation instrumentation, not the reply.
    fn truncate_reply(adb: &mut AdbLink, outcome: &mut ExecOutcome) {
        outcome.kcov.truncate(outcome.kcov.len() / 2);
        outcome.hal_events.truncate(outcome.hal_events.len() / 2);
        let delivered = outcome.kcov.len() * 8 + outcome.hal_events.len() * 16;
        adb.note_truncated_reply(outcome.reply_bytes.saturating_sub(delivered));
        outcome.reply_bytes = delivered;
    }

    /// Charges one capped-exponential backoff sleep; `false` when the
    /// retry budget is exhausted.
    fn backoff(&mut self, run: &mut SupervisedRun, retries: &mut u32) -> bool {
        *retries += 1;
        if *retries > self.cfg.max_retries {
            self.counters.gave_up += 1;
            return false;
        }
        let exp = (*retries - 1).min(20);
        run.cost_us += (self.cfg.backoff_base_us << exp).min(self.cfg.backoff_cap_us);
        self.counters.transient_retries += 1;
        true
    }

    /// Re-provisions a lost device: reboot, then probe that the wedge is
    /// cleared and every HAL service answers. On final failure the
    /// supervisor marks the device gone for good.
    fn reprovision(&mut self, device: &mut Device, adb: &mut AdbLink, run: &mut SupervisedRun) -> bool {
        for _ in 0..self.cfg.max_reprovisions {
            device.reboot();
            run.cost_us += adb.reboot_cost();
            self.counters.reprovisions += 1;
            if self.plan.reprovision_fails() {
                continue;
            }
            if !device.is_wedged() && device.hal_descriptors().iter().all(|d| device.hal_alive(d)) {
                return true;
            }
        }
        self.device_lost = true;
        false
    }

    fn strike(&mut self, prog: &Prog, table: &DescTable) {
        let key = format_prog(prog, table);
        let strikes = self.strikes.entry(key.clone()).or_insert(0);
        *strikes += 1;
        if *strikes >= self.cfg.strike_limit && self.quarantined.insert(key) {
            self.counters.quarantined_programs += 1;
        }
    }

    /// Whether `prog` has been quarantined for repeated hangs. Cheap in
    /// the (overwhelmingly common) no-quarantine case.
    pub fn is_prog_quarantined(&self, prog: &Prog, table: &DescTable) -> bool {
        !self.quarantined.is_empty() && self.quarantined.contains(&format_prog(prog, table))
    }

    /// The cumulative fault counters.
    pub fn counters(&self) -> FaultCounters {
        self.counters
    }

    /// Whether the device is gone for good (re-provision exhausted).
    pub fn device_lost(&self) -> bool {
        self.device_lost
    }

    /// Programs currently quarantined.
    pub fn quarantined_count(&self) -> usize {
        self.quarantined.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descs::build_syscall_table;
    use fuzzlang::prog::Call;
    use simdevice::catalog;
    use simdevice::faults::{FaultProfile, FaultRates};

    fn rig() -> (Device, DescTable, Broker, AdbLink) {
        let device = catalog::device_a1().boot();
        let table = build_syscall_table(device.kernel_ref());
        (device, table, Broker::new(), AdbLink::usb())
    }

    fn open_prog(table: &DescTable) -> Prog {
        Prog {
            calls: vec![Call {
                desc: table.id_of("openat$/dev/ion").expect("ion on A1"),
                args: vec![],
            }],
        }
    }

    fn supervisor_with(rates: FaultRates) -> Supervisor {
        Supervisor::new(FaultPlan::with_rates(rates, 42), SupervisorConfig::default())
    }

    fn no_faults() -> FaultRates {
        FaultRates::for_profile(FaultProfile::Reliable)
    }

    #[test]
    fn reliable_run_delivers_outcome_with_one_attempt() {
        let (mut device, table, mut broker, mut adb) = rig();
        let mut sup = supervisor_with(no_faults());
        let prog = open_prog(&table);
        let run = sup.supervise(&mut broker, &mut device, &mut adb, &table, &prog);
        assert!(run.outcome.is_some());
        assert_eq!(run.attempts, 1);
        assert_eq!(run.failure, None);
        assert_eq!(sup.counters().total(), 0);
        assert!(run.cost_us > EXEC_SESSION_US);
    }

    #[test]
    fn link_drops_retry_with_growing_backoff_then_give_up() {
        let (mut device, table, mut broker, mut adb) = rig();
        let mut sup = supervisor_with(FaultRates { link_drop: 1.0, ..no_faults() });
        let prog = open_prog(&table);
        let run = sup.supervise(&mut broker, &mut device, &mut adb, &table, &prog);
        assert!(run.outcome.is_none());
        assert_eq!(run.failure, Some(FailureClass::Transient));
        assert_eq!(run.attempts, 0, "the request never reached the device");
        let c = sup.counters();
        assert_eq!(c.link_drops, 4, "initial try + max_retries, all dropped");
        assert_eq!(c.transient_retries, 3);
        assert_eq!(c.gave_up, 1);
        // 4 drops + 3 backoffs (0.5s + 1s + 2s), all on the virtual clock.
        let drops = 4 * (2 * 250 + 2 * US_PER_SEC);
        assert_eq!(run.cost_us, drops + US_PER_SEC / 2 + US_PER_SEC + 2 * US_PER_SEC);
    }

    #[test]
    fn hang_is_aborted_by_watchdog_and_strikes_lead_to_quarantine() {
        let (mut device, table, mut broker, mut adb) = rig();
        let mut sup = supervisor_with(FaultRates {
            hang: 1.0,
            hang_extra_us: 120 * US_PER_SEC,
            ..no_faults()
        });
        let prog = open_prog(&table);
        let boots_before = device.boot_count();
        let run = sup.supervise(&mut broker, &mut device, &mut adb, &table, &prog);
        assert!(run.outcome.is_none());
        assert_eq!(run.failure, Some(FailureClass::Hang));
        assert_eq!(sup.counters().hangs, 1);
        assert!(!sup.is_prog_quarantined(&prog, &table), "one strike is not enough");
        assert_eq!(device.boot_count(), boots_before + 1, "watchdog reboots");
        // The budget, not the 120 s hang, is charged (plus the reboot).
        assert!(run.cost_us < 120 * US_PER_SEC);
        assert!(run.cost_us >= 30 * US_PER_SEC + adb.reboot_cost());

        let run2 = sup.supervise(&mut broker, &mut device, &mut adb, &table, &prog);
        assert_eq!(run2.failure, Some(FailureClass::Hang));
        assert!(sup.is_prog_quarantined(&prog, &table), "second strike quarantines");
        assert_eq!(sup.counters().quarantined_programs, 1);
        assert_eq!(sup.quarantined_count(), 1);
    }

    #[test]
    fn silent_wedge_is_reprovisioned_and_retried() {
        let (mut device, table, mut broker, mut adb) = rig();
        // Wedge exactly once: rates drawn per call, so use a plan where
        // the first draw wedges and later draws are clean.
        let mut sup = supervisor_with(no_faults());
        device.force_wedge();
        let prog = open_prog(&table);
        let run = sup.supervise(&mut broker, &mut device, &mut adb, &table, &prog);
        assert!(run.outcome.is_some(), "reprovision then retry succeeds");
        assert_eq!(run.attempts, 2, "wedged attempt + clean retry");
        let c = sup.counters();
        assert_eq!(c.device_lost, 1);
        assert!(c.reprovisions >= 1);
        assert!(!sup.device_lost());
        assert!(!device.is_wedged());
    }

    #[test]
    fn silent_hal_death_is_detected_and_recovered() {
        let (mut device, table, mut broker, mut adb) = rig();
        let mut sup = supervisor_with(no_faults());
        let victim = device.hal_descriptors().first().cloned().expect("services");
        device.kill_hal_service(&victim);
        let prog = open_prog(&table);
        let run = sup.supervise(&mut broker, &mut device, &mut adb, &table, &prog);
        assert!(run.outcome.is_some());
        assert!(device.hal_alive(&victim), "reprovision revived the service");
        assert_eq!(sup.counters().device_lost, 1);
    }

    #[test]
    fn vanish_abandons_the_device_permanently() {
        let (mut device, table, mut broker, mut adb) = rig();
        let mut sup = supervisor_with(FaultRates { vanish: 1.0, ..no_faults() });
        let prog = open_prog(&table);
        let run = sup.supervise(&mut broker, &mut device, &mut adb, &table, &prog);
        assert!(run.outcome.is_none());
        assert_eq!(run.failure, Some(FailureClass::DeviceLost));
        assert!(sup.device_lost());
        assert!(sup.counters().reprovisions >= 1, "it paid to find out");
        // Every later call short-circuits.
        let run2 = sup.supervise(&mut broker, &mut device, &mut adb, &table, &prog);
        assert_eq!(run2.cost_us, 0);
        assert_eq!(run2.failure, Some(FailureClass::DeviceLost));
    }

    #[test]
    fn truncated_reply_halves_feedback_but_still_delivers() {
        let (mut device, table, mut broker, mut adb) = rig();
        let mut sup = supervisor_with(FaultRates { truncated_reply: 1.0, ..no_faults() });
        // A multi-call program so there is feedback to lose.
        let mut prog = open_prog(&table);
        let more = open_prog(&table);
        prog.splice(&more);
        let run = sup.supervise(&mut broker, &mut device, &mut adb, &table, &prog);
        let outcome = run.outcome.expect("truncated is still delivered");
        assert_eq!(sup.counters().truncated_replies, 1);
        assert_eq!(adb.truncated_replies(), 1);
        assert_eq!(outcome.reply_bytes, outcome.kcov.len() * 8 + outcome.hal_events.len() * 16);
    }

    #[test]
    fn spontaneous_reboot_still_executes_normally() {
        let (mut device, table, mut broker, mut adb) = rig();
        let mut sup = supervisor_with(FaultRates { reboot: 1.0, ..no_faults() });
        let prog = open_prog(&table);
        let boots = device.boot_count();
        let run = sup.supervise(&mut broker, &mut device, &mut adb, &table, &prog);
        assert!(run.outcome.is_some());
        assert_eq!(device.boot_count(), boots + 1);
        assert_eq!(sup.counters().spontaneous_reboots, 1);
        assert!(run.cost_us > adb.reboot_cost());
    }

    #[test]
    fn counters_absorb_and_roundtrip_by_key() {
        let mut a = FaultCounters { injected: 2, hangs: 1, ..FaultCounters::default() };
        let b = FaultCounters { injected: 3, link_drops: 5, ..FaultCounters::default() };
        a.absorb(&b);
        assert_eq!(a.injected, 5);
        assert_eq!(a.link_drops, 5);
        assert_eq!(a.hangs, 1);
        let mut c = FaultCounters::default();
        for (k, v) in a.entries() {
            assert!(c.set(k, v));
        }
        assert_eq!(c, a);
        assert!(!c.set("bogus", 1));
    }
}
