//! Call descriptions: the typed vocabulary programs are built from.
//!
//! Syscall descriptions play the role of syzkaller's syzlang files (which
//! DroidFuzz borrows); HAL descriptions are produced by the probing pass.
//! `fuzzlang` itself is executor-agnostic — [`SyscallTemplate`] carries
//! enough data for the executor crate to construct concrete syscalls.

use crate::types::{ResourceKind, TypeDesc};
use std::collections::HashMap;

/// Identifier of a call description inside a [`DescTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DescId(pub usize);

/// How a syscall-backed description maps onto a concrete kernel call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SyscallTemplate {
    /// `openat(path)`; produces an `fd:<path>` resource.
    Openat {
        /// Device node path.
        path: String,
    },
    /// `close(fd)`.
    Close,
    /// `read(fd, len)`.
    Read,
    /// `write(fd, buf)`.
    Write,
    /// `ioctl(fd, request, arg)`; the description's non-resource args are
    /// encoded as the little-endian words of `arg`.
    Ioctl {
        /// Fixed request code.
        request: u32,
    },
    /// `ioctl(fd, request, arg)` with an *unknown* request: the first
    /// integer argument supplies the request code and the byte blob (if
    /// any) the payload. This is all a syscall fuzzer can do against a
    /// proprietary driver it has no descriptions for.
    IoctlAny,
    /// `mmap(fd, len, prot)`.
    Mmap,
    /// `poll(fd, events)`.
    Poll,
    /// `dup(fd)`; produces the same resource kind it consumes.
    Dup,
    /// `socket(domain, ty, proto)` with fixed parameters; produces a
    /// socket resource.
    Socket {
        /// Address family.
        domain: u32,
        /// Socket type.
        ty: u32,
        /// Protocol.
        proto: u32,
    },
    /// `bind(sock, addr)`.
    Bind,
    /// `connect(sock, addr)`.
    Connect,
    /// `listen(sock, backlog)`.
    Listen,
    /// `accept(sock)`; produces the same socket kind.
    Accept,
}

/// What a description invokes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallKind {
    /// A kernel system call.
    Syscall(SyscallTemplate),
    /// A HAL method, addressed by service descriptor and transaction code.
    Hal {
        /// Binder service descriptor.
        service: String,
        /// Transaction code.
        code: u32,
    },
}

impl CallKind {
    /// Whether this is a HAL method.
    pub fn is_hal(&self) -> bool {
        matches!(self, CallKind::Hal { .. })
    }

    /// Whether this is (or compiles to) an `ioctl`/`openat`-only call —
    /// the subset DroidFuzz-D and Difuze are restricted to.
    pub fn is_ioctl_path(&self) -> bool {
        matches!(
            self,
            CallKind::Syscall(SyscallTemplate::Ioctl { .. })
                | CallKind::Syscall(SyscallTemplate::IoctlAny)
                | CallKind::Syscall(SyscallTemplate::Openat { .. })
                | CallKind::Syscall(SyscallTemplate::Close)
        )
    }
}

/// One named, typed argument.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgDesc {
    /// Argument name (documentation / text format comments).
    pub name: String,
    /// Argument type.
    pub ty: TypeDesc,
}

impl ArgDesc {
    /// Builds an argument description.
    pub fn new(name: &str, ty: TypeDesc) -> Self {
        Self { name: name.to_owned(), ty }
    }
}

/// A call description: the unit of the DSL vocabulary.
#[derive(Debug, Clone, PartialEq)]
pub struct CallDesc {
    /// Unique name, e.g. `ioctl$TCPC_SET_CC` or `hal$IComposer$present`.
    pub name: String,
    /// What it invokes.
    pub kind: CallKind,
    /// Ordered argument descriptions.
    pub args: Vec<ArgDesc>,
    /// Resource the call produces, if any.
    pub produces: Option<ResourceKind>,
    /// Vertex weight for relational generation (base-invocation
    /// probability mass; §IV-C).
    pub weight: f64,
}

impl CallDesc {
    /// Builds a description.
    pub fn new(
        name: impl Into<String>,
        kind: CallKind,
        args: Vec<ArgDesc>,
        produces: Option<ResourceKind>,
    ) -> Self {
        Self { name: name.into(), kind, args, produces, weight: 1.0 }
    }

    /// Sets the vertex weight (builder style).
    pub fn with_weight(mut self, weight: f64) -> Self {
        self.weight = weight;
        self
    }

    /// `openat` description for a device node.
    pub fn syscall_open(path: &str) -> Self {
        Self::new(
            format!("openat${path}"),
            CallKind::Syscall(SyscallTemplate::Openat { path: path.to_owned() }),
            vec![],
            Some(ResourceKind::new(format!("fd:{path}"))),
        )
    }

    /// Generic `close` description accepting any fd.
    pub fn syscall_close() -> Self {
        Self::new(
            "close",
            CallKind::Syscall(SyscallTemplate::Close),
            vec![ArgDesc::new("fd", TypeDesc::Resource { kind: "fd".into() })],
            None,
        )
    }

    /// Generic `dup` description.
    pub fn syscall_dup() -> Self {
        Self::new(
            "dup",
            CallKind::Syscall(SyscallTemplate::Dup),
            vec![ArgDesc::new("fd", TypeDesc::Resource { kind: "fd".into() })],
            Some(ResourceKind::new("fd")),
        )
    }

    /// The fd resource kind for `path`.
    pub fn fd_kind(path: &str) -> ResourceKind {
        ResourceKind::new(format!("fd:{path}"))
    }
}

/// The description table: an index-stable, name-addressable vocabulary.
#[derive(Debug, Clone, Default)]
pub struct DescTable {
    descs: Vec<CallDesc>,
    by_name: HashMap<String, DescId>,
}

impl DescTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a description, returning its id.
    ///
    /// # Panics
    ///
    /// Panics on duplicate names — descriptions are a global vocabulary.
    pub fn add(&mut self, desc: CallDesc) -> DescId {
        let id = DescId(self.descs.len());
        let prev = self.by_name.insert(desc.name.clone(), id);
        assert!(prev.is_none(), "duplicate call description {}", desc.name);
        self.descs.push(desc);
        id
    }

    /// Looks up by id.
    pub fn get(&self, id: DescId) -> &CallDesc {
        &self.descs[id.0]
    }

    /// Looks up by name.
    pub fn id_of(&self, name: &str) -> Option<DescId> {
        self.by_name.get(name).copied()
    }

    /// Number of descriptions.
    pub fn len(&self) -> usize {
        self.descs.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.descs.is_empty()
    }

    /// Iterates `(id, desc)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (DescId, &CallDesc)> {
        self.descs.iter().enumerate().map(|(i, d)| (DescId(i), d))
    }

    /// Ids of descriptions that can produce a resource accepted as `kind`.
    pub fn producers_of(&self, kind: &ResourceKind) -> Vec<DescId> {
        self.iter()
            .filter(|(_, d)| d.produces.as_ref().is_some_and(|p| kind.accepts(p)))
            .map(|(id, _)| id)
            .collect()
    }

    /// Ids of HAL-method descriptions.
    pub fn hal_ids(&self) -> Vec<DescId> {
        self.iter().filter(|(_, d)| d.kind.is_hal()).map(|(id, _)| id).collect()
    }

    /// Ids of syscall descriptions.
    pub fn syscall_ids(&self) -> Vec<DescId> {
        self.iter().filter(|(_, d)| !d.kind.is_hal()).map(|(id, _)| id).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_desc_produces_path_specific_fd() {
        let d = CallDesc::syscall_open("/dev/ion");
        assert_eq!(d.name, "openat$/dev/ion");
        assert_eq!(d.produces, Some(ResourceKind::new("fd:/dev/ion")));
        assert!(d.args.is_empty());
    }

    #[test]
    fn table_indexing_and_producers() {
        let mut t = DescTable::new();
        let open = t.add(CallDesc::syscall_open("/dev/gpu0"));
        let close = t.add(CallDesc::syscall_close());
        assert_eq!(t.id_of("close"), Some(close));
        assert_eq!(t.get(open).name, "openat$/dev/gpu0");
        let producers = t.producers_of(&"fd:/dev/gpu0".into());
        assert_eq!(producers, vec![open]);
        // Generic "fd" wanted kind also matches.
        assert_eq!(t.producers_of(&"fd".into()), vec![open]);
        assert!(t.producers_of(&"handle".into()).is_empty());
    }

    #[test]
    #[should_panic(expected = "duplicate call description")]
    fn duplicate_names_rejected() {
        let mut t = DescTable::new();
        t.add(CallDesc::syscall_close());
        t.add(CallDesc::syscall_close());
    }

    #[test]
    fn hal_and_syscall_partition() {
        let mut t = DescTable::new();
        t.add(CallDesc::syscall_open("/dev/leds"));
        t.add(CallDesc::new(
            "hal$ILight$setLight",
            CallKind::Hal { service: "svc".into(), code: 1 },
            vec![],
            None,
        ));
        assert_eq!(t.hal_ids().len(), 1);
        assert_eq!(t.syscall_ids().len(), 1);
        assert!(t.get(t.hal_ids()[0]).kind.is_hal());
    }

    #[test]
    fn ioctl_path_classification() {
        assert!(CallKind::Syscall(SyscallTemplate::Ioctl { request: 1 }).is_ioctl_path());
        assert!(CallKind::Syscall(SyscallTemplate::Openat { path: "/x".into() }).is_ioctl_path());
        assert!(!CallKind::Syscall(SyscallTemplate::Write).is_ioctl_path());
        assert!(!CallKind::Hal { service: "s".into(), code: 1 }.is_ioctl_path());
    }
}
