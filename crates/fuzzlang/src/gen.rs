//! Syntax-directed generation: instantiate calls from their descriptions,
//! inserting producer calls for unresolved resource arguments (the
//! "find producer calls … and insert it into the call sequence as a
//! prefix" step of §IV-C).

use crate::desc::{DescId, DescTable};
use crate::prog::{ArgValue, Call, Prog};
use crate::types::TypeDesc;
use rand::seq::SliceRandom;
use rand::Rng;

/// Generates a value for a non-resource type.
///
/// # Panics
///
/// Panics on [`TypeDesc::Resource`] — resources are resolved by
/// [`append_call`], not generated.
pub fn gen_value<R: Rng>(ty: &TypeDesc, rng: &mut R) -> ArgValue {
    match ty {
        TypeDesc::Int { min, max } => ArgValue::Int(rng.gen_range(*min..=*max)),
        TypeDesc::Choice { values } => {
            ArgValue::Int(values.choose(rng).copied().unwrap_or_default())
        }
        TypeDesc::Flags { values } => {
            let mut v = 0;
            for &flag in values {
                if rng.gen_bool(0.5) {
                    v |= flag;
                }
            }
            ArgValue::Int(v)
        }
        TypeDesc::Buffer { min_len, max_len } => {
            let len = rng.gen_range(*min_len..=*max_len);
            let mut bytes = vec![0u8; len];
            rng.fill(&mut bytes[..]);
            ArgValue::Bytes(bytes)
        }
        TypeDesc::Str { choices } => {
            ArgValue::Str(choices.choose(rng).cloned().unwrap_or_default())
        }
        TypeDesc::Resource { .. } => panic!("resources are resolved, not generated"),
    }
}

/// Maximum producer-insertion recursion (guards against cyclic resource
/// descriptions).
const MAX_PRODUCER_DEPTH: usize = 8;

/// Appends an instance of `desc_id` to `prog`, recursively appending
/// producer calls for resource arguments that no earlier call satisfies.
/// Returns the index of the appended call, or `None` when a required
/// resource has no producer in the table.
pub fn append_call<R: Rng>(
    prog: &mut Prog,
    table: &DescTable,
    desc_id: DescId,
    rng: &mut R,
) -> Option<usize> {
    append_call_depth(prog, table, desc_id, rng, 0)
}

fn append_call_depth<R: Rng>(
    prog: &mut Prog,
    table: &DescTable,
    desc_id: DescId,
    rng: &mut R,
    depth: usize,
) -> Option<usize> {
    if depth > MAX_PRODUCER_DEPTH {
        return None;
    }
    let desc = table.get(desc_id).clone();
    let mut args = Vec::with_capacity(desc.args.len());
    for arg in &desc.args {
        match &arg.ty {
            TypeDesc::Resource { kind } => {
                // Prefer reusing an existing producer (mirrors real
                // workloads, which share fds); otherwise insert one.
                let existing: Vec<usize> = prog
                    .calls
                    .iter()
                    .enumerate()
                    .filter(|(_, c)| {
                        table
                            .get(c.desc)
                            .produces
                            .as_ref()
                            .is_some_and(|p| kind.accepts(p))
                    })
                    .map(|(i, _)| i)
                    .collect();
                let target = if !existing.is_empty() && rng.gen_bool(0.8) {
                    *existing.choose(rng).expect("non-empty")
                } else {
                    let producers = table.producers_of(kind);
                    let &producer = producers.choose(rng)?;
                    append_call_depth(prog, table, producer, rng, depth + 1)?
                };
                args.push(ArgValue::Ref(target));
            }
            other => args.push(gen_value(other, rng)),
        }
    }
    prog.calls.push(Call { desc: desc_id, args });
    Some(prog.calls.len() - 1)
}

/// Generates a program of roughly `target_calls` randomly chosen calls
/// (the non-relational baseline generator; DroidFuzz's relational
/// generator lives in the fuzzer crate and composes [`append_call`]).
pub fn generate<R: Rng>(table: &DescTable, target_calls: usize, rng: &mut R) -> Prog {
    let mut prog = Prog::new();
    let ids: Vec<DescId> = table.iter().map(|(id, _)| id).collect();
    if ids.is_empty() {
        return prog;
    }
    for _ in 0..target_calls {
        let &id = ids.choose(rng).expect("non-empty");
        let _ = append_call(&mut prog, table, id, rng);
        if prog.len() >= target_calls * 2 {
            break;
        }
    }
    prog
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::desc::{ArgDesc, CallDesc, CallKind, SyscallTemplate};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn table() -> DescTable {
        let mut t = DescTable::new();
        t.add(CallDesc::syscall_open("/dev/x"));
        t.add(CallDesc::syscall_close());
        t.add(CallDesc::new(
            "ioctl$X",
            CallKind::Syscall(SyscallTemplate::Ioctl { request: 7 }),
            vec![
                ArgDesc::new("fd", TypeDesc::Resource { kind: "fd:/dev/x".into() }),
                ArgDesc::new("mode", TypeDesc::Choice { values: vec![2, 4, 8] }),
            ],
            None,
        ));
        t
    }

    #[test]
    fn gen_value_respects_ranges_and_choices() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            match gen_value(&TypeDesc::Int { min: 5, max: 9 }, &mut rng) {
                ArgValue::Int(v) => assert!((5..=9).contains(&v)),
                other => panic!("unexpected {other:?}"),
            }
            match gen_value(&TypeDesc::Choice { values: vec![2, 4, 8] }, &mut rng) {
                ArgValue::Int(v) => assert!([2, 4, 8].contains(&v)),
                other => panic!("unexpected {other:?}"),
            }
            match gen_value(&TypeDesc::Flags { values: vec![1, 2, 4] }, &mut rng) {
                ArgValue::Int(v) => assert!(v <= 7),
                other => panic!("unexpected {other:?}"),
            }
            match gen_value(&TypeDesc::Buffer { min_len: 2, max_len: 6 }, &mut rng) {
                ArgValue::Bytes(b) => assert!((2..=6).contains(&b.len())),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn append_call_inserts_producers() {
        let t = table();
        let ioctl = t.id_of("ioctl$X").unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let mut prog = Prog::new();
        let idx = append_call(&mut prog, &t, ioctl, &mut rng).unwrap();
        assert_eq!(idx, 1, "producer open inserted first");
        assert_eq!(prog.len(), 2);
        assert_eq!(prog.validate(&t), Ok(()));
    }

    #[test]
    fn append_call_reuses_existing_producer_often() {
        let t = table();
        let ioctl = t.id_of("ioctl$X").unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let mut prog = Prog::new();
        for _ in 0..10 {
            append_call(&mut prog, &t, ioctl, &mut rng).unwrap();
        }
        let opens = prog
            .calls
            .iter()
            .filter(|c| t.get(c.desc).name.starts_with("openat"))
            .count();
        assert!(opens < 10, "most calls should reuse an fd (got {opens} opens)");
    }

    #[test]
    fn append_call_fails_without_producer() {
        let mut t = DescTable::new();
        let orphan = t.add(CallDesc::new(
            "needs_handle",
            CallKind::Syscall(SyscallTemplate::Ioctl { request: 1 }),
            vec![ArgDesc::new("h", TypeDesc::Resource { kind: "handle:none".into() })],
            None,
        ));
        let mut rng = StdRng::seed_from_u64(4);
        let mut prog = Prog::new();
        assert_eq!(append_call(&mut prog, &t, orphan, &mut rng), None);
        assert!(prog.calls.len() <= 1, "no dangling call committed with bad refs");
    }

    #[test]
    fn generated_programs_always_validate() {
        let t = table();
        for seed in 0..50 {
            let mut rng = StdRng::seed_from_u64(seed);
            let prog = generate(&t, 8, &mut rng);
            assert_eq!(prog.validate(&t), Ok(()), "seed {seed}");
        }
    }
}
