//! # fuzzlang — the test-case DSL
//!
//! DroidFuzz represents test cases as "sequences of HAL interface and
//! Linux kernel system call invocations in a Domain Specific Language
//! form" (paper §IV-A). This crate is that DSL:
//!
//! * [`types::TypeDesc`] — argument type system (ranged ints, choices,
//!   flag sets, buffers, strings, and *resources* produced by earlier
//!   calls),
//! * [`desc::CallDesc`] — typed descriptions of syscalls and HAL methods
//!   (the analogue of syzlang descriptions and probed HAL interfaces),
//! * [`prog::Prog`] — call sequences with resource references,
//! * [`gen`] — syntax-directed generation with automatic producer-call
//!   insertion,
//! * [`mutate`] — mutation operators over programs,
//! * [`text`] — human-readable serialization with full round-trip.
//!
//! ```
//! use fuzzlang::desc::{CallDesc, CallKind, DescTable, SyscallTemplate};
//! use fuzzlang::gen;
//! use rand::SeedableRng;
//!
//! let mut table = DescTable::new();
//! table.add(CallDesc::syscall_open("/dev/leds"));
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let prog = gen::generate(&table, 3, &mut rng);
//! assert!(!prog.calls.is_empty());
//! ```

pub mod desc;
pub mod gen;
pub mod mutate;
pub mod prog;
pub mod text;
pub mod types;

pub use desc::{ArgDesc, CallDesc, CallKind, DescTable, SyscallTemplate};
pub use prog::{ArgValue, Call, Prog, UnknownCallError};
pub use types::{ResourceKind, TypeDesc};
