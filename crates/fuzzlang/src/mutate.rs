//! Mutation operators over programs ("historical payload mutation",
//! §IV-C).

use crate::desc::DescTable;
use crate::gen::{append_call, gen_value};
use crate::prog::Prog;
use crate::types::TypeDesc;
use rand::seq::SliceRandom;
use rand::Rng;

/// The mutation operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MutationOp {
    /// Append a fresh random call (with producers).
    InsertCall,
    /// Insert a fresh random call (with its producers) at a random
    /// position — lets seeds grow state-building prefixes *before* their
    /// payoff calls.
    InsertCallAt,
    /// Remove a random call (cascading dependents).
    RemoveCall,
    /// Regenerate one non-resource argument of one call.
    MutateArg,
    /// Duplicate a call (re-pointing nothing; refs stay valid because the
    /// copy lands at the end).
    DuplicateCall,
}

impl MutationOp {
    /// All operators.
    pub fn all() -> &'static [MutationOp] {
        &[
            MutationOp::InsertCall,
            MutationOp::InsertCallAt,
            MutationOp::InsertCallAt,
            MutationOp::RemoveCall,
            MutationOp::MutateArg,
            MutationOp::DuplicateCall,
        ]
    }
}

/// Applies one random mutation. Returns the operator applied, or `None`
/// if the chosen operator was inapplicable (e.g. removing from an empty
/// program); the program is left valid either way.
pub fn mutate<R: Rng>(prog: &mut Prog, table: &DescTable, rng: &mut R) -> Option<MutationOp> {
    let &op = MutationOp::all().choose(rng).expect("non-empty");
    let applied = match op {
        MutationOp::InsertCall => {
            let ids: Vec<_> = table.iter().map(|(id, _)| id).collect();
            let &id = ids.choose(rng)?;
            append_call(prog, table, id, rng).is_some()
        }
        MutationOp::InsertCallAt => {
            let ids: Vec<_> = table.iter().map(|(id, _)| id).collect();
            let &id = ids.choose(rng)?;
            let mut sub = Prog::new();
            if append_call(&mut sub, table, id, rng).is_none() {
                false
            } else {
                let at = rng.gen_range(0..=prog.len());
                prog.insert_at(at, &sub);
                true
            }
        }
        MutationOp::RemoveCall => {
            if prog.is_empty() {
                false
            } else {
                let idx = rng.gen_range(0..prog.len());
                prog.remove_call(idx) > 0
            }
        }
        MutationOp::MutateArg => {
            let candidates: Vec<(usize, usize)> = prog
                .calls
                .iter()
                .enumerate()
                .flat_map(|(ci, call)| {
                    let desc = table.get(call.desc);
                    desc.args
                        .iter()
                        .enumerate()
                        .filter(|(_, a)| !a.ty.is_resource())
                        .map(move |(ai, _)| (ci, ai))
                        .collect::<Vec<_>>()
                })
                .collect();
            match candidates.choose(rng) {
                Some(&(ci, ai)) => {
                    let ty: TypeDesc = table.get(prog.calls[ci].desc).args[ai].ty.clone();
                    prog.calls[ci].args[ai] = gen_value(&ty, rng);
                    true
                }
                None => false,
            }
        }
        MutationOp::DuplicateCall => {
            if prog.is_empty() {
                false
            } else {
                let idx = rng.gen_range(0..prog.len());
                let call = prog.calls[idx].clone();
                prog.calls.push(call);
                true
            }
        }
    };
    applied.then_some(op)
}

/// Applies `n` mutations (best effort).
pub fn mutate_n<R: Rng>(prog: &mut Prog, table: &DescTable, n: usize, rng: &mut R) {
    for _ in 0..n {
        let _ = mutate(prog, table, rng);
    }
}

/// Crossover: a copy of `a` with a random suffix of `b` spliced on.
pub fn crossover<R: Rng>(a: &Prog, b: &Prog, rng: &mut R) -> Prog {
    let mut out = a.clone();
    if b.is_empty() {
        return out;
    }
    // Splice the whole of b to keep refs valid, then trim leaf calls at
    // random to approximate a suffix crossover.
    out.splice(b);
    let trims = rng.gen_range(0..=b.len() / 2);
    for _ in 0..trims {
        let leaves = out.unreferenced();
        if let Some(&idx) = leaves.choose(rng) {
            out.remove_call(idx);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::desc::{ArgDesc, CallDesc, CallKind, SyscallTemplate};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn table() -> DescTable {
        let mut t = DescTable::new();
        t.add(CallDesc::syscall_open("/dev/x"));
        t.add(CallDesc::syscall_close());
        t.add(CallDesc::new(
            "ioctl$X",
            CallKind::Syscall(SyscallTemplate::Ioctl { request: 7 }),
            vec![
                ArgDesc::new("fd", TypeDesc::Resource { kind: "fd:/dev/x".into() }),
                ArgDesc::new("mode", TypeDesc::Choice { values: vec![2, 4, 8] }),
            ],
            None,
        ));
        t
    }

    #[test]
    fn mutations_preserve_validity() {
        let t = table();
        let mut rng = StdRng::seed_from_u64(11);
        let mut prog = crate::gen::generate(&t, 6, &mut rng);
        for i in 0..500 {
            mutate(&mut prog, &t, &mut rng);
            assert_eq!(prog.validate(&t), Ok(()), "after mutation {i}");
        }
    }

    #[test]
    fn crossover_preserves_validity() {
        let t = table();
        let mut rng = StdRng::seed_from_u64(12);
        for _ in 0..50 {
            let a = crate::gen::generate(&t, 5, &mut rng);
            let b = crate::gen::generate(&t, 5, &mut rng);
            let c = crossover(&a, &b, &mut rng);
            assert_eq!(c.validate(&t), Ok(()));
            assert!(c.len() >= a.len());
        }
    }

    #[test]
    fn mutate_arg_changes_only_non_resource_args() {
        let t = table();
        let mut rng = StdRng::seed_from_u64(13);
        let mut prog = Prog::new();
        let ioctl = t.id_of("ioctl$X").unwrap();
        append_call(&mut prog, &t, ioctl, &mut rng).unwrap();
        for _ in 0..200 {
            mutate_n(&mut prog, &t, 1, &mut rng);
            assert_eq!(prog.validate(&t), Ok(()));
        }
    }
}
