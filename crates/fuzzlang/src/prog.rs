//! Programs: ordered call sequences with resource references.

use crate::desc::{DescId, DescTable};
use crate::types::TypeDesc;
use std::fmt;

/// A concrete argument value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgValue {
    /// Integer (also used for flags/choices).
    Int(u64),
    /// Byte buffer.
    Bytes(Vec<u8>),
    /// String.
    Str(String),
    /// Reference to the result of the call at this index in the program.
    Ref(usize),
}

impl ArgValue {
    /// Overwrites `self` with a copy of `src`, reusing `self`'s heap
    /// buffer when both sides are the same buffer-carrying variant.
    pub fn assign_from(&mut self, src: &ArgValue) {
        match (self, src) {
            (ArgValue::Bytes(dst), ArgValue::Bytes(src)) => {
                dst.clear();
                dst.extend_from_slice(src);
            }
            (ArgValue::Str(dst), ArgValue::Str(src)) => {
                dst.clear();
                dst.push_str(src);
            }
            (dst, src) => *dst = src.clone(),
        }
    }
}

/// One call in a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Call {
    /// Which description this call instantiates.
    pub desc: DescId,
    /// Concrete argument values, one per described argument.
    pub args: Vec<ArgValue>,
}

impl Call {
    /// Overwrites `self` with a copy of `src`, reusing the argument vector
    /// and per-argument buffers already allocated in `self`.
    pub fn assign_from(&mut self, src: &Call) {
        self.desc = src.desc;
        self.args.truncate(src.args.len());
        let shared = self.args.len();
        for (dst, s) in self.args.iter_mut().zip(&src.args) {
            dst.assign_from(s);
        }
        self.args.extend(src.args[shared..].iter().cloned());
    }
}

/// A test case: an ordered sequence of calls.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Prog {
    /// The calls, executed front to back.
    pub calls: Vec<Call>,
}

/// Why a program failed validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidateProgError {
    /// A call's arg count differs from its description.
    ArgCount {
        /// Offending call index.
        call: usize,
    },
    /// A `Ref` does not point at an earlier call.
    ForwardRef {
        /// Offending call index.
        call: usize,
        /// The referenced index.
        target: usize,
    },
    /// A `Ref` points at a call that produces nothing, or a resource of
    /// the wrong kind.
    BadProducer {
        /// Offending call index.
        call: usize,
        /// The referenced index.
        target: usize,
    },
    /// A resource argument holds a non-`Ref` value.
    NotARef {
        /// Offending call index.
        call: usize,
        /// Argument position.
        arg: usize,
    },
}

impl fmt::Display for ValidateProgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateProgError::ArgCount { call } => write!(f, "call {call}: argument count mismatch"),
            ValidateProgError::ForwardRef { call, target } => {
                write!(f, "call {call}: forward/self reference to {target}")
            }
            ValidateProgError::BadProducer { call, target } => {
                write!(f, "call {call}: call {target} does not produce the wanted resource")
            }
            ValidateProgError::NotARef { call, arg } => {
                write!(f, "call {call}: resource arg {arg} is not a reference")
            }
        }
    }
}

impl std::error::Error for ValidateProgError {}

/// A call name that no description in the table defines (from
/// [`Prog::from_named`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownCallError {
    /// Position of the offending line.
    pub index: usize,
    /// The unknown call name.
    pub name: String,
}

impl fmt::Display for UnknownCallError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "call {}: unknown call name `{}`", self.index, self.name)
    }
}

impl std::error::Error for UnknownCallError {}

impl Prog {
    /// Creates an empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a program from `(name, args)` lines, resolving each name
    /// through `table`.
    ///
    /// # Errors
    ///
    /// Returns [`UnknownCallError`] for the first name the table does not
    /// define. Call names routinely come from outside the running binary
    /// (imported corpora, snapshots, another device's table), so an
    /// unknown name is an input problem to report, never a panic.
    pub fn from_named(
        table: &DescTable,
        lines: &[(&str, Vec<ArgValue>)],
    ) -> Result<Self, UnknownCallError> {
        let mut calls = Vec::with_capacity(lines.len());
        for (index, (name, args)) in lines.iter().enumerate() {
            let desc = table.id_of(name).ok_or_else(|| UnknownCallError {
                index,
                name: (*name).to_owned(),
            })?;
            calls.push(Call { desc, args: args.clone() });
        }
        Ok(Self { calls })
    }

    /// Overwrites `self` with a copy of `src`, reusing the call vector,
    /// per-call argument vectors, and argument byte/string buffers already
    /// allocated in `self`. Semantically identical to `*self = src.clone()`
    /// but allocation-free once `self` has seen a program at least as large
    /// — the form the fuzzer's per-program hot loop uses.
    pub fn assign_from(&mut self, src: &Prog) {
        self.calls.truncate(src.calls.len());
        let shared = self.calls.len();
        for (dst, s) in self.calls.iter_mut().zip(&src.calls) {
            dst.assign_from(s);
        }
        self.calls.extend(src.calls[shared..].iter().cloned());
    }

    /// Number of calls.
    pub fn len(&self) -> usize {
        self.calls.len()
    }

    /// Whether the program has no calls.
    pub fn is_empty(&self) -> bool {
        self.calls.is_empty()
    }

    /// Checks structural validity against `table`.
    ///
    /// # Errors
    ///
    /// Returns the first violation found (see [`ValidateProgError`]).
    pub fn validate(&self, table: &DescTable) -> Result<(), ValidateProgError> {
        for (i, call) in self.calls.iter().enumerate() {
            let desc = table.get(call.desc);
            if call.args.len() != desc.args.len() {
                return Err(ValidateProgError::ArgCount { call: i });
            }
            for (a, (value, arg_desc)) in call.args.iter().zip(&desc.args).enumerate() {
                match (&arg_desc.ty, value) {
                    (TypeDesc::Resource { kind }, ArgValue::Ref(target)) => {
                        if *target >= i {
                            return Err(ValidateProgError::ForwardRef { call: i, target: *target });
                        }
                        let producer = table.get(self.calls[*target].desc);
                        let ok = producer
                            .produces
                            .as_ref()
                            .is_some_and(|p| kind.accepts(p));
                        if !ok {
                            return Err(ValidateProgError::BadProducer { call: i, target: *target });
                        }
                    }
                    (TypeDesc::Resource { .. }, _) => {
                        return Err(ValidateProgError::NotARef { call: i, arg: a });
                    }
                    _ => {}
                }
            }
        }
        Ok(())
    }

    /// Removes the call at `index`, cascading removal of any later calls
    /// that (transitively) referenced it, and remapping surviving `Ref`s.
    /// Returns how many calls were removed.
    ///
    /// This is the primitive DroidFuzz's minimizer is built on.
    pub fn remove_call(&mut self, index: usize) -> usize {
        if index >= self.calls.len() {
            return 0;
        }
        let n = self.calls.len();
        let mut dead = vec![false; n];
        dead[index] = true;
        for i in index + 1..n {
            let depends_on_dead = self.calls[i].args.iter().any(|a| match a {
                ArgValue::Ref(t) => dead[*t],
                _ => false,
            });
            if depends_on_dead {
                dead[i] = true;
            }
        }
        // Old index → new index for survivors.
        let mut remap = vec![usize::MAX; n];
        let mut next = 0;
        for i in 0..n {
            if !dead[i] {
                remap[i] = next;
                next += 1;
            }
        }
        let old_calls = std::mem::take(&mut self.calls);
        for (i, mut call) in old_calls.into_iter().enumerate() {
            if dead[i] {
                continue;
            }
            for arg in &mut call.args {
                if let ArgValue::Ref(t) = arg {
                    *t = remap[*t];
                }
            }
            self.calls.push(call);
        }
        dead.iter().filter(|&&d| d).count()
    }

    /// Inserts all calls of `sub` at position `at` (≤ `len()`): `sub`'s
    /// internal references shift by `at`, and references of existing calls
    /// that point at or past `at` shift by `sub.len()`.
    ///
    /// # Panics
    ///
    /// Panics if `at > self.len()`.
    pub fn insert_at(&mut self, at: usize, sub: &Prog) {
        assert!(at <= self.calls.len(), "insert position out of bounds");
        let shift = sub.calls.len();
        for call in &mut self.calls[at..] {
            for arg in &mut call.args {
                if let ArgValue::Ref(t) = arg {
                    if *t >= at {
                        *t += shift;
                    }
                }
            }
        }
        let mut inserted: Vec<Call> = Vec::with_capacity(shift);
        for call in &sub.calls {
            let mut call = call.clone();
            for arg in &mut call.args {
                if let ArgValue::Ref(t) = arg {
                    *t += at;
                }
            }
            inserted.push(call);
        }
        self.calls.splice(at..at, inserted);
    }

    /// Appends all calls of `other`, shifting its internal references.
    pub fn splice(&mut self, other: &Prog) {
        let offset = self.calls.len();
        for call in &other.calls {
            let mut call = call.clone();
            for arg in &mut call.args {
                if let ArgValue::Ref(t) = arg {
                    *t += offset;
                }
            }
            self.calls.push(call);
        }
    }

    /// Indices of calls whose result no later call references.
    pub fn unreferenced(&self) -> Vec<usize> {
        let mut referenced = vec![false; self.calls.len()];
        for call in &self.calls {
            for arg in &call.args {
                if let ArgValue::Ref(t) = arg {
                    referenced[*t] = true;
                }
            }
        }
        referenced
            .iter()
            .enumerate()
            .filter_map(|(i, &r)| (!r).then_some(i))
            .collect()
    }

    /// Approximate serialized size in bytes (for transport cost modeling).
    pub fn wire_size(&self) -> usize {
        self.calls
            .iter()
            .map(|c| {
                8 + c
                    .args
                    .iter()
                    .map(|a| match a {
                        ArgValue::Int(_) | ArgValue::Ref(_) => 8,
                        ArgValue::Bytes(b) => 4 + b.len(),
                        ArgValue::Str(s) => 4 + s.len(),
                    })
                    .sum::<usize>()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::desc::{ArgDesc, CallDesc, CallKind, SyscallTemplate};

    fn table() -> DescTable {
        let mut t = DescTable::new();
        t.add(CallDesc::syscall_open("/dev/x")); // 0
        t.add(CallDesc::syscall_close()); // 1
        t.add(CallDesc::new(
            // 2: ioctl on /dev/x
            "ioctl$X",
            CallKind::Syscall(SyscallTemplate::Ioctl { request: 7 }),
            vec![
                ArgDesc::new("fd", TypeDesc::Resource { kind: "fd:/dev/x".into() }),
                ArgDesc::new("v", TypeDesc::any_u32()),
            ],
            None,
        ));
        t
    }

    fn open_ioctl_close() -> Prog {
        Prog {
            calls: vec![
                Call { desc: DescId(0), args: vec![] },
                Call { desc: DescId(2), args: vec![ArgValue::Ref(0), ArgValue::Int(5)] },
                Call { desc: DescId(1), args: vec![ArgValue::Ref(0)] },
            ],
        }
    }

    #[test]
    fn valid_program_validates() {
        let t = table();
        assert_eq!(open_ioctl_close().validate(&t), Ok(()));
    }

    #[test]
    fn forward_ref_rejected() {
        let t = table();
        let p = Prog {
            calls: vec![Call { desc: DescId(1), args: vec![ArgValue::Ref(0)] }],
        };
        assert_eq!(
            p.validate(&t),
            Err(ValidateProgError::ForwardRef { call: 0, target: 0 })
        );
    }

    #[test]
    fn resource_arg_must_be_ref() {
        let t = table();
        let mut p = open_ioctl_close();
        p.calls[1].args[0] = ArgValue::Int(3);
        assert_eq!(p.validate(&t), Err(ValidateProgError::NotARef { call: 1, arg: 0 }));
    }

    #[test]
    fn remove_call_cascades_and_remaps() {
        let t = table();
        let mut p = open_ioctl_close();
        // Removing the open must cascade to both dependents.
        assert_eq!(p.remove_call(0), 3);
        assert!(p.is_empty());

        let mut p = open_ioctl_close();
        // Removing the ioctl keeps open+close, with refs remapped.
        assert_eq!(p.remove_call(1), 1);
        assert_eq!(p.len(), 2);
        assert_eq!(p.validate(&t), Ok(()));
        assert_eq!(p.calls[1].args[0], ArgValue::Ref(0));
    }

    #[test]
    fn insert_at_rewires_refs_on_both_sides() {
        let t = table();
        let mut p = open_ioctl_close();
        let sub = open_ioctl_close();
        p.insert_at(1, &sub);
        assert_eq!(p.len(), 6);
        assert_eq!(p.validate(&t), Ok(()));
        // Original calls 1,2 (now at 4,5) still reference the original
        // open, which stayed at index 0.
        assert_eq!(p.calls[4].args[0], ArgValue::Ref(0));
        assert_eq!(p.calls[5].args[0], ArgValue::Ref(0));
        // Inserted calls reference their own open at index 1.
        assert_eq!(p.calls[2].args[0], ArgValue::Ref(1));
    }

    #[test]
    fn insert_at_start_and_end() {
        let t = table();
        let mut p = open_ioctl_close();
        let sub = open_ioctl_close();
        p.insert_at(0, &sub);
        assert_eq!(p.validate(&t), Ok(()));
        let len = p.len();
        p.insert_at(len, &sub);
        assert_eq!(p.validate(&t), Ok(()));
        assert_eq!(p.len(), 9);
    }

    #[test]
    fn splice_offsets_refs() {
        let t = table();
        let mut a = open_ioctl_close();
        let b = open_ioctl_close();
        a.splice(&b);
        assert_eq!(a.len(), 6);
        assert_eq!(a.validate(&t), Ok(()));
        assert_eq!(a.calls[4].args[0], ArgValue::Ref(3));
    }

    #[test]
    fn unreferenced_finds_leaf_calls() {
        let p = open_ioctl_close();
        assert_eq!(p.unreferenced(), vec![1, 2]);
    }

    #[test]
    fn assign_from_matches_clone() {
        let src = Prog {
            calls: vec![
                Call { desc: DescId(0), args: vec![] },
                Call {
                    desc: DescId(2),
                    args: vec![
                        ArgValue::Ref(0),
                        ArgValue::Bytes(vec![1, 2, 3]),
                        ArgValue::Str("abc".into()),
                    ],
                },
            ],
        };
        // From empty, from larger, and from differently-shaped programs.
        let mut dst = Prog::new();
        dst.assign_from(&src);
        assert_eq!(dst, src);
        let mut dst = open_ioctl_close();
        dst.splice(&open_ioctl_close());
        dst.assign_from(&src);
        assert_eq!(dst, src);
        let mut dst = Prog {
            calls: vec![Call {
                desc: DescId(1),
                args: vec![ArgValue::Int(9), ArgValue::Bytes(vec![0; 64])],
            }],
        };
        dst.assign_from(&src);
        assert_eq!(dst, src);
    }

    #[test]
    fn assign_from_reuses_buffers() {
        let big = Prog {
            calls: vec![Call {
                desc: DescId(0),
                args: vec![ArgValue::Bytes(vec![7; 256]), ArgValue::Str("x".repeat(64))],
            }],
        };
        let small = Prog {
            calls: vec![Call {
                desc: DescId(0),
                args: vec![ArgValue::Bytes(vec![1]), ArgValue::Str("y".into())],
            }],
        };
        let mut dst = Prog::new();
        dst.assign_from(&big);
        let calls_cap = dst.calls.capacity();
        let ArgValue::Bytes(b) = &dst.calls[0].args[0] else { panic!() };
        let bytes_cap = b.capacity();
        dst.assign_from(&small);
        assert_eq!(dst, small);
        assert_eq!(dst.calls.capacity(), calls_cap, "call vector kept");
        let ArgValue::Bytes(b) = &dst.calls[0].args[0] else { panic!() };
        assert_eq!(b.capacity(), bytes_cap, "byte buffer kept");
    }

    #[test]
    fn wire_size_is_positive_and_monotonic() {
        let mut p = open_ioctl_close();
        let s1 = p.wire_size();
        p.splice(&open_ioctl_close());
        assert!(p.wire_size() > s1);
    }
}
