//! Human-readable program serialization with full round-trip, used for
//! the persistent seed corpus and crash reproducers.
//!
//! Format, one call per line:
//!
//! ```text
//! r0 = openat$/dev/tcpc0()
//! r1 = ioctl$TCPC_SET_CC(r0, 0x1)
//! r2 = hal$IComposer$createLayer()
//! r3 = hal$IComposer$setLayerBuffer(r2, 0x40, "name", hex:00ff12)
//! ```
//!
//! Every call is labelled `r<index>`; arguments are hex integers, quoted
//! strings (with `\"`/`\\`/`\n`/`\r`/`\t` escapes), `hex:` byte blobs, or
//! `r<N>` references. The serialized form never contains a raw `\r` or
//! `\t`: the corpus and snapshot formats are line-oriented, and a bare
//! carriage return or tab inside a string would be silently mangled by
//! any line-trimming or CRLF-translating consumer — normalization drift
//! the lint gate would then misattribute to the program itself.

use crate::desc::DescTable;
use crate::prog::{ArgValue, Call, Prog};
use std::fmt;

/// Error parsing the text format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseProgError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseProgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseProgError {}

fn err(line: usize, message: impl Into<String>) -> ParseProgError {
    ParseProgError { line, message: message.into() }
}

/// Serializes a program.
pub fn format_prog(prog: &Prog, table: &DescTable) -> String {
    let mut out = String::new();
    for (i, call) in prog.calls.iter().enumerate() {
        let desc = table.get(call.desc);
        out.push_str(&format!("r{i} = {}(", desc.name));
        for (j, arg) in call.args.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            match arg {
                ArgValue::Int(v) => out.push_str(&format!("0x{v:x}")),
                ArgValue::Ref(t) => out.push_str(&format!("r{t}")),
                ArgValue::Str(s) => {
                    out.push('"');
                    for c in s.chars() {
                        match c {
                            '"' => out.push_str("\\\""),
                            '\\' => out.push_str("\\\\"),
                            '\n' => out.push_str("\\n"),
                            '\r' => out.push_str("\\r"),
                            '\t' => out.push_str("\\t"),
                            c => out.push(c),
                        }
                    }
                    out.push('"');
                }
                ArgValue::Bytes(b) => {
                    out.push_str("hex:");
                    for byte in b {
                        out.push_str(&format!("{byte:02x}"));
                    }
                }
            }
        }
        out.push_str(")\n");
    }
    out
}

/// Splits a call's argument list on top-level commas (commas inside
/// quoted strings don't count).
fn split_args(s: &str) -> Vec<String> {
    let mut parts = Vec::new();
    let mut cur = String::new();
    let mut in_str = false;
    let mut escaped = false;
    for c in s.chars() {
        if in_str {
            cur.push(c);
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_str = false;
            }
            continue;
        }
        match c {
            '"' => {
                in_str = true;
                cur.push(c);
            }
            ',' => {
                parts.push(cur.trim().to_owned());
                cur.clear();
            }
            c => cur.push(c),
        }
    }
    let last = cur.trim();
    if !last.is_empty() {
        parts.push(last.to_owned());
    }
    parts
}

fn parse_string_literal(line: usize, token: &str) -> Result<String, ParseProgError> {
    let inner = token
        .strip_prefix('"')
        .and_then(|t| t.strip_suffix('"'))
        .ok_or_else(|| err(line, format!("bad string literal {token}")))?;
    let mut out = String::new();
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some('n') => out.push('\n'),
                Some('r') => out.push('\r'),
                Some('t') => out.push('\t'),
                other => return Err(err(line, format!("bad escape {other:?}"))),
            }
        } else {
            out.push(c);
        }
    }
    Ok(out)
}

fn parse_arg(line: usize, token: &str) -> Result<ArgValue, ParseProgError> {
    if let Some(hexstr) = token.strip_prefix("0x") {
        let v = u64::from_str_radix(hexstr, 16)
            .map_err(|e| err(line, format!("bad int {token}: {e}")))?;
        return Ok(ArgValue::Int(v));
    }
    if let Some(refstr) = token.strip_prefix('r') {
        if let Ok(t) = refstr.parse::<usize>() {
            return Ok(ArgValue::Ref(t));
        }
    }
    if let Some(hexstr) = token.strip_prefix("hex:") {
        if hexstr.len() % 2 != 0 {
            return Err(err(line, "odd-length hex blob"));
        }
        let mut bytes = Vec::with_capacity(hexstr.len() / 2);
        for i in (0..hexstr.len()).step_by(2) {
            let byte = u8::from_str_radix(&hexstr[i..i + 2], 16)
                .map_err(|e| err(line, format!("bad hex blob: {e}")))?;
            bytes.push(byte);
        }
        return Ok(ArgValue::Bytes(bytes));
    }
    if token.starts_with('"') {
        return parse_string_literal(line, token).map(ArgValue::Str);
    }
    Err(err(line, format!("unrecognized argument {token}")))
}

/// Parses the text format back into a program.
///
/// # Errors
///
/// Returns a [`ParseProgError`] on malformed lines, unknown call names,
/// or label/index mismatches. The result is *not* validated against arg
/// types — callers should run [`Prog::validate`].
pub fn parse_prog(text: &str, table: &DescTable) -> Result<Prog, ParseProgError> {
    let mut prog = Prog::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = lineno + 1;
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let (label, rest) = trimmed
            .split_once('=')
            .ok_or_else(|| err(line, "missing `=`"))?;
        let label = label.trim();
        let expected = format!("r{}", prog.calls.len());
        if label != expected {
            return Err(err(line, format!("expected label {expected}, got {label}")));
        }
        let rest = rest.trim();
        let open = rest.find('(').ok_or_else(|| err(line, "missing `(`"))?;
        let name = &rest[..open];
        let close = rest.rfind(')').ok_or_else(|| err(line, "missing `)`"))?;
        if close < open {
            return Err(err(line, "`)` before `(`"));
        }
        let args_str = &rest[open + 1..close];
        let desc_id = table
            .id_of(name)
            .ok_or_else(|| err(line, format!("unknown call {name}")))?;
        let mut args = Vec::new();
        for token in split_args(args_str) {
            args.push(parse_arg(line, &token)?);
        }
        prog.calls.push(Call { desc: desc_id, args });
    }
    Ok(prog)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::desc::{ArgDesc, CallDesc, CallKind, DescId, SyscallTemplate};
    use crate::types::TypeDesc;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn table() -> DescTable {
        let mut t = DescTable::new();
        t.add(CallDesc::syscall_open("/dev/x"));
        t.add(CallDesc::syscall_close());
        t.add(CallDesc::new(
            "ioctl$X",
            CallKind::Syscall(SyscallTemplate::Ioctl { request: 7 }),
            vec![
                ArgDesc::new("fd", TypeDesc::Resource { kind: "fd:/dev/x".into() }),
                ArgDesc::new("mode", TypeDesc::any_u32()),
            ],
            None,
        ));
        t.add(CallDesc::new(
            "hal$ISvc$method",
            CallKind::Hal { service: "svc".into(), code: 3 },
            vec![
                ArgDesc::new("name", TypeDesc::Str { choices: vec!["a".into()] }),
                ArgDesc::new("data", TypeDesc::Buffer { min_len: 0, max_len: 8 }),
            ],
            None,
        ));
        t
    }

    #[test]
    fn roundtrip_hand_written() {
        let t = table();
        let text = "r0 = openat$/dev/x()\nr1 = ioctl$X(r0, 0x2a)\nr2 = hal$ISvc$method(\"he\\\"y, you\", hex:00ff12)\n";
        let prog = parse_prog(text, &t).unwrap();
        assert_eq!(prog.len(), 3);
        assert_eq!(prog.calls[1].args[1], ArgValue::Int(0x2a));
        assert_eq!(prog.calls[2].args[0], ArgValue::Str("he\"y, you".into()));
        assert_eq!(prog.calls[2].args[1], ArgValue::Bytes(vec![0, 0xff, 0x12]));
        let formatted = format_prog(&prog, &t);
        let reparsed = parse_prog(&formatted, &t).unwrap();
        assert_eq!(prog, reparsed);
    }

    #[test]
    fn roundtrip_generated_programs() {
        let t = table();
        for seed in 0..30 {
            let mut rng = StdRng::seed_from_u64(seed);
            let prog = crate::gen::generate(&t, 6, &mut rng);
            let text = format_prog(&prog, &t);
            let reparsed = parse_prog(&text, &t).unwrap();
            assert_eq!(prog, reparsed, "seed {seed}\n{text}");
        }
    }

    #[test]
    fn control_characters_in_strings_roundtrip_escaped() {
        let mut t = DescTable::new();
        t.add(CallDesc::new(
            "f",
            CallKind::Syscall(SyscallTemplate::Write),
            vec![ArgDesc::new("s", TypeDesc::Str { choices: vec![] })],
            None,
        ));
        // Every ASCII char (plus some multibyte ones) survives, and the
        // serialized form never carries a raw `\r` or `\t`.
        for c in (0u32..0x80).filter_map(char::from_u32).chain(['\u{85}', '\u{2028}', '🦀']) {
            let s = format!("a{c}b{c}");
            let prog = Prog {
                calls: vec![Call { desc: DescId(0), args: vec![ArgValue::Str(s.clone())] }],
            };
            let text = format_prog(&prog, &t);
            assert!(!text.contains('\r') && !text.contains('\t'), "raw control char for {c:?}");
            let reparsed = parse_prog(&text, &t).unwrap_or_else(|e| panic!("{c:?}: {e}"));
            assert_eq!(prog, reparsed, "char {c:?} via {text:?}");
        }
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let t = table();
        let text = "# corpus entry 1\n\nr0 = openat$/dev/x()\n";
        assert_eq!(parse_prog(text, &t).unwrap().len(), 1);
    }

    #[test]
    fn malformed_lines_error_instead_of_panicking() {
        let t = table();
        // `)` before `(` used to hit an out-of-range slice.
        for bad in ["r0 = )junk(", "r0 = )(", "r0 = x)y(z", "r0 = ="] {
            assert!(parse_prog(bad, &t).is_err(), "{bad:?} must be a parse error");
        }
    }

    #[test]
    fn errors_carry_line_numbers() {
        let t = table();
        let bad = "r0 = openat$/dev/x()\nr1 = nosuchcall()\n";
        let e = parse_prog(bad, &t).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("nosuchcall"));
        let bad_label = "r7 = openat$/dev/x()\n";
        assert!(parse_prog(bad_label, &t).unwrap_err().message.contains("expected label"));
    }
}
