//! The DSL's argument type system.

use std::fmt;

/// A resource kind, e.g. `"fd:/dev/tcpc0"` or `"hal:composer:layer"`.
///
/// Kinds form a prefix hierarchy separated by `:`; a consumer asking for
/// `"fd"` accepts anything a producer labels `"fd:…"`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ResourceKind(pub String);

impl ResourceKind {
    /// Builds a kind from a string.
    pub fn new(kind: impl Into<String>) -> Self {
        Self(kind.into())
    }

    /// Whether a resource of kind `produced` satisfies this (possibly more
    /// general) wanted kind.
    ///
    /// ```
    /// use fuzzlang::types::ResourceKind;
    /// let wanted = ResourceKind::new("fd");
    /// assert!(wanted.accepts(&ResourceKind::new("fd:/dev/ion")));
    /// assert!(wanted.accepts(&ResourceKind::new("fd")));
    /// assert!(!wanted.accepts(&ResourceKind::new("handle:ion")));
    /// ```
    pub fn accepts(&self, produced: &ResourceKind) -> bool {
        produced.0 == self.0 || produced.0.starts_with(&format!("{}:", self.0))
    }
}

impl fmt::Display for ResourceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for ResourceKind {
    fn from(s: &str) -> Self {
        Self(s.to_owned())
    }
}

/// The type of one call argument.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeDesc {
    /// Integer in `[min, max]` (inclusive).
    Int {
        /// Inclusive lower bound.
        min: u64,
        /// Inclusive upper bound.
        max: u64,
    },
    /// One of an enumerated set of meaningful values.
    Choice {
        /// The meaningful values.
        values: Vec<u64>,
    },
    /// Bitwise OR of a random subset of these flags.
    Flags {
        /// Individual flag bits.
        values: Vec<u64>,
    },
    /// Byte buffer with length in `[min_len, max_len]`.
    Buffer {
        /// Minimum length.
        min_len: usize,
        /// Maximum length.
        max_len: usize,
    },
    /// A string drawn from known choices (device paths, parameter keys).
    Str {
        /// Candidate strings.
        choices: Vec<String>,
    },
    /// A resource produced by an earlier call.
    Resource {
        /// Wanted kind (prefix-matched against producers).
        kind: ResourceKind,
    },
}

impl TypeDesc {
    /// Convenience constructor for a full-range 32-bit int.
    pub fn any_u32() -> Self {
        TypeDesc::Int { min: 0, max: u64::from(u32::MAX) }
    }

    /// Whether this argument consumes a resource.
    pub fn is_resource(&self) -> bool {
        matches!(self, TypeDesc::Resource { .. })
    }

    /// The wanted resource kind, if any.
    pub fn resource_kind(&self) -> Option<&ResourceKind> {
        match self {
            TypeDesc::Resource { kind } => Some(kind),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resource_prefix_matching() {
        let fd = ResourceKind::new("fd");
        assert!(fd.accepts(&"fd:/dev/video0".into()));
        assert!(!fd.accepts(&"fdx".into()), "prefix must end at separator");
        let exact = ResourceKind::new("fd:/dev/video0");
        assert!(exact.accepts(&"fd:/dev/video0".into()));
        assert!(!exact.accepts(&"fd:/dev/video1".into()));
    }

    #[test]
    fn type_desc_resource_introspection() {
        let t = TypeDesc::Resource { kind: "handle:ion".into() };
        assert!(t.is_resource());
        assert_eq!(t.resource_kind().unwrap().0, "handle:ion");
        assert!(!TypeDesc::any_u32().is_resource());
        assert!(TypeDesc::any_u32().resource_kind().is_none());
    }
}
