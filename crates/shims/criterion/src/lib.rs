//! Offline stand-in for the `criterion` crate.
//!
//! The build environment for this repository cannot reach a crates.io
//! registry, so the workspace vendors the slice of the criterion 0.5 API
//! its microbenchmarks use: [`Criterion::bench_function`],
//! [`Bencher::iter`] / [`Bencher::iter_batched`], benchmark groups, and
//! the [`criterion_group!`] / [`criterion_main!`] macros. Instead of
//! criterion's statistical machinery it runs a fixed warm-up plus timed
//! batch per benchmark and prints mean wall-clock time per iteration —
//! enough to compare hot paths locally and to keep `cargo bench` compiling
//! and running.

use std::time::{Duration, Instant};

/// How measured samples are batched between setup calls.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: many routine calls per setup.
    SmallInput,
    /// Large inputs: fewer routine calls per setup.
    LargeInput,
    /// One routine call per setup.
    PerIteration,
}

impl BatchSize {
    fn iters_per_setup(self) -> u64 {
        match self {
            BatchSize::SmallInput => 64,
            BatchSize::LargeInput => 8,
            BatchSize::PerIteration => 1,
        }
    }
}

/// Per-benchmark measurement driver handed to the closure.
pub struct Bencher {
    sample_iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the sample's iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.sample_iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` on fresh inputs from `setup`, excluding setup time.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let per_setup = size.iters_per_setup();
        let mut measured = Duration::ZERO;
        let mut done = 0;
        while done < self.sample_iters {
            let batch = per_setup.min(self.sample_iters - done);
            let inputs: Vec<I> = (0..batch).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                std::hint::black_box(routine(input));
            }
            measured += start.elapsed();
            done += batch;
        }
        self.elapsed = measured;
    }
}

fn run_sample(name: &str, sample_size: u64, f: &mut dyn FnMut(&mut Bencher)) {
    // Warm-up pass, then the measured pass.
    let mut warm = Bencher { sample_iters: (sample_size / 4).max(1), elapsed: Duration::ZERO };
    f(&mut warm);
    let mut bencher = Bencher { sample_iters: sample_size, elapsed: Duration::ZERO };
    f(&mut bencher);
    let per_iter = bencher.elapsed.as_nanos() as f64 / sample_size as f64;
    println!("bench {name:<40} {per_iter:>12.1} ns/iter ({sample_size} iters)");
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    sample_size: u64,
}

impl Criterion {
    fn effective_sample_size(&self) -> u64 {
        if self.sample_size == 0 {
            100
        } else {
            self.sample_size
        }
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl AsRef<str>,
        mut f: F,
    ) -> &mut Self {
        run_sample(name.as_ref(), self.effective_sample_size(), &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: self.effective_sample_size(), _parent: self }
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the per-benchmark iteration count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Runs one named benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl AsRef<str>,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, name.as_ref());
        run_sample(&full, self.sample_size, &mut f);
        self
    }

    /// Finishes the group (reporting is immediate, so this is a no-op).
    pub fn finish(self) {}
}

/// Opaque-value helper re-exported for criterion compatibility.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Collects benchmark functions into a runnable group, like criterion's.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut counter = 0u64;
        let mut c = Criterion::default();
        c.bench_function("shim/count", |b| b.iter(|| counter += 1));
        assert!(counter > 0);
    }

    #[test]
    fn iter_batched_feeds_fresh_inputs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(10);
        let mut seen = 0u64;
        group.bench_function("batched", |b| {
            b.iter_batched(|| 7u64, |v| seen += v, BatchSize::PerIteration)
        });
        group.finish();
        assert!(seen >= 70);
    }
}
